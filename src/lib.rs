//! # F² — Frequency-Hiding, Functional-Dependency-Preserving Encryption
//!
//! A Rust implementation of the scheme from *"Frequency-Hiding Dependency-Preserving
//! Encryption for Outsourced Databases"* (Boxiang Dong and Hui (Wendy) Wang, ICDE
//! 2017).
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`relation`] — the relational substrate (tables, schemas, partitions, CSV I/O);
//! * [`crypto`] — AES-128, the PRF-based probabilistic cell cipher, the deterministic
//!   baseline and a from-scratch Paillier implementation;
//! * [`fd`] — TANE FD discovery, maximal-attribute-set (MAS) discovery, and the FD
//!   lattice;
//! * [`core`] — the F² scheme itself ([`F2Encryptor`] / [`F2Decryptor`]);
//! * [`attack`] — the frequency-analysis and Kerckhoffs adversaries and the empirical
//!   α-security experiment;
//! * [`datagen`] — TPC-H/TPC-C-style and synthetic workload generators used by the
//!   evaluation.
//!
//! ## Quick start
//!
//! ```
//! use f2::{F2Config, F2Decryptor, F2Encryptor};
//! use f2::crypto::MasterKey;
//! use f2::fd::tane::discover_fds;
//! use f2::relation::table;
//!
//! // The data owner's private table: Zip → City holds.
//! let data = table! {
//!     ["Zip", "City", "Name"];
//!     ["07030", "Hoboken",  "alice"],
//!     ["07030", "Hoboken",  "bob"],
//!     ["10001", "NewYork",  "carol"],
//!     ["10001", "NewYork",  "dave"],
//! };
//!
//! // Encrypt with α = 1/2 and split factor 2, without knowing any FD.
//! let key = MasterKey::from_seed(42);
//! let encryptor = F2Encryptor::new(F2Config::new(0.5, 2).unwrap(), key.clone());
//! let outcome = encryptor.encrypt(&data).unwrap();
//!
//! // The (untrusted) server discovers FDs directly on the encrypted table …
//! let server_fds = discover_fds(&outcome.encrypted);
//! assert!(!server_fds.is_empty());
//!
//! // … and the owner can still recover her table exactly.
//! let recovered = F2Decryptor::new(key).recover_from_outcome(&outcome).unwrap();
//! assert!(recovered.multiset_eq(&data));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use f2_attack as attack;
pub use f2_core as core;
pub use f2_crypto as crypto;
pub use f2_datagen as datagen;
pub use f2_fd as fd;
pub use f2_relation as relation;

pub use f2_core::{
    EncryptionOutcome, EncryptionReport, F2Config, F2Decryptor, F2Encryptor, F2Error, Provenance,
    RowOrigin,
};
pub use f2_relation::{AttrSet, Record, Schema, Table, Value};
