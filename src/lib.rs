//! # F² — Frequency-Hiding, Functional-Dependency-Preserving Encryption
//!
//! A Rust implementation of the scheme from *"Frequency-Hiding Dependency-Preserving
//! Encryption for Outsourced Databases"* (Boxiang Dong and Hui (Wendy) Wang, ICDE
//! 2017).
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`relation`] — the relational substrate (tables, schemas, partitions, CSV I/O);
//! * [`crypto`] — AES-128, the PRF-based probabilistic cell cipher, the deterministic
//!   baseline and a from-scratch Paillier implementation;
//! * [`fd`] — TANE FD discovery, maximal-attribute-set (MAS) discovery, and the FD
//!   lattice;
//! * [`core`] — the pluggable [`Scheme`] backend API and its four implementations:
//!   [`F2Scheme`] (the paper's scheme, built fluently with [`F2::builder`]),
//!   [`DetScheme`] (deterministic AES), [`ProbScheme`] (per-cell probabilistic
//!   cipher), and [`PaillierScheme`];
//! * [`io`] — streaming dataset I/O: [`RowSource`] chunk producers ([`CsvSource`]
//!   parses CSV/TSV with schema inference in constant memory, [`TableSource`] wraps
//!   in-memory tables as zero-copy views) and the checksummed, compressed `F2WS` v2
//!   frame stream ([`io::FrameSink`](f2_io::FrameSink) /
//!   [`io::FrameReader`](f2_io::FrameReader)); plus the fault-tolerance toolkit:
//!   [`RetryPolicy`] (bounded, deterministic-jitter retry of transient I/O
//!   failures), frame-level damage recovery
//!   ([`io::FrameReader::recover`](f2_io::FrameReader::recover)), and the seeded
//!   fault-injection harness ([`FaultPlan`] and friends) that makes failure paths
//!   testable;
//! * [`engine`] — the streaming outsourcing layer: [`Engine`] shards a table into
//!   chunks, encrypts them on parallel workers over any [`ChunkedScheme`] backend with
//!   per-chunk nonce domains, and reassembles a deterministic outcome —
//!   or streams source → encrypted file end to end in bounded memory
//!   ([`Engine::run_streaming`], `engine::stream::decrypt_streaming`); the
//!   [`StatefulScheme`] extension persists owner state over the versioned
//!   `f2_engine::wire` format so decryption can happen in a later process; crashed
//!   streaming jobs resume byte-exactly ([`Engine::resume_streaming`]), damaged
//!   streams salvage chunk-wise ([`decrypt_streaming_lossy`] → [`DamageReport`]),
//!   and worker panics surface as typed [`EngineError::WorkerPanicked`] errors
//!   (see `docs/ROBUSTNESS.md`);
//! * [`server`] — a supervised, multi-tenant encryption service over the engine's
//!   push-model jobs: a typed, CRC-checked request protocol ([`server::proto`](f2_server::proto)),
//!   a bounded worker pool with admission-queue load shedding (typed
//!   [`Overloaded`](f2_server::ServerError::Overloaded) replies), per-request
//!   deadlines from a monotonic deadline wheel, crash-resumable per-tenant jobs
//!   (every acknowledged chunk persists with its owner state; panics park the
//!   job, reconnecting clients resume byte-identically), and a graceful,
//!   deadline-bound drain (see `docs/SERVER.md`);
//! * [`attack`] — the frequency-analysis and Kerckhoffs adversaries and the empirical
//!   α-security experiment, runnable against **any** [`Scheme`];
//! * [`datagen`] — TPC-H/TPC-C-style and synthetic workload generators used by the
//!   evaluation;
//! * [`obs`] — the zero-dependency telemetry layer: every pipeline stage records
//!   into the process-wide [`obs::Registry`](f2_obs::Registry) (phase and chunk
//!   latency histograms, frame and cipher counters), exportable as Prometheus text
//!   or JSON via [`obs::Registry::write_prometheus`](f2_obs::Registry::write_prometheus) /
//!   [`write_json`](f2_obs::Registry::write_json), and disableable at runtime for a
//!   guaranteed-cheap no-op mode (see `docs/OBSERVABILITY.md`).
//!
//! ## Quick start
//!
//! Every backend goes through the same three calls: build a [`Scheme`], `encrypt`,
//! `decrypt`.
//!
//! ```
//! use f2::{Scheme, F2};
//! use f2::fd::tane::discover_fds;
//! use f2::relation::table;
//!
//! // The data owner's private table: Zip → City holds.
//! let data = table! {
//!     ["Zip", "City", "Name"];
//!     ["07030", "Hoboken",  "alice"],
//!     ["07030", "Hoboken",  "bob"],
//!     ["10001", "NewYork",  "carol"],
//!     ["10001", "NewYork",  "dave"],
//! };
//!
//! // Encrypt with α = 1/2 and split factor 2, without knowing any FD.
//! let scheme = F2::builder().alpha(0.5).split_factor(2).seed(42).build().unwrap();
//! let outcome = scheme.encrypt(&data).unwrap();
//!
//! // The (untrusted) server discovers FDs directly on the encrypted table …
//! let server_fds = discover_fds(&outcome.encrypted);
//! assert!(!server_fds.is_empty());
//!
//! // … and the owner can still recover her table exactly.
//! let recovered = scheme.decrypt(&outcome).unwrap();
//! assert!(recovered.multiset_eq(&data));
//! ```
//!
//! Swapping the backend is one line — `DetScheme::new(key)` (fast, leaks frequencies)
//! or `PaillierScheme::new(512, seed)?` (hides frequencies, destroys FDs, slow) both
//! implement [`Scheme`] — which is how the benchmark registry and the attack harness
//! compare all of them with shared code. F²'s provenance, MAS sets and plaintext
//! schema remain reachable via [`SchemeOutcome::f2_state`], and the lower-level
//! [`F2Encryptor`] / [`F2Decryptor`] API is still exported for direct use.
//!
//! ## Streaming outsourcing
//!
//! For large relations, drive any backend through the chunked, multi-threaded
//! [`Engine`] and persist the owner state to disk (see
//! `examples/streaming_outsourcing.rs` for the full two-process story):
//!
//! ```
//! use f2::{Engine, EngineConfig, Scheme, StatefulScheme, F2};
//! use f2::engine::{load_outcome, save_outcome};
//! use f2::relation::table;
//!
//! let data = table! {
//!     ["Zip", "City"];
//!     ["07030", "Hoboken"], ["07030", "Hoboken"],
//!     ["10001", "NewYork"], ["10001", "NewYork"],
//! };
//! let scheme = F2::builder().alpha(0.5).seed(42).build().unwrap();
//! let engine = Engine::new(EngineConfig { workers: 2, chunk_rows: 2, seed: 42 }).unwrap();
//! let run = engine.encrypt(&scheme, &data).unwrap();
//! let blob = save_outcome(&scheme, &run.outcome).unwrap(); // → ships to disk/server
//! let restored = load_outcome(&scheme, &blob).unwrap();    // → later process
//! assert!(scheme.decrypt(&restored).unwrap().multiset_eq(&data));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use f2_attack as attack;
pub use f2_core as core;
pub use f2_crypto as crypto;
pub use f2_datagen as datagen;
pub use f2_engine as engine;
pub use f2_fd as fd;
pub use f2_io as io;
pub use f2_obs as obs;
pub use f2_relation as relation;
pub use f2_server as server;

pub use f2_core::{
    ChunkState, ChunkedScheme, DetScheme, EncryptionOutcome, EncryptionReport, F2Builder, F2Config,
    F2Decryptor, F2Encryptor, F2Error, F2OwnerState, F2Scheme, OwnerState, PaillierFraming,
    PaillierScheme, ProbScheme, Provenance, RowOrigin, Scheme, SchemeOutcome, F2,
};
pub use f2_engine::{
    decrypt_streaming_lossy, ChunkRecord, DamageReport, Engine, EngineConfig, EngineError,
    EngineOutcome, StatefulScheme, StreamOutcome,
};
pub use f2_io::{
    CsvOptions, CsvSource, FaultKind, FaultPlan, FaultyReader, FaultySource, FaultyWriter,
    RetryPolicy, RetryState, RowSource, SkippedRange, StreamStore, TableChunk, TableSource,
};
pub use f2_relation::{AttrSet, Record, Schema, Table, TableView, Value};
pub use f2_server::{ServerConfig, ServerError, Service, ServiceHandle};
