//! # F² — Frequency-Hiding, Functional-Dependency-Preserving Encryption
//!
//! A Rust implementation of the scheme from *"Frequency-Hiding Dependency-Preserving
//! Encryption for Outsourced Databases"* (Boxiang Dong and Hui (Wendy) Wang, ICDE
//! 2017).
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`relation`] — the relational substrate (tables, schemas, partitions, CSV I/O);
//! * [`crypto`] — AES-128, the PRF-based probabilistic cell cipher, the deterministic
//!   baseline and a from-scratch Paillier implementation;
//! * [`fd`] — TANE FD discovery, maximal-attribute-set (MAS) discovery, and the FD
//!   lattice;
//! * [`core`] — the pluggable [`Scheme`] backend API and its four implementations:
//!   [`F2Scheme`] (the paper's scheme, built fluently with [`F2::builder`]),
//!   [`DetScheme`] (deterministic AES), [`ProbScheme`] (per-cell probabilistic
//!   cipher), and [`PaillierScheme`];
//! * [`attack`] — the frequency-analysis and Kerckhoffs adversaries and the empirical
//!   α-security experiment, runnable against **any** [`Scheme`];
//! * [`datagen`] — TPC-H/TPC-C-style and synthetic workload generators used by the
//!   evaluation.
//!
//! ## Quick start
//!
//! Every backend goes through the same three calls: build a [`Scheme`], `encrypt`,
//! `decrypt`.
//!
//! ```
//! use f2::{Scheme, F2};
//! use f2::fd::tane::discover_fds;
//! use f2::relation::table;
//!
//! // The data owner's private table: Zip → City holds.
//! let data = table! {
//!     ["Zip", "City", "Name"];
//!     ["07030", "Hoboken",  "alice"],
//!     ["07030", "Hoboken",  "bob"],
//!     ["10001", "NewYork",  "carol"],
//!     ["10001", "NewYork",  "dave"],
//! };
//!
//! // Encrypt with α = 1/2 and split factor 2, without knowing any FD.
//! let scheme = F2::builder().alpha(0.5).split_factor(2).seed(42).build().unwrap();
//! let outcome = scheme.encrypt(&data).unwrap();
//!
//! // The (untrusted) server discovers FDs directly on the encrypted table …
//! let server_fds = discover_fds(&outcome.encrypted);
//! assert!(!server_fds.is_empty());
//!
//! // … and the owner can still recover her table exactly.
//! let recovered = scheme.decrypt(&outcome).unwrap();
//! assert!(recovered.multiset_eq(&data));
//! ```
//!
//! Swapping the backend is one line — `DetScheme::new(key)` (fast, leaks frequencies)
//! or `PaillierScheme::new(512, seed)?` (hides frequencies, destroys FDs, slow) both
//! implement [`Scheme`] — which is how the benchmark registry and the attack harness
//! compare all of them with shared code. F²'s provenance, MAS sets and plaintext
//! schema remain reachable via [`SchemeOutcome::f2_state`], and the lower-level
//! [`F2Encryptor`] / [`F2Decryptor`] API is still exported for direct use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use f2_attack as attack;
pub use f2_core as core;
pub use f2_crypto as crypto;
pub use f2_datagen as datagen;
pub use f2_fd as fd;
pub use f2_relation as relation;

pub use f2_core::{
    DetScheme, EncryptionOutcome, EncryptionReport, F2Builder, F2Config, F2Decryptor, F2Encryptor,
    F2Error, F2OwnerState, F2Scheme, OwnerState, PaillierScheme, ProbScheme, Provenance, RowOrigin,
    Scheme, SchemeOutcome, F2,
};
pub use f2_relation::{AttrSet, Record, Schema, Table, Value};
