//! Fault-tolerant streaming end to end: encrypt through an engine that retries
//! transient I/O faults, crash the job mid-stream, resume it byte-exactly, then
//! salvage what survives of a bit-rotted copy.
//!
//! Every fault below is injected deterministically from a seeded `FaultPlan`,
//! exactly as the fault-injection test suite does — see `docs/ROBUSTNESS.md`
//! for the failure model.
//!
//! Run with `cargo run --release --example fault_tolerant_streaming`.

use f2::crypto::MasterKey;
use f2::datagen::Dataset;
use f2::{
    decrypt_streaming_lossy, DetScheme, Engine, EngineConfig, FaultKind, FaultPlan, FaultySource,
    FaultyWriter, RetryPolicy, TableSource,
};
use std::io::{Cursor, ErrorKind};

fn main() {
    let data = Dataset::Orders.generate(2_000, 42);
    let scheme = DetScheme::new(MasterKey::from_seed(2026));
    let config = EngineConfig { workers: 4, chunk_rows: 256, seed: 2026 };

    // ── 1. Retry: transient faults cost a retry, not the job ───────────────────────
    // Three transient source faults and a flaky writer; the retrying engine
    // produces the exact bytes a fault-free run would.
    let clean_engine = Engine::new(config).expect("valid config");
    let mut golden = Vec::new();
    clean_engine
        .run_streaming(&scheme, &mut TableSource::new(&data), &mut golden)
        .expect("fault-free run");

    let engine = Engine::new(config).expect("valid config").with_retry(RetryPolicy::new(4));
    let source_plan = FaultPlan::new()
        .with(0, FaultKind::Transient(ErrorKind::TimedOut))
        .with(3, FaultKind::Transient(ErrorKind::ConnectionReset))
        .with(6, FaultKind::Transient(ErrorKind::WouldBlock));
    let writer_plan = FaultPlan::new()
        .with(golden.len() as u64 / 3, FaultKind::Transient(ErrorKind::TimedOut))
        .with(golden.len() as u64 / 2, FaultKind::ShortWrite(7));
    let mut source = FaultySource::new(TableSource::new(&data), source_plan);
    let mut writer = FaultyWriter::new(Vec::new(), writer_plan);
    let outcome = engine.run_streaming(&scheme, &mut source, &mut writer).expect("retries absorb");
    let stream = writer.into_inner();
    assert_eq!(stream, golden);
    println!(
        "Retry: {} chunks / {} rows streamed through 5 injected faults — byte-identical \
         to the fault-free run ({} bytes)",
        outcome.chunks.len(),
        outcome.rows,
        stream.len()
    );

    // ── 2. Crash + resume: a torn stream is repaired in place ──────────────────────
    // A writer that silently drops everything past an offset models a buffered
    // write lost to a crash. Resume scans the surviving prefix, truncates the
    // torn frame, replays the covered rows, and continues.
    let cut = golden.len() * 2 / 3;
    let crash_plan = FaultPlan::new().with(cut as u64, FaultKind::Truncate);
    let mut crashing = FaultyWriter::new(Vec::new(), crash_plan);
    engine
        .run_streaming(&scheme, &mut TableSource::new(&data), &mut crashing)
        .expect("the producer never notices the crash");
    let torn = crashing.into_inner();
    println!(
        "\nCrash: stream torn at byte {cut} of {} ({} bytes survive on disk)",
        golden.len(),
        torn.len()
    );

    let mut store = Cursor::new(torn);
    let resumed = engine
        .resume_streaming(&scheme, &mut TableSource::new(&data), &mut store)
        .expect("resume repairs the store");
    assert_eq!(store.get_ref(), &golden);
    println!(
        "Resume: {} chunks / {} rows — repaired stream is byte-identical to the \
         uninterrupted one",
        resumed.chunks.len(),
        resumed.rows
    );

    // ── 3. Salvage: decrypt around damage a backup picked up ───────────────────────
    // Flip one bit in the middle of the stream: exactly one chunk frame dies.
    // The lossy decryptor recovers every other chunk and accounts for the loss.
    let mut rotted = golden.clone();
    let at = rotted.len() / 2;
    rotted[at] ^= 0x10;
    let mut recovered_rows = 0usize;
    let report = decrypt_streaming_lossy(&scheme, &rotted[..], |chunk| {
        recovered_rows += chunk.row_count();
        Ok(())
    })
    .expect("salvage never fails on frame damage");
    println!(
        "\nSalvage after a bit flip at byte {at}: {}/{} chunks recovered ({} of {} rows), \
         {} damaged bytes skipped in {} range(s), rows lost: {:?}",
        report.chunks_recovered,
        report.chunks_total.expect("trailer survived"),
        recovered_rows,
        data.row_count(),
        report.bytes_skipped,
        report.skipped_ranges.len(),
        report.rows_lost,
    );
    assert!(!report.is_lossless());
    assert_eq!(report.chunks_lost, 1);
}
