//! Data-quality assessment on encrypted data.
//!
//! The paper's motivating application (§1): FDs discovered by the service provider are
//! data-quality rules. Because F² preserves FDs *exactly* — and introduces no false
//! positives — the provider's answer to "does `ZIP → CITY` hold?" on the ciphertext is
//! the answer for the plaintext. A handful of corrupted cells therefore shows up as a
//! *missing* dependency, which the owner can then repair locally.
//!
//! Run with `cargo run --release --example data_cleaning`.

use f2::fd::fdep::Fd;
use f2::fd::tane::discover_fds;
use f2::relation::{AttrSet, Record, Table, Value};
use f2::{F2Scheme, Scheme, F2};
use f2_datagen::{CustomerConfig, CustomerGenerator};

/// Project the TPC-C Customer table onto the address-quality attributes.
fn address_view(rows: usize, seed: u64) -> Table {
    let full = CustomerGenerator::new(CustomerConfig { rows, seed, ..CustomerConfig::default() })
        .generate();
    let keep = ["C_ZIP", "C_CITY", "C_STATE", "C_LAST", "C_CREDIT"];
    let schema = full.schema().clone();
    let idx: Vec<usize> = keep.iter().map(|n| schema.index_of(n).unwrap()).collect();
    let records = full
        .rows()
        .iter()
        .map(|r| Record::new(idx.iter().map(|&i| r.get(i).unwrap().clone()).collect()))
        .collect();
    Table::new(f2::Schema::from_names(keep).unwrap(), records).unwrap()
}

fn server_side_rule_check(encrypted: &Table, rule: Fd) -> bool {
    // The provider works on opaque ciphertext; it can evaluate the rule (or run full
    // TANE — see the outsourced_fd_discovery example) without learning any value.
    rule.holds_in(encrypted)
}

fn main() {
    let clean = address_view(1_200, 21);
    let zip = clean.schema().index_of("C_ZIP").unwrap();
    let city = clean.schema().index_of("C_CITY").unwrap();
    let rule = Fd::new(AttrSet::single(zip), city);

    // Corrupt three City cells (typos introduced by a careless import job).
    let mut dirty = clean.clone();
    for &row in &[17usize, 418, 902] {
        dirty.set_cell(row, city, Value::text("Hobokne")).unwrap();
    }
    println!(
        "Owner holds two candidate loads of the Customer address table ({} rows each).",
        clean.row_count()
    );

    let scheme: F2Scheme =
        F2::builder().alpha(0.25).split_factor(2).seed(8).build().expect("valid parameters");

    for (label, table) in [("clean load", &clean), ("dirty load", &dirty)] {
        let outcome = scheme.encrypt(table).expect("encrypt");
        println!(
            "\n[{label}] encrypted: {} rows (+{:.1}% artificial), {} MASs",
            outcome.encrypted.row_count(),
            outcome.report.overhead.overhead_ratio() * 100.0,
            outcome.report.mas_count
        );
        // Server side: data-quality assessment on ciphertext.
        let holds = server_side_rule_check(&outcome.encrypted, rule);
        println!(
            "[{label}] server reports: ZIP → CITY {}",
            if holds { "HOLDS — data is consistent" } else { "VIOLATED — data needs cleaning" }
        );
        // Cross-check against the plaintext truth (the server cannot do this; we can).
        assert_eq!(holds, rule.holds_in(table), "F² must preserve the rule's status");
    }

    // Owner side: the dirty load was flagged, so she repairs it locally using the rule.
    let violations: Vec<usize> = {
        let partition = dirty.partition(AttrSet::single(zip));
        let mut out = Vec::new();
        for class in partition.classes() {
            let first = dirty.cell(class.rows[0], city).unwrap();
            for &r in &class.rows {
                if dirty.cell(r, city).unwrap() != first {
                    out.push(r);
                }
            }
        }
        out
    };
    println!(
        "\nOwner repairs the dirty load: {} rows violate ZIP → CITY locally \
         (the 3 planted typos are among them).",
        violations.len()
    );
    assert!(violations.iter().any(|&r| [17usize, 418, 902].contains(&r)));

    // Full TANE on the clean ciphertext still reports the address hierarchy.
    let outcome = scheme.encrypt(&clean).expect("encrypt");
    let plaintext_schema = &outcome.f2_state().expect("F2 outcome").plaintext_schema;
    let fds = discover_fds(&outcome.encrypted);
    println!("\nFDs discovered on the CLEAN encrypted load (address hierarchy):");
    for fd in fds.iter().filter(|fd| fd.lhs.len() == 1) {
        println!("  {}", fd.display(plaintext_schema));
    }
}
