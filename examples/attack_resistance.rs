//! Frequency-analysis attack demo: deterministic encryption leaks, F² does not.
//!
//! Reproduces the motivation of Figure 1: the same skewed table is encrypted with two
//! interchangeable [`Scheme`] backends — (a) the deterministic AES baseline and (b)
//! F² — and both are attacked through the *same* backend-agnostic experiment harness
//! with the frequency-matching adversary and the Kerckhoffs 4-step adversary of §4.2.
//!
//! The second half measures **cross-chunk leakage**: the table is encrypted through
//! the streaming engine (which runs F² independently per chunk) across the worker
//! grid, and the adversary plays both the chunk-local and the table-wide game over
//! each merged outcome (`f2::attack::CrossChunkExperiment`).
//!
//! Run with `cargo run --release --example attack_resistance`.

use f2::attack::{
    Adversary, AttackExperiment, CrossChunkExperiment, FrequencyAttacker, KerckhoffsAttacker,
};
use f2::crypto::MasterKey;
use f2::{DetScheme, Engine, EngineConfig, Scheme, F2};
use f2_datagen::{OrdersConfig, OrdersGenerator};
use std::ops::Range;

fn main() {
    let plain =
        OrdersGenerator::new(OrdersConfig { rows: 1_500, seed: 3, ..OrdersConfig::default() })
            .generate();
    let master = MasterKey::from_seed(55);
    let alpha = 0.2;

    // Attack target: the small-domain attribute pair the adversary cares about.
    let attrs =
        plain.schema().attr_set(["OrderStatus", "OrderPriority"]).expect("attributes exist");

    println!("Playing Exp^freq over {} …\n", plain.schema().display_set(attrs));

    // (a) Deterministic baseline, through the Scheme trait.
    let det = DetScheme::new(master.clone());
    let det_outcome = det.encrypt(&plain).expect("encrypt");
    let det_experiment =
        AttackExperiment::for_scheme(&plain, &det, &det_outcome, attrs).expect("ground truth");

    // (b) F² with α = 0.2, through the same trait.
    let f2 = F2::builder()
        .alpha(alpha)
        .split_factor(2)
        .master_key(master)
        .build()
        .expect("valid parameters");
    let outcome = f2.encrypt(&plain).expect("encrypt");
    let mas_sets = &outcome.f2_state().expect("F2 outcome").mas_sets;
    let mas = mas_sets.iter().copied().find(|m| attrs.is_subset_of(*m)).unwrap_or(mas_sets[0]);
    let f2_experiment =
        AttackExperiment::for_scheme(&plain, &f2, &outcome, mas).expect("ground truth");

    let adversaries: [&dyn Adversary; 2] = [&FrequencyAttacker, &KerckhoffsAttacker];
    println!("{:<22} {:>22} {:>14}", "adversary", "deterministic (AES)", "F² (α=0.2)");
    for adv in adversaries {
        let det_rate = det_experiment.run(adv, 2_000, 9).success_rate();
        let f2_rate = f2_experiment.run(adv, 2_000, 9).success_rate();
        println!("{:<22} {:>21.1}% {:>13.1}%", adv.name(), det_rate * 100.0, f2_rate * 100.0);
    }
    println!(
        "\nF² keeps every adversary at or below α = {alpha} (α-security, Definition 2.1),\n\
         while deterministic encryption surrenders the frequent values immediately."
    );

    // ── Cross-chunk leakage: α-security across the engine's chunk boundaries ───────
    // The engine runs F² per chunk, so frequencies are flattened chunk-locally. For
    // every worker count of the grid, play the adversary in both scopes: restricted
    // to one chunk (the defended scope) and over the whole merged table.
    println!("\nCross-chunk α-security over the streaming engine (chunk_rows = 256):");
    println!(
        "{:<10} {:>8} {:>16} {:>16} {:>12}",
        "workers", "chunks", "within-chunk", "cross-chunk", "leakage"
    );
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new(EngineConfig { workers, chunk_rows: 256, seed: 55 })
            .expect("valid engine config");
        let run = engine.encrypt(&f2, &plain).expect("chunked encryption");
        let (plain_ranges, output_ranges): (Vec<Range<usize>>, Vec<Range<usize>>) =
            run.chunks.iter().map(|c| (c.rows.clone(), c.output_rows.clone())).unzip();
        let mas_sets = &run.outcome.f2_state().expect("F2 outcome").mas_sets;
        let mas = mas_sets.iter().copied().find(|m| attrs.is_subset_of(*m)).unwrap_or(mas_sets[0]);
        let exp = CrossChunkExperiment::new(
            &plain,
            &f2,
            &run.outcome,
            &plain_ranges,
            &output_ranges,
            mas,
        )
        .expect("chunk ranges tile the tables");
        let outcome = exp.run(&FrequencyAttacker, 2_000, 9);
        println!(
            "{:<10} {:>8} {:>14.1}% {:>14.1}% {:>+11.1}%",
            workers,
            exp.chunk_count(),
            outcome.within_chunk.success_rate() * 100.0,
            outcome.cross_chunk.success_rate() * 100.0,
            outcome.boundary_leakage() * 100.0
        );
    }
    println!(
        "\nPer-chunk flattening composes for single-challenge frequency analysis — both\n\
         scopes stay at or below α at every worker count (the ciphertext is identical\n\
         across worker counts by construction). The residual cross-boundary risk is\n\
         instance linkage; see f2_attack::cross_chunk for the analysis."
    );

    // Telemetry recorded by all the encryptions above — per-phase planning
    // histograms, chunk latencies, and cipher counters — as Prometheus text.
    println!("\n── Prometheus metrics snapshot ──");
    print!("{}", f2::obs::global().prometheus_string());
}
