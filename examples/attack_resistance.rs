//! Frequency-analysis attack demo: deterministic encryption leaks, F² does not.
//!
//! Reproduces the motivation of Figure 1: the same skewed table is encrypted with (a)
//! the deterministic AES baseline and (b) F², and both are attacked with the
//! frequency-matching adversary and the Kerckhoffs 4-step adversary of §4.2.
//!
//! Run with `cargo run --release --example attack_resistance`.

use f2::attack::{Adversary, AttackExperiment, FrequencyAttacker, KerckhoffsAttacker};
use f2::crypto::{DeterministicCipher, MasterKey};
use f2::relation::{Record, Table};
use f2::{F2Config, F2Encryptor};
use f2_datagen::{OrdersConfig, OrdersGenerator};

fn deterministic_encrypt(plain: &Table, master: &MasterKey) -> Table {
    let ciphers: Vec<DeterministicCipher> = (0..plain.arity())
        .map(|a| DeterministicCipher::new(&master.deterministic_key(a)))
        .collect();
    let rows = plain
        .rows()
        .iter()
        .map(|r| {
            Record::new(
                r.values()
                    .iter()
                    .enumerate()
                    .map(|(a, v)| ciphers[a].encrypt_value(v))
                    .collect(),
            )
        })
        .collect();
    Table::new(plain.schema().encrypted(), rows).expect("same arity")
}

fn main() {
    let plain = OrdersGenerator::new(OrdersConfig { rows: 1_500, seed: 3, ..OrdersConfig::default() })
        .generate();
    let master = MasterKey::from_seed(55);
    let alpha = 0.2;

    // Attack target: the small-domain attribute pair the adversary cares about.
    let attrs = plain
        .schema()
        .attr_set(["OrderStatus", "OrderPriority"])
        .expect("attributes exist");

    println!("Playing Exp^freq over {} …\n", plain.schema().display_set(attrs));

    // (a) Deterministic baseline.
    let det = deterministic_encrypt(&plain, &master);
    let det_experiment = AttackExperiment::for_row_aligned(&plain, &det, attrs);

    // (b) F² with α = 0.2.
    let outcome = F2Encryptor::new(F2Config::new(alpha, 2).unwrap(), master.clone())
        .encrypt(&plain)
        .expect("encrypt");
    let mas = outcome
        .mas_sets
        .iter()
        .copied()
        .find(|m| attrs.is_subset_of(*m))
        .unwrap_or(outcome.mas_sets[0]);
    let f2_experiment = AttackExperiment::for_f2_outcome(&plain, &outcome, mas);

    let adversaries: [&dyn Adversary; 2] = [&FrequencyAttacker, &KerckhoffsAttacker];
    println!("{:<22} {:>22} {:>14}", "adversary", "deterministic (AES)", "F² (α=0.2)");
    for adv in adversaries {
        let det_rate = det_experiment.run(adv, 2_000, 9).success_rate();
        let f2_rate = f2_experiment.run(adv, 2_000, 9).success_rate();
        println!("{:<22} {:>21.1}% {:>13.1}%", adv.name(), det_rate * 100.0, f2_rate * 100.0);
    }
    println!(
        "\nF² keeps every adversary at or below α = {alpha} (α-security, Definition 2.1),\n\
         while deterministic encryption surrenders the frequent values immediately."
    );
}
