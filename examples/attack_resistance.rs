//! Frequency-analysis attack demo: deterministic encryption leaks, F² does not.
//!
//! Reproduces the motivation of Figure 1: the same skewed table is encrypted with two
//! interchangeable [`Scheme`] backends — (a) the deterministic AES baseline and (b)
//! F² — and both are attacked through the *same* backend-agnostic experiment harness
//! with the frequency-matching adversary and the Kerckhoffs 4-step adversary of §4.2.
//!
//! Run with `cargo run --release --example attack_resistance`.

use f2::attack::{Adversary, AttackExperiment, FrequencyAttacker, KerckhoffsAttacker};
use f2::crypto::MasterKey;
use f2::{DetScheme, Scheme, F2};
use f2_datagen::{OrdersConfig, OrdersGenerator};

fn main() {
    let plain =
        OrdersGenerator::new(OrdersConfig { rows: 1_500, seed: 3, ..OrdersConfig::default() })
            .generate();
    let master = MasterKey::from_seed(55);
    let alpha = 0.2;

    // Attack target: the small-domain attribute pair the adversary cares about.
    let attrs =
        plain.schema().attr_set(["OrderStatus", "OrderPriority"]).expect("attributes exist");

    println!("Playing Exp^freq over {} …\n", plain.schema().display_set(attrs));

    // (a) Deterministic baseline, through the Scheme trait.
    let det = DetScheme::new(master.clone());
    let det_outcome = det.encrypt(&plain).expect("encrypt");
    let det_experiment =
        AttackExperiment::for_scheme(&plain, &det, &det_outcome, attrs).expect("ground truth");

    // (b) F² with α = 0.2, through the same trait.
    let f2 = F2::builder()
        .alpha(alpha)
        .split_factor(2)
        .master_key(master)
        .build()
        .expect("valid parameters");
    let outcome = f2.encrypt(&plain).expect("encrypt");
    let mas_sets = &outcome.f2_state().expect("F2 outcome").mas_sets;
    let mas = mas_sets.iter().copied().find(|m| attrs.is_subset_of(*m)).unwrap_or(mas_sets[0]);
    let f2_experiment =
        AttackExperiment::for_scheme(&plain, &f2, &outcome, mas).expect("ground truth");

    let adversaries: [&dyn Adversary; 2] = [&FrequencyAttacker, &KerckhoffsAttacker];
    println!("{:<22} {:>22} {:>14}", "adversary", "deterministic (AES)", "F² (α=0.2)");
    for adv in adversaries {
        let det_rate = det_experiment.run(adv, 2_000, 9).success_rate();
        let f2_rate = f2_experiment.run(adv, 2_000, 9).success_rate();
        println!("{:<22} {:>21.1}% {:>13.1}%", adv.name(), det_rate * 100.0, f2_rate * 100.0);
    }
    println!(
        "\nF² keeps every adversary at or below α = {alpha} (α-security, Definition 2.1),\n\
         while deterministic encryption surrenders the frequent values immediately."
    );
}
