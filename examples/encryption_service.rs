//! The supervised encryption service end to end: multi-tenant jobs over real
//! TCP, a client crash healed by byte-exact resume, a graceful drain that
//! parks a half-finished job, and a service restart that finishes it — with
//! the whole story visible in the served Prometheus snapshot.
//!
//! Run with `cargo run --release --example encryption_service`.

use f2::crypto::MasterKey;
use f2::datagen::Dataset;
use f2::server::{
    Client, MemoryStores, SchemeProvider, ServerConfig, Service, StaticTenants, StoreProvider,
    TcpAcceptor,
};
use f2::{RowSource, TableSource, F2};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // ── Two tenants, each with its own scheme and keys ─────────────────────
    let acme = F2::builder()
        .alpha(0.5)
        .seed(7)
        .master_key(MasterKey::from_seed(1001))
        .build()
        .expect("valid F2 parameters");
    let initech = f2::DetScheme::new(MasterKey::from_seed(2002));
    let tenants = Arc::new(
        StaticTenants::new()
            .with_tenant("acme", Arc::new(acme))
            .with_tenant("initech", Arc::new(initech)),
    );
    let stores = Arc::new(MemoryStores::new());
    let config = ServerConfig {
        workers: 2,
        chunk_rows: 32,
        request_deadline: Duration::from_secs(5),
        idle_timeout: Duration::from_secs(2),
        drain_deadline: Duration::from_millis(300),
        seed: 0xF2_5EED,
        ..ServerConfig::default()
    };

    // ── Service A on a real socket ─────────────────────────────────────────
    let service = Service::new(
        config.clone(),
        Arc::clone(&tenants) as Arc<dyn SchemeProvider>,
        Arc::clone(&stores) as Arc<dyn StoreProvider>,
    );
    let handle = service.handle();
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr().expect("local addr");
    let server = std::thread::spawn(move || service.run(acceptor));
    println!("service A listening on {addr}");

    // ── 1. The happy path: one call encrypts a whole table ─────────────────
    let orders = Dataset::Orders.generate(256, 41);
    let mut client = Client::connect(TcpStream::connect(addr).expect("dial")).expect("connect");
    let ack = client.encrypt_table("acme", &orders).expect("encrypt");
    println!(
        "acme: {} rows -> {} encrypted rows in {} chunks ({} stream bytes)",
        ack.rows, ack.encrypted_rows, ack.chunks, ack.bytes_written
    );
    client.close().expect("clean close");

    // ── 2. A client crash, healed by resume ────────────────────────────────
    let lineitems = Dataset::Orders.generate(200, 43);
    let mut client = Client::connect(TcpStream::connect(addr).expect("dial")).expect("connect");
    let job = client.open("initech", lineitems.schema()).expect("open");
    let chunk_rows = job.chunk_rows as usize;
    let mut source = TableSource::new(&lineitems);
    let mut next = 0;
    for _ in 0..2 {
        let chunk = source.next_chunk(chunk_rows).expect("chunk").expect("rows");
        next = client.append(job.token, next, chunk.view().to_table()).expect("append").next_chunk;
    }
    drop(client); // crash: the socket dies mid-job
    println!("initech: client crashed after {next} chunks; reconnecting");

    let mut client = Client::connect(TcpStream::connect(addr).expect("dial")).expect("connect");
    let resumed = retry_resume(&mut client, "initech", job.token, &lineitems);
    println!(
        "initech: resumed at chunk {} ({} rows already durable)",
        resumed.next_chunk, resumed.rows_done
    );
    let mut source = TableSource::new(&lineitems);
    source
        .as_seekable()
        .expect("table sources seek")
        .seek_to_row(resumed.rows_done as usize)
        .expect("seek");
    let mut next = resumed.next_chunk;
    while let Some(chunk) = source.next_chunk(chunk_rows).expect("chunk") {
        next = client.append(job.token, next, chunk.view().to_table()).expect("append").next_chunk;
    }
    let fin = client.finish(job.token).expect("finish");
    println!("initech: finished with {} rows across {} chunks", fin.rows, fin.chunks);
    client.close().expect("clean close");

    // ── 3. Graceful drain with a half-finished job on the books ────────────
    let parked = Dataset::Orders.generate(96, 47);
    let mut client = Client::connect(TcpStream::connect(addr).expect("dial")).expect("connect");
    let half = client.open("acme", parked.schema()).expect("open");
    let first = TableSource::new(&parked)
        .next_chunk(chunk_rows)
        .expect("chunk")
        .expect("rows")
        .view()
        .to_table();
    client.append(half.token, 0, first).expect("append");
    handle.shutdown();
    server.join().expect("server thread").expect("graceful drain completed");
    drop(client);
    println!("service A drained; job {} parked resumable", half.token);

    // ── 4. A fresh service over the same stores finishes the parked job ────
    let service =
        Service::new(config, tenants as Arc<dyn SchemeProvider>, stores as Arc<dyn StoreProvider>);
    let handle = service.handle();
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr().expect("local addr");
    let server = std::thread::spawn(move || service.run(acceptor));
    println!("service B listening on {addr}");

    let mut client = Client::connect(TcpStream::connect(addr).expect("dial")).expect("connect");
    let resumed = retry_resume(&mut client, "acme", half.token, &parked);
    let mut source = TableSource::new(&parked);
    source
        .as_seekable()
        .expect("table sources seek")
        .seek_to_row(resumed.rows_done as usize)
        .expect("seek");
    let mut next = resumed.next_chunk;
    while let Some(chunk) = source.next_chunk(chunk_rows).expect("chunk") {
        next = client.append(half.token, next, chunk.view().to_table()).expect("append").next_chunk;
    }
    let fin = client.finish(half.token).expect("finish after restart");
    println!(
        "restart: job {} finished with {} rows — zero accepted work lost",
        half.token, fin.rows
    );

    // ── 5. The whole story, as the service itself reports it ───────────────
    let snapshot = client.metrics().expect("metrics");
    println!("\nserved Prometheus snapshot (f2_server_* series):");
    for line in snapshot.lines().filter(|l| l.starts_with("f2_server_")) {
        println!("  {line}");
    }
    client.close().expect("clean close");
    handle.shutdown();
    server.join().expect("server thread").expect("graceful drain completed");
}

/// Resume, absorbing the small window in which the server is still noticing
/// the previous connection's death (typed `JobBusy` until the job parks).
fn retry_resume(
    client: &mut Client<TcpStream>,
    tenant: &str,
    token: u64,
    data: &f2::Table,
) -> f2::server::ResumeAck {
    for _ in 0..100 {
        match client.resume(tenant, token, data.schema()) {
            Ok(ack) => return ack,
            Err(err) if err.is_retryable() => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(err) => panic!("resume failed: {err}"),
        }
    }
    panic!("job {token} never became resumable");
}
