//! The supervised encryption service end to end: multi-tenant jobs over real
//! TCP, a client crash healed by byte-exact resume, a graceful drain that
//! parks a half-finished job, and a service restart that finishes it — with
//! the whole story visible in the served Prometheus snapshot, on the HTTP
//! scrape endpoints (`/metrics`, `/healthz`, `/tracez`), and in per-request
//! trace ids that travel client → server → trace journal.
//!
//! Run with `cargo run --release --example encryption_service`.

use f2::crypto::MasterKey;
use f2::datagen::Dataset;
use f2::server::{
    Client, MemoryStores, SchemeProvider, ServerConfig, Service, StaticTenants, StoreProvider,
    TcpAcceptor,
};
use f2::{RowSource, TableSource, F2};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // ── Two tenants, each with its own scheme and keys ─────────────────────
    let acme = F2::builder()
        .alpha(0.5)
        .seed(7)
        .master_key(MasterKey::from_seed(1001))
        .build()
        .expect("valid F2 parameters");
    let initech = f2::DetScheme::new(MasterKey::from_seed(2002));
    let tenants = Arc::new(
        StaticTenants::new()
            .with_tenant("acme", Arc::new(acme))
            .with_tenant("initech", Arc::new(initech)),
    );
    let stores = Arc::new(MemoryStores::new());
    let config = ServerConfig {
        workers: 2,
        chunk_rows: 32,
        request_deadline: Duration::from_secs(5),
        idle_timeout: Duration::from_secs(2),
        drain_deadline: Duration::from_millis(300),
        seed: 0xF2_5EED,
        ..ServerConfig::default()
    };

    // ── Service A on a real socket, plus its HTTP scrape listener ──────────
    f2::obs::install_process_metrics();
    let service = Service::new(
        config.clone(),
        Arc::clone(&tenants) as Arc<dyn SchemeProvider>,
        Arc::clone(&stores) as Arc<dyn StoreProvider>,
    );
    let handle = service.handle();
    let http =
        f2::server::HttpServer::bind("127.0.0.1:0", service.http_state()).expect("bind http");
    let http_addr = http.local_addr().expect("http addr");
    let http_handle = http.handle();
    let http_thread = std::thread::spawn(move || http.run());
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr().expect("local addr");
    let server = std::thread::spawn(move || service.run(acceptor));
    println!("service A listening on {addr}, scrape endpoints on http://{http_addr}");

    // ── 1. The happy path: one call encrypts a whole table, traced ─────────
    let orders = Dataset::Orders.generate(256, 41);
    let mut client = Client::connect(TcpStream::connect(addr).expect("dial"))
        .expect("connect")
        .with_tracing(f2::obs::IdSource::seeded(0xA11CE));
    let ack = client.encrypt_table("acme", &orders).expect("encrypt");
    println!(
        "acme: {} rows -> {} encrypted rows in {} chunks ({} stream bytes)",
        ack.rows, ack.encrypted_rows, ack.chunks, ack.bytes_written
    );
    let echoed = client.last_server_trace().expect("server echoed our trace context");
    println!(
        "acme: last request traced as trace {:016x} / request {:016x}",
        echoed.trace_id, echoed.request_id
    );
    client.close().expect("clean close");

    // The journal saw the same ids; /tracez explains the requests stage by
    // stage, and /healthz reports a serving process.
    let tracez = http_get(http_addr, "/tracez");
    assert!(
        tracez.contains(&format!("{:016x}", echoed.trace_id)),
        "the traced request shows up in /tracez"
    );
    let healthz = http_get(http_addr, "/healthz");
    println!("healthz: {}", healthz.lines().last().unwrap_or_default());
    let metrics = http_get(http_addr, "/metrics");
    assert!(metrics.contains("f2_server_requests_total"), "server families are scraped");
    assert!(metrics.contains("f2_uptime_seconds"), "process metrics are scraped");

    // ── 2. A client crash, healed by resume ────────────────────────────────
    let lineitems = Dataset::Orders.generate(200, 43);
    let mut client = Client::connect(TcpStream::connect(addr).expect("dial")).expect("connect");
    let job = client.open("initech", lineitems.schema()).expect("open");
    let chunk_rows = job.chunk_rows as usize;
    let mut source = TableSource::new(&lineitems);
    let mut next = 0;
    for _ in 0..2 {
        let chunk = source.next_chunk(chunk_rows).expect("chunk").expect("rows");
        next = client.append(job.token, next, chunk.view().to_table()).expect("append").next_chunk;
    }
    drop(client); // crash: the socket dies mid-job
    println!("initech: client crashed after {next} chunks; reconnecting");

    let mut client = Client::connect(TcpStream::connect(addr).expect("dial")).expect("connect");
    let resumed = retry_resume(&mut client, "initech", job.token, &lineitems);
    println!(
        "initech: resumed at chunk {} ({} rows already durable)",
        resumed.next_chunk, resumed.rows_done
    );
    let mut source = TableSource::new(&lineitems);
    source
        .as_seekable()
        .expect("table sources seek")
        .seek_to_row(resumed.rows_done as usize)
        .expect("seek");
    let mut next = resumed.next_chunk;
    while let Some(chunk) = source.next_chunk(chunk_rows).expect("chunk") {
        next = client.append(job.token, next, chunk.view().to_table()).expect("append").next_chunk;
    }
    let fin = client.finish(job.token).expect("finish");
    println!("initech: finished with {} rows across {} chunks", fin.rows, fin.chunks);
    client.close().expect("clean close");

    // ── 3. Graceful drain with a half-finished job on the books ────────────
    let parked = Dataset::Orders.generate(96, 47);
    let mut client = Client::connect(TcpStream::connect(addr).expect("dial")).expect("connect");
    let half = client.open("acme", parked.schema()).expect("open");
    let first = TableSource::new(&parked)
        .next_chunk(chunk_rows)
        .expect("chunk")
        .expect("rows")
        .view()
        .to_table();
    client.append(half.token, 0, first).expect("append");
    handle.shutdown();
    server.join().expect("server thread").expect("graceful drain completed");
    drop(client);
    println!("service A drained; job {} parked resumable", half.token);

    // ── 4. A fresh service over the same stores finishes the parked job ────
    let service =
        Service::new(config, tenants as Arc<dyn SchemeProvider>, stores as Arc<dyn StoreProvider>);
    let handle = service.handle();
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr().expect("local addr");
    let server = std::thread::spawn(move || service.run(acceptor));
    println!("service B listening on {addr}");

    let mut client = Client::connect(TcpStream::connect(addr).expect("dial")).expect("connect");
    let resumed = retry_resume(&mut client, "acme", half.token, &parked);
    let mut source = TableSource::new(&parked);
    source
        .as_seekable()
        .expect("table sources seek")
        .seek_to_row(resumed.rows_done as usize)
        .expect("seek");
    let mut next = resumed.next_chunk;
    while let Some(chunk) = source.next_chunk(chunk_rows).expect("chunk") {
        next = client.append(half.token, next, chunk.view().to_table()).expect("append").next_chunk;
    }
    let fin = client.finish(half.token).expect("finish after restart");
    println!(
        "restart: job {} finished with {} rows — zero accepted work lost",
        half.token, fin.rows
    );

    // ── 5. The whole story, as the service itself reports it ───────────────
    let snapshot = client.metrics().expect("metrics");
    println!(
        "\ntyped snapshot: {} requests total, {} from tenant acme",
        snapshot.total("f2_server_requests_total"),
        snapshot.value_with("f2_server_requests_total", &[("tenant", "acme")]).unwrap_or(0.0),
    );
    let text = client.metrics_text().expect("metrics text");
    println!("served Prometheus snapshot (f2_server_* series):");
    for line in text.lines().filter(|l| l.starts_with("f2_server_")) {
        println!("  {line}");
    }
    client.close().expect("clean close");
    http_handle.stop();
    http_thread.join().expect("http thread").expect("http listener exits cleanly");
    handle.shutdown();
    server.join().expect("server thread").expect("graceful drain completed");
}

/// A minimal scrape: one GET, whole response (headers + body) as a string.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::Read;
    use std::io::Write;
    let mut stream = TcpStream::connect(addr).expect("dial http");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: f2\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

/// Resume, absorbing the small window in which the server is still noticing
/// the previous connection's death (typed `JobBusy` until the job parks).
fn retry_resume(
    client: &mut Client<TcpStream>,
    tenant: &str,
    token: u64,
    data: &f2::Table,
) -> f2::server::ResumeAck {
    for _ in 0..100 {
        match client.resume(tenant, token, data.schema()) {
            Ok(ack) => return ack,
            Err(err) if err.is_retryable() => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(err) => panic!("resume failed: {err}"),
        }
    }
    panic!("job {token} never became resumable");
}
