//! Streaming outsourcing: encrypt a large relation through the chunked,
//! multi-threaded engine, persist the encrypted table *and* the owner state to disk,
//! then play the data owner's second process — a fresh scheme instance that holds
//! nothing but its construction parameters loads both artifacts and recovers the
//! original table exactly.
//!
//! Run with `cargo run --release --example streaming_outsourcing`.

use f2::datagen::Dataset;
use f2::engine::{load_outcome, save_outcome};
use f2::{Engine, EngineConfig, Scheme, F2};

fn main() {
    // ── Process 1: the data owner prepares the outsourcing ─────────────────────────
    let data = Dataset::Orders.generate(4_000, 42);
    println!(
        "Plaintext: {} rows × {} attributes ({} bytes)",
        data.row_count(),
        data.arity(),
        data.size_bytes()
    );

    let scheme = F2::builder()
        .alpha(0.5)
        .split_factor(2)
        .seed(2026) // fixed seed + derived master key = the owner's "key file"
        .build()
        .expect("valid parameters");

    // Shard into 512-row chunks and encrypt on 4 workers. Chunk seeds derive from the
    // engine seed, so the ciphertext is identical whatever the worker count. (F²'s
    // α-security is then flattened per 512-row chunk, not table-wide — see the
    // EngineConfig::chunk_rows docs for the trade-off.)
    let engine = Engine::new(EngineConfig { workers: 4, chunk_rows: 512, seed: 2026 })
        .expect("valid engine config");
    let run = engine.encrypt(&scheme, &data).expect("streaming encryption");

    println!(
        "\nEncrypted in {} chunks → {} rows ({} artificial):",
        run.chunks.len(),
        run.outcome.encrypted.row_count(),
        run.outcome.report.overhead.added_rows(),
    );
    for record in run.chunks.iter().take(4) {
        println!(
            "  chunk {:>2}: rows {:>4}..{:<4} → output {:>4}..{:<4}  worker {}  {:?}",
            record.index,
            record.rows.start,
            record.rows.end,
            record.output_rows.start,
            record.output_rows.end,
            record.worker,
            record.wall,
        );
    }
    println!("  … ({} chunks total)", run.chunks.len());

    // Persist everything the owner needs later: one self-describing blob holding the
    // encrypted table, the owner state, and the encryption report. No key material is
    // inside — the blob can sit on untrusted storage next to the outsourced table.
    let blob = save_outcome(&scheme, &run.outcome).expect("serialize outcome");
    let path = std::env::temp_dir().join("f2_streaming_outsourcing.f2ws");
    std::fs::write(&path, &blob).expect("write blob");
    println!("\nPersisted outcome: {} bytes → {}", blob.len(), path.display());
    drop((scheme, run, blob)); // end of "process 1" — nothing in-memory survives

    // ── Process 2: a fresh owner process, later ────────────────────────────────────
    // Rebuild the scheme from the same parameters (in production: read the key file),
    // load the blob, and decrypt.
    let owner =
        F2::builder().alpha(0.5).split_factor(2).seed(2026).build().expect("valid parameters");
    let loaded = std::fs::read(&path).expect("read blob");
    let restored = load_outcome(&owner, &loaded).expect("deserialize outcome");
    let recovered = owner.decrypt(&restored).expect("decrypt with restored state");

    assert!(recovered.multiset_eq(&data));
    println!(
        "Recovered {} rows in a fresh process — exact multiset of the original. ✓",
        recovered.row_count()
    );
    std::fs::remove_file(&path).ok();
}
