//! The full outsourcing workflow on a realistic workload (the scenario that motivates
//! the paper's introduction): a data owner with a TPC-C-style Customer table wants the
//! service provider to find data-quality rules (FDs) without ever seeing her data.
//!
//! Run with `cargo run --release --example outsourced_fd_discovery`.

use f2::fd::tane::{Tane, TaneConfig};
use f2::relation::csv;
use f2::{Scheme, F2};
use f2_datagen::{CustomerConfig, CustomerGenerator};
use std::time::Instant;

fn main() {
    // The owner's private table.
    let customers = CustomerGenerator::new(CustomerConfig {
        rows: 2_000,
        seed: 7,
        ..CustomerConfig::default()
    })
    .generate();
    println!(
        "Customer table: {} rows × {} attributes ({}).",
        customers.row_count(),
        customers.arity(),
        f2::relation::stats::human_bytes(customers.size_bytes())
    );

    // ── Owner side: encrypt (no FD knowledge needed) ─────────────────────────────
    let scheme = F2::builder().alpha(0.2).split_factor(2).seed(1).build().expect("valid config");
    let t0 = Instant::now();
    let outcome = scheme.encrypt(&customers).expect("encrypt");
    println!(
        "Encrypted in {:.2?} (MAX {:.2?}, SSE {:.2?}, SYN {:.2?}, FP {:.2?}); \
         {} MASs, {:.1}% space overhead.",
        t0.elapsed(),
        outcome.report.timings.max,
        outcome.report.timings.sse,
        outcome.report.timings.syn,
        outcome.report.timings.fp,
        outcome.report.mas_count,
        outcome.report.overhead.overhead_ratio() * 100.0
    );

    // Ship the ciphertext as CSV — this is all the server ever receives.
    let shipped = csv::to_csv_string(&outcome.encrypted);
    println!("Shipped {} bytes of ciphertext CSV to the server.", shipped.len());

    // ── Server side: discover dependencies on the ciphertext ─────────────────────
    let received = csv::from_csv_string(outcome.encrypted.schema(), &shipped).expect("parse");
    let tane = Tane::with_config(TaneConfig { max_lhs_size: Some(2) });
    let t1 = Instant::now();
    let fds = tane.discover(&received);
    println!(
        "Server discovered {} FDs (LHS ≤ 2) on the encrypted table in {:.2?}.",
        fds.len(),
        t1.elapsed()
    );

    // ── Owner side: interpret the result ─────────────────────────────────────────
    // The server reports FDs over ciphertext columns; column names are unchanged, so
    // the owner can read them directly.
    let plaintext_schema = &outcome.f2_state().expect("F2 outcome").plaintext_schema;
    println!("\nDependencies useful for data cleaning / schema refinement:");
    for fd in fds.iter() {
        let lhs_names = plaintext_schema.display_set(fd.lhs);
        let rhs_name = &plaintext_schema.names()[fd.rhs];
        if fd.lhs.len() == 1 && !lhs_names.contains("C_ID") {
            println!("  {lhs_names} → {rhs_name}");
        }
    }
    println!("\n(The planted rules C_ZIP → C_CITY → C_STATE appear above.)");
}
