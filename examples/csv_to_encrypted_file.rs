//! End-to-end streaming outsourcing from a CSV file: parse → encrypt → checksummed
//! encrypted stream on disk → chunk-wise streaming decryption — with bounded peak
//! memory at every stage (no step ever holds more than one chunk of rows).
//!
//! CLI-style usage:
//! ```text
//! cargo run --release --example csv_to_encrypted_file [input.csv [output.f2ws]]
//! ```
//! With no arguments the example generates a demo CSV first, so it runs out of the
//! box. The owner's "key file" is the fixed seed below; a second process holding the
//! same parameters can decrypt the output (`f2::engine::stream::decrypt_streaming`).

use f2::engine::stream::decrypt_streaming;
use f2::io::{CsvOptions, CsvSource, RowSource};
use f2::{Engine, EngineConfig, F2};
use std::io::{BufReader, BufWriter};

fn main() {
    let mut args = std::env::args().skip(1);
    let (input, generated) = match args.next() {
        Some(path) => (std::path::PathBuf::from(path), false),
        None => {
            // No input given: render a demo dataset to a temp CSV.
            let table = f2::datagen::Dataset::Orders.generate(5_000, 42);
            let path = std::env::temp_dir().join("f2_demo_orders.csv");
            let mut out = std::fs::File::create(&path).expect("create demo CSV");
            f2::relation::csv::write_csv(&table, &mut out).expect("write demo CSV");
            (path, true)
        }
    };
    let output = args
        .next()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("f2_demo_orders.f2ws"));

    // ── Encrypt: CSV file → encrypted F2WS v2 stream ───────────────────────────────
    // The CSV parser infers column types from a bounded sample of leading rows; pass
    // `CsvOptions::csv().with_schema(...)` instead for explicit typing.
    let mut source = CsvSource::open(&input, CsvOptions::csv()).expect("open + infer schema");
    println!("Input: {} — inferred schema:", input.display());
    for attr in source.schema().attributes() {
        println!("  {:<16} {:?}", attr.name, attr.data_type);
    }

    let scheme = F2::builder()
        .alpha(0.25)
        .split_factor(2)
        .seed(2026) // fixed seed + derived master key = the owner's "key file"
        .build()
        .expect("valid parameters");
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 512, seed: 2026 })
        .expect("valid engine config");

    let sink = BufWriter::new(std::fs::File::create(&output).expect("create output"));
    let summary = engine.run_streaming(&scheme, &mut source, sink).expect("streaming encryption");
    println!(
        "\nEncrypted {} rows in {} chunks → {} rows, {} bytes on disk (per-frame CRC32):",
        summary.rows,
        summary.chunks.len(),
        summary.encrypted_rows,
        summary.bytes_written,
    );
    for record in summary.chunks.iter().take(3) {
        println!(
            "  chunk {:>2}: rows {:>4}..{:<4} → output {:>5}..{:<5} ({:?})",
            record.index,
            record.rows.start,
            record.rows.end,
            record.output_rows.start,
            record.output_rows.end,
            record.wall,
        );
    }
    println!("  … ({} chunks total)", summary.chunks.len());

    // ── Decrypt: stream the file back chunk by chunk ───────────────────────────────
    // A fresh owner process rebuilds the scheme from its parameters and decrypts
    // without ever materialising the whole dataset.
    let owner =
        F2::builder().alpha(0.25).split_factor(2).seed(2026).build().expect("valid parameters");
    let stream = BufReader::new(std::fs::File::open(&output).expect("open encrypted stream"));
    let mut chunks = 0usize;
    let rows = decrypt_streaming(&owner, stream, |plain_chunk| {
        chunks += 1;
        // A real consumer would pipe the chunk onward (to a DB, a report, …); the
        // demo just spot-checks shape.
        assert!(plain_chunk.row_count() > 0);
        Ok(())
    })
    .expect("streaming decryption");
    println!("\nDecrypted {rows} rows back in {chunks} chunks — checksums verified throughout. ✓");
    println!("Encrypted stream: {}", output.display());

    // ── Telemetry: what the pipeline recorded along the way ────────────────────────
    // Every stage above fed the process-wide registry (per-phase MAX/SSE/SYN/FP and
    // per-chunk latency histograms, frame and cipher counters). This is the same
    // Prometheus text a `/metrics` endpoint would serve via `write_prometheus`.
    println!("\n── Prometheus metrics snapshot ──");
    print!("{}", f2::obs::global().prometheus_string());

    if generated {
        std::fs::remove_file(&input).ok();
    }
}
