//! Quickstart: encrypt a small table with the F² backend of the [`Scheme`] API, let
//! the "server" discover FDs on the ciphertext, and recover the original table.
//!
//! Run with `cargo run --example quickstart`.

use f2::fd::tane::discover_fds;
use f2::relation::table;
use f2::{Scheme, F2};

fn main() {
    // ── Data owner ──────────────────────────────────────────────────────────────
    // A private table in which Zip → City holds (and Name is a key).
    let data = table! {
        ["Zip", "City", "Name"];
        ["07030", "Hoboken",   "alice"],
        ["07030", "Hoboken",   "bob"],
        ["07030", "Hoboken",   "carol"],
        ["10001", "NewYork",   "dave"],
        ["10001", "NewYork",   "erin"],
        ["08540", "Princeton", "frank"],
        ["08540", "Princeton", "grace"],
    };
    println!("Original table: {} rows, {} attributes", data.row_count(), data.arity());

    // Encrypt with α = 1/3 (the adversary's success probability is at most 1/3) and
    // split factor ϖ = 2. The owner does NOT need to know any FD beforehand.
    let scheme = F2::builder()
        .alpha(1.0 / 3.0)
        .split_factor(2)
        .seed(2024)
        .build()
        .expect("valid parameters");
    let outcome = scheme.encrypt(&data).expect("encryption succeeds");

    // F²-specific owner secrets (provenance, MAS sets) ride inside the outcome.
    let owner_state = outcome.f2_state().expect("F2 outcome");
    println!(
        "Encrypted table: {} rows ({} artificial), {} MAS(s) discovered",
        outcome.encrypted.row_count(),
        owner_state.provenance.artificial_count(),
        owner_state.mas_sets.len()
    );
    for mas in &owner_state.mas_sets {
        println!("  MAS: {}", data.schema().display_set(*mas));
    }

    // ── Service provider (untrusted) ───────────────────────────────────────────
    // The server only sees opaque ciphertext cells, yet TANE still finds the FDs.
    let server_fds = discover_fds(&outcome.encrypted);
    println!("\nFDs the server discovers on the ENCRYPTED table:");
    println!("{}", server_fds.display(outcome.encrypted.schema()));

    // They are exactly the FDs of the plaintext.
    let plain_fds = discover_fds(&data);
    assert_eq!(plain_fds, server_fds);
    println!("\n✓ identical to the FDs of the original table (Theorem 3.7)");

    // ── Data owner again ─────────────────────────────────────────────────────────
    let recovered = scheme.decrypt(&outcome).expect("decryption succeeds");
    assert!(recovered.multiset_eq(&data));
    println!("✓ decryption recovers the original table exactly");
}
