//! The trace journal: a bounded, non-blocking ring of completed request
//! traces.
//!
//! Every completed [`TraceGuard`](crate::TraceGuard) records one
//! [`TraceEntry`] — ids, tenant, outcome, total wall-clock, the per-stage
//! breakdown, and the request's counts. The journal keeps the most recent
//! `capacity` entries in a ring plus a small leaderboard of the slowest
//! requests seen, and renders both as one deterministic JSON document for a
//! `/tracez` endpoint.
//!
//! The write path never blocks a request: the ring head is an atomic
//! `fetch_add` and each slot is guarded by a `try_lock` — if a scraper (or a
//! colliding writer) holds the slot at that instant, the entry is counted
//! dropped rather than stalling the worker. Under `forbid(unsafe_code)` this
//! try-lock ring is the lock-free design point: no request ever waits on a
//! reader.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::export::json_string_lit;

/// Entries kept on the slowest-requests leaderboard.
const SLOWEST_CAP: usize = 8;

/// Ring capacity of the process-wide [`journal()`].
pub const DEFAULT_JOURNAL_CAPACITY: usize = 256;

/// One stage of a completed request: accumulated wall-clock and completions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// The span (or phase) name, e.g. `engine.chunk.encrypt`.
    pub name: &'static str,
    /// Total nanoseconds attributed to this stage.
    pub total_ns: u64,
    /// How many times the stage completed during the request.
    pub count: u64,
}

/// One completed request trace.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Conversation id (shared across the requests of one client session).
    pub trace_id: u64,
    /// Request id (unique per request).
    pub request_id: u64,
    /// Request kind (`open`, `append`, `finish`, `resume`, `metrics`, …).
    pub kind: &'static str,
    /// Tenant the request served, when one was resolved.
    pub tenant: Option<String>,
    /// `"ok"`, an error kind, or `"abandoned"` for an unwound guard.
    pub outcome: String,
    /// End-to-end wall-clock of the request, in nanoseconds.
    pub total_ns: u64,
    /// Per-stage breakdown, in first-touch order.
    pub stages: Vec<Stage>,
    /// Named counts (rows, bytes, frames …), in first-touch order.
    pub counts: Vec<(&'static str, u64)>,
}

impl TraceEntry {
    /// The named count, or 0 when the request never recorded it.
    #[must_use]
    pub fn count(&self, name: &str) -> u64 {
        self.counts.iter().find(|(k, _)| *k == name).map_or(0, |(_, v)| *v)
    }

    /// Render this entry as one JSON object (ids in fixed-width hex).
    #[must_use]
    pub fn json_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"trace_id\":\"{:016x}\",\"request_id\":\"{:016x}\",\"kind\":{},",
            self.trace_id,
            self.request_id,
            json_string_lit(self.kind)
        ));
        match &self.tenant {
            Some(tenant) => out.push_str(&format!("\"tenant\":{},", json_string_lit(tenant))),
            None => out.push_str("\"tenant\":null,"),
        }
        out.push_str(&format!(
            "\"outcome\":{},\"total_ns\":{},\"stages\":[",
            json_string_lit(&self.outcome),
            self.total_ns
        ));
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stage\":{},\"total_ns\":{},\"count\":{}}}",
                json_string_lit(stage.name),
                stage.total_ns,
                stage.count
            ));
        }
        out.push_str("],\"counts\":{");
        for (i, (name, value)) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{value}", json_string_lit(name)));
        }
        out.push_str("}}");
        out
    }
}

/// A bounded, non-blocking journal of recently completed request traces.
#[derive(Debug)]
pub struct TraceJournal {
    enabled: AtomicBool,
    slots: Box<[Mutex<Option<Arc<TraceEntry>>>]>,
    head: AtomicU64,
    dropped: AtomicU64,
    slowest: Mutex<Vec<Arc<TraceEntry>>>,
    /// Fast-reject floor: entries faster than this cannot make the (full)
    /// leaderboard, so the common case skips the `slowest` lock entirely.
    slowest_floor: AtomicU64,
}

impl TraceJournal {
    /// A journal keeping the `capacity` most recent traces (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> TraceJournal {
        let slots: Vec<Mutex<Option<Arc<TraceEntry>>>> =
            (0..capacity.max(1)).map(|_| Mutex::new(None)).collect();
        TraceJournal {
            enabled: AtomicBool::new(true),
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slowest: Mutex::new(Vec::new()),
            slowest_floor: AtomicU64::new(0),
        }
    }

    /// Turn journaling on or off. Disabling makes
    /// [`begin`](TraceJournal::begin) hand out inert guards — the zero-cost
    /// mode the neutrality and overhead suites compare against.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// True when the journal currently accepts traces.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries discarded because their slot was contended at write time.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record a completed trace. Never blocks: a contended ring slot counts
    /// the entry dropped instead of waiting. Returns the shared entry either
    /// way so callers can keep using it (slow-request logs, tenant metrics).
    pub fn record(&self, entry: TraceEntry) -> Arc<TraceEntry> {
        let entry = Arc::new(entry);
        if !self.is_enabled() {
            return entry;
        }
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot_index = (idx % self.slots.len() as u64) as usize;
        match self.slots.get(slot_index).map(Mutex::try_lock) {
            Some(Ok(mut slot)) => *slot = Some(Arc::clone(&entry)),
            _ => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        if entry.total_ns >= self.slowest_floor.load(Ordering::Relaxed) {
            if let Ok(mut slowest) = self.slowest.try_lock() {
                let at = slowest
                    .binary_search_by(|probe: &Arc<TraceEntry>| entry.total_ns.cmp(&probe.total_ns))
                    .unwrap_or_else(|e| e);
                slowest.insert(at, Arc::clone(&entry));
                slowest.truncate(SLOWEST_CAP);
                if slowest.len() == SLOWEST_CAP {
                    let floor = slowest.last().map_or(0, |e| e.total_ns);
                    self.slowest_floor.store(floor, Ordering::Relaxed);
                }
            }
        }
        entry
    }

    /// The retained traces, newest first.
    #[must_use]
    pub fn recent(&self) -> Vec<Arc<TraceEntry>> {
        let head = self.head.load(Ordering::Relaxed);
        let len = self.slots.len() as u64;
        let span = head.min(len);
        let mut out = Vec::new();
        for back in 1..=span {
            let slot_index = ((head - back) % len) as usize;
            if let Some(Ok(slot)) = self.slots.get(slot_index).map(Mutex::try_lock) {
                if let Some(entry) = slot.as_ref() {
                    out.push(Arc::clone(entry));
                }
            }
        }
        out
    }

    /// The slowest traces seen since the last [`clear`](TraceJournal::clear),
    /// slowest first (at most 8).
    #[must_use]
    pub fn slowest(&self) -> Vec<Arc<TraceEntry>> {
        self.slowest.try_lock().map(|s| s.clone()).unwrap_or_default()
    }

    /// Forget every retained trace (scoped tests, journal reuse).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            if let Ok(mut slot) = slot.try_lock() {
                *slot = None;
            }
        }
        if let Ok(mut slowest) = self.slowest.try_lock() {
            slowest.clear();
        }
        self.slowest_floor.store(0, Ordering::Relaxed);
        self.head.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Render the journal as one JSON document: `recent` (newest first),
    /// `slowest` (slowest first), the drop counter, and the ring capacity.
    /// Deterministic given deterministic entries — the `/tracez` body.
    #[must_use]
    pub fn json_string(&self) -> String {
        let mut out = String::from("{\"recent\":[");
        for (i, entry) in self.recent().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&entry.json_string());
        }
        out.push_str("],\"slowest\":[");
        for (i, entry) in self.slowest().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&entry.json_string());
        }
        out.push_str(&format!(
            "],\"dropped\":{},\"capacity\":{}}}",
            self.dropped(),
            self.capacity()
        ));
        out
    }
}

/// The process-wide trace journal the server's request loop records into and
/// a `/tracez` endpoint snapshots. Created enabled on first touch.
#[must_use]
pub fn journal() -> &'static Arc<TraceJournal> {
    static JOURNAL: OnceLock<Arc<TraceJournal>> = OnceLock::new();
    JOURNAL.get_or_init(|| Arc::new(TraceJournal::with_capacity(DEFAULT_JOURNAL_CAPACITY)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace_id: u64, total_ns: u64) -> TraceEntry {
        TraceEntry {
            trace_id,
            request_id: trace_id + 1,
            kind: "test",
            tenant: Some("acme".to_string()),
            outcome: "ok".to_string(),
            total_ns,
            stages: vec![Stage { name: "phase.a", total_ns: total_ns / 2, count: 1 }],
            counts: vec![("rows", 8)],
        }
    }

    #[test]
    fn ring_keeps_the_newest_entries_newest_first() {
        let journal = TraceJournal::with_capacity(3);
        for i in 0..5u64 {
            journal.record(entry(i, i * 100));
        }
        let recent = journal.recent();
        let ids: Vec<u64> = recent.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![4, 3, 2]);
    }

    #[test]
    fn slowest_leaderboard_orders_and_caps() {
        let journal = TraceJournal::with_capacity(64);
        for i in 0..20u64 {
            journal.record(entry(i, (i % 10) * 1000));
        }
        let slowest = journal.slowest();
        assert_eq!(slowest.len(), SLOWEST_CAP);
        let times: Vec<u64> = slowest.iter().map(|e| e.total_ns).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(times, sorted, "slowest must be ordered descending");
        assert_eq!(times[0], 9000);
    }

    #[test]
    fn disabled_journal_records_nothing_but_returns_the_entry() {
        let journal = TraceJournal::with_capacity(4);
        journal.set_enabled(false);
        let arc = journal.record(entry(7, 700));
        assert_eq!(arc.trace_id, 7);
        assert!(journal.recent().is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let journal = TraceJournal::with_capacity(4);
        journal.record(entry(1, 100));
        journal.clear();
        assert!(journal.recent().is_empty());
        assert!(journal.slowest().is_empty());
        assert_eq!(journal.dropped(), 0);
    }

    #[test]
    fn json_shape_is_frozen() {
        let journal = TraceJournal::with_capacity(2);
        journal.record(TraceEntry {
            trace_id: 0xAB,
            request_id: 0xCD,
            kind: "append",
            tenant: Some("acme\"co".to_string()),
            outcome: "ok".to_string(),
            total_ns: 1234,
            stages: vec![Stage { name: "engine.chunk.encrypt", total_ns: 1000, count: 2 }],
            counts: vec![("rows", 16)],
        });
        let json = journal.json_string();
        assert_eq!(
            json,
            "{\"recent\":[{\"trace_id\":\"00000000000000ab\",\"request_id\":\"00000000000000cd\",\
             \"kind\":\"append\",\"tenant\":\"acme\\\"co\",\"outcome\":\"ok\",\"total_ns\":1234,\
             \"stages\":[{\"stage\":\"engine.chunk.encrypt\",\"total_ns\":1000,\"count\":2}],\
             \"counts\":{\"rows\":16}}],\"slowest\":[{\"trace_id\":\"00000000000000ab\",\
             \"request_id\":\"00000000000000cd\",\"kind\":\"append\",\"tenant\":\"acme\\\"co\",\
             \"outcome\":\"ok\",\"total_ns\":1234,\"stages\":[{\"stage\":\"engine.chunk.encrypt\",\
             \"total_ns\":1000,\"count\":2}],\"counts\":{\"rows\":16}}],\"dropped\":0,\
             \"capacity\":2}"
        );
    }

    #[test]
    fn entry_without_tenant_renders_null() {
        let mut e = entry(1, 10);
        e.tenant = None;
        assert!(e.json_string().contains("\"tenant\":null"));
    }
}
