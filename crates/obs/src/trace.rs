//! Env-gated event sink for streaming runs.
//!
//! `F2_TRACE=1` (or `human`) echoes span completions and pipeline events to
//! stderr as human-readable lines; `F2_TRACE=json` (or `jsonl`) emits one JSON
//! object per line for log scrapers. Unset (or `0`/empty) keeps the sink off.
//! The variable is read once per process, so the hot-path check is a single
//! `OnceLock` load — and writes use `write!` with the error discarded rather
//! than `eprintln!`, so a closed stderr never panics a streaming run.

use std::io::Write as _;
use std::sync::OnceLock;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Off,
    Human,
    Jsonl,
}

fn mode() -> Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("F2_TRACE").as_deref() {
        Err(_) | Ok("") | Ok("0") => Mode::Off,
        Ok("json") | Ok("jsonl") => Mode::Jsonl,
        Ok(_) => Mode::Human,
    })
}

/// True when `F2_TRACE` enables the event sink for this process.
#[must_use]
pub fn trace_enabled() -> bool {
    mode() != Mode::Off
}

/// Emit a span completion (called by [`Span`](crate::Span) on drop).
pub(crate) fn emit_span(name: &str, ns: u64) {
    match mode() {
        Mode::Off => {}
        Mode::Human => {
            let stderr = std::io::stderr();
            let _ = writeln!(stderr.lock(), "[f2-trace] span={name} {}", human_duration(ns));
        }
        Mode::Jsonl => {
            let stderr = std::io::stderr();
            let _ = writeln!(stderr.lock(), "{{\"span\":\"{name}\",\"ns\":{ns}}}");
        }
    }
}

/// Emit a named event with numeric fields (e.g. per-chunk progress from the
/// streaming engine). A no-op unless `F2_TRACE` is set.
pub fn trace_event(name: &str, fields: &[(&str, u64)]) {
    match mode() {
        Mode::Off => {}
        Mode::Human => {
            let stderr = std::io::stderr();
            let mut line = format!("[f2-trace] event={name}");
            for (k, v) in fields {
                line.push_str(&format!(" {k}={v}"));
            }
            let _ = writeln!(stderr.lock(), "{line}");
        }
        Mode::Jsonl => {
            let stderr = std::io::stderr();
            let mut line = format!("{{\"event\":\"{name}\"");
            for (k, v) in fields {
                line.push_str(&format!(",\"{k}\":{v}"));
            }
            line.push('}');
            let _ = writeln!(stderr.lock(), "{line}");
        }
    }
}

/// Format nanoseconds with an adaptive unit for human-readable trace lines.
fn human_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_duration_units() {
        assert_eq!(human_duration(999), "999ns");
        assert_eq!(human_duration(1_500), "1.500us");
        assert_eq!(human_duration(2_500_000), "2.500ms");
        assert_eq!(human_duration(3_250_000_000), "3.250s");
    }
}
