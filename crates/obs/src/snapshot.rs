//! A typed view over a Prometheus text exposition.
//!
//! [`MetricsSnapshot::parse`] turns the text a `/metrics` endpoint (or the
//! service's `METRICS` reply) serves into name/label/value samples, so clients
//! assert on `snapshot.value("f2_server_requests_total")` instead of grepping
//! strings. The parser is total: malformed lines are skipped, never panicked
//! on, and the raw text stays available to callers that want it.
//!
//! Only plain samples are kept — `# HELP`/`# TYPE` comments are dropped, and
//! histogram series surface under their exported sample names
//! (`…_bucket`/`…_sum`/`…_count`), exactly as Prometheus itself sees them.

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSample {
    /// The sample name (family name, or `…_bucket`/`…_sum`/`…_count`).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed Prometheus text exposition.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    samples: Vec<MetricsSample>,
}

impl MetricsSnapshot {
    /// Parse an exposition. Lines that are comments, blank, or malformed are
    /// skipped; parsing never fails or panics.
    #[must_use]
    pub fn parse(text: &str) -> MetricsSnapshot {
        let samples = text.lines().filter_map(parse_line).collect();
        MetricsSnapshot { samples }
    }

    /// Every parsed sample, in exposition order.
    #[must_use]
    pub fn samples(&self) -> &[MetricsSample] {
        &self.samples
    }

    /// The value of the unlabeled sample named `name`, if present.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples.iter().find(|s| s.name == name && s.labels.is_empty()).map(|s| s.value)
    }

    /// The value of the sample named `name` whose labels contain every pair in
    /// `labels` (extra labels on the sample are allowed).
    #[must_use]
    pub fn value_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| s.value)
    }

    /// The sum of every sample named `name` across all label sets (0.0 when
    /// the family is absent).
    #[must_use]
    pub fn total(&self, name: &str) -> f64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// True when at least one sample named `name` is present.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.samples.iter().any(|s| s.name == name)
    }
}

/// Parse one `name{k="v",…} value` line; `None` for comments/garbage.
fn parse_line(line: &str) -> Option<MetricsSample> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let name_end = line.find(|c: char| c == '{' || c.is_whitespace())?;
    let name = line.get(..name_end)?.to_string();
    if name.is_empty() {
        return None;
    }
    let rest = line.get(name_end..)?;
    let (labels, value_text) = if let Some(body) = rest.strip_prefix('{') {
        let close = find_label_close(body)?;
        let label_text = body.get(..close)?;
        (parse_labels(label_text)?, body.get(close + 1..)?)
    } else {
        (Vec::new(), rest)
    };
    let value: f64 = value_text.trim().parse().ok()?;
    Some(MetricsSample { name, labels, value })
}

/// Index of the `}` closing a label block, honoring quoted values.
fn find_label_close(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (idx, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(idx),
            _ => {}
        }
    }
    None
}

/// Parse `k="v",k2="v2"` with Prometheus label-value unescaping.
fn parse_labels(text: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest.get(..eq)?.trim().to_string();
        let after = rest.get(eq + 1..)?.trim_start().strip_prefix('"')?;
        let (value, tail) = take_quoted(after)?;
        labels.push((key, value));
        rest = tail.trim_start();
        match rest.strip_prefix(',') {
            Some(more) => rest = more.trim_start(),
            None if rest.is_empty() => break,
            None => return None,
        }
    }
    Some(labels)
}

/// Consume an already-opened quoted value, unescaping `\\`, `\"`, and `\n`;
/// returns the value and the text after the closing quote.
fn take_quoted(text: &str) -> Option<(String, &str)> {
    let mut value = String::new();
    let mut chars = text.char_indices();
    while let Some((idx, c)) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some((_, 'n')) => value.push('\n'),
                Some((_, escaped)) => value.push(escaped),
                None => return None,
            },
            '"' => return Some((value, text.get(idx + 1..)?)),
            c => value.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEXT: &str = "\
# HELP f2_server_requests_total Requests dispatched by the service.
# TYPE f2_server_requests_total counter
f2_server_requests_total 12
f2_server_requests_total{tenant=\"acme\"} 7
f2_server_requests_total{tenant=\"a b\\\"c\"} 5
f2_server_request_seconds_bucket{le=\"+Inf\"} 12
f2_server_request_seconds_sum 0.25
not a metric line
";

    #[test]
    fn parses_values_and_labels() {
        let snap = MetricsSnapshot::parse(TEXT);
        assert_eq!(snap.value("f2_server_requests_total"), Some(12.0));
        assert_eq!(snap.value_with("f2_server_requests_total", &[("tenant", "acme")]), Some(7.0));
        assert_eq!(snap.value_with("f2_server_requests_total", &[("tenant", "a b\"c")]), Some(5.0));
        assert_eq!(snap.total("f2_server_requests_total"), 24.0);
        assert_eq!(snap.value("f2_server_request_seconds_sum"), Some(0.25));
        assert!(snap.contains("f2_server_request_seconds_bucket"));
        assert!(!snap.contains("not"));
    }

    #[test]
    fn roundtrips_a_real_exposition() {
        let reg = crate::Registry::new();
        reg.counter("f2_a_total", "a", &[("k", "v\"w\nx")]).add(3);
        reg.gauge("f2_g", "g", &[]).set(-4);
        let snap = MetricsSnapshot::parse(&reg.prometheus_string());
        assert_eq!(snap.value_with("f2_a_total", &[("k", "v\"w\nx")]), Some(3.0));
        assert_eq!(snap.value("f2_g"), Some(-4.0));
    }

    #[test]
    fn hostile_lines_are_skipped_not_panicked_on() {
        for text in [
            "{=} 1",
            "name{unclosed=\"v",
            "name{k=\"v\" 3",
            "name{k=v} 3",
            "name notanumber",
            "name{} ",
            "\u{0}\u{1}garbage",
        ] {
            let _ = MetricsSnapshot::parse(text);
        }
        let snap = MetricsSnapshot::parse("name{} 4");
        assert_eq!(snap.value("name"), Some(4.0));
    }
}
