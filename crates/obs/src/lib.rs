//! Zero-dependency telemetry for the F² pipeline.
//!
//! The workspace's only runtime visibility used to be the offline
//! `BENCH_report.json` snapshot; this crate is the live counterpart. It provides
//! three layers, all std-only (no serde, no tracing stack), in the same spirit as
//! `f2-lint`'s hand-rolled tooling:
//!
//! 1. **Metrics registry** ([`Registry`]) — atomic [`Counter`]s, [`Gauge`]s, and
//!    log-bucketed [`Histogram`]s with static label sets. A process-wide default
//!    lives behind [`global()`]; tests build scoped registries with
//!    [`Registry::new`] so they never race each other. Every registry carries an
//!    enabled flag shared with all of its handles: when disabled, recording is a
//!    single relaxed load and branch, so the no-op mode is measurably ~0 cost.
//! 2. **Phase spans** ([`Span`], [`span!`]) — RAII timers that record elapsed
//!    wall-clock into a histogram on drop. Hierarchy is encoded in dotted span
//!    names (`engine.chunk.encrypt`), which become the `span` label of the
//!    `f2_span_seconds` family on the global registry.
//! 3. **Exporters** — deterministic-ordered Prometheus text exposition and JSON
//!    snapshots targeting any [`std::io::Write`] (the encoders `f2_server`'s
//!    HTTP `/metrics` endpoint mounts directly), plus an env-gated (`F2_TRACE`)
//!    human/JSONL event sink on stderr for streaming runs.
//! 4. **Request traces** ([`ctx`], [`TraceJournal`]) — a per-thread trace
//!    context ([`TraceCtx`]) that existing `span!` sites attribute to with zero
//!    signature churn, feeding a bounded lock-free journal of completed request
//!    traces (per-stage durations, tenant, outcome, byte/row counts) that
//!    `f2_server`'s `/tracez` endpoint renders.
//!
//! [`MetricsSnapshot`] is the read side: a total parser over Prometheus text
//! expositions so clients assert on typed samples instead of grepping strings.
//!
//! # Artifact neutrality
//!
//! Instrumentation must never change what the pipeline produces. Nothing in this
//! crate feeds back into planning, encryption, or the wire format: timings and
//! counts are observed, not consumed. The engine's `obs_neutrality` suite pins
//! byte-identical streams with instrumentation enabled and disabled, and
//! `bench_guard` bounds instrumented overhead on the tracked 10k-row workload.
//!
//! # Metric naming
//!
//! Names follow Prometheus conventions: `f2_<crate>_<what>_<unit>` for
//! histograms/gauges and `f2_<crate>_<what>_total` for counters. Label sets are
//! static — a handle is registered once per (name, label-set) and cached by the
//! instrumented call site in a `OnceLock`. See `docs/OBSERVABILITY.md` for the
//! full catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
mod export;
mod journal;
mod metrics;
mod registry;
mod snapshot;
mod span;
mod trace;

pub use ctx::{IdSource, TraceCtx, TraceGuard};
pub use journal::{journal, Stage, TraceEntry, TraceJournal, DEFAULT_JOURNAL_CAPACITY};
pub use metrics::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Counter, Gauge, Histogram, Unit,
    BUCKET_COUNT,
};
pub use registry::{global, install_process_metrics, Registry};
pub use snapshot::{MetricsSample, MetricsSnapshot};
pub use span::Span;
pub use trace::{trace_enabled, trace_event};

/// Time a lexical scope into the global registry's `f2_span_seconds` histogram.
///
/// `span!("engine.chunk.encrypt")` returns an RAII guard; when it drops, the
/// elapsed wall-clock is recorded under the label `span="engine.chunk.encrypt"`
/// and, when `F2_TRACE` is set, echoed to the trace sink. The histogram handle is
/// registered once per call site and cached in a `OnceLock`, so steady-state cost
/// is one static load plus the recording itself — and when the global registry is
/// disabled (and tracing is off) the guard skips the clock reads entirely.
///
/// The span name must be a `'static` dotted path; hierarchy lives in the name
/// (`<crate>.<unit>.<stage>`), not in runtime parent/child links.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __F2_SPAN_HIST: ::std::sync::OnceLock<$crate::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::Span::enter(
            $name,
            __F2_SPAN_HIST.get_or_init(|| {
                $crate::global().histogram(
                    "f2_span_seconds",
                    "Wall-clock duration of instrumented spans.",
                    &[("span", $name)],
                    $crate::Unit::Seconds,
                )
            }),
        )
    }};
}
