//! Metric registration and the process-wide default registry.
//!
//! A [`Registry`] owns a map of metric families keyed by name; each family holds
//! samples keyed by their (sorted) label set. Registration is idempotent —
//! asking for the same (name, labels) twice returns a handle onto the same
//! storage — so instrumentation sites can register lazily through `OnceLock`
//! caches without coordination. The lock is only ever taken at registration and
//! export; the record path touches atomics exclusively.
//!
//! Registration never panics. A request that conflicts with an existing family
//! (same name, different kind or unit) returns a *detached* handle: it records
//! into private storage that no exporter will ever visit, which keeps misuse
//! observable in tests (the family keeps its first shape) without poisoning the
//! hot path with `Result`s.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crate::metrics::{Counter, Gauge, Histogram, HistogramData, Unit};

/// Uptime/build-info handles installed by
/// [`install_process_metrics`](Registry::install_process_metrics).
#[derive(Debug)]
struct ProcessMetrics {
    start: Instant,
    uptime: Gauge,
    build_info: Gauge,
}

/// The shape of a metric family, fixed by its first registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Counter,
    Gauge,
    Histogram(Unit),
}

/// One sample's shared storage inside a family.
#[derive(Debug)]
pub(crate) enum Sample {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramData>),
}

/// A named metric family: help text, kind, and samples by label set.
#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: Kind,
    pub(crate) samples: BTreeMap<Vec<(String, String)>, Sample>,
}

/// A set of metrics with a shared enabled flag and deterministic export order.
///
/// Cloning a `Registry` clones the handle, not the metrics: all clones share the
/// same families and the same enabled flag.
#[derive(Debug, Clone)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    families: Arc<Mutex<BTreeMap<String, Family>>>,
    process: Arc<Mutex<Option<ProcessMetrics>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, enabled registry. Use for scoped (per-test) metric sets.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            families: Arc::new(Mutex::new(BTreeMap::new())),
            process: Arc::new(Mutex::new(None)),
        }
    }

    /// Install the process-level info metrics: the `f2_uptime_seconds` gauge
    /// (refreshed at every export) and the `f2_build_info{version,profile}`
    /// info-metric (value always 1).
    ///
    /// Installation is explicit — never automatic on [`global()`] — so
    /// registries that pin byte-frozen exports (exposition goldens, the
    /// neutrality suite) stay deterministic unless they opt in. Idempotent:
    /// the first installation fixes the uptime epoch and build labels.
    pub fn install_process_metrics(&self, version: &str, profile: &str) {
        let mut slot = self.process.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_some() {
            return;
        }
        let uptime =
            self.gauge("f2_uptime_seconds", "Seconds since process metrics were installed.", &[]);
        let build_info = self.gauge(
            "f2_build_info",
            "Build metadata carried as labels; the value is always 1.",
            &[("version", version), ("profile", profile)],
        );
        *slot = Some(ProcessMetrics { start: Instant::now(), uptime, build_info });
        drop(slot);
        self.refresh_process_metrics();
    }

    /// Bring `f2_uptime_seconds` (and the build-info constant) up to date.
    /// Exporters call this so every scrape sees current uptime; a no-op when
    /// process metrics were never installed or the registry is disabled.
    pub(crate) fn refresh_process_metrics(&self) {
        let slot = self.process.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(process) = slot.as_ref() {
            let secs = process.start.elapsed().as_secs();
            process.uptime.set(i64::try_from(secs).unwrap_or(i64::MAX));
            process.build_info.set(1);
        }
    }

    /// Turn recording on or off for every handle minted from this registry.
    ///
    /// Disabling is the guaranteed-cheap no-op mode: handles see one relaxed
    /// load and skip all stores; spans additionally skip their clock reads.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// True when handles from this registry currently record.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Register (or look up) a counter under `name` with the given label set.
    #[must_use]
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let cell = self.sample(name, help, labels, Kind::Counter, |sample| match sample {
            Sample::Counter(cell) => Some(Arc::clone(cell)),
            _ => None,
        });
        Counter::new(Arc::clone(&self.enabled), cell.unwrap_or_default())
    }

    /// Register (or look up) a gauge under `name` with the given label set.
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let cell = self.sample(name, help, labels, Kind::Gauge, |sample| match sample {
            Sample::Gauge(cell) => Some(Arc::clone(cell)),
            _ => None,
        });
        Gauge::new(Arc::clone(&self.enabled), cell.unwrap_or_default())
    }

    /// Register (or look up) a histogram under `name` with the given label set.
    #[must_use]
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        unit: Unit,
    ) -> Histogram {
        let data = self.sample(name, help, labels, Kind::Histogram(unit), |sample| match sample {
            Sample::Histogram(data) => Some(Arc::clone(data)),
            _ => None,
        });
        let data = data.unwrap_or_else(|| Arc::new(HistogramData::new(unit)));
        Histogram::new(Arc::clone(&self.enabled), data)
    }

    /// Shared registration walk: find or insert the family, then the sample.
    /// Returns `None` on a kind conflict, in which case the caller mints a
    /// detached cell.
    fn sample<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        extract: impl Fn(&Sample) -> Option<T>,
    ) -> Option<T> {
        let key = normalize_labels(labels);
        let mut families = self.lock();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            samples: BTreeMap::new(),
        });
        if family.kind != kind {
            return None;
        }
        let sample = family.samples.entry(key).or_insert_with(|| match kind {
            Kind::Counter => Sample::Counter(Arc::new(AtomicU64::new(0))),
            Kind::Gauge => Sample::Gauge(Arc::new(AtomicI64::new(0))),
            Kind::Histogram(unit) => Sample::Histogram(Arc::new(HistogramData::new(unit))),
        });
        extract(sample)
    }

    /// Lock the family map, recovering from poisoning (a panicking exporter
    /// must not take the whole registry down with it).
    pub(crate) fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Family>> {
        match self.families.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Sort labels by key so registration and export agree on sample identity.
fn normalize_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

/// The process-wide default registry that `span!` and all pipeline
/// instrumentation record into. Created enabled on first touch.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Install uptime + build-info metrics on the [global](global()) registry,
/// stamped with this crate's version and the compile profile. Long-running
/// binaries (the encryption service, the HTTP scrape listener) call this once
/// at startup; short-lived tests that pin exports simply never do.
pub fn install_process_metrics() {
    let profile = if cfg!(debug_assertions) { "debug" } else { "release" };
    global().install_process_metrics(env!("CARGO_PKG_VERSION"), profile);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("f2_test_total", "help", &[("k", "v")]);
        let b = reg.counter("f2_test_total", "help", &[("k", "v")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn label_order_does_not_split_samples() {
        let reg = Registry::new();
        let a = reg.counter("f2_test_total", "help", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("f2_test_total", "help", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn kind_conflict_returns_detached_handle() {
        let reg = Registry::new();
        let counter = reg.counter("f2_test_total", "help", &[]);
        let gauge = reg.gauge("f2_test_total", "help", &[]);
        counter.inc();
        gauge.set(9);
        // The detached gauge records privately; the family keeps its shape.
        assert_eq!(counter.get(), 1);
        assert_eq!(gauge.get(), 9);
        assert!(!reg.prometheus_string().contains(" 9"));
    }

    #[test]
    fn process_metrics_appear_in_both_exporters() {
        let reg = Registry::new();
        reg.install_process_metrics("9.9.9", "test");
        // Idempotent: a second install keeps the first epoch and labels.
        reg.install_process_metrics("0.0.0", "other");
        let text = reg.prometheus_string();
        assert!(text.contains("# TYPE f2_build_info gauge"), "{text}");
        assert!(text.contains("f2_build_info{profile=\"test\",version=\"9.9.9\"} 1"), "{text}");
        assert!(text.contains("# TYPE f2_uptime_seconds gauge"), "{text}");
        assert!(text.contains("f2_uptime_seconds 0"), "{text}");
        assert!(!text.contains("0.0.0"), "{text}");
        let json = reg.json_string();
        assert!(json.contains("\"name\":\"f2_build_info\""), "{json}");
        assert!(json.contains("\"name\":\"f2_uptime_seconds\""), "{json}");
    }

    #[test]
    fn uninstalled_process_metrics_leave_exports_untouched() {
        let reg = Registry::new();
        reg.counter("f2_only_total", "h", &[]).inc();
        let text = reg.prometheus_string();
        assert!(!text.contains("f2_uptime_seconds"), "{text}");
        assert!(!text.contains("f2_build_info"), "{text}");
    }

    #[test]
    fn scoped_registries_are_independent() {
        let a = Registry::new();
        let b = Registry::new();
        a.set_enabled(false);
        let ca = a.counter("f2_test_total", "help", &[]);
        let cb = b.counter("f2_test_total", "help", &[]);
        ca.inc();
        cb.inc();
        assert_eq!(ca.get(), 0);
        assert_eq!(cb.get(), 1);
    }
}
