//! Metric primitives: counters, gauges, and log-bucketed histograms.
//!
//! Every handle is a pair of `Arc`s — the shared storage cell and the owning
//! registry's enabled flag — so handles are `Clone + Send + Sync`, cheap to cache
//! in `OnceLock` statics at instrumentation sites, and all go quiet together when
//! the registry is disabled. Recording uses relaxed atomics throughout: metrics
//! are monotone tallies read at export time, not synchronization primitives.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of histogram buckets: one for zero plus one per bit length 1..=64.
pub const BUCKET_COUNT: usize = 65;

/// The bucket a value lands in: 0 for zero, otherwise the value's bit length.
///
/// Buckets are powers of two — bucket `k ≥ 1` covers `[2^(k-1), 2^k - 1]` — so
/// bucketing is a `leading_zeros` instruction, needs no configuration per metric,
/// and spans the full `u64` range (nanoseconds to half a millennium, bytes to
/// exbibytes) with 65 slots.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket: `2^index - 1` (and `u64::MAX` for the last).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Inclusive lower bound of a bucket: `2^(index-1)` (and 0 for bucket 0).
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index.min(64) - 1)
    }
}

/// What a histogram's raw `u64` values denote, fixing how exporters scale them.
///
/// `Seconds` histograms record **nanoseconds** internally (the natural output of
/// [`std::time::Instant`]) and are divided by 1e9 at export so Prometheus sees
/// base-unit seconds. `Bytes` and `Count` export their raw values unscaled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Durations, recorded as nanoseconds, exported as seconds.
    Seconds,
    /// Sizes in bytes, exported unscaled.
    Bytes,
    /// Dimensionless tallies, exported unscaled.
    Count,
}

/// A monotonically increasing tally.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicU64>,
}

impl Counter {
    pub(crate) fn new(enabled: Arc<AtomicBool>, value: Arc<AtomicU64>) -> Self {
        Counter { enabled, value }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. A single relaxed load and branch when the registry is disabled.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depths, in-flight chunks).
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicI64>,
}

impl Gauge {
    pub(crate) fn new(enabled: Arc<AtomicBool>, value: Arc<AtomicI64>) -> Self {
        Gauge { enabled, value }
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `delta` (negative to decrement).
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Shared storage of one histogram sample: power-of-two buckets, count, and sum.
#[derive(Debug)]
pub(crate) struct HistogramData {
    pub(crate) unit: Unit,
    pub(crate) buckets: Box<[AtomicU64]>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

impl HistogramData {
    pub(crate) fn new(unit: Unit) -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        HistogramData {
            unit,
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed distribution of latencies or sizes.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    data: Arc<HistogramData>,
}

impl Histogram {
    pub(crate) fn new(enabled: Arc<AtomicBool>, data: Arc<HistogramData>) -> Self {
        Histogram { enabled, data }
    }

    /// Record one observation in the histogram's native unit (nanoseconds for
    /// [`Unit::Seconds`], raw values otherwise).
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = bucket_index(value);
        if let Some(bucket) = self.data.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.data.count.fetch_add(1, Ordering::Relaxed);
        self.data.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration into a [`Unit::Seconds`] histogram (as nanoseconds).
    pub fn record_duration(&self, d: Duration) {
        let ns = d.as_nanos();
        self.record(if ns > u128::from(u64::MAX) { u64::MAX } else { ns as u64 });
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.data.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values, in the native unit.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.data.sum.load(Ordering::Relaxed)
    }

    /// Observations in bucket `index` (not cumulative), 0 if out of range.
    #[must_use]
    pub fn bucket(&self, index: usize) -> u64 {
        self.data.buckets.get(index).map_or(0, |b| b.load(Ordering::Relaxed))
    }

    /// The histogram's declared unit.
    #[must_use]
    pub fn unit(&self) -> Unit {
        self.data.unit
    }

    /// True when the owning registry currently records observations.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for idx in 0..BUCKET_COUNT {
            let lo = bucket_lower_bound(idx);
            let hi = bucket_upper_bound(idx);
            assert!(lo <= hi, "bucket {idx}: {lo} > {hi}");
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
        }
    }

    #[test]
    fn disabled_handles_record_nothing() {
        let enabled = Arc::new(AtomicBool::new(false));
        let c = Counter::new(Arc::clone(&enabled), Arc::new(AtomicU64::new(0)));
        let h = Histogram::new(Arc::clone(&enabled), Arc::new(HistogramData::new(Unit::Count)));
        c.add(7);
        h.record(7);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        enabled.store(true, Ordering::Relaxed);
        c.add(7);
        h.record(7);
        assert_eq!(c.get(), 7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.bucket(bucket_index(7)), 1);
    }

    #[test]
    fn saturating_duration_record() {
        let enabled = Arc::new(AtomicBool::new(true));
        let h = Histogram::new(enabled, Arc::new(HistogramData::new(Unit::Seconds)));
        h.record_duration(Duration::from_nanos(1_500));
        assert_eq!(h.sum(), 1_500);
        assert_eq!(h.bucket(bucket_index(1_500)), 1);
    }
}
