//! RAII span timers.
//!
//! A [`Span`] reads the clock on entry and records the elapsed nanoseconds into
//! its histogram on drop. When the owning registry is disabled, tracing is off,
//! *and* no request trace is active on this thread, `enter` skips the clock read
//! entirely and drop is a no-op — the span costs a few relaxed loads, preserving
//! the registry's ~0-overhead guarantee. With a request trace active (see
//! [`crate::ctx`]), drop also attributes the elapsed time to the current
//! request's per-stage breakdown.

use std::time::Instant;

use crate::metrics::Histogram;
use crate::trace;

/// An in-flight timed region; records into its histogram when dropped.
///
/// Usually constructed through the [`span!`](crate::span!) macro, which owns the
/// histogram registration; `enter` is public for callers that manage their own
/// histogram handles (e.g. scoped registries in tests).
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    hist: Option<Histogram>,
}

impl Span {
    /// Start timing `name` into `hist`. Reads the clock only when the histogram
    /// records or tracing is on.
    #[must_use]
    pub fn enter(name: &'static str, hist: &Histogram) -> Span {
        let recording = hist.is_enabled();
        if recording || trace::trace_enabled() || crate::ctx::active() {
            Span { name, start: Some(Instant::now()), hist: recording.then(|| hist.clone()) }
        } else {
            Span { name, start: None, hist: None }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos();
        let ns = if ns > u128::from(u64::MAX) { u64::MAX } else { ns as u64 };
        if let Some(hist) = &self.hist {
            hist.record(ns);
        }
        crate::ctx::record_stage(self.name, ns);
        trace::emit_span(self.name, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Unit;
    use crate::registry::Registry;

    #[test]
    fn span_records_into_histogram() {
        let reg = Registry::new();
        let hist = reg.histogram("f2_span_seconds", "spans", &[("span", "t")], Unit::Seconds);
        {
            let _s = Span::enter("t", &hist);
        }
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn disabled_span_skips_clock_and_recording() {
        let reg = Registry::new();
        reg.set_enabled(false);
        let hist = reg.histogram("f2_span_seconds", "spans", &[("span", "t")], Unit::Seconds);
        {
            let s = Span::enter("t", &hist);
            assert!(s.start.is_none() || trace::trace_enabled());
        }
        assert_eq!(hist.count(), 0);
    }
}
