//! Deterministic exporters: Prometheus text exposition and JSON snapshots.
//!
//! Both walk the registry's `BTreeMap`s, so output order is fully determined by
//! metric names and label sets — two exports of the same state are byte-equal,
//! which is what lets CI pin exposition goldens. Histograms print only their
//! populated bucket range (plus the mandatory `+Inf`) to keep 65-bucket
//! power-of-two histograms readable; cumulative counts stay correct because
//! every omitted leading bucket is empty.
//!
//! `Unit::Seconds` histograms store nanoseconds and are scaled to base-unit
//! seconds here, at the edge, so the hot path never touches floats.

use std::fmt::Write as _;
use std::io;
use std::sync::atomic::Ordering;

use crate::metrics::{bucket_upper_bound, Unit, BUCKET_COUNT};
use crate::registry::{Kind, Registry, Sample};

impl Registry {
    /// Render the registry in Prometheus text exposition format.
    #[must_use]
    pub fn prometheus_string(&self) -> String {
        self.refresh_process_metrics();
        let mut out = String::new();
        for (name, family) in self.lock().iter() {
            let kind_str = match family.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {kind_str}");
            for (labels, sample) in &family.samples {
                match sample {
                    Sample::Counter(cell) => {
                        let rendered = render_labels(labels, None);
                        let _ = writeln!(out, "{name}{rendered} {}", cell.load(Ordering::Relaxed));
                    }
                    Sample::Gauge(cell) => {
                        let rendered = render_labels(labels, None);
                        let _ = writeln!(out, "{name}{rendered} {}", cell.load(Ordering::Relaxed));
                    }
                    Sample::Histogram(data) => {
                        let counts: Vec<u64> =
                            data.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                        let count = data.count.load(Ordering::Relaxed);
                        let sum = data.sum.load(Ordering::Relaxed);
                        // Print only the populated range [bottom, top] (+Inf
                        // closes it): all skipped leading buckets are empty, so
                        // the cumulative counts stay exact.
                        let bottom = counts.iter().position(|&c| c != 0);
                        let top = counts.iter().rposition(|&c| c != 0);
                        let mut cumulative = 0u64;
                        if let (Some(bottom), Some(top)) = (bottom, top) {
                            let last = top.min(BUCKET_COUNT - 2);
                            for (idx, &bucket) in
                                counts.iter().enumerate().take(last + 1).skip(bottom)
                            {
                                cumulative = cumulative.saturating_add(bucket);
                                let le = scale(bucket_upper_bound(idx), data.unit);
                                let rendered = render_labels(labels, Some(&le));
                                let _ = writeln!(out, "{name}_bucket{rendered} {cumulative}");
                            }
                        }
                        let rendered = render_labels(labels, Some("+Inf"));
                        let _ = writeln!(out, "{name}_bucket{rendered} {count}");
                        let rendered = render_labels(labels, None);
                        let _ = writeln!(out, "{name}_sum{rendered} {}", scale(sum, data.unit));
                        let _ = writeln!(out, "{name}_count{rendered} {count}");
                    }
                }
            }
        }
        out
    }

    /// Write the Prometheus text exposition to `w` (the `/metrics` encoder).
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_prometheus<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.prometheus_string().as_bytes())
    }

    /// Render the registry as a JSON snapshot (sorted, hand-rolled, no serde).
    #[must_use]
    pub fn json_string(&self) -> String {
        self.refresh_process_metrics();
        let mut out = String::from("{\"metrics\":[");
        let mut first_family = true;
        for (name, family) in self.lock().iter() {
            if !first_family {
                out.push(',');
            }
            first_family = false;
            let kind_str = match family.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram(_) => "histogram",
            };
            let _ = write!(
                out,
                "{{\"name\":{},\"kind\":\"{kind_str}\",\"help\":{},\"samples\":[",
                json_string_lit(name),
                json_string_lit(&family.help)
            );
            let mut first_sample = true;
            for (labels, sample) in &family.samples {
                if !first_sample {
                    out.push(',');
                }
                first_sample = false;
                out.push_str("{\"labels\":{");
                let mut first_label = true;
                for (k, v) in labels {
                    if !first_label {
                        out.push(',');
                    }
                    first_label = false;
                    let _ = write!(out, "{}:{}", json_string_lit(k), json_string_lit(v));
                }
                out.push('}');
                match sample {
                    Sample::Counter(cell) => {
                        let _ = write!(out, ",\"value\":{}", cell.load(Ordering::Relaxed));
                    }
                    Sample::Gauge(cell) => {
                        let _ = write!(out, ",\"value\":{}", cell.load(Ordering::Relaxed));
                    }
                    Sample::Histogram(data) => {
                        let count = data.count.load(Ordering::Relaxed);
                        let sum = data.sum.load(Ordering::Relaxed);
                        let _ = write!(
                            out,
                            ",\"count\":{count},\"sum\":{},\"buckets\":[",
                            scale(sum, data.unit)
                        );
                        let mut cumulative = 0u64;
                        let mut first_bucket = true;
                        for (idx, bucket) in data.buckets.iter().enumerate() {
                            let n = bucket.load(Ordering::Relaxed);
                            if n == 0 {
                                continue;
                            }
                            cumulative = cumulative.saturating_add(n);
                            if !first_bucket {
                                out.push(',');
                            }
                            first_bucket = false;
                            let _ = write!(
                                out,
                                "{{\"le\":{},\"count\":{cumulative}}}",
                                scale(bucket_upper_bound(idx), data.unit)
                            );
                        }
                        out.push(']');
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Write the JSON snapshot to `w`.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_json<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.json_string().as_bytes())
    }
}

/// Scale a raw metric value into its exposition unit.
fn scale(value: u64, unit: Unit) -> String {
    match unit {
        // Nanoseconds → base-unit seconds. f64 Display is shortest-roundtrip
        // decimal (never scientific notation), so output is deterministic.
        Unit::Seconds => format!("{}", value as f64 / 1e9),
        Unit::Bytes | Unit::Count => format!("{value}"),
    }
}

/// Render a label set as `{k="v",…}`, appending `le` last when given;
/// empty label sets without `le` render as nothing.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escape a HELP line: backslashes and newlines.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslashes, double quotes, and newlines.
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// A JSON string literal with standard escaping (quotes, backslashes, control
/// characters); non-ASCII passes through as UTF-8. Shared with the trace
/// journal's `/tracez` rendering.
pub(crate) fn json_string_lit(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_exposition() {
        let reg = Registry::new();
        reg.counter("f2_z_total", "last", &[]).add(2);
        reg.counter("f2_a_total", "first", &[("phase", "max")]).add(5);
        reg.gauge("f2_depth", "a gauge", &[]).set(-3);
        let text = reg.prometheus_string();
        // Families in name order, regardless of registration order.
        let a = text.find("f2_a_total").unwrap_or(usize::MAX);
        let z = text.find("f2_z_total").unwrap_or(0);
        assert!(a < z, "families not sorted:\n{text}");
        assert!(text.contains("# TYPE f2_a_total counter"));
        assert!(text.contains("f2_a_total{phase=\"max\"} 5"));
        assert!(text.contains("# TYPE f2_depth gauge"));
        assert!(text.contains("f2_depth -3"));
    }

    #[test]
    fn histogram_exposition_has_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("f2_lat_seconds", "latency", &[], Unit::Seconds);
        h.record(1); // bucket 1, le 1ns
        h.record(3); // bucket 2, le 3ns
        h.record(3);
        let text = reg.prometheus_string();
        assert!(text.contains("f2_lat_seconds_bucket{le=\"0.000000001\"} 1"), "{text}");
        assert!(text.contains("f2_lat_seconds_bucket{le=\"0.000000003\"} 3"), "{text}");
        assert!(text.contains("f2_lat_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("f2_lat_seconds_sum 0.000000007"), "{text}");
        assert!(text.contains("f2_lat_seconds_count 3"), "{text}");
    }

    #[test]
    fn empty_histogram_prints_only_inf() {
        let reg = Registry::new();
        let _ = reg.histogram("f2_lat_seconds", "latency", &[], Unit::Seconds);
        let text = reg.prometheus_string();
        assert!(text.contains("f2_lat_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(!text.contains("le=\"0\""), "{text}");
    }

    #[test]
    fn label_escaping() {
        let reg = Registry::new();
        reg.counter("f2_esc_total", "h", &[("path", "a\\b\"c\nd")]).inc();
        let text = reg.prometheus_string();
        assert!(text.contains(r#"path="a\\b\"c\nd""#), "{text}");
    }

    #[test]
    fn json_snapshot_is_valid_shape() {
        let reg = Registry::new();
        reg.counter("f2_a_total", "count \"things\"", &[("k", "v")]).add(4);
        let h = reg.histogram("f2_b_bytes", "sizes", &[], Unit::Bytes);
        h.record(100);
        let json = reg.json_string();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains("\"help\":\"count \\\"things\\\"\""), "{json}");
        assert!(json.contains("\"value\":4"), "{json}");
        assert!(
            json.contains("\"count\":1,\"sum\":100,\"buckets\":[{\"le\":127,\"count\":1}]"),
            "{json}"
        );
    }
}
