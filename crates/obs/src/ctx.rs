//! Request-scoped trace contexts.
//!
//! A [`TraceCtx`] is two 64-bit ids: a *trace id* shared by every request in
//! one logical conversation (a client connection, a whole `encrypt_table`
//! call) and a *request id* unique to one request. Ids come from an
//! [`IdSource`] — a splitmix64 sequence that is fully deterministic when
//! seeded, so tests and replay tooling can predict every id a service will
//! mint.
//!
//! The context is carried by a **thread-local current-context guard**
//! ([`TraceGuard`]): the server installs it at the top of a request, and from
//! then on every [`Span`](crate::Span) that drops on that thread attributes
//! its elapsed time to the active request, and instrumented code can tag the
//! request with counts ([`add_count`]) and a tenant ([`note_tenant`]) — all
//! with **zero signature churn**: the engine and io layers never see a trace
//! argument. When the guard completes, the accumulated per-stage breakdown
//! becomes a [`TraceEntry`](crate::TraceEntry) in the owning
//! [`TraceJournal`](crate::TraceJournal).
//!
//! When no guard is installed (every non-server code path), the hooks cost a
//! thread-local load and an `Option` check — they never allocate, lock, or
//! read the clock. Artifact neutrality is structural: nothing here feeds back
//! into planning or encryption.

use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::journal::{Stage, TraceEntry, TraceJournal};

/// A request-scoped pair of ids: the conversation (`trace_id`) and the single
/// request within it (`request_id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Shared by every request in one logical conversation.
    pub trace_id: u64,
    /// Unique to one request within the conversation.
    pub request_id: u64,
}

impl TraceCtx {
    /// A context from explicit ids.
    #[must_use]
    pub fn new(trace_id: u64, request_id: u64) -> TraceCtx {
        TraceCtx { trace_id, request_id }
    }
}

/// splitmix64: the standard 64-bit finalizer-based generator. One step per id
/// keeps ids well-distributed even from small sequential seeds.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A shared, lock-free id generator. Clones share the same sequence (an
/// atomic counter pushed through splitmix64), so concurrent callers never
/// mint the same id twice. Deterministic when [`seeded`](IdSource::seeded).
#[derive(Debug, Clone)]
pub struct IdSource {
    state: Arc<AtomicU64>,
}

impl IdSource {
    /// A deterministic source: the id sequence is a pure function of `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> IdSource {
        IdSource { state: Arc::new(AtomicU64::new(seed)) }
    }

    /// A source seeded from ambient entropy (hasher randomness + the clock).
    #[must_use]
    pub fn from_entropy() -> IdSource {
        let mut hasher = RandomState::new().build_hasher();
        hasher.write_u128(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0),
        );
        IdSource::seeded(hasher.finish())
    }

    /// The next id in the sequence. Never zero (zero is reserved as "absent"
    /// in diagnostics), at the cost of one id per 2^64 being skipped.
    #[must_use]
    pub fn next_id(&self) -> u64 {
        let raw = self.state.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(raw);
        if id == 0 {
            splitmix64(raw.wrapping_add(u64::MAX / 2))
        } else {
            id
        }
    }

    /// A fresh context: new trace id, new request id.
    #[must_use]
    pub fn next_ctx(&self) -> TraceCtx {
        TraceCtx { trace_id: self.next_id(), request_id: self.next_id() }
    }
}

/// The per-thread in-flight trace: ids plus the accumulating breakdown.
struct ActiveTrace {
    ctx: TraceCtx,
    kind: &'static str,
    started: Instant,
    /// `(stage name, total ns, completions)` — accumulated, not per-event, so
    /// a request touching the same span many times stays O(#stage-names).
    stages: Vec<(&'static str, u64, u64)>,
    counts: Vec<(&'static str, u64)>,
    tenant: Option<String>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// True when the calling thread has an active trace context.
///
/// This is the hot-path check [`Span`](crate::Span) uses to decide whether it
/// must read the clock even when the metrics registry is disabled.
#[must_use]
pub fn active() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

/// The calling thread's active trace context, if any.
#[must_use]
pub fn current() -> Option<TraceCtx> {
    ACTIVE.with(|slot| slot.borrow().as_ref().map(|t| t.ctx))
}

/// Attribute `ns` of stage `name` to the active trace (no-op without one).
/// [`Span`](crate::Span) calls this on drop; code that measures durations
/// without spans (e.g. the F² phase timings) can call it directly.
pub fn record_stage(name: &'static str, ns: u64) {
    ACTIVE.with(|slot| {
        if let Some(trace) = slot.borrow_mut().as_mut() {
            if let Some(entry) = trace.stages.iter_mut().find(|(n, _, _)| *n == name) {
                entry.1 = entry.1.saturating_add(ns);
                entry.2 = entry.2.saturating_add(1);
            } else {
                trace.stages.push((name, ns, 1));
            }
        }
    });
}

/// Add `n` to the named count (rows, bytes, frames …) of the active trace.
/// A no-op without an active trace.
pub fn add_count(name: &'static str, n: u64) {
    ACTIVE.with(|slot| {
        if let Some(trace) = slot.borrow_mut().as_mut() {
            if let Some(entry) = trace.counts.iter_mut().find(|(k, _)| *k == name) {
                entry.1 = entry.1.saturating_add(n);
            } else {
                trace.counts.push((name, n));
            }
        }
    });
}

/// Tag the active trace with the tenant it serves (first caller wins).
/// A no-op without an active trace.
pub fn note_tenant(tenant: &str) {
    ACTIVE.with(|slot| {
        if let Some(trace) = slot.borrow_mut().as_mut() {
            if trace.tenant.is_none() {
                trace.tenant = Some(tenant.to_string());
            }
        }
    });
}

/// Begin a trace on the [global journal](crate::journal()). See
/// [`TraceJournal::begin`].
pub fn begin(ctx: TraceCtx, kind: &'static str) -> TraceGuard {
    crate::journal::journal().begin(ctx, kind)
}

impl TraceJournal {
    /// Install `ctx` as the calling thread's active trace until the returned
    /// guard completes (or drops). While active, every finished span and
    /// every [`add_count`] on this thread accrues to the trace; completion
    /// records a [`TraceEntry`] into this journal.
    ///
    /// When the journal is disabled the guard is inert: nothing is installed
    /// and completion records nothing.
    pub fn begin(self: &Arc<Self>, ctx: TraceCtx, kind: &'static str) -> TraceGuard {
        if !self.is_enabled() {
            return TraceGuard { journal: Arc::clone(self), armed: false };
        }
        let trace = ActiveTrace {
            ctx,
            kind,
            started: Instant::now(),
            stages: Vec::new(),
            counts: Vec::new(),
            tenant: None,
        };
        let armed = ACTIVE.with(|slot| {
            // Nested begins on one thread would be a bug in the caller; keep
            // the outer trace rather than silently losing it.
            let mut slot = slot.borrow_mut();
            if slot.is_none() {
                *slot = Some(trace);
                true
            } else {
                false
            }
        });
        TraceGuard { journal: Arc::clone(self), armed }
    }
}

/// RAII holder of the thread's active trace; see [`TraceJournal::begin`].
#[must_use = "the trace is journaled when the guard completes"]
pub struct TraceGuard {
    journal: Arc<TraceJournal>,
    armed: bool,
}

impl TraceGuard {
    /// Finish the trace with `outcome` ("ok", an error kind, …): uninstall the
    /// thread-local context, journal the completed entry, and return it so the
    /// caller can drive per-tenant metrics or a slow-request log off the same
    /// record. Returns `None` when the guard is inert (journal disabled).
    pub fn complete(mut self, outcome: &str) -> Option<Arc<TraceEntry>> {
        self.finish(outcome)
    }

    fn finish(&mut self, outcome: &str) -> Option<Arc<TraceEntry>> {
        if !self.armed {
            return None;
        }
        self.armed = false;
        let trace = ACTIVE.with(|slot| slot.borrow_mut().take())?;
        let total = trace.started.elapsed().as_nanos();
        let total_ns = if total > u128::from(u64::MAX) { u64::MAX } else { total as u64 };
        let entry = TraceEntry {
            trace_id: trace.ctx.trace_id,
            request_id: trace.ctx.request_id,
            kind: trace.kind,
            tenant: trace.tenant,
            outcome: outcome.to_string(),
            total_ns,
            stages: trace
                .stages
                .into_iter()
                .map(|(name, total_ns, count)| Stage { name, total_ns, count })
                .collect(),
            counts: trace.counts,
        };
        Some(self.journal.record(entry))
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        // A guard dropped without `complete` (an unwind above the request
        // loop) still journals, marked abandoned, and always uninstalls the
        // thread-local so the worker thread starts its next request clean.
        let _ = self.finish("abandoned");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_sources_are_deterministic_and_nonzero() {
        let a = IdSource::seeded(7);
        let b = IdSource::seeded(7);
        let ids: Vec<u64> = (0..64).map(|_| a.next_id()).collect();
        let again: Vec<u64> = (0..64).map(|_| b.next_id()).collect();
        assert_eq!(ids, again);
        assert!(ids.iter().all(|&id| id != 0));
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "ids must not repeat");
    }

    #[test]
    fn clones_share_one_sequence() {
        let a = IdSource::seeded(3);
        let b = a.clone();
        assert_ne!(a.next_id(), b.next_id());
    }

    #[test]
    fn hooks_are_inert_without_an_active_trace() {
        assert!(!active());
        assert_eq!(current(), None);
        record_stage("stage", 5);
        add_count("rows", 5);
        note_tenant("acme");
        assert!(!active());
    }

    #[test]
    fn guard_installs_accumulates_and_journals() {
        let journal = Arc::new(TraceJournal::with_capacity(4));
        let guard = journal.begin(TraceCtx::new(0xAA, 0xBB), "test");
        assert!(active());
        assert_eq!(current(), Some(TraceCtx::new(0xAA, 0xBB)));
        record_stage("phase.a", 10);
        record_stage("phase.a", 5);
        record_stage("phase.b", 1);
        add_count("rows", 8);
        add_count("rows", 8);
        note_tenant("acme");
        note_tenant("other");
        let entry = guard.complete("ok").expect("armed guard journals");
        assert!(!active());
        assert_eq!(entry.trace_id, 0xAA);
        assert_eq!(entry.request_id, 0xBB);
        assert_eq!(entry.kind, "test");
        assert_eq!(entry.tenant.as_deref(), Some("acme"));
        assert_eq!(entry.outcome, "ok");
        assert_eq!(entry.count("rows"), 16);
        let a = entry.stages.iter().find(|s| s.name == "phase.a").expect("phase.a");
        assert_eq!((a.total_ns, a.count), (15, 2));
        assert_eq!(journal.recent().len(), 1);
    }

    #[test]
    fn disabled_journal_yields_inert_guards() {
        let journal = Arc::new(TraceJournal::with_capacity(4));
        journal.set_enabled(false);
        let guard = journal.begin(TraceCtx::new(1, 2), "test");
        assert!(!active());
        assert!(guard.complete("ok").is_none());
        assert_eq!(journal.recent().len(), 0);
    }

    #[test]
    fn dropped_guard_journals_as_abandoned() {
        let journal = Arc::new(TraceJournal::with_capacity(4));
        {
            let _guard = journal.begin(TraceCtx::new(9, 9), "test");
        }
        let recent = journal.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].outcome, "abandoned");
        assert!(!active());
    }

    #[test]
    fn nested_begin_keeps_the_outer_trace() {
        let journal = Arc::new(TraceJournal::with_capacity(4));
        let outer = journal.begin(TraceCtx::new(1, 1), "outer");
        let inner = journal.begin(TraceCtx::new(2, 2), "inner");
        assert_eq!(current(), Some(TraceCtx::new(1, 1)));
        assert!(inner.complete("ok").is_none());
        assert_eq!(current(), Some(TraceCtx::new(1, 1)));
        let entry = outer.complete("ok").expect("outer journals");
        assert_eq!(entry.trace_id, 1);
    }
}
