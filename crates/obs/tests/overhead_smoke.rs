//! The no-op guarantee, checked two ways: functionally (a disabled registry
//! records nothing, and re-enabling picks up where it left off) and — in release
//! builds only, with a deliberately generous bound — that a disabled handle's
//! per-operation cost is in the nanoseconds, not microseconds. The authoritative
//! end-to-end overhead number lives in `BENCH_report.json`'s `observability`
//! section, enforced at ≤3% by `bench_guard`; this smoke test just catches a
//! rewrite that accidentally makes the disabled path allocate, lock, or format.

use f2_obs::{Registry, Span, Unit};

#[test]
fn disabled_registry_is_functionally_silent() {
    let reg = Registry::new();
    let counter = reg.counter("f2_smoke_total", "smoke", &[]);
    let hist = reg.histogram("f2_smoke_seconds", "smoke", &[], Unit::Seconds);
    let gauge = reg.gauge("f2_smoke_depth", "smoke", &[]);

    reg.set_enabled(false);
    assert!(!reg.is_enabled());
    counter.add(5);
    hist.record(5);
    gauge.set(5);
    {
        let _span = Span::enter("smoke", &hist);
    }
    assert_eq!(counter.get(), 0);
    assert_eq!(hist.count(), 0);
    assert_eq!(gauge.get(), 0);

    reg.set_enabled(true);
    counter.add(5);
    hist.record(5);
    {
        let _span = Span::enter("smoke", &hist);
    }
    assert_eq!(counter.get(), 5);
    assert_eq!(hist.count(), 2);
}

/// Release-mode only: debug builds make no performance promises.
#[cfg(not(debug_assertions))]
#[test]
fn disabled_counter_costs_nanoseconds_per_op() {
    let reg = Registry::new();
    reg.set_enabled(false);
    let counter = reg.counter("f2_smoke_total", "smoke", &[]);
    let hist = reg.histogram("f2_smoke_seconds", "smoke", &[], Unit::Seconds);

    const OPS: u64 = 1_000_000;
    let start = std::time::Instant::now();
    for i in 0..OPS {
        counter.add(i);
        hist.record(i);
    }
    let elapsed = start.elapsed();
    // Nothing was recorded...
    assert_eq!(counter.get(), 0);
    assert_eq!(hist.count(), 0);
    // ...and the two disabled calls together stayed under 1µs/iteration on
    // average — a bound ~100x above the expected cost, so only a disabled path
    // that allocates, locks, or formats can trip it, not a noisy CI runner.
    assert!(
        elapsed.as_micros() < u128::from(OPS),
        "disabled path took {elapsed:?} for {OPS} iterations"
    );
}
