//! Frozen exposition goldens: a fixed scoped registry must render byte-for-byte
//! identical Prometheus text and JSON snapshots on every revision. Exporter
//! output is an interface — `f2_server`'s `/metrics` endpoint will serve it
//! verbatim and scrapers will parse it — so format drift must be a deliberate,
//! visible change to this file, never an accident.

use f2_obs::{Registry, Unit};

/// One fixed registry state shared by both goldens.
fn fixture() -> Registry {
    let reg = Registry::new();
    reg.counter("f2_io_frames_written_total", "Frames written.", &[]).add(12);
    let phase = |name| {
        reg.histogram(
            "f2_core_phase_seconds",
            "Planning phase durations.",
            &[("phase", name)],
            Unit::Seconds,
        )
    };
    let max = phase("max");
    max.record(900); // 900ns → bucket le 1023ns
    max.record(1_000_000); // 1ms → bucket le (2^20 - 1)ns
    let sse = phase("sse");
    sse.record(0); // the zero bucket
    reg.gauge("f2_engine_inflight_chunks", "Chunks in flight.", &[]).set(1);
    reg.counter("f2_quoted_total", "Help with a\nnewline and \\ slash.", &[("k", "a\"b")]).add(3);
    reg
}

#[test]
fn prometheus_exposition_matches_golden() {
    let expected = "\
# HELP f2_core_phase_seconds Planning phase durations.
# TYPE f2_core_phase_seconds histogram
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.000001023\"} 1
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.000002047\"} 1
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.000004095\"} 1
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.000008191\"} 1
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.000016383\"} 1
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.000032767\"} 1
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.000065535\"} 1
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.000131071\"} 1
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.000262143\"} 1
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.000524287\"} 1
f2_core_phase_seconds_bucket{phase=\"max\",le=\"0.001048575\"} 2
f2_core_phase_seconds_bucket{phase=\"max\",le=\"+Inf\"} 2
f2_core_phase_seconds_sum{phase=\"max\"} 0.0010009
f2_core_phase_seconds_count{phase=\"max\"} 2
f2_core_phase_seconds_bucket{phase=\"sse\",le=\"0\"} 1
f2_core_phase_seconds_bucket{phase=\"sse\",le=\"+Inf\"} 1
f2_core_phase_seconds_sum{phase=\"sse\"} 0
f2_core_phase_seconds_count{phase=\"sse\"} 1
# HELP f2_engine_inflight_chunks Chunks in flight.
# TYPE f2_engine_inflight_chunks gauge
f2_engine_inflight_chunks 1
# HELP f2_io_frames_written_total Frames written.
# TYPE f2_io_frames_written_total counter
f2_io_frames_written_total 12
# HELP f2_quoted_total Help with a\\nnewline and \\\\ slash.
# TYPE f2_quoted_total counter
f2_quoted_total{k=\"a\\\"b\"} 3
";
    assert_eq!(fixture().prometheus_string(), expected);
}

#[test]
fn json_snapshot_matches_golden() {
    let expected = concat!(
        "{\"metrics\":[",
        "{\"name\":\"f2_core_phase_seconds\",\"kind\":\"histogram\",",
        "\"help\":\"Planning phase durations.\",\"samples\":[",
        "{\"labels\":{\"phase\":\"max\"},\"count\":2,\"sum\":0.0010009,",
        "\"buckets\":[{\"le\":0.000001023,\"count\":1},{\"le\":0.001048575,\"count\":2}]},",
        "{\"labels\":{\"phase\":\"sse\"},\"count\":1,\"sum\":0,",
        "\"buckets\":[{\"le\":0,\"count\":1}]}]},",
        "{\"name\":\"f2_engine_inflight_chunks\",\"kind\":\"gauge\",",
        "\"help\":\"Chunks in flight.\",\"samples\":[{\"labels\":{},\"value\":1}]},",
        "{\"name\":\"f2_io_frames_written_total\",\"kind\":\"counter\",",
        "\"help\":\"Frames written.\",\"samples\":[{\"labels\":{},\"value\":12}]},",
        "{\"name\":\"f2_quoted_total\",\"kind\":\"counter\",",
        "\"help\":\"Help with a\\nnewline and \\\\ slash.\",",
        "\"samples\":[{\"labels\":{\"k\":\"a\\\"b\"},\"value\":3}]}",
        "]}",
    );
    assert_eq!(fixture().json_string(), expected);
}

#[test]
fn write_variants_match_the_strings() {
    let reg = fixture();
    let mut prom = Vec::new();
    reg.write_prometheus(&mut prom).expect("write succeeds");
    assert_eq!(prom, reg.prometheus_string().into_bytes());
    let mut json = Vec::new();
    reg.write_json(&mut json).expect("write succeeds");
    assert_eq!(json, reg.json_string().into_bytes());
}
