//! Property tests for exporter escaping: hostile label values (quotes, newlines,
//! backslashes, multi-byte UTF-8) round-trip through Prometheus label escaping,
//! never break the line structure of the exposition, and stay valid inside the
//! JSON snapshot.

use f2_obs::Registry;
use proptest::collection::vec;
use proptest::prelude::*;

/// A palette weighted toward the characters escaping must handle: quotes,
/// backslashes, newlines, and multi-byte UTF-8 alongside plain ASCII.
const PALETTE: &[char] =
    &['a', 'Z', '0', ' ', '"', '\\', '\n', '\t', 'é', 'λ', '→', '∞', '字', '🙂'];

fn label_value() -> impl Strategy<Value = String> {
    vec(0usize..PALETTE.len(), 0..24)
        .prop_map(|idxs| idxs.into_iter().map(|i| PALETTE[i]).collect())
}

/// Reference JSON string escaping, mirroring the exporter's contract.
fn json_escape(text: &str) -> String {
    let mut out = String::new();
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Undo Prometheus label-value escaping (`\\`, `\"`, `\n`).
fn unescape_label(escaped: &str) -> String {
    let mut out = String::new();
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            other => panic!("unknown escape \\{other:?} in {escaped:?}"),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn label_values_roundtrip_through_exposition(value in label_value()) {
        let reg = Registry::new();
        reg.counter("f2_esc_total", "escape test", &[("path", &value)]).add(7);
        let text = reg.prometheus_string();
        // The sample line survives as ONE line: escaped values contain no raw
        // newline, so the exposition stays line-structured.
        let line = text
            .lines()
            .find(|l| l.starts_with("f2_esc_total{"))
            .expect("sample line present");
        prop_assert!(line.ends_with(" 7"));
        // Extract the escaped payload between `path="` and the closing `"}` and
        // undo the escaping: the original value must come back exactly.
        let start = line.find("path=\"").expect("label rendered") + "path=\"".len();
        let end = line.rfind("\"}").expect("label closed");
        prop_assert_eq!(unescape_label(&line[start..end]), value.clone());
    }

    #[test]
    fn json_snapshot_escapes_hostile_values(value in label_value(), help in label_value()) {
        let reg = Registry::new();
        reg.counter("f2_esc_total", &help, &[("path", &value)]).add(1);
        let json = reg.json_string();
        // Control characters must be escaped, never raw.
        prop_assert!(!json.contains('\n'));
        prop_assert!(!json.contains('\t'));
        // The escaped forms of both hostile strings appear verbatim.
        prop_assert!(json.contains(&json_escape(&value)), "{}", json);
        prop_assert!(json.contains(&json_escape(&help)), "{}", json);
        prop_assert!(json.starts_with("{\"metrics\":["));
        prop_assert!(json.ends_with("]}"));
    }
}
