//! Property tests for the power-of-two histogram bucketing: the bucket index is
//! monotone in the value, bounds round-trip through the index, and recorded
//! values always land inside their bucket's bounds with exact count/sum
//! accounting.

use f2_obs::{bucket_index, bucket_lower_bound, bucket_upper_bound, Registry, Unit, BUCKET_COUNT};
use proptest::collection::vec;
use proptest::prelude::*;

/// Values spread across the full `u64` range: a uniform draw almost always has
/// ~64 bits, so mask down to a random bit width first.
fn spread_u64() -> impl Strategy<Value = u64> {
    (0u32..=64, 0u64..=u64::MAX).prop_map(
        |(bits, raw)| {
            if bits == 0 {
                0
            } else {
                raw >> (64 - bits)
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bucket_index_is_monotone(a in spread_u64(), b in spread_u64()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    #[test]
    fn values_land_within_their_bucket_bounds(v in spread_u64()) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKET_COUNT);
        prop_assert!(bucket_lower_bound(idx) <= v);
        prop_assert!(v <= bucket_upper_bound(idx));
    }

    #[test]
    fn bucket_bounds_roundtrip_through_the_index(idx in 0usize..BUCKET_COUNT) {
        prop_assert_eq!(bucket_index(bucket_lower_bound(idx)), idx);
        prop_assert_eq!(bucket_index(bucket_upper_bound(idx)), idx);
        // Bounds tile the u64 range with no gap: the next bucket starts one
        // past this bucket's upper bound.
        if idx + 1 < BUCKET_COUNT {
            prop_assert_eq!(bucket_upper_bound(idx).wrapping_add(1), bucket_lower_bound(idx + 1));
        }
    }

    #[test]
    fn recording_accounts_exactly(values in vec(spread_u64(), 0..64)) {
        let reg = Registry::new();
        let hist = reg.histogram("f2_test_hist", "test", &[], Unit::Count);
        for &v in &values {
            hist.record(v);
        }
        prop_assert_eq!(hist.count(), values.len() as u64);
        let expected_sum = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(hist.sum(), expected_sum);
        // Per-bucket tallies match a reference count, and they sum to the total.
        let mut reference = [0u64; BUCKET_COUNT];
        for &v in &values {
            reference[bucket_index(v)] += 1;
        }
        let mut total = 0u64;
        for (idx, &expected) in reference.iter().enumerate() {
            prop_assert_eq!(hist.bucket(idx), expected);
            total += expected;
        }
        prop_assert_eq!(total, hist.count());
    }
}
