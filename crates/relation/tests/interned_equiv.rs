//! Equivalence suite pinning the interned columnar partition paths to the retained
//! generic (value-keyed) oracles.
//!
//! The dictionary-encoded core must be *unobservable* except for speed: for every
//! table and attribute set, `Partition::compute` must produce exactly the classes —
//! same representatives, same rows, same order — as `Partition::compute_generic`,
//! and the direct stripped path must match `compute_generic().stripped()`. Tables are
//! drawn with small value pools (including cross-type collisions and `Null`) so
//! duplicate projections are common.

use f2_relation::{AttrSet, Partition, Record, Schema, StrippedPartition, Table, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// A value from a deliberately tiny, mixed-type pool — selector + payload sampling
/// keeps cross-row collisions frequent.
fn value_from(selector: u8) -> Value {
    match selector % 16 {
        0 => Value::Null,
        s @ 1..=5 => Value::Int(i64::from(s) % 4),
        s @ 6..=9 => Value::Decimal { digits: i64::from(s) % 3, scale: 2 },
        s @ 10..=13 => Value::text(["a", "b", "c"][s as usize % 3]),
        s => Value::Date(i32::from(s) % 3),
    }
}

/// Assemble a table from a sampled arity and a flat pool of cell selectors.
fn table_from(arity: usize, cells: Vec<u8>) -> Table {
    let schema = Schema::from_names((0..arity).map(|a| format!("A{a}"))).expect("small schema");
    let records =
        cells.chunks_exact(arity).map(|row| row.iter().map(|&s| value_from(s)).collect()).collect();
    Table::new(schema, records).expect("consistent arity")
}

/// A non-empty attribute subset of the table's schema, from a bitmask seed.
fn attrs_for(table: &Table, mask: u64) -> AttrSet {
    let arity = table.arity();
    let bits = mask % (1u64 << arity);
    let set = AttrSet::from_bits(bits);
    if set.is_empty() {
        AttrSet::single((mask % arity as u64) as usize)
    } else {
        set
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn interned_partition_matches_generic(
        arity in 1usize..=4,
        cells in vec(0u8..=255, 0..160),
        mask in 0u64..64,
    ) {
        let table = table_from(arity, cells);
        let attrs = attrs_for(&table, mask);
        let interned = Partition::compute(&table, attrs);
        let generic = Partition::compute_generic(&table, attrs);
        prop_assert_eq!(interned.classes(), generic.classes());
        prop_assert_eq!(interned.row_count(), generic.row_count());
        prop_assert_eq!(interned.attrs(), generic.attrs());
    }

    #[test]
    fn interned_stripped_matches_generic(
        arity in 1usize..=4,
        cells in vec(0u8..=255, 0..160),
        mask in 0u64..64,
    ) {
        let table = table_from(arity, cells);
        let attrs = attrs_for(&table, mask);
        let direct = StrippedPartition::for_attrs(&table, attrs);
        let oracle = Partition::compute_generic(&table, attrs).stripped();
        prop_assert_eq!(direct, oracle);
    }

    #[test]
    fn empty_projection_matches_generic(arity in 1usize..=4, cells in vec(0u8..=255, 0..120)) {
        let table = table_from(arity, cells);
        let interned = Partition::compute(&table, AttrSet::EMPTY);
        let generic = Partition::compute_generic(&table, AttrSet::EMPTY);
        prop_assert_eq!(interned.classes(), generic.classes());
    }

    #[test]
    fn product_matches_direct_interned(
        arity in 1usize..=4,
        cells in vec(0u8..=255, 0..160),
        ma in 0u64..64,
        mb in 0u64..64,
    ) {
        let table = table_from(arity, cells);
        let a = attrs_for(&table, ma);
        let b = attrs_for(&table, mb);
        let pa = StrippedPartition::for_attrs(&table, a);
        let pb = StrippedPartition::for_attrs(&table, b);
        let via_product = pa.product(&pb);
        // Product output is sorted by row sets, the direct path by representatives;
        // compare as multisets of classes.
        let mut direct: Vec<Vec<usize>> =
            StrippedPartition::for_attrs(&table, a.union(b)).classes().to_vec();
        let mut product: Vec<Vec<usize>> = via_product.classes().to_vec();
        direct.sort();
        product.sort();
        prop_assert_eq!(direct, product);
    }

    #[test]
    fn mutation_invalidates_cached_dictionaries(
        arity in 1usize..=4,
        cells in vec(0u8..=255, 0..120),
        mask in 0u64..64,
    ) {
        let mut table = table_from(arity, cells);
        let attrs = attrs_for(&table, mask);
        // Build (and cache) the columnar index…
        let before = Partition::compute(&table, attrs);
        prop_assert_eq!(before.classes(), Partition::compute_generic(&table, attrs).classes());
        // …then mutate the table and require the recomputed partition to match the
        // generic oracle again (a stale dictionary would disagree).
        table.push_row(Record::new(vec![Value::Int(77); arity])).unwrap();
        table.set_cell(0, 0, Value::text("mutated")).unwrap();
        let after = Partition::compute(&table, attrs);
        prop_assert_eq!(after.classes(), Partition::compute_generic(&table, attrs).classes());
        prop_assert_eq!(after.row_count(), table.row_count());

        // `append` invalidates too.
        let extra = table_from(arity, vec![1, 2, 3, 4, 5, 6, 7, 8][..arity].to_vec());
        table.append(extra).unwrap();
        let appended = Partition::compute(&table, attrs);
        prop_assert_eq!(appended.classes(), Partition::compute_generic(&table, attrs).classes());
    }

    #[test]
    fn frequency_histogram_matches_manual_count(
        arity in 1usize..=4,
        cells in vec(0u8..=255, 0..120),
        mask in 0u64..64,
    ) {
        let table = table_from(arity, cells);
        let attrs = attrs_for(&table, mask);
        let hist = table.frequency_histogram(attrs);
        let mut manual: std::collections::HashMap<Vec<Value>, usize> =
            std::collections::HashMap::new();
        for (_, rec) in table.iter() {
            *manual.entry(rec.project(attrs)).or_insert(0) += 1;
        }
        prop_assert_eq!(hist, manual);
    }

    #[test]
    fn all_values_and_distinct_counts_match_scan(arity in 1usize..=4, cells in vec(0u8..=255, 0..120)) {
        let table = table_from(arity, cells);
        let mut manual = std::collections::HashSet::new();
        for (_, rec) in table.iter() {
            for v in rec.values() {
                manual.insert(v.clone());
            }
        }
        prop_assert_eq!(table.all_values(), manual);
        for a in 0..table.arity() {
            let mut col = std::collections::HashSet::new();
            for (_, rec) in table.iter() {
                col.insert(rec.get(a).unwrap().clone());
            }
            prop_assert_eq!(table.distinct_count(a), col.len());
        }
    }

    #[test]
    fn view_derived_columnar_matches_fresh_build(
        arity in 1usize..=4,
        cells in vec(0u8..=255, 0..120),
        lo_per_mille in 0u64..=1000,
        hi_per_mille in 0u64..=1000,
        mask in 0u64..=u64::MAX,
    ) {
        // A view's dictionaries are *derived* from the parent's by integer
        // compaction; they must be indistinguishable from dictionaries built from
        // scratch over the materialised sub-table — and so must every partition
        // computed through them.
        let table = table_from(arity, cells);
        let n = table.row_count() as u64;
        let (a, b) = (lo_per_mille * n / 1000, hi_per_mille * n / 1000);
        let range = (a.min(b) as usize)..(a.max(b) as usize);
        let view = table.view(range.clone()).expect("range in bounds");
        let materialised = view.to_table(); // carries the derived index
        let standalone =
            Table::new(table.schema().clone(), table.rows()[range].to_vec()).expect("sub-table");
        prop_assert_eq!(&materialised, &standalone);
        let (derived, fresh) = (materialised.columnar(), standalone.columnar());
        for attr in 0..table.arity() {
            prop_assert_eq!(derived.column(attr).values(), fresh.column(attr).values());
            prop_assert_eq!(derived.column(attr).ids(), fresh.column(attr).ids());
        }
        let attrs = attrs_for(&materialised, mask);
        let (p, q) = (materialised.partition(attrs), standalone.partition(attrs));
        prop_assert_eq!(p.classes(), q.classes());
    }
}
