//! Ergonomic table construction.

use crate::{Attribute, DataType, Record, Result, Schema, Table, Value};

/// Incremental builder for [`Table`]s.
///
/// Used by the workload generators and by tests/examples to assemble small relations
/// without hand-writing `Schema`/`Record` plumbing.
#[derive(Debug, Default)]
pub struct TableBuilder {
    attrs: Vec<Attribute>,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        TableBuilder::default()
    }

    /// Declare a column.
    pub fn column(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.attrs.push(Attribute::new(name, data_type));
        self
    }

    /// Declare a text column (the most common case in the paper's datasets).
    pub fn text_column(self, name: impl Into<String>) -> Self {
        self.column(name, DataType::Text)
    }

    /// Declare an integer column.
    pub fn int_column(self, name: impl Into<String>) -> Self {
        self.column(name, DataType::Int)
    }

    /// Append a row of values.
    pub fn row<I: IntoIterator<Item = Value>>(mut self, values: I) -> Self {
        self.rows.push(values.into_iter().collect());
        self
    }

    /// Append a row of text values (convenience for tests).
    pub fn text_row<S: AsRef<str>, I: IntoIterator<Item = S>>(self, values: I) -> Self {
        self.row(values.into_iter().map(|s| Value::text(s.as_ref())))
    }

    /// Finish building, validating arity of every row against the declared columns.
    pub fn build(self) -> Result<Table> {
        let schema = Schema::new(self.attrs)?;
        let records = self.rows.into_iter().map(Record::new).collect();
        Table::new(schema, records)
    }
}

/// Build a small table from string literals in one expression — heavily used in unit
/// tests and documentation examples:
///
/// ```
/// let t = f2_relation::table! {
///     ["Zip", "City"];
///     ["07030", "Hoboken"],
///     ["07030", "Hoboken"],
///     ["10001", "New York"],
/// };
/// assert_eq!(t.row_count(), 3);
/// ```
#[macro_export]
macro_rules! table {
    ([$($col:expr),+ $(,)?]; $([$($cell:expr),+ $(,)?]),+ $(,)?) => {{
        let mut b = $crate::TableBuilder::new();
        $( b = b.text_column($col); )+
        $( b = b.text_row([$($cell),+]); )+
        b.build().expect("table! literal must be well-formed")
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_table() {
        let t = TableBuilder::new()
            .text_column("A")
            .int_column("B")
            .row([Value::text("x"), Value::Int(1)])
            .row([Value::text("y"), Value::Int(2)])
            .build()
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.schema().index_of("B").unwrap(), 1);
        assert_eq!(t.schema().attribute(1).unwrap().data_type, DataType::Int);
    }

    #[test]
    fn builder_rejects_bad_arity() {
        let r = TableBuilder::new().text_column("A").row([Value::text("x"), Value::Int(1)]).build();
        assert!(r.is_err());
    }

    #[test]
    fn table_macro() {
        let t = crate::table! {
            ["A", "B", "C"];
            ["a1", "b1", "c1"],
            ["a1", "b1", "c2"],
        };
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.cell(1, 2).unwrap(), &Value::text("c2"));
    }
}
