//! Minimal CSV import/export.
//!
//! The outsourcing workflow of the paper ships a table from the data owner to the
//! server; in this reproduction the interchange format is CSV. The implementation is
//! self-contained (no external crate): RFC-4180-style quoting, header row, and a typed
//! parse driven by the destination schema.

use crate::{DataType, Record, RelationError, Result, Schema, Table, Value};
use std::io::{BufRead, BufReader, Read, Write};

/// Serialize a table to CSV, with a header row of attribute names.
///
/// `Bytes` cells are hex-encoded with a `0x` prefix so encrypted tables survive a
/// round trip.
pub fn write_csv<W: Write>(table: &Table, mut out: W) -> std::io::Result<()> {
    let names = table.schema().names();
    writeln!(out, "{}", names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","))?;
    let mut line = String::new();
    for (_, rec) in table.iter() {
        line.clear();
        for (i, v) in rec.values().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&quote(&render(v)));
        }
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Serialize a table to a CSV string.
pub fn to_csv_string(table: &Table) -> String {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

/// Parse a CSV document (with header) into a table, interpreting cells according to
/// the provided schema's data types.
pub fn read_csv<R: Read>(schema: &Schema, input: R) -> Result<Table> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(Ok(h)) => h,
        Some(Err(e)) => return Err(RelationError::Csv(e.to_string())),
        None => return Err(RelationError::Csv("empty input".into())),
    };
    let header_fields = split_line(&header)?;
    if header_fields.len() != schema.arity() {
        return Err(RelationError::Csv(format!(
            "header has {} fields, schema has {}",
            header_fields.len(),
            schema.arity()
        )));
    }
    let mut table = Table::empty(schema.clone());
    for line in lines {
        let line = line.map_err(|e| RelationError::Csv(e.to_string()))?;
        if line.is_empty() && schema.arity() != 1 {
            // A blank line cannot be a row of a multi-column table; for single-column
            // tables it legitimately encodes a NULL cell.
            continue;
        }
        let fields = split_line(&line)?;
        if fields.len() != schema.arity() {
            return Err(RelationError::Csv(format!(
                "row has {} fields, expected {}",
                fields.len(),
                schema.arity()
            )));
        }
        let mut values = Vec::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            values.push(parse_value(f, schema.attribute(i)?)?);
        }
        table.push_row(Record::new(values))?;
    }
    Ok(table)
}

/// Parse a CSV string into a table.
pub fn from_csv_string(schema: &Schema, csv: &str) -> Result<Table> {
    read_csv(schema, csv.as_bytes())
}

fn render(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Int(i) => i.to_string(),
        Value::Decimal { .. } => v.to_string(),
        Value::Text(s) => s.clone(),
        Value::Date(d) => format!("@{d}"),
        Value::Bytes(b) => {
            let mut s = String::with_capacity(2 + b.len() * 2);
            s.push_str("0x");
            for byte in b.iter() {
                s.push_str(&format!("{byte:02x}"));
            }
            s
        }
    }
}

/// Parse one CSV field according to an attribute's declared [`DataType`] — the typed
/// parse shared by [`read_csv`] and the streaming `f2_io::CsvSource`. An empty field
/// is NULL for every type; a non-empty field that does not fit the type errors.
pub fn parse_typed_field(field: &str, attr: &crate::Attribute) -> Result<Value> {
    parse_value(field, attr)
}

fn parse_value(field: &str, attr: &crate::Attribute) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    let type_err =
        || RelationError::TypeError { attribute: attr.name.clone(), value: field.to_owned() };
    match attr.data_type {
        DataType::Int => field.parse::<i64>().map(Value::Int).map_err(|_| type_err()),
        DataType::Decimal => {
            let (whole, frac) = field.split_once('.').unwrap_or((field, ""));
            let scale = frac.len() as u8;
            let digits: i64 = format!("{whole}{frac}").parse().map_err(|_| type_err())?;
            Ok(Value::Decimal { digits, scale })
        }
        DataType::Date => field
            .strip_prefix('@')
            .and_then(|d| d.parse::<i32>().ok())
            .map(Value::Date)
            .ok_or_else(type_err),
        DataType::Bytes => {
            let hex = field.strip_prefix("0x").ok_or_else(type_err)?;
            if hex.len() % 2 != 0 {
                return Err(type_err());
            }
            let mut bytes = Vec::with_capacity(hex.len() / 2);
            for i in (0..hex.len()).step_by(2) {
                let b = u8::from_str_radix(&hex[i..i + 2], 16).map_err(|_| type_err())?;
                bytes.push(b);
            }
            Ok(Value::bytes(bytes))
        }
        DataType::Text | DataType::Any => Ok(Value::text(field)),
    }
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Split one logical CSV/TSV record into unescaped fields: RFC-4180 quoting with a
/// configurable single-byte delimiter. Shared by [`read_csv`] and the streaming
/// `f2_io::CsvSource`. Strict on malformed quoting: a quote may only *open* at the
/// start of a field — silently entering quote mode mid-field would swallow the rest
/// of the record (and, for multi-line parsers, following rows) into one cell — and
/// an unterminated quote errors.
pub fn split_record(raw: &str, delimiter: u8) -> Result<Vec<String>> {
    let delimiter = delimiter as char;
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = raw.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    cur.push('"');
                    chars.next();
                }
                '"' => in_quotes = false,
                _ => cur.push(c),
            }
        } else if c == '"' {
            if !cur.is_empty() {
                return Err(RelationError::Csv(format!(
                    "quote in unquoted field after `{cur}` (quote the whole field, or escape \
                     the quote by doubling it inside a quoted field)"
                )));
            }
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if in_quotes {
        return Err(RelationError::Csv("unterminated quoted field".into()));
    }
    fields.push(cur);
    Ok(fields)
}

fn split_line(line: &str) -> Result<Vec<String>> {
    split_record(line, b',')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record, Attribute};

    #[test]
    fn roundtrip_text_table() {
        let schema = Schema::from_names(["A", "B"]).unwrap();
        let t = Table::new(
            schema.clone(),
            vec![record!["hello", "world"], record!["with,comma", "with\"quote"]],
        )
        .unwrap();
        let csv = to_csv_string(&t);
        let back = from_csv_string(&schema, &csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn roundtrip_typed_table() {
        let schema = Schema::new(vec![
            Attribute::new("id", DataType::Int),
            Attribute::new("price", DataType::Decimal),
            Attribute::new("day", DataType::Date),
            Attribute::new("blob", DataType::Bytes),
        ])
        .unwrap();
        let t = Table::new(
            schema.clone(),
            vec![Record::new(vec![
                Value::Int(42),
                Value::money(1999),
                Value::Date(10),
                Value::bytes(vec![0xde, 0xad]),
            ])],
        )
        .unwrap();
        let csv = to_csv_string(&t);
        assert!(csv.contains("0xdead"));
        let back = from_csv_string(&schema, &csv).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn null_roundtrip() {
        let schema = Schema::from_names(["A"]).unwrap();
        let t = Table::new(schema.clone(), vec![Record::new(vec![Value::Null])]).unwrap();
        let back = from_csv_string(&schema, &to_csv_string(&t)).unwrap();
        assert!(back.cell(0, 0).unwrap().is_null());
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let schema = Schema::from_names(["A", "B"]).unwrap();
        assert!(from_csv_string(&schema, "A\nx\n").is_err());
        assert!(from_csv_string(&schema, "").is_err());
        assert!(from_csv_string(&schema, "A,B\nonlyone\n").is_err());
    }

    #[test]
    fn bad_typed_values_are_rejected() {
        let schema = Schema::new(vec![Attribute::new("id", DataType::Int)]).unwrap();
        assert!(from_csv_string(&schema, "id\nnot_a_number\n").is_err());
        let schema = Schema::new(vec![Attribute::new("b", DataType::Bytes)]).unwrap();
        assert!(from_csv_string(&schema, "b\nzz\n").is_err());
        assert!(from_csv_string(&schema, "b\n0xzz\n").is_err());
    }

    #[test]
    fn unterminated_quote_is_rejected() {
        let schema = Schema::from_names(["A"]).unwrap();
        assert!(from_csv_string(&schema, "A\n\"oops\n").is_err());
    }

    #[test]
    fn quoted_fields_with_embedded_separators() {
        let fields = split_line("a,\"b,c\",\"d\"\"e\"").unwrap();
        assert_eq!(fields, vec!["a", "b,c", "d\"e"]);
    }
}
