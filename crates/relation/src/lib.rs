//! # f2-relation — in-memory relational substrate for the F² encryption scheme
//!
//! lint: planning — crate-wide: no new `thread_local!` caches (`f2-lint` rule
//! `thread-local`); interned-relation sharing must stay explicit.
//!
//! The F² paper (Dong & Wang, ICDE 2017) operates on a private relational table `D`
//! with `m` attributes and `n` records, encrypts it cell-by-cell, and reasons about
//! *partitions* (equivalence classes of tuples that agree on an attribute set).
//!
//! This crate provides that substrate:
//!
//! * [`Value`] — a typed, hashable, orderable cell value (integers, text, decimals,
//!   raw ciphertext bytes, null),
//! * [`Schema`] / [`Attribute`] — named, typed columns,
//! * [`Record`] and [`Table`] — row-major in-memory relations,
//! * [`AttrSet`] — a compact bit-set over attribute indices (the `X`, `Y`, `A` of the
//!   paper's definitions),
//! * [`Partition`] / [`EquivalenceClass`] — Definition 3.3 of the paper, plus stripped
//!   partitions and partition products as used by TANE and the MAS finder,
//! * [`ColumnarIndex`] — the dictionary-encoded (interned) columnar core under every
//!   partition computation, built lazily per table ([`Table::columnar`]) and cached,
//! * CSV import/export and table statistics.
//!
//! # Dictionary-encoding invariants
//!
//! The interned core obeys three rules (see [`columnar`] for details):
//!
//! 1. **Ids order like values.** Each column's dictionary assigns dense `u32` ids in
//!    ascending [`Value`] order, so partitions grouped and sorted by id tuples are
//!    byte-for-byte identical to the retained value-keyed oracle
//!    ([`Partition::compute_generic`]).
//! 2. **Ids are build-local.** They carry no meaning across two index builds and are
//!    never persisted.
//! 3. **Mutation invalidates.** `push_row`, `set_cell`, `row_mut`, `extend_from` and
//!    `append` drop the cached index; the next partition-shaped query rebuilds it.
//!    Clones share an already-built index.
//!
//! Everything is deterministic and free of external dependencies beyond `bytes`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrset;
pub mod builder;
pub mod columnar;
pub mod csv;
pub mod error;
pub mod hash;
pub mod partition;
pub mod record;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;
pub mod view;

pub use attrset::AttrSet;
pub use builder::TableBuilder;
pub use columnar::{ColumnDictionary, ColumnarIndex};
pub use error::RelationError;
pub use hash::{FastMap, FastSet};
pub use partition::{EquivalenceClass, Partition, ProductScratch, StrippedPartition};
pub use record::Record;
pub use schema::{Attribute, DataType, Schema};
pub use stats::{AttributeStats, TableStats};
pub use table::{RowId, Table};
pub use value::Value;
pub use view::TableView;

/// Convenient `Result` alias used throughout the relational substrate.
pub type Result<T> = std::result::Result<T, RelationError>;
