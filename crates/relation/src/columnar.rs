//! Dictionary-encoded (interned) columnar storage — the fast substrate under every
//! partition computation.
//!
//! Profiling the F² pipeline showed that ~90% of encryption time was spent in the
//! planning layers, and most of that in hashing `Vec<Value>` projections row by row:
//! every `Partition::compute` cloned one `Vec<Value>` per row per attribute set. The
//! [`ColumnarIndex`] removes that cost structurally: each attribute gets a
//! **dictionary** mapping its distinct [`Value`]s to dense `u32` ids, plus a
//! column-major `row → id` array. Partitions then group rows by *id tuples* (integer
//! hashing, no clones), and representatives are materialised once per equivalence
//! class instead of once per row.
//!
//! # Invariants
//!
//! * **Id order = value order.** Within one column, ids are assigned in ascending
//!   [`Value`] order (`Ord`), so comparing id tuples lexicographically is exactly
//!   comparing representative tuples — partitions built from ids sort identically to
//!   the generic `Vec<Value>`-keyed path ([`Partition::compute_generic`]).
//! * **Ids are stable only within one build.** They are *not* persisted anywhere and
//!   carry no meaning across two different `ColumnarIndex` instances (two builds of
//!   the same table produce the same ids, but a table with one extra row may not).
//! * **Lazy build, mutation invalidates.** [`crate::Table::columnar`] builds the index
//!   on first use and caches it; every mutating method (`push_row`, `set_cell`,
//!   `row_mut`, `extend_from`, `append`) drops the cache, so a stale dictionary can
//!   never be observed. Cloning a table shares the already-built index (it is
//!   immutable behind an `Arc`).
//!
//! The generic value-keyed implementations are retained as equivalence oracles and
//! exercised against this module by the property tests in
//! `crates/relation/tests/interned_equiv.rs`.

use crate::hash::{fast_map_with_capacity, FastMap};
use crate::{AttrSet, EquivalenceClass, Partition, RowId, StrippedPartition, Table, Value};

/// One attribute's dictionary: its distinct values in ascending order, plus the
/// column-major `row → id` array.
#[derive(Debug, Clone)]
pub struct ColumnDictionary {
    /// `id → value`, ascending [`Value`] order.
    values: Vec<Value>,
    /// `row → id`.
    ids: Vec<u32>,
}

impl ColumnDictionary {
    fn build(table: &Table, attr: usize) -> Self {
        let iter = table.rows().iter().map(|rec| rec.get(attr).expect("arity validated"));
        let (ids, values) = intern_values(iter);
        ColumnDictionary { values, ids }
    }

    /// Assemble a dictionary from parts that already satisfy the invariants (`values`
    /// in ascending [`Value`] order, `ids` dense indexes into it). Used by the
    /// range-view derivation ([`crate::TableView::derived_columnar`]), which compacts
    /// a parent dictionary by pure integer work.
    pub(crate) fn from_parts(values: Vec<Value>, ids: Vec<u32>) -> Self {
        debug_assert!(values.is_sorted());
        debug_assert!(ids.iter().all(|&id| (id as usize) < values.len().max(1)));
        ColumnDictionary { values, ids }
    }

    /// Number of distinct values in the column.
    pub fn distinct_count(&self) -> usize {
        self.values.len()
    }

    /// The value a dense id stands for.
    pub fn value_of(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// The distinct values, in ascending order (`id → value`).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The column-major `row → id` array.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

/// Intern a sequence of values: returns the dense id of every element (in sequence
/// order) plus the dictionary (`id → value`, ascending [`Value`] order, so id
/// comparisons order exactly like value comparisons).
pub fn intern_values<'a, I>(values: I) -> (Vec<u32>, Vec<Value>)
where
    I: Iterator<Item = &'a Value>,
{
    let (lo, _) = values.size_hint();
    let mut first: FastMap<&Value, u32> = fast_map_with_capacity(lo.min(4096));
    let mut distinct: Vec<&Value> = Vec::new();
    let mut ids: Vec<u32> = Vec::with_capacity(lo);
    for v in values {
        let next = distinct.len() as u32;
        let id = *first.entry(v).or_insert_with(|| {
            distinct.push(v);
            next
        });
        ids.push(id);
    }
    // Reassign ids in ascending value order.
    let mut order: Vec<u32> = (0..distinct.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| distinct[a as usize].cmp(distinct[b as usize]));
    let mut remap = vec![0u32; distinct.len()];
    let mut values_sorted = Vec::with_capacity(distinct.len());
    for (new_id, &old_id) in order.iter().enumerate() {
        remap[old_id as usize] = new_id as u32;
        values_sorted.push(distinct[old_id as usize].clone());
    }
    for id in &mut ids {
        *id = remap[*id as usize];
    }
    (ids, values_sorted)
}

/// Dense `row → group` labelling of a table projection: rows share a group id iff
/// they agree on every attribute of the projected set.
#[derive(Debug)]
pub struct RowGroups {
    /// `row → group id` (dense, but in first-encounter order — *not* sorted).
    pub group_of: Vec<u32>,
    /// Number of distinct groups.
    pub group_count: usize,
}

/// The dictionary-encoded columnar index of one [`Table`]. See the
/// [module docs](self) for the invariants.
#[derive(Debug, Clone)]
pub struct ColumnarIndex {
    columns: Vec<ColumnDictionary>,
    row_count: usize,
}

impl ColumnarIndex {
    /// Build the index: one dictionary per attribute, O(n·m) hashing total.
    pub fn build(table: &Table) -> Self {
        let columns = (0..table.arity()).map(|a| ColumnDictionary::build(table, a)).collect();
        ColumnarIndex { columns, row_count: table.row_count() }
    }

    /// Assemble an index from per-column dictionaries that already satisfy the
    /// invariants. Used by the range-view derivation.
    pub(crate) fn from_columns(columns: Vec<ColumnDictionary>, row_count: usize) -> Self {
        debug_assert!(columns.iter().all(|c| c.ids.len() == row_count));
        ColumnarIndex { columns, row_count }
    }

    /// Rows covered.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Attributes covered.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// One attribute's dictionary.
    pub fn column(&self, attr: usize) -> &ColumnDictionary {
        &self.columns[attr]
    }

    /// Label every row with a dense group id over the projection on `attrs`, by
    /// iterative pairwise refinement: start from the first column's ids and refine
    /// with each further column through a `(group, id) → group'` map — integer keys
    /// only, no value clones, O(n) per attribute.
    pub fn row_groups(&self, attrs: AttrSet) -> RowGroups {
        let n = self.row_count;
        let mut iter = attrs.iter();
        let Some(first) = iter.next() else {
            // Empty projection: every row agrees with every other.
            return RowGroups { group_of: vec![0; n], group_count: usize::from(n > 0) };
        };
        let mut group_of = self.columns[first].ids.clone();
        let mut group_count = self.columns[first].values.len();
        for attr in iter {
            let ids = &self.columns[attr].ids;
            let mut map: FastMap<u64, u32> = fast_map_with_capacity(group_count.min(n));
            let mut next = 0u32;
            for r in 0..n {
                let key = (u64::from(group_of[r]) << 32) | u64::from(ids[r]);
                let g = *map.entry(key).or_insert_with(|| {
                    let g = next;
                    next += 1;
                    g
                });
                group_of[r] = g;
            }
            group_count = next as usize;
        }
        RowGroups { group_of, group_count }
    }

    /// Bucket rows by group id: per group, the member rows in ascending order, plus
    /// one witness row per group (its first member). Sizes are counted first so
    /// every bucket is allocated exactly once.
    fn grouped_rows(&self, groups: &RowGroups) -> (Vec<Vec<RowId>>, Vec<RowId>) {
        let mut counts: Vec<u32> = vec![0; groups.group_count];
        for &g in &groups.group_of {
            counts[g as usize] += 1;
        }
        let mut rows: Vec<Vec<RowId>> =
            counts.iter().map(|&c| Vec::with_capacity(c as usize)).collect();
        let mut witness: Vec<RowId> = vec![0; groups.group_count];
        for (r, &g) in groups.group_of.iter().enumerate() {
            let bucket = &mut rows[g as usize];
            if bucket.is_empty() {
                witness[g as usize] = r;
            }
            bucket.push(r);
        }
        (rows, witness)
    }

    /// Order group indexes by their projected id tuples (≡ by representative value
    /// tuples, because ids are value-sorted within each column).
    fn order_groups(&self, attrs: AttrSet, witness: &[RowId]) -> Vec<usize> {
        let cols: Vec<&[u32]> = attrs.iter().map(|a| self.columns[a].ids()).collect();
        if cols.len() == 1 {
            // Single attribute: group ids *are* dictionary ids, already value-sorted.
            return (0..witness.len()).collect();
        }
        // Flat per-group key tuples so the comparator is one slice compare.
        let m = cols.len();
        let mut keys: Vec<u32> = Vec::with_capacity(witness.len() * m);
        for &r in witness {
            keys.extend(cols.iter().map(|c| c[r]));
        }
        let mut order: Vec<usize> = (0..witness.len()).collect();
        order.sort_unstable_by(|&ga, &gb| {
            keys[ga * m..(ga + 1) * m].cmp(&keys[gb * m..(gb + 1) * m])
        });
        order
    }

    /// Compute the partition `π_attrs` — same classes, same order as
    /// [`Partition::compute_generic`], built from id tuples.
    pub fn partition(&self, attrs: AttrSet) -> Partition {
        let groups = self.row_groups(attrs);
        let (mut rows, witness) = self.grouped_rows(&groups);
        let attr_list: Vec<usize> = attrs.iter().collect();
        let classes: Vec<EquivalenceClass> = self
            .order_groups(attrs, &witness)
            .into_iter()
            .map(|g| {
                let representative = attr_list
                    .iter()
                    .map(|&a| {
                        let col = &self.columns[a];
                        col.value_of(col.ids[witness[g]]).clone()
                    })
                    .collect();
                EquivalenceClass {
                    representative: std::sync::Arc::new(representative),
                    rows: std::mem::take(&mut rows[g]),
                }
            })
            .collect();
        Partition::from_parts(attrs, classes, self.row_count)
    }

    /// Compute the stripped partition of `attrs` directly: singleton groups are
    /// dropped before any row list or representative is materialised, so the only
    /// allocations are the duplicate classes themselves (on real data the vast
    /// majority of groups are singletons). Class order matches
    /// `partition(attrs).stripped()` (representative order).
    pub fn stripped(&self, attrs: AttrSet) -> StrippedPartition {
        let groups = self.row_groups(attrs);
        let mut counts: Vec<u32> = vec![0; groups.group_count];
        for &g in &groups.group_of {
            counts[g as usize] += 1;
        }
        // Witnesses for the duplicate groups only.
        let mut witness: Vec<RowId> = vec![usize::MAX; groups.group_count];
        let mut dup_groups: Vec<usize> = Vec::new();
        for (r, &g) in groups.group_of.iter().enumerate() {
            if counts[g as usize] > 1 && witness[g as usize] == usize::MAX {
                witness[g as usize] = r;
                dup_groups.push(g as usize);
            }
        }
        // Order duplicate groups by id tuple (≡ representative order); single-attr
        // group ids are dictionary ids, so plain id order is value order there.
        let cols: Vec<&[u32]> = attrs.iter().map(|a| self.columns[a].ids()).collect();
        if cols.len() <= 1 {
            dup_groups.sort_unstable();
        } else {
            let m = cols.len();
            let mut keys: Vec<u32> = Vec::with_capacity(dup_groups.len() * m);
            for &g in &dup_groups {
                keys.extend(cols.iter().map(|c| c[witness[g]]));
            }
            let mut order: Vec<usize> = (0..dup_groups.len()).collect();
            order
                .sort_unstable_by(|&a, &b| keys[a * m..(a + 1) * m].cmp(&keys[b * m..(b + 1) * m]));
            dup_groups = order.into_iter().map(|i| dup_groups[i]).collect();
        }
        // slot[g] = output class index of duplicate group g.
        let mut slot: Vec<u32> = vec![u32::MAX; groups.group_count];
        let mut classes: Vec<Vec<RowId>> = Vec::with_capacity(dup_groups.len());
        for (i, &g) in dup_groups.iter().enumerate() {
            slot[g] = i as u32;
            classes.push(Vec::with_capacity(counts[g] as usize));
        }
        for (r, &g) in groups.group_of.iter().enumerate() {
            let s = slot[g as usize];
            if s != u32::MAX {
                classes[s as usize].push(r);
            }
        }
        StrippedPartition::from_classes(classes, self.row_count)
    }

    /// One witness row per distinct projection on `attrs` (the first row of each
    /// group, in first-encounter order). Consumers that only need the *equality
    /// structure* of the distinct projections — e.g. the false-positive-FD violation
    /// checks, which compare representative tuples — can read the witnesses' column
    /// ids directly instead of materialising a partition.
    pub fn group_witnesses(&self, attrs: AttrSet) -> Vec<RowId> {
        let groups = self.row_groups(attrs);
        let mut witness: Vec<RowId> = vec![usize::MAX; groups.group_count];
        for (r, &g) in groups.group_of.iter().enumerate() {
            if witness[g as usize] == usize::MAX {
                witness[g as usize] = r;
            }
        }
        witness
    }

    /// Every distinct value of the table: the union of the column dictionaries.
    /// O(total distinct) clones instead of O(n·m).
    pub fn all_values(&self) -> std::collections::HashSet<Value> {
        self.distinct_values().cloned().collect()
    }

    /// Iterate every dictionary entry (per-column distinct values; a value appearing
    /// in several columns is yielded once per column).
    pub fn distinct_values(&self) -> impl Iterator<Item = &Value> {
        self.columns.iter().flat_map(|col| col.values().iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record, Schema};

    fn sample() -> Table {
        let schema = Schema::from_names(["A", "B", "C"]).unwrap();
        Table::new(
            schema,
            vec![
                record!["a2", "b1", "c1"],
                record!["a1", "b1", "c2"],
                record!["a1", "b2", "c3"],
                record!["a1", "b1", "c1"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn dictionary_ids_are_value_sorted() {
        let t = sample();
        let idx = ColumnarIndex::build(&t);
        let col = idx.column(0);
        assert_eq!(col.distinct_count(), 2);
        // "a1" < "a2" so a1 gets id 0 even though a2 appears first.
        assert_eq!(col.value_of(0), &Value::text("a1"));
        assert_eq!(col.value_of(1), &Value::text("a2"));
        assert_eq!(col.ids(), &[1, 0, 0, 0]);
    }

    #[test]
    fn row_groups_match_projections() {
        let t = sample();
        let idx = ColumnarIndex::build(&t);
        let g = idx.row_groups(AttrSet::from_indices([0, 1]));
        assert_eq!(g.group_count, 3);
        // Rows 1 and 3 share (a1, b1).
        assert_eq!(g.group_of[1], g.group_of[3]);
        assert_ne!(g.group_of[0], g.group_of[1]);
        assert_ne!(g.group_of[2], g.group_of[1]);
    }

    #[test]
    fn empty_attrs_single_group() {
        let t = sample();
        let idx = ColumnarIndex::build(&t);
        let g = idx.row_groups(AttrSet::EMPTY);
        assert_eq!(g.group_count, 1);
        assert!(g.group_of.iter().all(|&x| x == 0));
    }

    #[test]
    fn all_values_matches_table() {
        let t = sample();
        let idx = ColumnarIndex::build(&t);
        assert_eq!(idx.all_values().len(), 7);
        assert_eq!(idx.all_values(), t.all_values());
    }

    #[test]
    fn interning_orders_ids_by_value() {
        let vals = [Value::Int(5), Value::Int(1), Value::Int(5), Value::Int(3)];
        let (ids, dict) = intern_values(vals.iter());
        assert_eq!(dict, vec![Value::Int(1), Value::Int(3), Value::Int(5)]);
        assert_eq!(ids, vec![2, 0, 2, 1]);
    }
}
