//! Relation schemas: named, typed attributes.

use crate::{AttrSet, RelationError, Result};
use std::fmt;
use std::sync::Arc;

/// Logical data type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integers.
    Int,
    /// Fixed-point decimals.
    Decimal,
    /// UTF-8 strings.
    Text,
    /// Dates (days since epoch).
    Date,
    /// Raw byte strings (ciphertext cells).
    Bytes,
    /// Any value type is accepted. Encrypted tables use this, since every cell becomes
    /// a ciphertext byte string regardless of its plaintext type.
    Any,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Decimal => "decimal",
            DataType::Text => "text",
            DataType::Date => "date",
            DataType::Bytes => "bytes",
            DataType::Any => "any",
        };
        write!(f, "{s}")
    }
}

/// A single named attribute (column).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Column name, unique within a schema.
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
}

impl Attribute {
    /// Construct an attribute.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Attribute { name: name.into(), data_type }
    }
}

/// An ordered list of attributes.
///
/// Schemas are cheaply cloneable (`Arc` inside) because every table, partition, and
/// report references one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Arc<Vec<Attribute>>,
}

impl Schema {
    /// Build a schema from a list of attributes.
    ///
    /// Fails if there are more than 64 attributes or duplicate names.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self> {
        if attrs.len() > AttrSet::MAX_ATTRS {
            return Err(RelationError::TooManyAttributes(attrs.len()));
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Schema { attrs: Arc::new(attrs) })
    }

    /// Convenience constructor: every attribute gets type [`DataType::Any`].
    pub fn from_names<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Result<Self> {
        Schema::new(names.into_iter().map(|n| Attribute::new(n, DataType::Any)).collect())
    }

    /// Number of attributes (the paper's `m`).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Access attribute metadata by index.
    pub fn attribute(&self, idx: usize) -> Result<&Attribute> {
        self.attrs
            .get(idx)
            .ok_or(RelationError::AttributeIndexOutOfRange { index: idx, arity: self.arity() })
    }

    /// All attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// All attribute names in order.
    pub fn names(&self) -> Vec<String> {
        self.attrs.iter().map(|a| a.name.clone()).collect()
    }

    /// Resolve a name to an index.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_owned()))
    }

    /// Resolve several names to an [`AttrSet`].
    pub fn attr_set<S: AsRef<str>, I: IntoIterator<Item = S>>(&self, names: I) -> Result<AttrSet> {
        let mut s = AttrSet::new();
        for n in names {
            s.insert(self.index_of(n.as_ref())?);
        }
        Ok(s)
    }

    /// The set of all attribute indices.
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::all(self.arity())
    }

    /// Render an attribute set with this schema's names.
    pub fn display_set(&self, set: AttrSet) -> String {
        set.display_with(&self.names())
    }

    /// Derive the schema of the encrypted table `D̂`: same attribute names, every type
    /// replaced by [`DataType::Bytes`].
    pub fn encrypted(&self) -> Schema {
        Schema {
            attrs: Arc::new(
                self.attrs
                    .iter()
                    .map(|a| Attribute::new(a.name.clone(), DataType::Bytes))
                    .collect(),
            ),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::new(vec![
            Attribute::new("Zip", DataType::Text),
            Attribute::new("City", DataType::Text),
            Attribute::new("Pop", DataType::Int),
        ])
        .unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("City").unwrap(), 1);
        assert!(s.index_of("Nope").is_err());
        assert_eq!(s.attribute(2).unwrap().data_type, DataType::Int);
        assert!(s.attribute(3).is_err());
        assert_eq!(s.names(), vec!["Zip", "City", "Pop"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::from_names(["A", "B", "A"]).unwrap_err();
        assert_eq!(err, RelationError::DuplicateAttribute("A".into()));
    }

    #[test]
    fn too_many_attributes_rejected() {
        let names: Vec<String> = (0..65).map(|i| format!("a{i}")).collect();
        assert!(matches!(
            Schema::from_names(names).unwrap_err(),
            RelationError::TooManyAttributes(65)
        ));
    }

    #[test]
    fn attr_set_resolution() {
        let s = Schema::from_names(["A", "B", "C", "D"]).unwrap();
        let set = s.attr_set(["B", "D"]).unwrap();
        assert_eq!(set, AttrSet::from_indices([1, 3]));
        assert_eq!(s.display_set(set), "{B, D}");
        assert_eq!(s.all_attrs(), AttrSet::all(4));
        assert!(s.attr_set(["B", "Z"]).is_err());
    }

    #[test]
    fn encrypted_schema_has_bytes_types() {
        let s = Schema::new(vec![
            Attribute::new("A", DataType::Int),
            Attribute::new("B", DataType::Text),
        ])
        .unwrap();
        let e = s.encrypted();
        assert_eq!(e.arity(), 2);
        assert_eq!(e.attribute(0).unwrap().data_type, DataType::Bytes);
        assert_eq!(e.attribute(1).unwrap().name, "B");
    }

    #[test]
    fn display() {
        let s = Schema::from_names(["A", "B"]).unwrap();
        assert_eq!(s.to_string(), "(A: any, B: any)");
    }
}
