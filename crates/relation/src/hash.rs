//! Fast, deterministic hashing for the planning hot paths.
//!
//! The interned planning layers key their maps by dense integers (`u32`/`u64` group
//! ids, `AttrSet` bit patterns) or cell values; `std`'s default SipHash is
//! DoS-resistant but an order of magnitude slower than the planning loops can
//! afford. [`FastHasher`] is an FxHash-style multiply-rotate fold with a strong
//! 64-bit finaliser — deterministic across runs and platforms, which the
//! seed-reproducibility guarantees of the pipeline rely on.
//!
//! **Keying:** the fold itself is the keyless FxHash recipe, but every
//! [`FastHasher`] starts from a **per-process random key** ([`process_hash_seed`],
//! drawn once from `std`'s ambient `RandomState` entropy), so a party who controls
//! the *plaintext table contents* cannot precompute values that collide in the
//! dictionary-build and fresh-value maps and degrade them toward O(n²) probing.
//! Nothing observable depends on the key: every map keyed through this hasher is
//! either a pure membership/lookup structure or has its output canonically re-sorted
//! (dictionary ids are reassigned in value order, partition classes are sorted), so
//! pipelines stay byte-identical across processes with different keys — which the
//! golden-digest tests in `crates/core/tests/interned_plan_equiv.rs` pin down.
//! Deterministic runs (differential fuzzing, hash-sensitive benchmarks) can pin the
//! key with [`fix_hash_seed`] or the `F2_HASH_SEED` environment variable before the
//! first map is built. Public API types (frequency histograms, `all_values`) keep
//! `std`'s default hasher.
//!
//! (`f2_crypto::entropy_seed` would be the natural seed source, but `f2_crypto`
//! depends on this crate, so the seed is drawn from the same ambient entropy via
//! `std`'s `RandomState` instead.)

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, BuildHasherDefault, Hasher};
use std::sync::OnceLock;

/// The process-wide hash key, initialised on first use.
static HASH_SEED: OnceLock<u64> = OnceLock::new();

/// The per-process random key every [`FastHasher`] starts from.
///
/// Resolution order, decided once on first call: the value pinned by
/// [`fix_hash_seed`] (if it won the race), else the `F2_HASH_SEED` environment
/// variable (decimal or `0x`-prefixed hex), else fresh ambient entropy.
pub fn process_hash_seed() -> u64 {
    *HASH_SEED.get_or_init(|| {
        if let Ok(raw) = std::env::var("F2_HASH_SEED") {
            let raw = raw.trim();
            let parsed = match raw.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => raw.parse().ok(),
            };
            // The variable exists to *pin* determinism; silently falling back to
            // random entropy on a typo would defeat exactly that, so fail loudly.
            return parsed.unwrap_or_else(|| {
                panic!("F2_HASH_SEED must be a decimal or 0x-prefixed hex u64, got `{raw}`")
            });
        }
        // Two independently keyed SipHash states: ambient entropy without an
        // f2_crypto dependency (which would be circular — crypto builds on this
        // crate).
        let s = std::collections::hash_map::RandomState::new();
        let t = std::collections::hash_map::RandomState::new();
        s.hash_one(0x5eed_u64) ^ t.hash_one(0xf00d_u64).rotate_left(32)
    })
}

/// Pin the process hash key (for deterministic test runs). Returns `false` if the
/// key was already fixed — by an earlier call, the `F2_HASH_SEED` variable, or a map
/// built before this call — and the requested value lost the race.
pub fn fix_hash_seed(seed: u64) -> bool {
    HASH_SEED.set(seed).is_ok() || process_hash_seed() == seed
}

/// FxHash-style streaming hasher with a splitmix64 finaliser, keyed per process.
#[derive(Debug, Clone)]
pub struct FastHasher(u64);

impl Default for FastHasher {
    fn default() -> Self {
        FastHasher(process_hash_seed())
    }
}

/// Rotate-xor-multiply fold (the rustc FxHash recipe).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finaliser: FxHash alone leaves low bits weak, and HashMap's
        // bucket index comes from the high bits anyway.
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed through [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed through [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// A `FastMap` with at least `cap` capacity.
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn hasher_is_keyed_by_the_process_seed() {
        // Two hashers in one process share the key …
        let (a, b) = (FastHasher::default(), FastHasher::default());
        assert_eq!(a.0, b.0);
        // … and an explicitly different key changes the digest of the same input.
        let digest = |seed: u64, v: u64| {
            let mut h = FastHasher(seed);
            h.write_u64(v);
            h.finish()
        };
        let seed = process_hash_seed();
        assert_ne!(digest(seed, 42), digest(seed ^ 1, 42));
        // fix_hash_seed after first use reports whether the value matches the one in
        // effect (the seed itself can no longer change).
        assert!(fix_hash_seed(seed));
        assert!(!fix_hash_seed(seed ^ 1));
        assert_eq!(process_hash_seed(), seed);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u32> = fast_map_with_capacity(8);
        for i in 0..100u64 {
            m.insert(i, i as u32 * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&7], 14);
    }

    #[test]
    fn byte_streams_differ_by_length() {
        let hash = |b: &[u8]| {
            let mut h = FastHasher::default();
            h.write(b);
            h.finish()
        };
        assert_ne!(hash(b"ab"), hash(b"ab\0"));
        assert_ne!(hash(b"abcdefgh"), hash(b"abcdefg"));
    }
}
