//! Fast, deterministic hashing for the planning hot paths.
//!
//! The interned planning layers key their maps by dense integers (`u32`/`u64` group
//! ids, `AttrSet` bit patterns) or cell values; `std`'s default SipHash is
//! DoS-resistant but an order of magnitude slower than the planning loops can
//! afford. [`FastHasher`] is an FxHash-style multiply-rotate fold with a strong
//! 64-bit finaliser — deterministic across runs and platforms, which the
//! seed-reproducibility guarantees of the pipeline rely on.
//!
//! **Trade-off:** unlike SipHash this recipe is keyless, so a party who controls the
//! *plaintext table contents* can craft values that collide in the dictionary-build
//! and fresh-value maps and degrade them toward O(n²) probing (a slowdown, never a
//! correctness issue). That is accepted for this research codebase and recorded in
//! ROADMAP.md's debt list; a deployment facing hostile data should swap the
//! `BuildHasherDefault` for a keyed hasher. Public API types (frequency histograms,
//! `all_values`) keep `std`'s default hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style streaming hasher with a splitmix64 finaliser.
#[derive(Debug, Default, Clone)]
pub struct FastHasher(u64);

/// Rotate-xor-multiply fold (the rustc FxHash recipe).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finaliser: FxHash alone leaves low bits weak, and HashMap's
        // bucket index comes from the high bits anyway.
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed through [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed through [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// A `FastMap` with at least `cap` capacity.
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u32> = fast_map_with_capacity(8);
        for i in 0..100u64 {
            m.insert(i, i as u32 * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&7], 14);
    }

    #[test]
    fn byte_streams_differ_by_length() {
        let hash = |b: &[u8]| {
            let mut h = FastHasher::default();
            h.write(b);
            h.finish()
        };
        assert_ne!(hash(b"ab"), hash(b"ab\0"));
        assert_ne!(hash(b"abcdefgh"), hash(b"abcdefg"));
    }
}
