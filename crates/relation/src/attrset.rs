//! Compact attribute sets.
//!
//! The paper manipulates attribute sets constantly: the `X`, `Y` of a functional
//! dependency, the maximal attribute sets (MAS, Definition 3.2), the overlap `Z = X ∩ Y`
//! of two MASs, and the nodes of the FD lattice (Section 3.4). [`AttrSet`] is a 64-bit
//! bit-set over attribute *indices* that supports all of those operations in O(1).

use std::fmt;

/// A set of attribute indices (0-based positions in a [`crate::Schema`]).
///
/// At most 64 attributes are supported, which comfortably covers the paper's datasets
/// (9, 21 and 7 attributes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(u64);

impl AttrSet {
    /// Maximum number of attributes representable.
    pub const MAX_ATTRS: usize = 64;

    /// The empty set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Create an empty set.
    pub fn new() -> Self {
        AttrSet(0)
    }

    /// Create a singleton set `{attr}`.
    ///
    /// # Panics
    /// Panics if `attr >= 64`.
    pub fn single(attr: usize) -> Self {
        assert!(attr < Self::MAX_ATTRS, "attribute index {attr} out of range");
        AttrSet(1u64 << attr)
    }

    /// Create the full set `{0, …, arity-1}`.
    pub fn all(arity: usize) -> Self {
        assert!(arity <= Self::MAX_ATTRS);
        if arity == Self::MAX_ATTRS {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << arity) - 1)
        }
    }

    /// Build a set from attribute indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = AttrSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Raw bit representation (useful for canonical ordering and serialization).
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuild a set from its raw bit representation (inverse of [`AttrSet::bits`]).
    pub fn from_bits(bits: u64) -> Self {
        AttrSet(bits)
    }

    /// Number of attributes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Insert an attribute index.
    pub fn insert(&mut self, attr: usize) {
        assert!(attr < Self::MAX_ATTRS, "attribute index {attr} out of range");
        self.0 |= 1u64 << attr;
    }

    /// Remove an attribute index.
    pub fn remove(&mut self, attr: usize) {
        if attr < Self::MAX_ATTRS {
            self.0 &= !(1u64 << attr);
        }
    }

    /// Membership test.
    pub fn contains(self, attr: usize) -> bool {
        attr < Self::MAX_ATTRS && (self.0 >> attr) & 1 == 1
    }

    /// `self ∪ other`.
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// `self \ other`.
    pub fn difference(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// `self ∪ {attr}` (non-mutating).
    pub fn with(self, attr: usize) -> AttrSet {
        let mut s = self;
        s.insert(attr);
        s
    }

    /// `self \ {attr}` (non-mutating).
    pub fn without(self, attr: usize) -> AttrSet {
        let mut s = self;
        s.remove(attr);
        s
    }

    /// True if `self ⊆ other`.
    pub fn is_subset_of(self, other: AttrSet) -> bool {
        self.0 & other.0 == self.0
    }

    /// True if `self ⊇ other`.
    pub fn is_superset_of(self, other: AttrSet) -> bool {
        other.is_subset_of(self)
    }

    /// True if `self ⊊ other`.
    pub fn is_proper_subset_of(self, other: AttrSet) -> bool {
        self != other && self.is_subset_of(other)
    }

    /// True if the two sets share at least one attribute (the paper's definition of
    /// *overlapping* MASs, Section 3.3).
    pub fn overlaps(self, other: AttrSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterate over member attribute indices in ascending order.
    pub fn iter(self) -> AttrSetIter {
        AttrSetIter(self.0)
    }

    /// The lowest attribute index, if non-empty.
    pub fn first(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterate over all direct subsets obtained by removing one attribute
    /// (the children of a lattice node).
    pub fn direct_subsets(self) -> impl Iterator<Item = AttrSet> {
        self.iter().map(move |a| self.without(a))
    }

    /// Iterate over all direct supersets within `universe` obtained by adding one
    /// attribute not already present.
    pub fn direct_supersets(self, universe: AttrSet) -> impl Iterator<Item = AttrSet> {
        universe.difference(self).iter().map(move |a| self.with(a))
    }

    /// Render the set using schema attribute names, e.g. `{City, Zip}`.
    pub fn display_with(&self, names: &[String]) -> String {
        let mut parts = Vec::with_capacity(self.len());
        for a in self.iter() {
            if a < names.len() {
                parts.push(names[a].clone());
            } else {
                parts.push(format!("#{a}"));
            }
        }
        format!("{{{}}}", parts.join(", "))
    }
}

/// Iterator over the attribute indices of an [`AttrSet`].
pub struct AttrSetIter(u64);

impl Iterator for AttrSetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(idx)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

impl FromIterator<usize> for AttrSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        AttrSet::from_indices(iter)
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttrSet{{")?;
        let mut first = true;
        for a in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for a in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_operations() {
        let a = AttrSet::from_indices([0, 2, 5]);
        let b = AttrSet::from_indices([2, 3]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(2));
        assert!(!a.contains(1));
        assert_eq!(a.union(b), AttrSet::from_indices([0, 2, 3, 5]));
        assert_eq!(a.intersect(b), AttrSet::single(2));
        assert_eq!(a.difference(b), AttrSet::from_indices([0, 5]));
        assert!(a.overlaps(b));
        assert!(!a.overlaps(AttrSet::single(7)));
    }

    #[test]
    fn subset_relations() {
        let a = AttrSet::from_indices([1, 2]);
        let b = AttrSet::from_indices([1, 2, 3]);
        assert!(a.is_subset_of(b));
        assert!(a.is_proper_subset_of(b));
        assert!(b.is_superset_of(a));
        assert!(!b.is_subset_of(a));
        assert!(a.is_subset_of(a));
        assert!(!a.is_proper_subset_of(a));
        assert!(AttrSet::EMPTY.is_subset_of(a));
    }

    #[test]
    fn iteration_order_is_ascending() {
        let a = AttrSet::from_indices([5, 1, 9]);
        let v: Vec<usize> = a.iter().collect();
        assert_eq!(v, vec![1, 5, 9]);
        assert_eq!(a.first(), Some(1));
        assert_eq!(AttrSet::EMPTY.first(), None);
    }

    #[test]
    fn all_and_single() {
        assert_eq!(AttrSet::all(3), AttrSet::from_indices([0, 1, 2]));
        assert_eq!(AttrSet::all(0), AttrSet::EMPTY);
        assert_eq!(AttrSet::all(64).len(), 64);
        assert_eq!(AttrSet::single(63).len(), 1);
    }

    #[test]
    #[should_panic]
    fn single_out_of_range_panics() {
        let _ = AttrSet::single(64);
    }

    #[test]
    fn direct_neighbours() {
        let a = AttrSet::from_indices([0, 1]);
        let subs: Vec<AttrSet> = a.direct_subsets().collect();
        assert_eq!(subs.len(), 2);
        assert!(subs.contains(&AttrSet::single(0)));
        assert!(subs.contains(&AttrSet::single(1)));

        let sups: Vec<AttrSet> = a.direct_supersets(AttrSet::all(4)).collect();
        assert_eq!(sups.len(), 2);
        assert!(sups.contains(&AttrSet::from_indices([0, 1, 2])));
        assert!(sups.contains(&AttrSet::from_indices([0, 1, 3])));
    }

    #[test]
    fn display_with_names() {
        let names = vec!["A".to_string(), "B".to_string(), "C".to_string()];
        let s = AttrSet::from_indices([0, 2]);
        assert_eq!(s.display_with(&names), "{A, C}");
        assert_eq!(format!("{s}"), "{0,2}");
    }

    #[test]
    fn remove_and_without() {
        let mut a = AttrSet::from_indices([0, 1, 2]);
        a.remove(1);
        assert_eq!(a, AttrSet::from_indices([0, 2]));
        assert_eq!(a.without(0), AttrSet::single(2));
        assert_eq!(a.with(5), AttrSet::from_indices([0, 2, 5]));
        // removing a non-member or out-of-range index is a no-op
        a.remove(40);
        a.remove(64);
        assert_eq!(a, AttrSet::from_indices([0, 2]));
    }
}
