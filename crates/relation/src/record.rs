//! Records (tuples).

use crate::{AttrSet, Value};
use std::fmt;

/// A single tuple: one [`Value`] per schema attribute, in schema order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Build a record from values.
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// Number of cells.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Access a cell by attribute index.
    pub fn get(&self, attr: usize) -> Option<&Value> {
        self.values.get(attr)
    }

    /// Mutable access to a cell.
    pub fn get_mut(&mut self, attr: usize) -> Option<&mut Value> {
        self.values.get_mut(attr)
    }

    /// Overwrite a cell. Panics if out of range.
    pub fn set(&mut self, attr: usize, value: Value) {
        self.values[attr] = value;
    }

    /// All cells in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the record, returning its cells.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Project the record onto an attribute set: the paper's `r[X]`.
    ///
    /// Values are returned in ascending attribute-index order, so two records have
    /// equal projections iff they agree on every attribute of `attrs`.
    pub fn project(&self, attrs: AttrSet) -> Vec<Value> {
        attrs.iter().filter_map(|a| self.values.get(a).cloned()).collect()
    }

    /// Like [`Record::project`] but returns references (no cloning).
    pub fn project_ref(&self, attrs: AttrSet) -> Vec<&Value> {
        attrs.iter().filter_map(|a| self.values.get(a)).collect()
    }

    /// True if `self` and `other` agree on every attribute in `attrs`
    /// (the paper's `r1[X] = r2[X]`).
    pub fn agrees_on(&self, other: &Record, attrs: AttrSet) -> bool {
        attrs.iter().all(|a| self.values.get(a) == other.values.get(a))
    }

    /// The set of attributes on which `self` and `other` agree — the *agree set*,
    /// whose maximal elements over all record pairs are exactly the MASs.
    pub fn agree_set(&self, other: &Record, universe: AttrSet) -> AttrSet {
        let mut s = AttrSet::new();
        for a in universe.iter() {
            if self.values.get(a) == other.values.get(a) {
                s.insert(a);
            }
        }
        s
    }

    /// Total serialized size of the record in bytes.
    pub fn size_bytes(&self) -> usize {
        self.values.iter().map(Value::size_bytes).sum()
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record::new(values)
    }
}

impl FromIterator<Value> for Record {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Record::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Build a [`Record`] tersely in tests and examples:
/// `record![1, "a", Value::Null]`.
#[macro_export]
macro_rules! record {
    ($($v:expr),* $(,)?) => {
        $crate::Record::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[&str]) -> Record {
        Record::new(vals.iter().map(|s| Value::text(*s)).collect())
    }

    #[test]
    fn projection_follows_index_order() {
        let rec = r(&["a", "b", "c", "d"]);
        let p = rec.project(AttrSet::from_indices([3, 1]));
        assert_eq!(p, vec![Value::text("b"), Value::text("d")]);
        assert_eq!(rec.project(AttrSet::EMPTY), Vec::<Value>::new());
    }

    #[test]
    fn agreement() {
        let r1 = r(&["a", "b", "c"]);
        let r2 = r(&["a", "x", "c"]);
        assert!(r1.agrees_on(&r2, AttrSet::from_indices([0, 2])));
        assert!(!r1.agrees_on(&r2, AttrSet::from_indices([0, 1])));
        assert_eq!(r1.agree_set(&r2, AttrSet::all(3)), AttrSet::from_indices([0, 2]));
    }

    #[test]
    fn set_and_get() {
        let mut rec = r(&["a", "b"]);
        rec.set(1, Value::Int(9));
        assert_eq!(rec.get(1), Some(&Value::Int(9)));
        assert_eq!(rec.get(5), None);
        *rec.get_mut(0).unwrap() = Value::Null;
        assert!(rec.get(0).unwrap().is_null());
    }

    #[test]
    fn record_macro() {
        let rec = record![1i64, "x"];
        assert_eq!(rec.arity(), 2);
        assert_eq!(rec.get(0), Some(&Value::Int(1)));
        assert_eq!(rec.get(1), Some(&Value::text("x")));
    }

    #[test]
    fn display_and_size() {
        let rec = record![1i64, "ab"];
        assert_eq!(rec.to_string(), "(1, ab)");
        assert_eq!(rec.size_bytes(), 10);
    }
}
