//! Borrowed row-range views over a [`Table`] — the zero-copy chunk substrate of the
//! streaming engine.
//!
//! The engine shards a table into row-range chunks. Before this module existed every
//! chunk was a cloned sub-`Table` (`rows[range].to_vec()`), and every chunk rebuilt
//! its own [`ColumnarIndex`] from scratch — one `Value` hash per cell per chunk. A
//! [`TableView`] removes both costs:
//!
//! * the rows are a **borrowed slice** of the parent's records — no clone at all for
//!   consumers that iterate rows (the cell-wise encryption backends);
//! * the view's columnar index is **derived from the parent's** by pure integer work
//!   ([`TableView::derived_columnar`]): the parent's `row → id` arrays are sliced to
//!   the range and compacted to dense local ids. Because parent ids are assigned in
//!   ascending [`Value`] order, ascending *parent* ids restricted to the range are
//!   ascending *local* values too, so the compacted dictionary satisfies every
//!   invariant of a fresh [`ColumnarIndex::build`] — verified structurally by
//!   `derived_columnar_matches_fresh_build` below and property-tested in
//!   `crates/relation/tests/interned_equiv.rs`.
//!
//! Consumers that genuinely need an owned `Table` (the F² encryptor pipeline, whose
//! planning layers take `&Table`) call [`TableView::to_table`], which clones the
//! range's records but pre-seeds the new table's columnar cache with the derived
//! index — the per-chunk dictionary rebuild is gone even on that path.

use crate::columnar::{ColumnDictionary, ColumnarIndex};
use crate::{Record, RelationError, Result, RowId, Schema, Table, Value};
use std::ops::Range;

/// A borrowed, immutable view of a contiguous row range of a [`Table`].
///
/// Views are cheap to create and clone (a reference plus a range); they never
/// outlive or mutate their parent. Row ids are **view-local**: row `0` of the view
/// is row `range.start` of the parent.
#[derive(Debug, Clone)]
pub struct TableView<'a> {
    table: &'a Table,
    range: Range<usize>,
}

impl Table {
    /// A borrowed view of the row range `range`, validated against the table bounds.
    pub fn view(&self, range: Range<usize>) -> Result<TableView<'_>> {
        if range.start > range.end || range.end > self.row_count() {
            return Err(RelationError::RowOutOfRange {
                row: range.end.max(range.start),
                rows: self.row_count(),
            });
        }
        Ok(TableView { table: self, range })
    }

    /// A view covering the whole table.
    pub fn as_view(&self) -> TableView<'_> {
        TableView { table: self, range: 0..self.row_count() }
    }
}

impl<'a> TableView<'a> {
    /// The parent table this view borrows from.
    pub fn parent(&self) -> &'a Table {
        self.table
    }

    /// The parent row range the view covers.
    pub fn parent_range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// The (parent's) schema.
    pub fn schema(&self) -> &'a Schema {
        self.table.schema()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.table.arity()
    }

    /// Number of rows in the view.
    pub fn row_count(&self) -> usize {
        self.range.len()
    }

    /// True if the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The viewed rows, as a borrowed slice of the parent's records.
    pub fn rows(&self) -> &'a [Record] {
        &self.table.rows()[self.range.clone()]
    }

    /// Iterate over `(view-local RowId, &Record)`.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &'a Record)> {
        self.rows().iter().enumerate()
    }

    /// Access a row by view-local id.
    pub fn row(&self, id: RowId) -> Result<&'a Record> {
        self.rows().get(id).ok_or(RelationError::RowOutOfRange { row: id, rows: self.row_count() })
    }

    /// Access a single cell by view-local row id.
    pub fn cell(&self, row: RowId, attr: usize) -> Result<&'a Value> {
        let r = self.row(row)?;
        r.get(attr)
            .ok_or(RelationError::AttributeIndexOutOfRange { index: attr, arity: self.arity() })
    }

    /// Total serialized size of the viewed rows in bytes.
    pub fn size_bytes(&self) -> usize {
        self.rows().iter().map(Record::size_bytes).sum()
    }

    /// Derive the view's [`ColumnarIndex`] from the parent's cached one: per column,
    /// slice the parent's `row → id` array to the range and compact the ids that
    /// actually occur to dense local ids (in ascending parent-id order, which *is*
    /// ascending value order). No `Value` is hashed; the only value clones are the
    /// distinct values present in the range, and the work is O(rows·log rows) *per
    /// chunk* — independent of the parent's cardinality, so a unique-ID column over
    /// millions of rows costs each chunk only its own slice. Builds the parent's
    /// index first if it does not exist yet — that build is then shared by every
    /// other view.
    pub fn derived_columnar(&self) -> ColumnarIndex {
        let parent = self.table.columnar();
        let columns = (0..self.arity())
            .map(|a| {
                let col = parent.column(a);
                let parent_ids = &col.ids()[self.range.clone()];
                // The distinct parent ids of the range, ascending — ascending parent
                // ids are ascending values, so positions in this list are exactly
                // the dense, value-sorted local ids.
                let mut distinct: Vec<u32> = parent_ids.to_vec();
                distinct.sort_unstable();
                distinct.dedup();
                let values = distinct.iter().map(|&id| col.value_of(id).clone()).collect();
                let ids = parent_ids
                    .iter()
                    .map(|&id| distinct.binary_search(&id).expect("id was collected above") as u32)
                    .collect();
                ColumnDictionary::from_parts(values, ids)
            })
            .collect();
        ColumnarIndex::from_columns(columns, self.row_count())
    }

    /// Materialise the view as an owned [`Table`], cloning the range's records but
    /// pre-seeding the table's columnar cache with [`TableView::derived_columnar`] —
    /// the chunk never rebuilds its dictionaries from scratch.
    pub fn to_table(&self) -> Table {
        Table::from_parts_with_columns(
            self.schema().clone(),
            self.rows().to_vec(),
            self.derived_columnar(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record, AttrSet};

    fn sample() -> Table {
        let schema = Schema::from_names(["A", "B"]).unwrap();
        Table::new(
            schema,
            vec![
                record!["a2", "b1"],
                record!["a1", "b2"],
                record!["a1", "b1"],
                record!["a3", "b2"],
                record!["a1", "b1"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn view_bounds_are_validated() {
        let t = sample();
        assert!(t.view(0..5).is_ok());
        assert!(t.view(2..2).is_ok());
        assert!(t.view(0..6).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = t.view(3..1);
        assert!(reversed.is_err());
    }

    #[test]
    fn view_exposes_the_range() {
        let t = sample();
        let v = t.view(1..4).unwrap();
        assert_eq!(v.row_count(), 3);
        assert_eq!(v.arity(), 2);
        assert_eq!(v.cell(0, 0).unwrap(), &Value::text("a1"));
        assert_eq!(v.cell(2, 1).unwrap(), &Value::text("b2"));
        assert!(v.cell(3, 0).is_err());
        assert!(v.cell(0, 2).is_err());
        assert_eq!(v.rows().len(), 3);
        assert_eq!(v.iter().count(), 3);
        assert_eq!(v.parent_range(), 1..4);
        assert_eq!(t.as_view().row_count(), t.row_count());
        assert_eq!(v.size_bytes(), v.to_table().size_bytes());
    }

    #[test]
    fn derived_columnar_matches_fresh_build() {
        let t = sample();
        for range in [0..5, 1..4, 2..2, 0..1, 3..5] {
            let view = t.view(range.clone()).unwrap();
            let derived = view.derived_columnar();
            let fresh = ColumnarIndex::build(
                &Table::new(t.schema().clone(), view.rows().to_vec()).unwrap(),
            );
            assert_eq!(derived.row_count(), fresh.row_count(), "{range:?}");
            for a in 0..t.arity() {
                assert_eq!(derived.column(a).values(), fresh.column(a).values(), "{range:?}/{a}");
                assert_eq!(derived.column(a).ids(), fresh.column(a).ids(), "{range:?}/{a}");
            }
        }
    }

    #[test]
    fn to_table_equals_cloned_subtable_and_partitions_agree() {
        let t = sample();
        let view = t.view(1..5).unwrap();
        let materialised = view.to_table();
        let cloned = Table::new(t.schema().clone(), t.rows()[1..5].to_vec()).unwrap();
        assert_eq!(materialised, cloned);
        // The pre-seeded index answers partition queries identically to a fresh one.
        for attrs in [AttrSet::single(0), AttrSet::single(1), AttrSet::from_indices([0, 1])] {
            assert_eq!(materialised.partition(attrs).classes(), cloned.partition(attrs).classes());
        }
    }
}
