//! Table statistics.
//!
//! The evaluation section of the paper characterises its datasets by attribute count,
//! tuple count and size (Table 1), and explains its results through per-attribute
//! domain sizes ("the OrderStatus and OrderPriority attributes only have 3 and 5 unique
//! values") and the number of equivalence classes per MAS. These statistics are
//! computed here so the benchmark harness can print a faithful Table 1 and the
//! explanatory quantities alongside each figure.

use crate::{AttrSet, Table};

/// Statistics for a single attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeStats {
    /// Attribute name.
    pub name: String,
    /// Number of distinct values.
    pub distinct: usize,
    /// Size of the largest equivalence class of the attribute.
    pub max_frequency: usize,
    /// Whether every value is unique (the attribute is a key on its own).
    pub is_unique: bool,
}

/// Whole-table statistics, in the spirit of Table 1 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    /// Number of attributes (`m`).
    pub attributes: usize,
    /// Number of tuples (`n`).
    pub tuples: usize,
    /// Serialized size in bytes.
    pub size_bytes: usize,
    /// Per-attribute statistics.
    pub per_attribute: Vec<AttributeStats>,
}

impl TableStats {
    /// Compute statistics for a table.
    pub fn compute(table: &Table) -> TableStats {
        let names = table.schema().names();
        let mut per_attribute = Vec::with_capacity(names.len());
        for (idx, name) in names.iter().enumerate() {
            let p = table.partition(AttrSet::single(idx));
            let distinct = p.class_count();
            let max_frequency = p.max_class_size();
            per_attribute.push(AttributeStats {
                name: name.clone(),
                distinct,
                max_frequency,
                is_unique: max_frequency <= 1,
            });
        }
        TableStats {
            attributes: table.arity(),
            tuples: table.row_count(),
            size_bytes: table.size_bytes(),
            per_attribute,
        }
    }

    /// Human-readable size, e.g. `1.64GB`, matching the units used in Table 1.
    pub fn human_size(&self) -> String {
        human_bytes(self.size_bytes)
    }
}

/// Format a byte count the way the paper's Table 1 does (KB/MB/GB).
pub fn human_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2}GB", b / GB)
    } else if b >= MB {
        format!("{:.1}MB", b / MB)
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn stats_reflect_domain_sizes() {
        let t = crate::table! {
            ["Status", "Id"];
            ["O", "1"],
            ["O", "2"],
            ["F", "3"],
            ["P", "4"],
        };
        let s = TableStats::compute(&t);
        assert_eq!(s.attributes, 2);
        assert_eq!(s.tuples, 4);
        assert!(s.size_bytes > 0);
        let status = &s.per_attribute[0];
        assert_eq!(status.distinct, 3);
        assert_eq!(status.max_frequency, 2);
        assert!(!status.is_unique);
        let id = &s.per_attribute[1];
        assert_eq!(id.distinct, 4);
        assert!(id.is_unique);
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert!(human_bytes(5 * 1024 * 1024).starts_with("5.0MB"));
        assert!(human_bytes(2 * 1024 * 1024 * 1024).ends_with("GB"));
    }
}
