//! Cell values.
//!
//! F² encrypts a table *cell by cell* (Section 2.1 of the paper), so the substrate
//! needs a value type that can represent both plaintext domain values (integers,
//! strings, fixed-point decimals, dates) and raw ciphertext bytes produced by the
//! probabilistic encryption scheme.

use bytes::Bytes;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single cell value.
///
/// `Value` implements total ordering and hashing so that it can be used as the key of
/// partition maps (Definition 3.3) and frequency histograms (the attacker's background
/// knowledge in Section 2.4).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Fixed-point decimal stored as scaled integer (`digits`, `scale`): the logical
    /// value is `digits / 10^scale`. TPC-H monetary columns use scale 2.
    Decimal {
        /// Scaled integral representation.
        digits: i64,
        /// Number of fractional digits.
        scale: u8,
    },
    /// UTF-8 text.
    Text(String),
    /// Calendar date encoded as days since 1970-01-01 (proleptic Gregorian).
    Date(i32),
    /// Raw bytes — used for ciphertext cells in the encrypted table `D̂`.
    Bytes(Bytes),
}

impl Value {
    /// Build a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Build a byte-string value (used for ciphertexts).
    pub fn bytes(b: impl Into<Bytes>) -> Self {
        Value::Bytes(b.into())
    }

    /// Build a decimal with two fractional digits (cents), the TPC-H convention.
    pub fn money(cents: i64) -> Self {
        Value::Decimal { digits: cents, scale: 2 }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if this value is a ciphertext byte string.
    pub fn is_bytes(&self) -> bool {
        matches!(self, Value::Bytes(_))
    }

    /// Return the contained integer, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Return the contained text, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Return the contained bytes, if any.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b.as_ref()),
            _ => None,
        }
    }

    /// Approximate in-memory / serialized size of the value in bytes. Used to report
    /// dataset sizes comparable to Table 1 of the paper.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Decimal { .. } => 9,
            Value::Text(s) => s.len(),
            Value::Date(_) => 4,
            Value::Bytes(b) => b.len(),
        }
    }

    /// A small integer identifying the variant, used to order across variants.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Decimal { .. } => 2,
            Value::Text(_) => 3,
            Value::Date(_) => 4,
            Value::Bytes(_) => 5,
        }
    }

    /// Serialize the value to a self-describing byte string. This is the plaintext fed
    /// to the probabilistic encryption scheme `e = ⟨r, F_k(r) ⊕ p⟩`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.size_bytes());
        self.encode_into(&mut out);
        out
    }

    /// Append the [`Value::encode`] byte string to `out` — the write-into-buffer form
    /// used by the bulk encryption paths so per-cell encoding stops allocating.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Decimal { digits, scale } => {
                out.push(2);
                out.extend_from_slice(&digits.to_le_bytes());
                out.push(*scale);
            }
            Value::Text(s) => {
                out.push(3);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.push(4);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Value::Bytes(b) => {
                out.push(5);
                out.extend_from_slice(b);
            }
        }
    }

    /// Inverse of [`Value::encode`]. Returns `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Value> {
        let (&tag, rest) = buf.split_first()?;
        match tag {
            0 => {
                if rest.is_empty() {
                    Some(Value::Null)
                } else {
                    None
                }
            }
            1 => {
                let arr: [u8; 8] = rest.try_into().ok()?;
                Some(Value::Int(i64::from_le_bytes(arr)))
            }
            2 => {
                if rest.len() != 9 {
                    return None;
                }
                let digits = i64::from_le_bytes(rest[..8].try_into().ok()?);
                Some(Value::Decimal { digits, scale: rest[8] })
            }
            3 => Some(Value::Text(String::from_utf8(rest.to_vec()).ok()?)),
            4 => {
                let arr: [u8; 4] = rest.try_into().ok()?;
                Some(Value::Date(i32::from_le_bytes(arr)))
            }
            5 => Some(Value::Bytes(Bytes::copy_from_slice(rest))),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Decimal { digits: a, scale: sa }, Value::Decimal { digits: b, scale: sb }) => {
                a == b && sa == sb
            }
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Decimal { digits, scale } => {
                digits.hash(state);
                scale.hash(state);
            }
            Value::Text(s) => s.hash(state),
            Value::Date(d) => d.hash(state),
            Value::Bytes(b) => b.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Decimal { digits: a, scale: sa }, Value::Decimal { digits: b, scale: sb }) => {
                sa.cmp(sb).then(a.cmp(b))
            }
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Decimal { digits, scale } => {
                let pow = 10i64.pow(u32::from(*scale));
                let whole = digits / pow;
                let frac = (digits % pow).abs();
                write!(f, "{whole}.{frac:0width$}", width = *scale as usize)
            }
            Value::Text(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "@{d}"),
            Value::Bytes(b) => {
                write!(f, "0x")?;
                for byte in b.iter().take(8) {
                    write!(f, "{byte:02x}")?;
                }
                if b.len() > 8 {
                    write!(f, "..")?;
                }
                Ok(())
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_within_variants() {
        assert_eq!(Value::Int(5), Value::Int(5));
        assert_ne!(Value::Int(5), Value::Int(6));
        assert_eq!(Value::text("a"), Value::text("a"));
        assert_ne!(Value::text("a"), Value::text("b"));
        assert_ne!(Value::Int(5), Value::text("5"));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn hash_consistent_with_eq() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Int(42)));
        assert_eq!(hash_of(&Value::text("x")), hash_of(&Value::text("x")));
        assert_ne!(hash_of(&Value::Int(1)), hash_of(&Value::text("1")));
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = [
            Value::text("b"),
            Value::Int(3),
            Value::Null,
            Value::Int(1),
            Value::text("a"),
            Value::bytes(vec![1, 2]),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Int(1));
        assert_eq!(vs[2], Value::Int(3));
        assert_eq!(vs[3], Value::text("a"));
    }

    #[test]
    fn decimal_display() {
        assert_eq!(Value::money(123456).to_string(), "1234.56");
        assert_eq!(Value::money(5).to_string(), "0.05");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases = vec![
            Value::Null,
            Value::Int(-77),
            Value::Int(i64::MAX),
            Value::money(999),
            Value::text("hello world"),
            Value::text(""),
            Value::Date(19000),
            Value::bytes(vec![0, 1, 2, 255]),
        ];
        for v in cases {
            let enc = v.encode();
            let dec = Value::decode(&enc).expect("decode");
            assert_eq!(v, dec, "roundtrip failed for {v:?}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Value::decode(&[]), None);
        assert_eq!(Value::decode(&[9, 1, 2]), None);
        assert_eq!(Value::decode(&[1, 1, 2]), None); // short int
    }

    #[test]
    fn size_bytes_reasonable() {
        assert_eq!(Value::Int(1).size_bytes(), 8);
        assert_eq!(Value::text("abcd").size_bytes(), 4);
        assert_eq!(Value::Null.size_bytes(), 1);
    }

    #[test]
    fn conversions() {
        let v: Value = 7i64.into();
        assert_eq!(v, Value::Int(7));
        let v: Value = "hi".into();
        assert_eq!(v, Value::text("hi"));
        assert!(Value::bytes(vec![1]).is_bytes());
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::text("t").as_text(), Some("t"));
        assert_eq!(Value::bytes(vec![9]).as_bytes(), Some(&[9u8][..]));
    }
}
