//! Partitions and equivalence classes (Definition 3.3 of the paper).
//!
//! The partition `π_X` of a table `D` under an attribute set `X` groups rows that agree
//! on every attribute of `X`. Partitions are the workhorse of the whole system:
//!
//! * a **MAS** is an attribute set whose partition contains at least one equivalence
//!   class of size > 1, and that is maximal with this property (Definition 3.2);
//! * **TANE** decides `X → A` by checking whether `π_X` *refines* `π_{X∪{A}}`
//!   (equivalently, whether they have the same number of stripped tuples);
//! * the **splitting-and-scaling** step of F² operates on the equivalence classes of a
//!   MAS partition.

use crate::hash::FastMap;
use crate::{AttrSet, RowId, Table, Value};
use std::collections::HashMap;

/// One equivalence class: the rows sharing a representative value on some attribute set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceClass {
    /// The shared projection `r[X]` (ascending attribute-index order). Shared
    /// (`Arc`) so the ECG/SSE planning layers can pass representatives through to
    /// ciphertext instances without deep-cloning one `Vec<Value>` per class.
    pub representative: std::sync::Arc<Vec<Value>>,
    /// Row ids of the members, in ascending order.
    pub rows: Vec<RowId>,
}

impl EquivalenceClass {
    /// Number of member rows (the paper's EC *size* / frequency `f`).
    pub fn size(&self) -> usize {
        self.rows.len()
    }
}

/// The partition `π_X` of a table under an attribute set `X`.
#[derive(Debug, Clone)]
pub struct Partition {
    attrs: AttrSet,
    classes: Vec<EquivalenceClass>,
    /// Total number of rows covered (the size of the table it was computed from).
    row_count: usize,
}

impl Partition {
    /// Compute `π_attrs` over the given table.
    ///
    /// Runs on the table's [interned columnar index](crate::ColumnarIndex) (built
    /// lazily and cached on the table): rows are grouped by dense id tuples instead
    /// of cloned `Vec<Value>` projections. Classes, ordering and representatives are
    /// identical to [`Partition::compute_generic`], the retained value-keyed oracle.
    pub fn compute(table: &Table, attrs: AttrSet) -> Partition {
        table.columnar().partition(attrs)
    }

    /// The original value-keyed implementation, kept as the equivalence oracle for
    /// the interned path (see `crates/relation/tests/interned_equiv.rs`).
    pub fn compute_generic(table: &Table, attrs: AttrSet) -> Partition {
        let mut map: HashMap<Vec<Value>, Vec<RowId>> = HashMap::with_capacity(table.row_count());
        for (id, rec) in table.iter() {
            map.entry(rec.project(attrs)).or_default().push(id);
        }
        let mut classes: Vec<EquivalenceClass> = map
            .into_iter()
            .map(|(representative, rows)| EquivalenceClass {
                representative: std::sync::Arc::new(representative),
                rows,
            })
            .collect();
        // Deterministic order: by representative value.
        classes.sort_by(|a, b| a.representative.cmp(&b.representative));
        Partition { attrs, classes, row_count: table.row_count() }
    }

    /// Assemble a partition from parts already in canonical (representative) order.
    /// Used by the interned columnar path.
    pub(crate) fn from_parts(
        attrs: AttrSet,
        classes: Vec<EquivalenceClass>,
        row_count: usize,
    ) -> Partition {
        Partition { attrs, classes, row_count }
    }

    /// The attribute set this partition was computed over.
    pub fn attrs(&self) -> AttrSet {
        self.attrs
    }

    /// All equivalence classes.
    pub fn classes(&self) -> &[EquivalenceClass] {
        &self.classes
    }

    /// Number of equivalence classes (the paper's `t`).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of rows covered by the partition.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// True if at least one equivalence class has more than one member — i.e. the
    /// attribute set is *non-unique* (has duplicate projections). This is condition (1)
    /// of the MAS definition.
    pub fn has_duplicates(&self) -> bool {
        self.classes.iter().any(|c| c.size() > 1)
    }

    /// Number of rows that live in equivalence classes of size > 1.
    pub fn duplicated_row_count(&self) -> usize {
        self.classes.iter().filter(|c| c.size() > 1).map(EquivalenceClass::size).sum()
    }

    /// The largest equivalence class size.
    pub fn max_class_size(&self) -> usize {
        self.classes.iter().map(EquivalenceClass::size).max().unwrap_or(0)
    }

    /// Map each row id to the index of its equivalence class.
    pub fn row_to_class(&self) -> Vec<usize> {
        let mut out = vec![usize::MAX; self.row_count];
        for (ci, c) in self.classes.iter().enumerate() {
            for &r in &c.rows {
                if r < out.len() {
                    out[r] = ci;
                }
            }
        }
        out
    }

    /// True if this partition *refines* `other`: every equivalence class of `self` is
    /// contained in some class of `other`. `π_X` refines `π_Y` whenever `Y ⊆ X`, and
    /// `X → A` holds iff `π_X` refines `π_{A}` (Huhtala et al., used in Theorem 3.7).
    pub fn refines(&self, other: &Partition) -> bool {
        if self.row_count != other.row_count {
            return false;
        }
        let other_class_of = other.row_to_class();
        for c in &self.classes {
            let first = match c.rows.first() {
                Some(&r) => other_class_of.get(r).copied().unwrap_or(usize::MAX),
                None => continue,
            };
            if first == usize::MAX {
                return false;
            }
            if c.rows.iter().any(|&r| other_class_of.get(r).copied().unwrap_or(usize::MAX) != first)
            {
                return false;
            }
        }
        true
    }

    /// Iterate over the row sets of the equivalence classes with more than one
    /// member, as borrowed slices — no per-class clone. This is what MAS discovery
    /// and the SSE planner actually need from a partition.
    pub fn duplicate_row_sets(&self) -> impl Iterator<Item = &[RowId]> {
        self.classes.iter().filter(|c| c.size() > 1).map(|c| c.rows.as_slice())
    }

    /// Convert to a stripped partition (singleton classes dropped), the representation
    /// used by TANE and the MAS search for efficiency.
    pub fn stripped(&self) -> StrippedPartition {
        let classes: Vec<Vec<RowId>> = self.duplicate_row_sets().map(<[RowId]>::to_vec).collect();
        StrippedPartition::from_classes(classes, self.row_count)
    }
}

/// A *stripped* partition: only the equivalence classes of size > 1 are kept.
///
/// TANE's key insight is that singleton classes carry no information for FD checking,
/// and that stripped partitions can be intersected ("product") in time linear in the
/// number of stripped rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    classes: Vec<Vec<RowId>>,
    row_count: usize,
    element_count: usize,
}

impl StrippedPartition {
    /// Build from explicit classes (all of size ≥ 2) and the total row count.
    pub fn from_classes(classes: Vec<Vec<RowId>>, row_count: usize) -> Self {
        let element_count = classes.iter().map(Vec::len).sum();
        StrippedPartition { classes, row_count, element_count }
    }

    /// Compute the stripped partition of a table under a single attribute.
    ///
    /// Goes straight through the table's interned columnar index: singleton classes
    /// are dropped before any representative value is materialised.
    pub fn for_attribute(table: &Table, attr: usize) -> Self {
        table.columnar().stripped(AttrSet::single(attr))
    }

    /// Compute the stripped partition of a table under an attribute set (interned
    /// fast path, same class order as `Partition::compute(..).stripped()`).
    pub fn for_attrs(table: &Table, attrs: AttrSet) -> Self {
        table.columnar().stripped(attrs)
    }

    /// The non-singleton classes.
    pub fn classes(&self) -> &[Vec<RowId>] {
        &self.classes
    }

    /// Number of non-singleton classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of rows appearing in non-singleton classes (`‖π‖` in TANE's notation).
    pub fn element_count(&self) -> usize {
        self.element_count
    }

    /// Total rows of the underlying table.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// TANE's error measure `e(X) = (‖π_X‖ − |π_X|) / |r|` numerator: the minimum number
    /// of rows to remove so the attribute set becomes a key.
    pub fn stripped_excess(&self) -> usize {
        self.element_count - self.class_count()
    }

    /// True if some class has more than one row (i.e. the attribute set is non-unique).
    pub fn has_duplicates(&self) -> bool {
        !self.classes.is_empty()
    }

    /// Partition product `π_X · π_Y = π_{X∪Y}` computed in O(‖π_X‖) time
    /// (TANE, Huhtala et al. 1999, Algorithm "STRIPPED_PRODUCT").
    pub fn product(&self, other: &StrippedPartition) -> StrippedPartition {
        self.product_with(other, &mut ProductScratch::new())
    }

    /// [`StrippedPartition::product`] with caller-owned scratch buffers.
    ///
    /// The lattice traversals (TANE levels, the MAS DFS) take one product per visited
    /// node; reusing the row-indexed probe table across calls removes the dominant
    /// `O(row_count)` allocation from every node. Output is identical to
    /// [`StrippedPartition::product`].
    pub fn product_with(
        &self,
        other: &StrippedPartition,
        scratch: &mut ProductScratch,
    ) -> StrippedPartition {
        debug_assert_eq!(self.row_count, other.row_count);
        let epoch = scratch.begin(self.row_count);
        for (ci, class) in other.classes.iter().enumerate() {
            for &r in class {
                if r < self.row_count {
                    scratch.lookup[r] = (epoch, ci as u32);
                }
            }
        }
        let mut out: Vec<Vec<RowId>> = Vec::new();
        let bucket = &mut scratch.bucket;
        for class in &self.classes {
            bucket.clear();
            for &r in class {
                if let Some(&(stamp, ci)) = scratch.lookup.get(r) {
                    if stamp == epoch {
                        bucket.entry(ci).or_default().push(r);
                    }
                }
            }
            for (_, rows) in bucket.drain() {
                if rows.len() > 1 {
                    let mut rows = rows;
                    rows.sort_unstable();
                    out.push(rows);
                }
            }
        }
        out.sort();
        StrippedPartition::from_classes(out, self.row_count)
    }

    /// True if, whenever two rows share a class here, they also share a class in
    /// `other` — i.e. this (stripped) partition refines the other. For stripped
    /// partitions over `X` and `X ∪ {A}` this is exactly the TANE FD test `X → A`.
    pub fn refines_within(&self, other: &StrippedPartition) -> bool {
        let mut lookup: Vec<Option<usize>> = vec![None; self.row_count];
        for (ci, class) in other.classes.iter().enumerate() {
            for &r in class {
                if r < lookup.len() {
                    lookup[r] = Some(ci);
                }
            }
        }
        for class in &self.classes {
            let mut iter = class.iter();
            let first = match iter.next() {
                Some(&r) => lookup.get(r).copied().flatten(),
                None => continue,
            };
            if first.is_none() {
                return false;
            }
            if iter.any(|&r| lookup.get(r).copied().flatten() != first) {
                return false;
            }
        }
        true
    }
}

/// Reusable buffers for [`StrippedPartition::product_with`]: an epoch-stamped,
/// row-indexed probe table (never cleared — stale entries are skipped by epoch) plus
/// the per-class bucket map. One scratch serves one traversal; it grows to the
/// largest `row_count` it has seen.
#[derive(Debug, Default)]
pub struct ProductScratch {
    /// `row → (epoch, other-class id)`.
    lookup: Vec<(u32, u32)>,
    epoch: u32,
    bucket: FastMap<u32, Vec<RowId>>,
}

impl ProductScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> Self {
        ProductScratch::default()
    }

    /// Start a new product: bump the epoch and make sure the probe table covers
    /// `row_count` rows. Returns the epoch to stamp entries with.
    fn begin(&mut self, row_count: usize) -> u32 {
        if self.lookup.len() < row_count {
            self.lookup.resize(row_count, (0, 0));
        }
        // Epoch 0 is the "never written" stamp of freshly grown entries; wrap by
        // clearing so stale stamps can never collide with a live epoch.
        if self.epoch == u32::MAX {
            self.lookup.fill((0, 0));
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;
    use crate::Schema;

    /// The base table of Figure 1(a): FD A → B holds; MAS is {A, B, C}... actually the
    /// paper states the MASs of this table include {A,B,C} because (a1,b1,c1) repeats.
    fn figure1_table() -> Table {
        let schema = Schema::from_names(["A", "B", "C"]).unwrap();
        Table::new(
            schema,
            vec![
                record!["a1", "b1", "c1"],
                record!["a1", "b1", "c2"],
                record!["a1", "b1", "c3"],
                record!["a1", "b1", "c1"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn partition_of_single_attribute() {
        let t = figure1_table();
        let p = t.partition(AttrSet::single(2));
        assert_eq!(p.class_count(), 3);
        assert_eq!(p.max_class_size(), 2);
        assert!(p.has_duplicates());
        assert_eq!(p.duplicated_row_count(), 2);
        assert_eq!(p.row_count(), 4);
    }

    #[test]
    fn partition_of_attribute_set() {
        let t = figure1_table();
        let p = t.partition(AttrSet::from_indices([0, 1]));
        // (a1, b1) appears four times → one class of size 4.
        assert_eq!(p.class_count(), 1);
        assert_eq!(p.classes()[0].size(), 4);
        let p_abc = t.partition(AttrSet::all(3));
        // {A,B,C}: (a1,b1,c1) twice, the others once → 3 classes.
        assert_eq!(p_abc.class_count(), 3);
        assert!(p_abc.has_duplicates());
    }

    #[test]
    fn row_to_class_is_consistent() {
        let t = figure1_table();
        let p = t.partition(AttrSet::single(2));
        let r2c = p.row_to_class();
        assert_eq!(r2c.len(), 4);
        // rows 0 and 3 share c1.
        assert_eq!(r2c[0], r2c[3]);
        assert_ne!(r2c[0], r2c[1]);
    }

    #[test]
    fn refinement_captures_fds() {
        let t = figure1_table();
        // FD A → B holds: π_A refines π_B.
        let pa = t.partition(AttrSet::single(0));
        let pb = t.partition(AttrSet::single(1));
        let pc = t.partition(AttrSet::single(2));
        assert!(pa.refines(&pb));
        // C → A holds too (all A values equal).
        assert!(pc.refines(&pa));
        // A → C does not hold.
        assert!(!pa.refines(&pc));
    }

    #[test]
    fn stripped_partition_product_equals_direct_computation() {
        let schema = Schema::from_names(["A", "B"]).unwrap();
        let t = Table::new(
            schema,
            vec![
                record!["x", "1"],
                record!["x", "1"],
                record!["x", "2"],
                record!["y", "2"],
                record!["y", "2"],
                record!["z", "3"],
            ],
        )
        .unwrap();
        let sa = StrippedPartition::for_attribute(&t, 0);
        let sb = StrippedPartition::for_attribute(&t, 1);
        let direct = StrippedPartition::for_attrs(&t, AttrSet::from_indices([0, 1]));
        let via_product = sa.product(&sb);
        assert_eq!(direct, via_product);
        assert_eq!(via_product.classes().len(), 2);
        assert_eq!(via_product.element_count(), 4);
        assert_eq!(via_product.stripped_excess(), 2);
    }

    #[test]
    fn stripped_refinement_detects_fd() {
        let t = figure1_table();
        let sa = StrippedPartition::for_attribute(&t, 0);
        let sab = StrippedPartition::for_attrs(&t, AttrSet::from_indices([0, 1]));
        let sac = StrippedPartition::for_attrs(&t, AttrSet::from_indices([0, 2]));
        // A → B: stripped π_A refines stripped π_{AB}.
        assert!(sa.refines_within(&sab));
        // A → C does not hold.
        assert!(!sa.refines_within(&sac));
    }

    #[test]
    fn empty_table_partition() {
        let t = Table::empty(Schema::from_names(["A"]).unwrap());
        let p = t.partition(AttrSet::single(0));
        assert_eq!(p.class_count(), 0);
        assert!(!p.has_duplicates());
        assert_eq!(p.max_class_size(), 0);
        assert!(!p.stripped().has_duplicates());
    }

    #[test]
    fn stripped_drops_singletons() {
        let t = figure1_table();
        let p = t.partition(AttrSet::single(2));
        let s = p.stripped();
        assert_eq!(s.class_count(), 1);
        assert_eq!(s.element_count(), 2);
        assert_eq!(s.row_count(), 4);
    }
}
