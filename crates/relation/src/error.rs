//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by table construction, projection, and CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A record had a different arity than the schema.
    ArityMismatch {
        /// Number of attributes declared by the schema.
        expected: usize,
        /// Number of values supplied by the record.
        got: usize,
    },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// An attribute index was out of range.
    AttributeIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of attributes in the schema.
        arity: usize,
    },
    /// A row index was out of range.
    RowOutOfRange {
        /// The offending row id.
        row: usize,
        /// Number of rows in the table.
        rows: usize,
    },
    /// A value could not be parsed into the declared data type.
    TypeError {
        /// Attribute whose type was violated.
        attribute: String,
        /// Human-readable description of the offending value.
        value: String,
    },
    /// The schema declared more attributes than [`crate::AttrSet`] supports (64).
    TooManyAttributes(usize),
    /// Two schemas that were expected to be identical differ.
    SchemaMismatch,
    /// Malformed CSV input.
    Csv(String),
    /// Duplicate attribute name in a schema.
    DuplicateAttribute(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { expected, got } => {
                write!(f, "record arity {got} does not match schema arity {expected}")
            }
            RelationError::UnknownAttribute(name) => {
                write!(f, "unknown attribute `{name}`")
            }
            RelationError::AttributeIndexOutOfRange { index, arity } => {
                write!(f, "attribute index {index} out of range (schema has {arity} attributes)")
            }
            RelationError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (table has {rows} rows)")
            }
            RelationError::TypeError { attribute, value } => {
                write!(f, "value `{value}` violates the type of attribute `{attribute}`")
            }
            RelationError::TooManyAttributes(n) => {
                write!(f, "schema has {n} attributes; at most 64 are supported")
            }
            RelationError::SchemaMismatch => write!(f, "schemas differ"),
            RelationError::Csv(msg) => write!(f, "CSV error: {msg}"),
            RelationError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name `{name}`")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationError::ArityMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains("arity 2"));
        let e = RelationError::UnknownAttribute("Zip".into());
        assert!(e.to_string().contains("Zip"));
        let e = RelationError::TooManyAttributes(70);
        assert!(e.to_string().contains("70"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RelationError::SchemaMismatch, RelationError::SchemaMismatch);
        assert_ne!(RelationError::Csv("a".into()), RelationError::Csv("b".into()));
    }
}
