//! In-memory tables.

use crate::columnar::ColumnarIndex;
use crate::{AttrSet, Partition, Record, RelationError, Result, Schema, Value};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Index of a row within a [`Table`].
pub type RowId = usize;

/// A row-major in-memory relation: a [`Schema`] plus a vector of [`Record`]s.
///
/// This is the paper's table `D` (and, once encrypted, `D̂`). All F² machinery —
/// partition computation, MAS discovery, TANE, the encryption pipeline — operates on
/// this type.
///
/// The table lazily builds a dictionary-encoded [`ColumnarIndex`] (per-attribute
/// `Value → u32` dictionaries plus column-major id arrays) the first time a partition
/// or related query needs it, and caches it; every mutating method invalidates the
/// cache. See [`Table::columnar`] and the [`crate::columnar`] module docs for the
/// invariants.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    records: Vec<Record>,
    /// Lazily-built interned columnar index. Behind `Arc` so clones share the build;
    /// reset by every mutation. Deliberately ignored by `PartialEq`.
    columns: OnceLock<Arc<ColumnarIndex>>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.records == other.records
    }
}

impl Eq for Table {}

impl Table {
    /// Create an empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Table { schema, records: Vec::new(), columns: OnceLock::new() }
    }

    /// Create a table from a schema and records, validating arity.
    pub fn new(schema: Schema, records: Vec<Record>) -> Result<Self> {
        for r in &records {
            if r.arity() != schema.arity() {
                return Err(RelationError::ArityMismatch {
                    expected: schema.arity(),
                    got: r.arity(),
                });
            }
        }
        Ok(Table { schema, records, columns: OnceLock::new() })
    }

    /// Assemble a table whose columnar index is already known (derived rather than
    /// rebuilt — see [`crate::TableView::to_table`]). The caller guarantees `columns`
    /// describes exactly `records`; the usual mutation rules apply afterwards (any
    /// mutating method drops the seeded cache).
    pub(crate) fn from_parts_with_columns(
        schema: Schema,
        records: Vec<Record>,
        columns: ColumnarIndex,
    ) -> Self {
        debug_assert_eq!(columns.row_count(), records.len());
        debug_assert!(records.iter().all(|r| r.arity() == schema.arity()));
        let cell = OnceLock::new();
        cell.set(Arc::new(columns)).expect("freshly created cell is empty");
        Table { schema, records, columns: cell }
    }

    /// The table's interned columnar index, built on first use and cached until the
    /// next mutation. This is the substrate of [`Table::partition`] and every other
    /// partition-shaped query.
    pub fn columnar(&self) -> &ColumnarIndex {
        self.columns.get_or_init(|| Arc::new(ColumnarIndex::build(self)))
    }

    /// Drop the cached columnar index (called by every mutating method — the
    /// dictionaries describe a snapshot of the rows and must never outlive it).
    fn invalidate_columns(&mut self) {
        self.columns.take();
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (the paper's `n`).
    pub fn row_count(&self) -> usize {
        self.records.len()
    }

    /// Number of attributes (the paper's `m`).
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Access a row.
    pub fn row(&self, id: RowId) -> Result<&Record> {
        self.records
            .get(id)
            .ok_or(RelationError::RowOutOfRange { row: id, rows: self.records.len() })
    }

    /// Mutable access to a row. Invalidates the cached columnar index (only when the
    /// row exists — a failed probe mutates nothing and keeps the cache).
    pub fn row_mut(&mut self, id: RowId) -> Result<&mut Record> {
        let rows = self.records.len();
        if id >= rows {
            return Err(RelationError::RowOutOfRange { row: id, rows });
        }
        self.invalidate_columns();
        Ok(&mut self.records[id])
    }

    /// All rows in order.
    pub fn rows(&self) -> &[Record] {
        &self.records
    }

    /// Iterate over `(RowId, &Record)`.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Record)> {
        self.records.iter().enumerate()
    }

    /// Access a single cell.
    pub fn cell(&self, row: RowId, attr: usize) -> Result<&Value> {
        let r = self.row(row)?;
        r.get(attr)
            .ok_or(RelationError::AttributeIndexOutOfRange { index: attr, arity: self.arity() })
    }

    /// Overwrite a single cell.
    pub fn set_cell(&mut self, row: RowId, attr: usize, value: Value) -> Result<()> {
        let arity = self.arity();
        if attr >= arity {
            return Err(RelationError::AttributeIndexOutOfRange { index: attr, arity });
        }
        self.row_mut(row)?.set(attr, value);
        Ok(())
    }

    /// Append a row, validating arity. Returns its [`RowId`].
    pub fn push_row(&mut self, record: Record) -> Result<RowId> {
        if record.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: record.arity(),
            });
        }
        self.invalidate_columns();
        self.records.push(record);
        Ok(self.records.len() - 1)
    }

    /// Append all rows of another table with an identical schema.
    pub fn extend_from(&mut self, other: &Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(RelationError::SchemaMismatch);
        }
        self.invalidate_columns();
        self.records.extend(other.records.iter().cloned());
        Ok(())
    }

    /// Append all rows of another table with an identical schema, consuming it — no
    /// per-record clone. The streaming engine merges encrypted chunks through this.
    pub fn append(&mut self, other: Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(RelationError::SchemaMismatch);
        }
        self.invalidate_columns();
        self.records.extend(other.records);
        Ok(())
    }

    /// Keep only the first `n` rows (used by the size-sweep benchmarks, Fig. 7/9).
    pub fn truncated(&self, n: usize) -> Table {
        Table {
            schema: self.schema.clone(),
            records: self.records.iter().take(n).cloned().collect(),
            columns: OnceLock::new(),
        }
    }

    /// The value of row `row` projected on `attrs` (the paper's `r[X]`).
    pub fn project_row(&self, row: RowId, attrs: AttrSet) -> Result<Vec<Value>> {
        Ok(self.row(row)?.project(attrs))
    }

    /// Compute the partition π_X of this table under attribute set `attrs`
    /// (Definition 3.3).
    pub fn partition(&self, attrs: AttrSet) -> Partition {
        Partition::compute(self, attrs)
    }

    /// `|σ_{A=r[A]}(D)|`: the number of rows sharing row `row`'s value on `attrs`.
    pub fn frequency_of_row(&self, row: RowId, attrs: AttrSet) -> Result<usize> {
        let target = self.project_row(row, attrs)?;
        Ok(self.records.iter().filter(|r| r.project(attrs) == target).count())
    }

    /// Frequency histogram of the projections of all rows onto `attrs`: maps each
    /// distinct value combination to its number of occurrences. This is the frequency
    /// knowledge `freq(P)` the adversary holds in the security game (Section 2.4).
    ///
    /// Derived from the interned partition (one representative clone per distinct
    /// combination instead of one projection clone per row).
    pub fn frequency_histogram(&self, attrs: AttrSet) -> HashMap<Vec<Value>, usize> {
        self.columnar()
            .partition(attrs)
            .classes()
            .iter()
            .map(|c| ((*c.representative).clone(), c.size()))
            .collect()
    }

    /// Number of distinct values of a single attribute.
    pub fn distinct_count(&self, attr: usize) -> usize {
        if attr >= self.arity() {
            return 0;
        }
        self.columnar().column(attr).distinct_count()
    }

    /// Collect every distinct value appearing anywhere in the table.
    ///
    /// The F² scheme repeatedly needs values "that do not exist in the original
    /// dataset" (fake ECs, conflict resolution, artificial records); callers use this
    /// set to verify freshness. Served from the column dictionaries: O(distinct)
    /// clones instead of O(rows × arity).
    pub fn all_values(&self) -> std::collections::HashSet<Value> {
        self.columnar().all_values()
    }

    /// Total serialized size of the table in bytes (Table 1 of the paper reports
    /// dataset sizes; we report the same measure for generated data).
    pub fn size_bytes(&self) -> usize {
        self.records.iter().map(Record::size_bytes).sum()
    }

    /// Test multiset equality of rows with another table (ignoring row order).
    ///
    /// Used by round-trip tests: decrypting `D̂` with provenance must reproduce `D`
    /// exactly as a multiset of records.
    pub fn multiset_eq(&self, other: &Table) -> bool {
        if self.schema != other.schema || self.row_count() != other.row_count() {
            return false;
        }
        let mut a = self.records.clone();
        let mut b = other.records.clone();
        a.sort();
        b.sort();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    fn sample() -> Table {
        let schema = Schema::from_names(["A", "B", "C"]).unwrap();
        Table::new(
            schema,
            vec![
                record!["a1", "b1", "c1"],
                record!["a1", "b1", "c2"],
                record!["a1", "b1", "c3"],
                record!["a1", "b1", "c1"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_arity() {
        let schema = Schema::from_names(["A", "B"]).unwrap();
        let err = Table::new(schema.clone(), vec![record!["x"]]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { expected: 2, got: 1 }));
        let mut t = Table::empty(schema);
        assert!(t.push_row(record!["x", "y"]).is_ok());
        assert!(t.push_row(record!["x"]).is_err());
    }

    #[test]
    fn cell_access() {
        let t = sample();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.cell(2, 2).unwrap(), &Value::text("c3"));
        assert!(t.cell(9, 0).is_err());
        assert!(t.cell(0, 9).is_err());
    }

    #[test]
    fn set_cell_and_mutation() {
        let mut t = sample();
        t.set_cell(1, 2, Value::text("zz")).unwrap();
        assert_eq!(t.cell(1, 2).unwrap(), &Value::text("zz"));
        assert!(t.set_cell(1, 10, Value::Null).is_err());
        assert!(t.set_cell(10, 1, Value::Null).is_err());
    }

    #[test]
    fn frequency_matches_paper_example() {
        // Figure 1(a): value (a1, b1) appears 4 times on {A, B}; c1 appears twice on C.
        let t = sample();
        let ab = AttrSet::from_indices([0, 1]);
        assert_eq!(t.frequency_of_row(0, ab).unwrap(), 4);
        let c = AttrSet::single(2);
        assert_eq!(t.frequency_of_row(0, c).unwrap(), 2);
        assert_eq!(t.frequency_of_row(2, c).unwrap(), 1);
    }

    #[test]
    fn histogram() {
        let t = sample();
        let h = t.frequency_histogram(AttrSet::single(2));
        assert_eq!(h.len(), 3);
        assert_eq!(h[&vec![Value::text("c1")]], 2);
        assert_eq!(h[&vec![Value::text("c2")]], 1);
    }

    #[test]
    fn distinct_and_all_values() {
        let t = sample();
        assert_eq!(t.distinct_count(0), 1);
        assert_eq!(t.distinct_count(2), 3);
        let vals = t.all_values();
        assert!(vals.contains(&Value::text("a1")));
        assert!(vals.contains(&Value::text("c3")));
        assert_eq!(vals.len(), 5);
    }

    #[test]
    fn truncation_and_extension() {
        let t = sample();
        let t2 = t.truncated(2);
        assert_eq!(t2.row_count(), 2);
        let mut t3 = t.clone();
        t3.extend_from(&t2).unwrap();
        assert_eq!(t3.row_count(), 6);
        t3.append(t2).unwrap();
        assert_eq!(t3.row_count(), 8);

        let other = Table::empty(Schema::from_names(["X"]).unwrap());
        assert!(t3.clone().extend_from(&other).is_err());
        assert!(t3.clone().append(other).is_err());
    }

    #[test]
    fn multiset_equality_ignores_order() {
        let schema = Schema::from_names(["A"]).unwrap();
        let t1 = Table::new(schema.clone(), vec![record!["x"], record!["y"]]).unwrap();
        let t2 = Table::new(schema.clone(), vec![record!["y"], record!["x"]]).unwrap();
        let t3 = Table::new(schema, vec![record!["y"], record!["y"]]).unwrap();
        assert!(t1.multiset_eq(&t2));
        assert!(!t1.multiset_eq(&t3));
    }

    #[test]
    fn size_bytes_is_positive() {
        assert!(sample().size_bytes() > 0);
    }
}
