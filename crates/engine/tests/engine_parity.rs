//! Engine parity: for every backend of the conformance grid, the chunked parallel
//! pipeline must produce an outcome that (a) decrypts to exactly the plaintext the
//! single-shot `Scheme::encrypt` path decrypts to, (b) is byte-identical whatever the
//! worker count, and (c) still decrypts after its owner state takes a round trip
//! through the wire format into a *fresh* scheme instance (simulating a second
//! process that only holds the key material).

use f2_core::{ChunkedScheme, DetScheme, PaillierScheme, ProbScheme, F2};
use f2_crypto::MasterKey;
use f2_datagen::Dataset;
use f2_engine::{load_outcome, save_outcome, Engine, EngineConfig, StatefulScheme};
use f2_relation::{table, Table};

/// A backend paired with a factory for a fresh, independently constructed instance
/// holding the same key material (the "second process").
struct Backend {
    scheme: Box<dyn ChunkedScheme>,
    fresh: Box<dyn Fn() -> Box<dyn StatefulScheme>>,
}

fn backends() -> Vec<Backend> {
    let mut all: Vec<Backend> = Vec::new();
    for (alpha, split) in [(1.0, 1), (0.5, 2), (0.2, 3)] {
        let build = move || {
            F2::builder().alpha(alpha).split_factor(split).seed(17).build().expect("valid grid")
        };
        all.push(Backend { scheme: Box::new(build()), fresh: Box::new(move || Box::new(build())) });
    }
    all.push(Backend {
        scheme: Box::new(DetScheme::new(MasterKey::from_seed(23))),
        fresh: Box::new(|| Box::new(DetScheme::new(MasterKey::from_seed(23)))),
    });
    all.push(Backend {
        scheme: Box::new(ProbScheme::new(MasterKey::from_seed(29), 29)),
        fresh: Box::new(|| Box::new(ProbScheme::new(MasterKey::from_seed(29), 29))),
    });
    all.push(Backend {
        scheme: Box::new(PaillierScheme::new(64, 31).expect("modulus large enough")),
        fresh: Box::new(|| Box::new(PaillierScheme::new(64, 31).expect("modulus large enough"))),
    });
    all.push(Backend {
        scheme: Box::new(PaillierScheme::new(64, 37).expect("modulus large enough").packed()),
        fresh: Box::new(|| {
            Box::new(PaillierScheme::new(64, 37).expect("modulus large enough").packed())
        }),
    });
    all
}

fn fixtures() -> Vec<(Table, String)> {
    let mut tables = vec![(
        table! {
            ["Zip", "City", "Name"];
            ["07030", "Hoboken", "alice"],
            ["07030", "Hoboken", "bob"],
            ["07030", "Hoboken", "carol"],
            ["10001", "NewYork", "dave"],
            ["10001", "NewYork", "erin"],
            ["08540", "Princeton", "frank"],
            ["08540", "Princeton", "grace"],
        },
        "fixture".to_owned(),
    )];
    for dataset in [Dataset::Orders, Dataset::Customer, Dataset::Synthetic] {
        tables.push((dataset.generate(24, 61), dataset.name().to_owned()));
    }
    tables
}

#[test]
fn chunked_parallel_encrypt_matches_single_shot_decryption() {
    for backend in backends() {
        let scheme = backend.scheme.as_ref();
        for (t, label) in fixtures() {
            let single = scheme.encrypt(&t).expect("single-shot encrypt");
            let engine = Engine::new(EngineConfig { workers: 3, chunk_rows: 4, seed: 17 })
                .expect("valid config");
            let run = engine.encrypt(scheme, &t).expect("engine encrypt");
            assert!(run.chunks.len() >= 2, "{}: want a real multi-chunk run", scheme.name());
            let via_engine = scheme.decrypt(&run.outcome).expect("engine outcome decrypts");
            let via_single = scheme.decrypt(&single).expect("single outcome decrypts");
            assert!(
                via_engine.multiset_eq(&t) && via_single.multiset_eq(&t),
                "{} on {label}: chunked and single-shot paths must both recover the plaintext",
                scheme.name()
            );
            // Row ground truth of the merged outcome points at valid rows.
            for (out_row, orig_row) in scheme.real_rows(&run.outcome).expect("ground truth") {
                assert!(out_row < run.outcome.encrypted.row_count());
                assert!(orig_row < t.row_count());
            }
        }
    }
}

#[test]
fn engine_output_is_independent_of_worker_count() {
    let t = Dataset::Orders.generate(30, 7);
    for backend in backends() {
        let scheme = backend.scheme.as_ref();
        let encrypt = |workers| {
            Engine::new(EngineConfig { workers, chunk_rows: 8, seed: 3 })
                .expect("valid config")
                .encrypt(scheme, &t)
                .expect("engine encrypt")
                .outcome
                .encrypted
        };
        assert_eq!(encrypt(1), encrypt(4), "{}: worker count changed bytes", scheme.name());
    }
}

#[test]
fn saved_state_decrypts_in_a_fresh_scheme_instance() {
    let t = Dataset::Customer.generate(20, 19);
    for backend in backends() {
        let scheme = backend.scheme.as_ref();
        let run = Engine::new(EngineConfig { workers: 2, chunk_rows: 6, seed: 19 })
            .expect("valid config")
            .encrypt(scheme, &t)
            .expect("engine encrypt");
        // `save_outcome` in this process …
        let stateful = (backend.fresh)();
        let blob = save_outcome(stateful.as_ref(), &run.outcome).expect("save outcome");
        // … `load_outcome` + decrypt in a "second process": a scheme instance that
        // shares nothing with the encryptor but its construction parameters.
        let second = (backend.fresh)();
        let restored = load_outcome(second.as_ref(), &blob).expect("load outcome");
        let recovered = second.decrypt(&restored).expect("decrypt in fresh instance");
        assert!(recovered.multiset_eq(&t), "{}: persisted state lost rows", second.name());
    }
}
