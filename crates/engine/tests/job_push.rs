//! Push-model job golden tests: a `begin_job` → `append_chunk`* → `finish`
//! sequence must write the **exact bytes** of the pull-model
//! `Engine::run_streaming` over the same rows, and `resume_job` must reopen a
//! store torn at **any** byte and continue to the same bytes — with no source,
//! which is the property the encryption service builds its crash-resumable
//! sessions on (a reconnecting client re-sends rows from `job.rows()` onward).

use f2_core::{ChunkedScheme, DetScheme, PaillierScheme, ProbScheme, F2};
use f2_crypto::MasterKey;
use f2_engine::{Engine, EngineConfig, StatefulScheme, StreamJob};
use f2_io::{FrameReader, RowSource, StreamStore, TableChunk, TableSource};
use f2_relation::Table;
use std::io::Cursor;

fn fixture(rows: usize) -> Table {
    f2_datagen::Dataset::Orders.generate(rows, 77)
}

fn engine() -> Engine {
    Engine::new(EngineConfig { workers: 1, chunk_rows: 5, seed: 41 }).unwrap()
}

/// Absolute stream offsets after the preamble and after each frame.
fn frame_boundaries(stream: &[u8]) -> Vec<u64> {
    let mut reader = FrameReader::new(stream).expect("own stream has a valid preamble");
    let mut offsets = vec![reader.bytes_consumed()];
    while reader.next_frame().expect("own stream decodes").is_some() {
        offsets.push(reader.bytes_consumed());
    }
    offsets.push(reader.bytes_consumed());
    offsets
}

/// Cut positions: inside the preamble, at every frame boundary, and torn
/// mid-frame — the same grid `resume_golden.rs` drives the pull path over.
fn cut_grid(stream: &[u8]) -> Vec<usize> {
    let boundaries = frame_boundaries(stream);
    let mut cuts = vec![0, 3, 6];
    for pair in boundaries.windows(2) {
        let (start, end) = (pair[0] as usize, pair[1] as usize);
        cuts.push(start);
        cuts.push((start + 1).min(end));
        cuts.push(start + (end - start) / 2);
    }
    cuts.push(stream.len() - 1);
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Push every chunk of `t` from `from_row` onward into `job` and finish,
/// returning the outcome and the store.
fn push_rest<S: ChunkedScheme + StatefulScheme, T: StreamStore>(
    scheme: &S,
    t: &Table,
    mut job: StreamJob<T>,
) -> (f2_engine::StreamOutcome, T) {
    let mut source = TableSource::new(t);
    source.as_seekable().expect("tables seek").seek_to_row(job.rows()).unwrap();
    while let Some(chunk) = source.next_chunk(job.chunk_rows()).unwrap() {
        job.append_chunk(scheme, &chunk).unwrap();
    }
    job.finish_into_store().unwrap()
}

fn assert_push_matches_pull<S: ChunkedScheme + StatefulScheme>(label: &str, scheme: &S, t: &Table) {
    let engine = engine();
    let mut full = Vec::new();
    let pull = engine.run_streaming(scheme, &mut TableSource::new(t), &mut full).unwrap();

    let job = engine.begin_job(scheme, t.schema(), Cursor::new(Vec::new())).unwrap();
    let (push, store) = push_rest(scheme, t, job);
    assert_eq!(store.get_ref(), &full, "{label}: push-model bytes diverged from the pull path");
    assert_eq!(push.rows, pull.rows, "{label}: row totals diverged");
    assert_eq!(push.encrypted_rows, pull.encrypted_rows, "{label}: output totals diverged");
    assert_eq!(push.chunks.len(), pull.chunks.len(), "{label}: chunk counts diverged");
    assert_eq!(push.bytes_written, pull.bytes_written, "{label}: byte totals diverged");
}

#[test]
fn a_push_job_writes_the_exact_pull_path_stream_for_every_backend() {
    let t = fixture(23); // 4 full chunks + 1 short final chunk
    let master = MasterKey::from_seed(41);
    assert_push_matches_pull(
        "f2",
        &F2::builder().alpha(0.5).seed(41).master_key(master.clone()).build().unwrap(),
        &t,
    );
    assert_push_matches_pull("det", &DetScheme::new(master.clone()), &t);
    assert_push_matches_pull("prob", &ProbScheme::new(master, 41), &t);
    assert_push_matches_pull("paillier", &PaillierScheme::new(64, 41).unwrap(), &t);
}

fn assert_job_resume_is_byte_exact<S: ChunkedScheme + StatefulScheme>(
    label: &str,
    scheme: &S,
    t: &Table,
) {
    let engine = engine();
    let mut full = Vec::new();
    engine.run_streaming(scheme, &mut TableSource::new(t), &mut full).unwrap();
    for cut in cut_grid(&full) {
        let store = Cursor::new(full[..cut].to_vec());
        let job = engine
            .resume_job(scheme, t.schema(), store)
            .unwrap_or_else(|e| panic!("{label}: resume_job from cut {cut} failed: {e}"));
        // No source was involved in the resume: the job reports the rows it
        // already holds, and the "client" re-sends the rest. The resume point
        // always sits on a chunk boundary (the short final chunk included).
        assert!(
            job.rows().is_multiple_of(5) || job.rows() == t.row_count(),
            "{label}@{cut}: resume point {} is not a chunk boundary",
            job.rows()
        );
        let (_, store) = push_rest(scheme, t, job);
        assert_eq!(
            store.get_ref(),
            &full,
            "{label}: resume_job from cut {cut} diverged from the uninterrupted stream"
        );
    }
}

#[test]
fn an_interrupted_job_resumes_sourcelessly_and_byte_exactly_at_every_cut() {
    let t = fixture(23);
    let master = MasterKey::from_seed(41);
    assert_job_resume_is_byte_exact(
        "f2",
        &F2::builder().alpha(0.5).seed(41).master_key(master.clone()).build().unwrap(),
        &t,
    );
    assert_job_resume_is_byte_exact("det", &DetScheme::new(master), &t);
}

#[test]
fn resuming_a_finished_stream_reopens_after_its_last_full_chunk() {
    // 20 rows = 4 full chunks, no short final chunk: the trailer is truncated
    // away and the stream is extendable. The short-chunk guard still protects
    // streams that ended on a short chunk (appending past one is an error).
    let t = fixture(20);
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    let engine = engine();
    let mut full = Vec::new();
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut full).unwrap();

    let job = engine.resume_job(&scheme, t.schema(), Cursor::new(full.clone())).unwrap();
    assert_eq!(job.rows(), 20);
    assert_eq!(job.next_chunk_index(), 4);
    let (outcome, store) = job.finish_into_store().unwrap();
    assert_eq!(store.get_ref(), &full, "re-finishing without new chunks must be a no-op");
    assert_eq!(outcome.rows, 20);
}

#[test]
fn a_job_store_written_under_other_keys_is_refused_for_f2() {
    // The CRC cross-check during the sourceless replay: a store produced under
    // a different master key decrypts to garbage (or re-encrypts to different
    // bytes), and resume_job must say so instead of splicing streams.
    let t = fixture(23);
    let engine = engine();
    let theirs =
        F2::builder().alpha(0.5).seed(41).master_key(MasterKey::from_seed(7)).build().unwrap();
    let mut full = Vec::new();
    engine.run_streaming(&theirs, &mut TableSource::new(&t), &mut full).unwrap();

    let ours =
        F2::builder().alpha(0.5).seed(41).master_key(MasterKey::from_seed(8)).build().unwrap();
    let cut = frame_boundaries(&full)[3] as usize; // two intact chunk frames
    let err = engine.resume_job(&ours, t.schema(), Cursor::new(full[..cut].to_vec())).unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("key material")
            || message.contains("decrypt")
            || message.contains("state"),
        "expected a key-mismatch error, got: {message}"
    );
}

#[test]
fn a_job_enforces_the_pull_paths_chunk_invariants() {
    let t = fixture(13);
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    let engine = engine();
    let mut job = engine.begin_job(&scheme, t.schema(), Cursor::new(Vec::new())).unwrap();

    // An oversized chunk is rejected.
    let err = job.append_chunk(&scheme, &TableChunk::Owned(t.clone())).unwrap_err();
    assert!(err.to_string().contains("expected 1..="), "{err}");

    // A short chunk is accepted once — and is final.
    let mut source = TableSource::new(&t);
    source.as_seekable().expect("tables seek").seek_to_row(10).unwrap();
    let short = source.next_chunk(5).unwrap().expect("3 rows remain");
    let owned = TableChunk::Owned(match short {
        TableChunk::Owned(table) => table,
        TableChunk::Borrowed(view) => view.to_table(),
    });
    job.append_chunk(&scheme, &owned).unwrap();
    let err = job.append_chunk(&scheme, &owned).unwrap_err();
    assert!(err.to_string().contains("short chunk"), "{err}");
}
