//! Lossy salvage of damaged `F2WS` v2 streams: `decrypt_streaming_lossy` must
//! decrypt every intact chunk, account precisely for what was lost, and — under
//! arbitrary seeded fault plans — never panic and never invent rows. Chunk
//! frames are self-contained (per-chunk owner state travels in the frame), so
//! one damaged chunk never takes its neighbours down.

use f2_core::{DetScheme, ProbScheme};
use f2_crypto::MasterKey;
use f2_engine::{decrypt_streaming_lossy, DamageReport, Engine, EngineConfig};
use f2_io::{FaultKind, FaultPlan, FaultyReader, FrameReader, TableSource};
use f2_relation::Table;
use proptest::prelude::*;

fn fixture(rows: usize) -> Table {
    f2_datagen::Dataset::Orders.generate(rows, 77)
}

fn scheme() -> DetScheme {
    DetScheme::new(MasterKey::from_seed(41))
}

/// A stream of `rows` fixture rows in 5-row chunks, plus each frame's offset
/// (preamble first, stream length last).
fn golden(rows: usize) -> (Table, Vec<u8>, Vec<u64>) {
    let t = fixture(rows);
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 5, seed: 41 }).unwrap();
    let mut stream = Vec::new();
    engine.run_streaming(&scheme(), &mut TableSource::new(&t), &mut stream).unwrap();
    let mut reader = FrameReader::new(&stream[..]).unwrap();
    let mut offsets = vec![reader.bytes_consumed()];
    while reader.next_frame().unwrap().is_some() {
        offsets.push(reader.bytes_consumed());
    }
    offsets.push(reader.bytes_consumed());
    (t, stream, offsets)
}

fn salvage(stream: &[u8]) -> (DamageReport, Vec<Table>) {
    let mut chunks = Vec::new();
    let report = decrypt_streaming_lossy(&scheme(), stream, |chunk| {
        chunks.push(chunk);
        Ok(())
    })
    .expect("salvage itself must not fail on frame damage");
    (report, chunks)
}

#[test]
fn an_intact_stream_salvages_losslessly() {
    let (t, stream, _) = golden(23);
    let (report, chunks) = salvage(&stream);
    assert!(report.is_lossless(), "{report:?}");
    assert_eq!(report.chunks_total, Some(5));
    assert_eq!(report.chunks_recovered, 5);
    assert_eq!(report.rows_recovered, t.row_count());
    assert_eq!(report.rows_lost, Some(0));
    assert_eq!(report.bytes_skipped, 0);
    let mut all = chunks.into_iter();
    let mut recovered = all.next().unwrap();
    for chunk in all {
        recovered.append(chunk).unwrap();
    }
    assert!(recovered.multiset_eq(&t), "lossless salvage must reproduce the plaintext");
}

#[test]
fn one_damaged_chunk_loses_exactly_that_chunk() {
    let (t, mut stream, offsets) = golden(23);
    // Frame layout: [0]=preamble end, [1]=header end, [2..=6]=chunk ends.
    // Corrupt chunk 2 (the third chunk) mid-frame.
    let mid = usize::try_from((offsets[3] + offsets[4]) / 2).unwrap();
    stream[mid] ^= 0x08;
    let (report, chunks) = salvage(&stream);
    assert!(!report.is_lossless());
    assert_eq!(report.chunks_total, Some(5));
    assert_eq!(report.chunks_recovered, 4);
    assert_eq!(report.chunks_lost, 1);
    assert_eq!(report.rows_recovered, t.row_count() - 5);
    assert_eq!(report.rows_lost, Some(5));
    assert!(report.trailer_recovered && report.header_recovered);
    assert!(report.bytes_skipped > 0);
    assert_eq!(report.skipped_ranges.len(), 1);
    assert!(
        report.skipped_ranges[0].start >= offsets[3] && report.skipped_ranges[0].end <= offsets[4],
        "skipped range {:?} must lie inside the damaged frame {}..{}",
        report.skipped_ranges[0],
        offsets[3],
        offsets[4],
    );
    assert_eq!(chunks.len(), 4);
}

#[test]
fn a_damaged_trailer_still_salvages_every_chunk() {
    let (t, mut stream, offsets) = golden(23);
    let trailer_mid = usize::try_from((offsets[6] + offsets[7]) / 2).unwrap();
    stream[trailer_mid] ^= 0x01;
    let (report, chunks) = salvage(&stream);
    assert!(!report.trailer_recovered);
    assert_eq!(report.chunks_total, None, "no trailer, no promised total");
    assert_eq!(report.chunks_recovered, 5);
    assert_eq!(report.chunks_lost, 0, "all indices present: no observable gap");
    assert_eq!(report.rows_lost, None, "row losses are unknowable without the trailer");
    assert_eq!(report.suspected_lost, 0, "a trailer-sized tail is below the chunk estimate");
    assert_eq!(chunks.iter().map(Table::row_count).sum::<usize>(), t.row_count());
}

#[test]
fn a_torn_tail_without_a_trailer_is_estimated_not_silent() {
    let (_, stream, offsets) = golden(23);
    // Cut three quarters into chunk 4: its partial frame, the trailer, and the
    // end frame are gone, but the torn bytes are evidence of the loss.
    let cut = usize::try_from(offsets[5] + (offsets[6] - offsets[5]) * 3 / 4).unwrap();
    let (report, chunks) = salvage(&stream[..cut]);
    assert_eq!(report.chunks_recovered, 4);
    assert!(!report.trailer_recovered);
    // Index gaps cannot see tail losses …
    assert_eq!(report.chunks_lost, 0);
    // … but the size-based estimate convicts the torn chunk.
    assert_eq!(report.suspected_lost, 1, "{report:?}");
    assert!(!report.is_lossless());
    assert_eq!(chunks.len(), 4);
}

#[test]
fn a_cleanly_cut_tail_leaves_no_evidence_and_no_estimate() {
    let (_, stream, offsets) = golden(23);
    // Cut exactly at a frame boundary: zero damaged bytes survive, so the
    // estimator has nothing to convict with — the residual blind spot.
    let cut = usize::try_from(offsets[5]).unwrap();
    let (report, chunks) = salvage(&stream[..cut]);
    assert_eq!(report.chunks_recovered, 4);
    assert!(!report.trailer_recovered);
    assert_eq!(report.chunks_lost, 0);
    assert_eq!(report.suspected_lost, 0);
    assert_eq!(chunks.len(), 4);
}

#[test]
fn two_tail_chunks_and_the_trailer_lost_suspects_two_chunks() {
    // Bigger chunks keep the trailer well under half a chunk frame, so the
    // rounded estimate resolves cleanly.
    let t = fixture(100);
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 20, seed: 41 }).unwrap();
    let mut stream = Vec::new();
    engine.run_streaming(&scheme(), &mut TableSource::new(&t), &mut stream).unwrap();
    let mut reader = FrameReader::new(&stream[..]).unwrap();
    let mut offsets = vec![reader.bytes_consumed()];
    while reader.next_frame().unwrap().is_some() {
        offsets.push(reader.bytes_consumed());
    }
    offsets.push(reader.bytes_consumed());
    // Layout: [0]=preamble, [1]=header, [2..=6]=chunks 0..4, [7]=trailer, [8]=end.
    // Corrupt chunks 3 and 4 *and* the trailer; the end frame stays intact.
    for frame in [4usize, 5, 6] {
        let mid = usize::try_from((offsets[frame] + offsets[frame + 1]) / 2).unwrap();
        stream[mid] ^= 0x20;
    }
    let (report, chunks) = salvage(&stream);
    assert_eq!(report.chunks_recovered, 3);
    assert!(!report.trailer_recovered);
    assert_eq!(report.chunks_lost, 0, "no index gap: the losses are all tail");
    assert_eq!(report.suspected_lost, 2, "{report:?}");
    assert_eq!(chunks.len(), 3);
}

#[test]
fn an_interior_gap_is_visible_even_without_a_trailer() {
    let (_, mut stream, offsets) = golden(23);
    // Damage chunk 1 *and* the trailer: the index gap still convicts the loss.
    let chunk1_mid = usize::try_from((offsets[2] + offsets[3]) / 2).unwrap();
    let trailer_mid = usize::try_from((offsets[6] + offsets[7]) / 2).unwrap();
    stream[chunk1_mid] ^= 0x40;
    stream[trailer_mid] ^= 0x40;
    let (report, chunks) = salvage(&stream);
    assert!(!report.trailer_recovered);
    assert_eq!(report.chunks_recovered, 4);
    assert_eq!(report.chunks_lost, 1, "highest index seen is 4: one chunk is missing");
    assert_eq!(chunks.len(), 4);
}

#[test]
fn salvage_rejects_the_wrong_scheme_and_a_damaged_preamble() {
    let (_, mut stream, _) = golden(13);
    let wrong = ProbScheme::new(MasterKey::from_seed(41), 41);
    let err = decrypt_streaming_lossy(&wrong, &stream[..], |_| Ok(())).unwrap_err();
    assert!(err.to_string().contains("scheme"), "{err}");

    stream[1] ^= 0xFF; // inside the magic
    assert!(decrypt_streaming_lossy(&scheme(), &stream[..], |_| Ok(())).is_err());
}

#[test]
fn emit_errors_propagate() {
    let (_, stream, _) = golden(13);
    let err = decrypt_streaming_lossy(&scheme(), &stream[..], |_| {
        Err(f2_core::F2Error::UnsupportedInput("downstream is full".into()))
    })
    .unwrap_err();
    assert!(err.to_string().contains("downstream is full"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary seeded fault plans (bit flips, transient errors absorbed by a
    /// reader-side retry, and an occasional truncation) against the salvage
    /// path: it must never panic, every emitted chunk must decrypt to original
    /// rows of the right shape, and when the trailer survives the loss
    /// accounting must balance exactly.
    #[test]
    fn random_fault_plans_never_panic_salvage_and_always_balance(
        seed in 0u64..1 << 48,
        fault_count in 0usize..10,
    ) {
        let (t, stream, _) = golden(23);
        let mut plan = FaultPlan::random(seed, stream.len() as u64, fault_count);
        if seed % 4 == 0 {
            plan.push(7 + seed % (stream.len() as u64 - 7), FaultKind::Truncate);
        }
        // Reader-side faults include transients; absorb them with a retrying
        // reader below the frame layer, as a production caller would.
        let retry = f2_io::RetryPolicy::no_backoff(16);
        let reader = retry.reader(FaultyReader::new(&stream[..], plan));
        let mut emitted_rows = 0usize;
        let mut emitted_chunks = 0usize;
        let result = decrypt_streaming_lossy(&scheme(), reader, |chunk| {
            prop_assert_eq!(chunk.schema(), t.schema());
            prop_assert!(chunk.row_count() >= 1 && chunk.row_count() <= 5);
            emitted_rows += chunk.row_count();
            emitted_chunks += 1;
            Ok(())
        });
        let Ok(report) = result else {
            // A damaged preamble (or an exhausted retry budget) is a clean,
            // non-panicking failure — nothing more to check.
            continue;
        };
        prop_assert_eq!(report.chunks_recovered, emitted_chunks);
        prop_assert_eq!(report.rows_recovered, emitted_rows);
        prop_assert!(emitted_rows <= t.row_count(), "salvage invented rows");
        if report.trailer_recovered {
            // The trailer survived: every chunk is accounted for, one way or
            // the other.
            prop_assert_eq!(report.chunks_total, Some(5));
            prop_assert_eq!(report.chunks_recovered + report.chunks_lost, 5);
            prop_assert_eq!(
                report.rows_lost.map(|lost| lost + report.rows_recovered),
                Some(t.row_count())
            );
        }
    }
}
