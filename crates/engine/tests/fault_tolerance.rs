//! Engine-level fault tolerance: an [`Engine`] carrying a [`RetryPolicy`]
//! absorbs transient source and writer faults without changing a single output
//! byte; without one (the default), the first fault fails the run — fault
//! tolerance is opt-in so the fault-free hot path stays untouched. And a panic
//! inside an encryption worker is contained to a typed
//! [`EngineError::WorkerPanicked`], never a poisoned engine or an aborted
//! process.

use f2_core::{ChunkState, ChunkedScheme, DetScheme, OwnerState, Scheme, SchemeOutcome, F2};
use f2_crypto::MasterKey;
use f2_engine::{Engine, EngineConfig, EngineError};
use f2_io::{FaultKind, FaultPlan, FaultySource, FaultyWriter, RetryPolicy, TableSource};
use f2_relation::{Table, TableView};
use std::io::ErrorKind;

fn fixture(rows: usize) -> Table {
    f2_datagen::Dataset::Orders.generate(rows, 77)
}

fn clean_stream<S: ChunkedScheme + f2_engine::StatefulScheme>(
    engine: &Engine,
    scheme: &S,
    t: &Table,
) -> Vec<u8> {
    let mut stream = Vec::new();
    engine.run_streaming(scheme, &mut TableSource::new(t), &mut stream).unwrap();
    stream
}

#[test]
fn a_retrying_engine_absorbs_transient_source_faults_byte_exactly() {
    let t = fixture(23);
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    let config = EngineConfig { workers: 1, chunk_rows: 5, seed: 41 };
    let engine = Engine::new(config).unwrap();
    let golden = clean_stream(&engine, &scheme, &t);

    let retrying = Engine::new(config).unwrap().with_retry(RetryPolicy::no_backoff(4));
    assert!(retrying.retry().is_some_and(RetryPolicy::is_enabled));
    let plan = FaultPlan::new()
        .with(0, FaultKind::Transient(ErrorKind::TimedOut))
        .with(2, FaultKind::Transient(ErrorKind::ConnectionReset))
        .with(5, FaultKind::Transient(ErrorKind::WouldBlock));
    let mut source = FaultySource::new(TableSource::new(&t), plan);
    let mut stream = Vec::new();
    retrying.run_streaming(&scheme, &mut source, &mut stream).unwrap();
    assert_eq!(stream, golden, "absorbed faults must not change the stream bytes");
    // 5 chunk pulls + the final empty pull + 3 retried attempts.
    assert_eq!(source.attempts(), 9);
}

#[test]
fn a_retrying_engine_absorbs_transient_writer_faults_byte_exactly() {
    let t = fixture(23);
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    let config = EngineConfig { workers: 1, chunk_rows: 5, seed: 41 };
    let engine = Engine::new(config).unwrap();
    let golden = clean_stream(&engine, &scheme, &t);

    let retrying = Engine::new(config).unwrap().with_retry(RetryPolicy::no_backoff(4));
    let plan = FaultPlan::new()
        .with(3, FaultKind::Transient(ErrorKind::TimedOut))
        .with(golden.len() as u64 / 2, FaultKind::Transient(ErrorKind::ConnectionAborted))
        .with(golden.len() as u64 / 3, FaultKind::ShortWrite(2));
    let mut writer = FaultyWriter::new(Vec::new(), plan);
    retrying.run_streaming(&scheme, &mut TableSource::new(&t), &mut writer).unwrap();
    assert_eq!(writer.into_inner(), golden);
}

#[test]
fn without_a_policy_the_first_transient_fault_is_fatal() {
    let t = fixture(23);
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 5, seed: 41 }).unwrap();
    assert!(engine.retry().is_none(), "fault tolerance is opt-in");
    let plan = FaultPlan::new().with(1, FaultKind::Transient(ErrorKind::TimedOut));
    let mut source = FaultySource::new(TableSource::new(&t), plan);
    let err = engine.run_streaming(&scheme, &mut source, Vec::new()).unwrap_err();
    assert!(err.to_string().contains("injected transient source fault"), "{err}");
}

#[test]
fn an_exhausted_pull_budget_fails_the_run() {
    let t = fixture(23);
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 5, seed: 41 })
        .unwrap()
        .with_retry(RetryPolicy::no_backoff(3));
    // Four consecutive faulted attempts before chunk 1 arrives: one more than
    // the budget absorbs. (Fault offsets are attempt indices, so a burst means
    // consecutive indices.)
    let mut plan = FaultPlan::new();
    for at in [1u64, 2, 3, 4] {
        plan.push(at, FaultKind::Transient(ErrorKind::TimedOut));
    }
    let mut source = FaultySource::new(TableSource::new(&t), plan);
    let err = engine.run_streaming(&scheme, &mut source, Vec::new()).unwrap_err();
    assert!(err.to_string().contains("injected transient source fault"), "{err}");

    // The same burst under a per-chunk budget that covers it succeeds — and the
    // budget resets between chunks, so four bursts of two faults all pass.
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 5, seed: 41 })
        .unwrap()
        .with_retry(RetryPolicy::no_backoff(3));
    let mut plan = FaultPlan::new();
    for pull in [0u64, 1, 2, 3] {
        plan.push(pull * 3, FaultKind::Transient(ErrorKind::TimedOut));
        plan.push(pull * 3 + 1, FaultKind::Transient(ErrorKind::TimedOut));
    }
    let mut source = FaultySource::new(TableSource::new(&t), plan);
    engine.run_streaming(&scheme, &mut source, Vec::new()).unwrap();
}

// ── Worker panic containment ───────────────────────────────────────────────────────

/// A deterministic backend that panics while encrypting the chunk starting at
/// `panic_at_row` — stands in for a library bug inside a worker thread.
#[derive(Debug, Clone)]
struct PanickyScheme {
    inner: DetScheme,
    panic_at_row: usize,
}

impl Scheme for PanickyScheme {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn encrypt(&self, table: &Table) -> f2_core::Result<SchemeOutcome> {
        self.inner.encrypt(table)
    }
    fn decrypt(&self, outcome: &SchemeOutcome) -> f2_core::Result<Table> {
        self.inner.decrypt(outcome)
    }
}

impl ChunkedScheme for PanickyScheme {
    fn reseeded(&self, _seed: u64) -> Box<dyn ChunkedScheme> {
        // Deterministic backend: no encryption-time randomness to re-derive.
        Box::new(self.clone())
    }
    fn encrypt_view(&self, view: &TableView<'_>) -> f2_core::Result<SchemeOutcome> {
        assert!(
            view.parent_range().start != self.panic_at_row,
            "injected worker panic at row {}",
            self.panic_at_row
        );
        self.inner.encrypt_view(view)
    }
    fn merge_chunk_states(&self, chunks: Vec<ChunkState>) -> f2_core::Result<OwnerState> {
        self.inner.merge_chunk_states(chunks)
    }
}

#[test]
fn a_worker_panic_is_contained_to_a_typed_error() {
    let t = fixture(23);
    let scheme = PanickyScheme {
        inner: DetScheme::new(MasterKey::from_seed(41)),
        panic_at_row: 10, // chunk 2 of five 5-row chunks
    };
    for workers in [1usize, 4] {
        let engine = Engine::new(EngineConfig { workers, chunk_rows: 5, seed: 41 }).unwrap();
        let err = engine.encrypt(&scheme, &t).unwrap_err();
        match err {
            EngineError::WorkerPanicked { chunk, ref message } => {
                assert_eq!(chunk, 2, "workers={workers}");
                assert!(message.contains("injected worker panic"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got: {other}"),
        }
    }
}

#[test]
fn the_engine_survives_a_contained_panic() {
    // After a panic is contained, the same engine value keeps working: no
    // poisoned locks, no leaked threads, no aborted process.
    let t = fixture(23);
    let engine = Engine::new(EngineConfig { workers: 4, chunk_rows: 5, seed: 41 }).unwrap();
    let panicky =
        PanickyScheme { inner: DetScheme::new(MasterKey::from_seed(41)), panic_at_row: 0 };
    assert!(matches!(
        engine.encrypt(&panicky, &t),
        Err(EngineError::WorkerPanicked { chunk: 0, .. })
    ));
    let clean = DetScheme::new(MasterKey::from_seed(41));
    let run = engine.encrypt(&clean, &t).expect("the engine is reusable after containment");
    assert!(clean.decrypt(&run.outcome).unwrap().multiset_eq(&t));
}

#[test]
fn f2_panics_are_contained_too() {
    // Containment at a different chunk and worker count, and the engine then
    // runs the real F² backend — the catch-unwind boundary sits in the engine,
    // not in any one backend.
    let t = fixture(13);
    let scheme = PanickyScheme {
        inner: DetScheme::new(MasterKey::from_seed(7)),
        panic_at_row: 5, // chunk 1 of three chunks
    };
    let engine = Engine::new(EngineConfig { workers: 2, chunk_rows: 5, seed: 7 }).unwrap();
    let err = engine.encrypt(&scheme, &t).unwrap_err();
    assert!(matches!(err, EngineError::WorkerPanicked { chunk: 1, .. }), "{err}");
    // And the F² backend itself, un-wrapped, still works on this engine.
    let f2 = F2::builder().alpha(0.5).seed(7).build().unwrap();
    let run = engine.encrypt(&f2, &t).unwrap();
    assert!(f2.decrypt(&run.outcome).unwrap().multiset_eq(&t));
}
