//! `F2WS` **version-2** golden vectors.
//!
//! The stream below was produced by the v2 frame format at the revision that
//! introduced it and is frozen: any later revision must (a) keep decoding it and
//! (b) — because v2 streams are canonical and deterministic (no wall-clock fields
//! on the wire, deterministic compression decisions) — reproduce it byte for byte
//! from the same inputs. If a layout change ever breaks this test, bump the stream
//! version and add a new vector instead of editing this one: v2 streams live on
//! disk next to outsourced datasets and must stay loadable.
//!
//! The vector uses the deterministic-AES backend so the ciphertext depends only on
//! the key material, not on any RNG implementation detail.

use f2_core::{DetScheme, Scheme};
use f2_crypto::MasterKey;
use f2_engine::stream::{decrypt_streaming, load_streamed_outcome, read_outcome};
use f2_engine::{Engine, EngineConfig};
use f2_io::TableSource;
use f2_relation::{table, Table};

/// Version-2 frame stream: 5 rows of the reference table, deterministic-AES
/// backend (`MasterKey::from_seed(2024)`), 2-row chunks, engine seed 2024.
const GOLDEN_V2_STREAM: &str = "\
463257530200050101310000003700000056fa9f072e1100000064657465726d696e69737469632d616573e8070d0002\
020f00240200030000005a69700203000000506f70020201b9000000d800000076b39db3210002021f0002020f008601\
23ea872e825f58d219000000463257530100020200030000005a69700203000000506f70028700000046325753010003\
0200030000005a69700403000000506f7004020f00cc011700000005bc2a53985de68f4fb2ff23acfc6aa220b1160560\
c38f1400000005e792751b06fe3e550021b30ce43146e7931dba1700000005bc2a53985de68f4fb2ff23acfc6aa220b1\
160560c38f1400000005e792751b06fe3e550021b30ce43146e7931dba0201c5000000da000000b55eccc302010f0002\
020f0002040f0002020f0002040f00860142e44376f8761e1619000000463257530100020200030000005a6970020300\
0000506f700289000000463257530100030200030000005a69700403000000506f7004020f00d001170000000516884d\
49e4b175c333873d57551c12db2ee283dd922b160000000555598dadb6f42118c3da81e53abc9f24019cf268a9170000\
00058a704f54bfc84c19e23f5784c9c3e04e476e61d973fc1400000005d4e1f6a92a61ec11e41cacf07a7c112e2bff40\
02018f000000a50000001dde9d4c02020f0002040f0002050f0002040f0002050f00860188cfb117c371380d19000000\
463257530100020200030000005a69700203000000506f700254000000463257530100030200030000005a6970040300\
0000506f7004010f006617000000058a704f54bfc84c19e23f5784c9c3e04e476e61d973fc1400000005d4e1f6a92a61\
ec11e41cacf07a7c112e2bff4003011100000080000000cdcf9e2902030f0002050f0002054f0002058f010000000000\
00000000000076688ae3";

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
        .collect()
}

fn reference_table() -> Table {
    table! {
        ["Zip", "Pop"];
        ["07030", "58"],
        ["07030", "58"],
        ["10001", "8804"],
        ["08540", "31"],
        ["08540", "31"],
    }
}

fn reference_scheme() -> DetScheme {
    DetScheme::new(MasterKey::from_seed(2024))
}

#[test]
fn version_2_stream_stays_decodable() {
    let golden = unhex(GOLDEN_V2_STREAM);
    let scheme = reference_scheme();
    let (outcome, records) = load_streamed_outcome(&scheme, &golden[..]).expect("golden decodes");
    assert_eq!(records.len(), 3);
    assert_eq!(records[0].rows, 0..2);
    assert_eq!(records[2].rows, 4..5);
    assert_eq!(outcome.encrypted.row_count(), 5);
    assert!(scheme.decrypt(&outcome).expect("decrypts").multiset_eq(&reference_table()));

    // The unified reader dispatches it as a v2 stream …
    let via_reader = read_outcome(&scheme, &golden).expect("read_outcome accepts v2");
    assert_eq!(via_reader.encrypted, outcome.encrypted);

    // … and the chunk-wise streaming decryptor recovers the same rows.
    let mut rows = 0;
    decrypt_streaming(&scheme, &golden[..], |chunk| {
        rows += chunk.row_count();
        Ok(())
    })
    .expect("streams");
    assert_eq!(rows, 5);
}

#[test]
fn version_2_encoding_is_canonical() {
    // Re-running the same inputs must reproduce the golden bytes exactly — the
    // stream carries no wall-clock or otherwise run-dependent fields.
    let t = reference_table();
    let scheme = reference_scheme();
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 2, seed: 2024 }).unwrap();
    let mut stream = Vec::new();
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut stream).unwrap();
    assert_eq!(
        stream,
        unhex(GOLDEN_V2_STREAM),
        "v2 stream layout changed — bump the stream version and add a new vector"
    );
}
