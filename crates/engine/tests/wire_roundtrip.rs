//! Property tests for the `F2WS` wire format: randomly generated tables and owner
//! states round-trip exactly, and corrupt or truncated blobs always decode to an
//! error — never a panic and never a silently wrong value.

use f2_core::{Scheme, SchemeOutcome, F2};
use f2_engine::persist::{decode_table, encode_table};
use f2_engine::StatefulScheme;
use f2_relation::{Record, Schema, Table, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a value from two sampled integers (variant selector + payload).
fn value_from(variant: u8, payload: i64) -> Value {
    match variant % 6 {
        0 => Value::Null,
        1 => Value::Int(payload),
        2 => Value::Decimal { digits: payload, scale: (payload % 7).unsigned_abs() as u8 },
        3 => Value::Text(format!("v{payload}")),
        4 => Value::Date(payload as i32),
        _ => Value::bytes(payload.to_le_bytes().to_vec()),
    }
}

/// Assemble a table from sampled dimensions and a flat pool of sampled cells.
fn table_from(arity: usize, cells: Vec<(u8, i64)>) -> Table {
    let schema = Schema::from_names((0..arity).map(|a| format!("a{a}"))).expect("small schema");
    let records = cells
        .chunks_exact(arity)
        .map(|row| Record::new(row.iter().map(|&(v, p)| value_from(v, p)).collect()))
        .collect();
    Table::new(schema, records).expect("consistent arity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tables_roundtrip_exactly(
        arity in 1usize..6,
        cells in vec((0u8..=255, 0u64..=u64::MAX), 0..60),
    ) {
        let cells: Vec<(u8, i64)> = cells.into_iter().map(|(v, p)| (v, p as i64)).collect();
        let table = table_from(arity, cells);
        let blob = encode_table(&table);
        prop_assert_eq!(decode_table(&blob).expect("own encoding decodes"), table);
    }

    #[test]
    fn truncated_tables_error_not_panic(
        arity in 1usize..5,
        cells in vec((0u8..=255, 0u64..=u64::MAX), 4..40),
        cut_per_mille in 0u64..1000,
    ) {
        let cells: Vec<(u8, i64)> = cells.into_iter().map(|(v, p)| (v, p as i64)).collect();
        let blob = encode_table(&table_from(arity, cells));
        // Cut anywhere strictly inside the blob: decoding must error (the format has
        // no optional trailer, so every byte is load-bearing).
        let cut = (blob.len() as u64 * cut_per_mille / 1000) as usize;
        prop_assert!(decode_table(&blob[..cut]).is_err());
    }

    #[test]
    fn corrupted_tables_never_panic(
        arity in 1usize..5,
        cells in vec((0u8..=255, 0u64..=u64::MAX), 4..40),
        flip_pos in 0u64..u64::MAX,
        flip_mask in 1u8..=255,
    ) {
        let cells: Vec<(u8, i64)> = cells.into_iter().map(|(v, p)| (v, p as i64)).collect();
        let table = table_from(arity, cells);
        let mut blob = encode_table(&table);
        let pos = (flip_pos % blob.len() as u64) as usize;
        blob[pos] ^= flip_mask;
        // A single byte flip may still decode (e.g. inside text content) — but it must
        // never panic, and a successful decode of a *header/table-structure* flip must
        // not fabricate a different shape silently: whatever comes back is a Table the
        // caller can inspect. The property under test is purely "no panic".
        let _ = decode_table(&blob);
    }

    #[test]
    fn f2_state_blobs_survive_corruption_without_panicking(
        seed in 0u64..1000,
        cut_per_mille in 0u64..1000,
        flip_mask in 1u8..=255,
    ) {
        let table = f2_relation::table! {
            ["Zip", "City"];
            ["07030", "Hoboken"], ["07030", "Hoboken"],
            ["10001", "NewYork"], ["10001", "NewYork"],
            ["08540", "Princeton"], ["08540", "Princeton"],
        };
        let scheme = F2::builder().alpha(0.5).seed(seed).build().expect("valid");
        let outcome = scheme.encrypt(&table).expect("encrypt");
        let blob = scheme.save_state(&outcome).expect("save");

        // Exact roundtrip first.
        let restored = SchemeOutcome {
            encrypted: outcome.encrypted.clone(),
            state: scheme.load_state(&blob).expect("load own blob"),
            report: Default::default(),
        };
        prop_assert!(scheme.decrypt(&restored).expect("decrypt").multiset_eq(&table));

        // Truncation errors, never panics.
        let cut = (blob.len() as u64 * cut_per_mille / 1000) as usize;
        prop_assert!(scheme.load_state(&blob[..cut]).is_err());

        // Byte flips never panic (they may decode if the flip hits a benign spot).
        let mut corrupt = blob.clone();
        let pos = (seed % blob.len() as u64) as usize;
        corrupt[pos] ^= flip_mask;
        let _ = scheme.load_state(&corrupt);
    }
}
