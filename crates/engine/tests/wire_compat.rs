//! Wire-format compatibility vectors.
//!
//! These blobs were produced by wire version 1 and are frozen: a reader from any
//! later revision of this workspace must keep decoding them, and (because the
//! encoding is canonical) re-encoding the decoded state must reproduce them byte for
//! byte. If a layout change ever breaks this test, bump [`f2_engine::wire::VERSION`]
//! and add a new vector instead of editing the old one — old state blobs live on
//! disk next to outsourced tables and must stay loadable.

use f2_core::scheme::CellWiseState;
use f2_core::{DetScheme, F2OwnerState, OwnerState, Provenance, RowOrigin, SchemeOutcome, F2};
use f2_crypto::MasterKey;
use f2_engine::StatefulScheme;
use f2_relation::{AttrSet, Attribute, DataType, Schema, Table};

/// Version-1 F² owner-state blob for [`reference_f2_state`].
const GOLDEN_F2_STATE: &str = "463257530100010200030000005a69700203000000506f700002000000010000000000\
0000030000000000000006000000000000000000000000000000000200000000000000000001000000000000000101000000\
000000000301000000000000000400000000000000000100000000000000010000000000000001000000000000000400000000000000";

/// Version-1 cell-wise owner-state blob for the same schema.
const GOLDEN_CELL_WISE_STATE: &str = "463257530100020200030000005a69700203000000506f7000";

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("valid hex"))
        .collect()
}

fn reference_schema() -> Schema {
    Schema::new(vec![Attribute::new("Zip", DataType::Text), Attribute::new("Pop", DataType::Int)])
        .expect("valid schema")
}

fn reference_f2_state() -> F2OwnerState {
    let mut provenance = Provenance {
        origins: vec![
            RowOrigin::Real { original_row: 0 },
            RowOrigin::GroupFake { mas_index: 0 },
            RowOrigin::Real { original_row: 1 },
            RowOrigin::ScaleCopy { mas_index: 1 },
            RowOrigin::ConflictCompanion { original_row: 1 },
            RowOrigin::FalsePositive { mas_index: 0 },
        ],
        ..Provenance::default()
    };
    provenance.patches.insert(1, vec![(0, 4)]);
    F2OwnerState {
        provenance,
        mas_sets: vec![AttrSet::from_indices([0]), AttrSet::from_indices([0, 1])],
        plaintext_schema: reference_schema(),
    }
}

#[test]
fn version_1_f2_state_blob_stays_decodable_and_canonical() {
    let golden = unhex(GOLDEN_F2_STATE);
    let scheme = F2::builder().seed(1).build().expect("valid scheme");
    let loaded = scheme.load_state(&golden).expect("version-1 blob decodes");
    let state: &F2OwnerState = loaded.downcast_ref().expect("an F2 owner state");
    let reference = reference_f2_state();
    assert_eq!(state.provenance, reference.provenance);
    assert_eq!(state.mas_sets, reference.mas_sets);
    assert_eq!(state.plaintext_schema, reference.plaintext_schema);

    // Canonical encoding: re-encoding the decoded state reproduces the golden bytes.
    let outcome = SchemeOutcome {
        encrypted: Table::empty(reference.plaintext_schema.encrypted()),
        state: OwnerState::new(reference),
        report: Default::default(),
    };
    assert_eq!(scheme.save_state(&outcome).expect("save"), golden);
}

#[test]
fn version_1_cell_wise_state_blob_stays_decodable_and_canonical() {
    let golden = unhex(GOLDEN_CELL_WISE_STATE);
    let scheme = DetScheme::new(MasterKey::from_seed(1));
    let loaded = scheme.load_state(&golden).expect("version-1 blob decodes");
    let state: &CellWiseState = loaded.downcast_ref().expect("a cell-wise owner state");
    assert_eq!(state.plaintext_schema, reference_schema());

    let outcome = SchemeOutcome {
        encrypted: Table::empty(reference_schema().encrypted()),
        state: OwnerState::new(CellWiseState { plaintext_schema: reference_schema() }),
        report: Default::default(),
    };
    assert_eq!(scheme.save_state(&outcome).expect("save"), golden);
}
