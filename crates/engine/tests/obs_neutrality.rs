//! Artifact neutrality of the telemetry layer: `run_streaming` must produce
//! byte-identical v2 streams with instrumentation enabled and disabled, and the
//! in-memory path must stay artifact-identical to the streaming path either way.
//! (The frozen golden vectors in `stream_compat.rs` run with instrumentation
//! enabled — its default state — so instrumented-vs-golden equality is already
//! pinned there; this suite pins the enabled/disabled axis.)
//!
//! Everything lives in ONE test function: it toggles the process-wide registry,
//! and the test binary's other tests would race that global state if they ran in
//! parallel threads.

use f2_core::{F2Scheme, Scheme, F2};
use f2_engine::{Engine, EngineConfig};
use f2_io::TableSource;
use f2_relation::{table, Table};

fn fixture() -> Table {
    table! {
        ["Zip", "City", "Name"];
        ["07030", "Hoboken", "alice"],
        ["07030", "Hoboken", "bob"],
        ["10001", "NewYork", "carol"],
        ["10001", "NewYork", "dave"],
        ["08540", "Princeton", "erin"],
        ["08540", "Princeton", "frank"],
        ["08540", "Princeton", "grace"],
    }
}

fn stream_bytes(engine: &Engine, scheme: &F2Scheme, t: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    engine
        .run_streaming(scheme, &mut TableSource::new(t), &mut out)
        .expect("streaming run succeeds");
    out
}

#[test]
fn instrumentation_is_artifact_neutral() {
    let t = fixture();
    let scheme = F2::builder().alpha(0.5).seed(97).build().expect("scheme builds");
    let engine = Engine::new(EngineConfig { workers: 2, chunk_rows: 3, seed: 97 }).expect("engine");
    let registry = f2_obs::global();

    // Enabled (the default): run once and take a metrics snapshot.
    assert!(registry.is_enabled(), "global registry must start enabled");
    let instrumented = stream_bytes(&engine, &scheme, &t);
    let exposition = registry.prometheus_string();
    for family in [
        "f2_core_phase_seconds_bucket{phase=\"max\"",
        "f2_core_phase_seconds_bucket{phase=\"sse\"",
        "f2_core_phase_seconds_count{phase=\"syn\"}",
        "f2_core_phase_seconds_count{phase=\"fp\"}",
        "f2_engine_chunk_seconds_bucket",
        "f2_span_seconds_count{span=\"engine.chunk.pull\"}",
        "f2_span_seconds_count{span=\"engine.chunk.encrypt\"}",
        "f2_span_seconds_count{span=\"engine.chunk.serialize\"}",
        "f2_span_seconds_count{span=\"engine.chunk.write\"}",
        "f2_engine_chunks_total 3",
        "f2_io_frames_written_total",
        "f2_crypto_aes_blocks_total",
    ] {
        assert!(exposition.contains(family), "missing `{family}` in:\n{exposition}");
    }

    // Disabled: byte-identical stream, no further recording.
    registry.set_enabled(false);
    let frames_before = registry.prometheus_string();
    let uninstrumented = stream_bytes(&engine, &scheme, &t);
    assert_eq!(registry.prometheus_string(), frames_before, "disabled run recorded metrics");
    registry.set_enabled(true);
    assert_eq!(instrumented, uninstrumented, "telemetry changed the stream bytes");

    // Traced: an active request context feeding the enabled trace journal
    // must not perturb artifacts either — stage/count attribution reuses the
    // values the spans already measured.
    let journal = f2_obs::journal();
    assert!(journal.is_enabled(), "global journal must start enabled");
    let guard = journal.begin(f2_obs::TraceCtx::new(0xBEEF, 1), "neutrality");
    let traced = stream_bytes(&engine, &scheme, &t);
    let entry = guard.complete("ok").expect("enabled journal completes the trace");
    assert_eq!(instrumented, traced, "request tracing changed the stream bytes");
    assert_eq!(entry.count("rows"), 7, "trace missed the row count: {entry:?}");
    assert!(entry.count("chunk_bytes") > 0, "trace missed the byte count: {entry:?}");
    // Attribution is thread-local by design: stages measured on the calling
    // thread (pull/serialize/write, plus the core phase timings it records)
    // land in the trace; spans on pool worker threads keep feeding only the
    // process-wide histograms.
    for stage in ["core.max", "core.sse", "core.syn", "core.fp", "engine.chunk.serialize"] {
        assert!(
            entry.stages.iter().any(|s| s.name == stage),
            "stage `{stage}` missing from trace: {entry:?}"
        );
    }
    assert!(
        journal.recent().iter().any(|e| e.trace_id == 0xBEEF),
        "completed trace not retained by the journal"
    );

    // Repeat-run determinism with instrumentation on (canonical streams).
    assert_eq!(instrumented, stream_bytes(&engine, &scheme, &t));

    // And the in-memory path agrees with the streamed artifacts either way.
    let in_memory = engine.encrypt(&scheme, &t).expect("in-memory run succeeds");
    let (loaded, _) =
        f2_engine::stream::load_streamed_outcome(&scheme, &instrumented[..]).expect("stream loads");
    assert_eq!(loaded.encrypted, in_memory.outcome.encrypted);
    assert!(scheme.decrypt(&loaded).expect("decrypts").multiset_eq(&t));
}
