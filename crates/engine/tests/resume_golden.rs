//! Crash-safe resume golden tests: for **every** interruption point — mid-preamble,
//! at each frame boundary, and torn mid-frame — and for all four backends,
//! `Engine::resume_streaming` over the surviving prefix must reproduce the
//! uninterrupted stream **byte for byte**. This is the acceptance criterion of the
//! resume protocol: chunk seeds are pure functions of the engine seed and chunk
//! index, ciphertexts are deterministic under them, and the trailer zeroes its
//! run-varying timings, so an interrupted-then-resumed run and a clean run are
//! indistinguishable on disk.
//!
//! Also pinned here: the guard rails — resuming with the wrong engine
//! configuration, the wrong scheme, or a source that changed since the
//! interrupted run must error rather than splice two different runs together.

use f2_core::{ChunkedScheme, DetScheme, PaillierScheme, ProbScheme, F2};
use f2_crypto::MasterKey;
use f2_engine::{Engine, EngineConfig, StatefulScheme};
use f2_io::{
    CsvOptions, CsvSource, FaultKind, FaultPlan, FaultyWriter, FrameReader, IoResult, RowSource,
    SeekableSource, TableChunk, TableSource,
};
use f2_relation::{Schema, Table, Value};
use std::io::Cursor;

/// A [`TableSource`] wrapper that counts pulls and seeks — proof of which
/// resume path ran.
struct CountingSource<'a> {
    inner: TableSource<'a>,
    pulls: usize,
    seeks: usize,
}

impl<'a> CountingSource<'a> {
    fn new(table: &'a Table) -> Self {
        CountingSource { inner: TableSource::new(table), pulls: 0, seeks: 0 }
    }
}

impl RowSource for CountingSource<'_> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_chunk(&mut self, max_rows: usize) -> IoResult<Option<TableChunk<'_>>> {
        self.pulls += 1;
        self.inner.next_chunk(max_rows)
    }

    fn as_seekable(&mut self) -> Option<&mut dyn SeekableSource> {
        Some(self)
    }
}

impl SeekableSource for CountingSource<'_> {
    fn seek_to_row(&mut self, row: usize) -> IoResult<()> {
        self.seeks += 1;
        self.inner.as_seekable().expect("tables seek").seek_to_row(row)
    }
}

fn fixture(rows: usize) -> Table {
    f2_datagen::Dataset::Orders.generate(rows, 77)
}

fn engine() -> Engine {
    Engine::new(EngineConfig { workers: 1, chunk_rows: 5, seed: 41 }).unwrap()
}

/// Absolute stream offsets after the preamble and after each frame (the final
/// entry is the full stream length, i.e. after the end frame).
fn frame_boundaries(stream: &[u8]) -> Vec<u64> {
    let mut reader = FrameReader::new(stream).expect("own stream has a valid preamble");
    let mut offsets = vec![reader.bytes_consumed()];
    while reader.next_frame().expect("own stream decodes").is_some() {
        offsets.push(reader.bytes_consumed());
    }
    offsets.push(reader.bytes_consumed());
    offsets
}

/// The full cut grid for a stream: inside the preamble, at every frame boundary,
/// and torn positions inside every frame (header bytes and payload bytes), plus
/// the complete stream (resume of a finished stream must also be a no-op on the
/// bytes).
fn cut_grid(stream: &[u8]) -> Vec<usize> {
    let boundaries = frame_boundaries(stream);
    let mut cuts = vec![0, 3, 6];
    for pair in boundaries.windows(2) {
        let (start, end) = (pair[0] as usize, pair[1] as usize);
        cuts.push(start);
        // Torn frame: one byte into the header, and mid-frame.
        cuts.push((start + 1).min(end));
        cuts.push(start + (end - start) / 2);
    }
    cuts.push(stream.len() - 1);
    cuts.push(stream.len());
    cuts.sort_unstable();
    cuts.dedup();
    cuts
}

/// Resume from every cut of the uninterrupted stream and demand byte identity.
fn assert_resume_is_byte_exact<S>(label: &str, scheme: &S, t: &Table)
where
    S: ChunkedScheme + StatefulScheme,
{
    let engine = engine();
    let mut full = Vec::new();
    let clean = engine.run_streaming(scheme, &mut TableSource::new(t), &mut full).unwrap();
    for cut in cut_grid(&full) {
        let mut store = Cursor::new(full[..cut].to_vec());
        let outcome = engine
            .resume_streaming(scheme, &mut TableSource::new(t), &mut store)
            .unwrap_or_else(|e| panic!("{label}: resume from cut {cut} failed: {e}"));
        assert_eq!(
            store.get_ref(),
            &full,
            "{label}: resume from cut {cut} diverged from the uninterrupted stream"
        );
        assert_eq!(outcome.rows, clean.rows, "{label}@{cut}: row total diverged");
        assert_eq!(outcome.chunks.len(), clean.chunks.len(), "{label}@{cut}: chunk count diverged");
    }
}

#[test]
fn resume_is_byte_exact_at_every_cut_for_every_backend() {
    let t = fixture(23); // 5 chunks of 5 rows: 4 full + 1 short final chunk
    let master = MasterKey::from_seed(41);
    assert_resume_is_byte_exact(
        "f2",
        &F2::builder().alpha(0.5).seed(41).master_key(master.clone()).build().unwrap(),
        &t,
    );
    assert_resume_is_byte_exact("det", &DetScheme::new(master.clone()), &t);
    assert_resume_is_byte_exact("prob", &ProbScheme::new(master, 41), &t);
    assert_resume_is_byte_exact("paillier", &PaillierScheme::new(64, 41).unwrap(), &t);
}

#[test]
fn resume_repairs_a_crash_simulated_by_a_truncating_writer() {
    // End-to-end with the fault harness: a writer that silently drops everything
    // past an offset (a buffered write lost to a crash) leaves a torn store that
    // resume turns back into the exact uninterrupted stream.
    let t = fixture(23);
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    let engine = engine();
    let mut full = Vec::new();
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut full).unwrap();

    let cut = full.len() * 2 / 3;
    let plan = FaultPlan::new().with(cut as u64, FaultKind::Truncate);
    let mut crashed = FaultyWriter::new(Vec::new(), plan);
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut crashed).unwrap();
    let torn = crashed.into_inner();
    assert_eq!(torn.len(), cut, "the crash dropped the tail silently");

    let mut store = Cursor::new(torn);
    engine.resume_streaming(&scheme, &mut TableSource::new(&t), &mut store).unwrap();
    assert_eq!(store.get_ref(), &full);
}

#[test]
fn seekable_sources_resume_with_zero_prefix_pulls_for_rederivable_backends() {
    let t = fixture(23);
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    let engine = engine();
    let mut full = Vec::new();
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut full).unwrap();
    // Keep two complete chunk frames (10 of 23 rows already encrypted).
    let cut = frame_boundaries(&full)[3] as usize;
    let mut store = Cursor::new(full[..cut].to_vec());
    let mut source = CountingSource::new(&t);
    engine.resume_streaming(&scheme, &mut source, &mut store).unwrap();
    assert_eq!(store.get_ref(), &full, "fast-path resume must stay byte-identical");
    assert_eq!(source.seeks, 1, "the prefix is skipped by one seek");
    // Only the continuation is pulled: rows 10..23 in 5-row chunks, plus the
    // exhausting pull — never the 2 prefix chunks.
    assert_eq!(source.pulls, 4);
}

#[test]
fn f2_keeps_the_replaying_verification_even_over_a_seekable_source() {
    let t = fixture(23);
    let scheme = F2::builder().alpha(0.5).seed(41).build().unwrap();
    let engine = engine();
    let mut full = Vec::new();
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut full).unwrap();
    let cut = frame_boundaries(&full)[3] as usize;
    let mut store = Cursor::new(full[..cut].to_vec());
    let mut source = CountingSource::new(&t);
    engine.resume_streaming(&scheme, &mut source, &mut store).unwrap();
    assert_eq!(store.get_ref(), &full);
    // F²'s per-chunk report depends on the data, so the prefix must be
    // re-pulled and re-encrypted — the CRC check against the stored frames is
    // what proves the source unchanged. 2 prefix pulls + 3 continuation + EOF.
    assert_eq!(source.seeks, 0, "no seek: the replay is the verification");
    assert_eq!(source.pulls, 6);
}

#[test]
fn a_csv_source_resumes_byte_identically_through_the_seek_fast_path() {
    let mut csv = String::from("account_id,amount\n");
    for i in 0..23 {
        csv.push_str(&format!("{},{}\n", 1000 + i, i * 7));
    }
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    let engine = engine();
    let mut full = Vec::new();
    let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
    engine.run_streaming(&scheme, &mut source, &mut full).unwrap();
    for cut in cut_grid(&full) {
        let mut store = Cursor::new(full[..cut].to_vec());
        // A fresh parser per attempt, as a restarted process would open one;
        // the forward-only seek skips the already-encrypted prefix.
        let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
        engine
            .resume_streaming(&scheme, &mut source, &mut store)
            .unwrap_or_else(|e| panic!("csv resume from cut {cut} failed: {e}"));
        assert_eq!(store.get_ref(), &full, "csv resume from cut {cut} diverged");
    }
}

#[test]
fn resume_refuses_a_changed_source_for_f2() {
    // F² re-encrypts the prefix chunks during replay and checks them against the
    // stored frames: a source that no longer holds the original rows must be
    // rejected, not silently spliced into a frankenstream.
    let t = fixture(23);
    let scheme = F2::builder().alpha(0.5).seed(41).build().unwrap();
    let engine = engine();
    let mut full = Vec::new();
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut full).unwrap();
    let boundaries = frame_boundaries(&full);
    // Keep two complete chunk frames (preamble, header, chunk 0, chunk 1).
    let cut = boundaries[3] as usize;

    let mut changed = t.clone();
    changed.set_cell(2, 0, Value::Int(999_999_999)).unwrap();
    let mut store = Cursor::new(full[..cut].to_vec());
    let err =
        engine.resume_streaming(&scheme, &mut TableSource::new(&changed), &mut store).unwrap_err();
    assert!(err.to_string().contains("source changed"), "{err}");
}

#[test]
fn resume_refuses_a_mismatched_configuration_scheme_or_source() {
    let t = fixture(13);
    let scheme = DetScheme::new(MasterKey::from_seed(41));
    let engine = engine();
    let mut full = Vec::new();
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut full).unwrap();

    // A different engine seed: the header contradicts the resuming engine.
    let other = Engine::new(EngineConfig { workers: 1, chunk_rows: 5, seed: 99 }).unwrap();
    let mut store = Cursor::new(full.clone());
    let err = other.resume_streaming(&scheme, &mut TableSource::new(&t), &mut store).unwrap_err();
    assert!(err.to_string().contains("original configuration"), "{err}");

    // A different chunk size too.
    let other = Engine::new(EngineConfig { workers: 1, chunk_rows: 3, seed: 41 }).unwrap();
    let mut store = Cursor::new(full.clone());
    let err = other.resume_streaming(&scheme, &mut TableSource::new(&t), &mut store).unwrap_err();
    assert!(err.to_string().contains("original configuration"), "{err}");

    // A different scheme.
    let wrong = ProbScheme::new(MasterKey::from_seed(41), 41);
    let mut store = Cursor::new(full.clone());
    let err = engine.resume_streaming(&wrong, &mut TableSource::new(&t), &mut store).unwrap_err();
    assert!(err.to_string().contains("scheme"), "{err}");

    // A source whose schema disagrees with the stream header.
    let other_table = f2_datagen::Dataset::Customer.generate(13, 77);
    assert_ne!(other_table.schema(), t.schema());
    let mut store = Cursor::new(full.clone());
    let err = engine
        .resume_streaming(&scheme, &mut TableSource::new(&other_table), &mut store)
        .unwrap_err();
    assert!(err.to_string().contains("schema"), "{err}");

    // A source that ends before the prefix does.
    let short = fixture(5);
    let boundaries = frame_boundaries(&full);
    let mut store = Cursor::new(full[..boundaries[4] as usize].to_vec());
    let err =
        engine.resume_streaming(&scheme, &mut TableSource::new(&short), &mut store).unwrap_err();
    assert!(err.to_string().contains("source ended"), "{err}");
}
