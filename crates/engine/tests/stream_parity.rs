//! Acceptance tests of the streaming pipeline:
//!
//! * `run_streaming` produces **artifact-identical** output to the in-memory
//!   `Engine::encrypt` path — same ciphertext bytes, same serialized owner state —
//!   for all four backends and across the whole worker grid;
//! * a version-1 `F2WS` single blob still loads through the unified reader;
//! * a corrupted v2 frame fails with a checksum error, never a panic;
//! * the streaming path is single-in-flight: it never holds more than one chunk of
//!   plaintext rows (`chunk_rows`) at a time.

use f2_core::{ChunkedScheme, DetScheme, PaillierScheme, ProbScheme, Scheme, F2};
use f2_crypto::MasterKey;
use f2_engine::stream::{decrypt_streaming, load_streamed_outcome, read_outcome};
use f2_engine::{save_outcome, Engine, EngineConfig, StatefulScheme};
use f2_io::{CsvOptions, CsvSource, IoResult, RowSource, TableChunk, TableSource};
use f2_relation::csv::to_csv_string;
use f2_relation::{Schema, Table};
use std::cell::RefCell;
use std::rc::Rc;

fn fixture(rows: usize) -> Table {
    f2_datagen::Dataset::Orders.generate(rows, 77)
}

/// The acceptance check of the tentpole: streaming and in-memory paths produce the
/// same ciphertext and owner state at every worker count, for one backend.
fn assert_stream_parity<S: ChunkedScheme + StatefulScheme>(label: &str, scheme: &S, t: &Table) {
    let mut stream = Vec::new();
    let streaming_engine =
        Engine::new(EngineConfig { workers: 1, chunk_rows: 5, seed: 41 }).unwrap();
    streaming_engine
        .run_streaming(scheme, &mut TableSource::new(t), &mut stream)
        .unwrap_or_else(|e| panic!("{label}: streaming failed: {e}"));
    let (loaded, _) = load_streamed_outcome(scheme, &stream[..]).unwrap();
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new(EngineConfig { workers, chunk_rows: 5, seed: 41 }).unwrap();
        let in_memory = engine.encrypt(scheme, t).unwrap();
        assert_eq!(
            loaded.encrypted, in_memory.outcome.encrypted,
            "{label}@{workers}: ciphertext diverged"
        );
        assert_eq!(
            scheme.save_state(&loaded).unwrap(),
            scheme.save_state(&in_memory.outcome).unwrap(),
            "{label}@{workers}: owner state diverged"
        );
    }
    // And the stream decrypts back to the plaintext.
    assert!(scheme.decrypt(&loaded).unwrap().multiset_eq(t), "{label}: bad roundtrip");
}

#[test]
fn streaming_matches_in_memory_for_every_backend_and_worker_count() {
    let t = fixture(23); // deliberately not a multiple of the chunk size
    let master = MasterKey::from_seed(41);
    assert_stream_parity(
        "f2",
        &F2::builder().alpha(0.5).seed(41).master_key(master.clone()).build().unwrap(),
        &t,
    );
    assert_stream_parity("det", &DetScheme::new(master.clone()), &t);
    assert_stream_parity("prob", &ProbScheme::new(master, 41), &t);
    assert_stream_parity("paillier", &PaillierScheme::new(64, 41).unwrap(), &t);
    assert_stream_parity("paillier-packed", &PaillierScheme::new(64, 41).unwrap().packed(), &t);
}

#[test]
fn csv_source_and_table_source_produce_the_same_stream() {
    let t = fixture(17);
    // Parse the rendered CSV back under the table's own schema, so typed cells
    // re-parse to the exact in-memory values.
    let schema = t.schema().clone();
    let csv = to_csv_string(&t);
    let scheme = F2::builder().alpha(0.5).seed(13).build().unwrap();
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 4, seed: 13 }).unwrap();

    let mut from_table = Vec::new();
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut from_table).unwrap();
    let mut from_csv = Vec::new();
    let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv().with_schema(schema)).unwrap();
    engine.run_streaming(&scheme, &mut source, &mut from_csv).unwrap();
    assert_eq!(from_table, from_csv, "CSV-parsed rows must stream to identical bytes");
}

#[test]
fn v1_blobs_and_v2_streams_load_through_the_same_reader() {
    let t = fixture(11);
    let scheme = F2::builder().alpha(0.5).seed(9).build().unwrap();
    let engine = Engine::new(EngineConfig { workers: 2, chunk_rows: 4, seed: 9 }).unwrap();
    let run = engine.encrypt(&scheme, &t).unwrap();

    // v1: the single-blob format of PR 2.
    let v1 = save_outcome(&scheme, &run.outcome).unwrap();
    let from_v1 = read_outcome(&scheme, &v1).unwrap();
    assert_eq!(from_v1.encrypted, run.outcome.encrypted);
    assert!(scheme.decrypt(&from_v1).unwrap().multiset_eq(&t));

    // v2: the frame stream.
    let mut v2 = Vec::new();
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut v2).unwrap();
    let from_v2 = read_outcome(&scheme, &v2).unwrap();
    assert_eq!(from_v2.encrypted, run.outcome.encrypted);
    assert!(scheme.decrypt(&from_v2).unwrap().multiset_eq(&t));

    // Junk is rejected with an error, not a panic.
    assert!(read_outcome(&scheme, b"not a stream").is_err());
    assert!(read_outcome(&scheme, &[]).is_err());
}

#[test]
fn corrupted_v2_frames_fail_with_checksum_errors_never_panics() {
    let t = fixture(13);
    let scheme = F2::builder().alpha(0.5).seed(3).build().unwrap();
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 4, seed: 3 }).unwrap();
    let mut stream = Vec::new();
    engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut stream).unwrap();

    // Flip a bit in every 7th byte position across the whole stream: loading must
    // error every time (the stream has no don't-care bytes).
    for at in (7..stream.len()).step_by(7) {
        let mut corrupt = stream.clone();
        corrupt[at] ^= 0x04;
        assert!(
            load_streamed_outcome(&scheme, &corrupt[..]).is_err(),
            "flip at {at} went undetected"
        );
    }
    // Truncations too.
    for cut in [0, 6, 7, stream.len() / 2, stream.len() - 1] {
        assert!(load_streamed_outcome(&scheme, &stream[..cut]).is_err(), "cut at {cut}");
    }
    // And the streaming decryptor hits the same wall instead of emitting bad rows.
    let mut corrupt = stream.clone();
    let mid = stream.len() / 2;
    corrupt[mid] ^= 0x20;
    assert!(decrypt_streaming(&scheme, &corrupt[..], |_| Ok(())).is_err());
}

/// A [`RowSource`] wrapper asserting the engine is single-in-flight: before chunk
/// `k+1` may be pulled, chunk `k`'s frame must already have been written out (one
/// `write` call per frame — so the plaintext of at most one chunk is ever alive).
struct LockstepSource<'a> {
    inner: TableSource<'a>,
    writes: Rc<RefCell<usize>>,
    pulls: usize,
    chunk_rows: usize,
}

impl RowSource for LockstepSource<'_> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_chunk(&mut self, max_rows: usize) -> IoResult<Option<TableChunk<'_>>> {
        assert_eq!(max_rows, self.chunk_rows, "engine must request chunk_rows per pull");
        // Writes so far: 1 preamble + 1 header frame + 1 per finished chunk.
        let finished_chunks = self.writes.borrow().saturating_sub(2);
        assert!(
            self.pulls <= finished_chunks + 1,
            "chunk {} pulled while only {} chunk frames were written \
             (more than one chunk of plaintext in memory)",
            self.pulls,
            finished_chunks
        );
        self.pulls += 1;
        let chunk = self.inner.next_chunk(max_rows)?;
        if let Some(chunk) = &chunk {
            assert!(chunk.row_count() <= self.chunk_rows);
        }
        Ok(chunk)
    }
}

/// Counts `write` calls (the sink performs exactly one per preamble/frame).
struct CountingWriter {
    writes: Rc<RefCell<usize>>,
    sink: Vec<u8>,
}

impl std::io::Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        *self.writes.borrow_mut() += 1;
        self.sink.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn run_streaming_holds_at_most_one_chunk_of_plaintext() {
    let t = fixture(37);
    let chunk_rows = 5;
    let writes = Rc::new(RefCell::new(0usize));
    let mut source = LockstepSource {
        inner: TableSource::new(&t),
        writes: writes.clone(),
        pulls: 0,
        chunk_rows,
    };
    let writer = CountingWriter { writes: writes.clone(), sink: Vec::new() };
    let scheme = F2::builder().alpha(0.5).seed(19).build().unwrap();
    let engine = Engine::new(EngineConfig { workers: 4, chunk_rows, seed: 19 }).unwrap();
    let summary = engine.run_streaming(&scheme, &mut source, writer).unwrap();
    let expected_chunks = t.row_count().div_ceil(chunk_rows);
    assert_eq!(summary.chunks.len(), expected_chunks);
    assert_eq!(summary.rows, t.row_count());
    // Every chunk respected the bound, and the source saw one pull per chunk plus
    // the final empty pull.
    assert!(summary.chunks.iter().all(|c| c.rows.len() <= chunk_rows));
    assert_eq!(source.pulls, expected_chunks + 1);
}

#[test]
fn oversized_and_short_chunks_from_a_hostile_source_are_rejected() {
    /// A source that returns a short chunk before the end.
    struct ShortChunkSource<'a> {
        table: &'a Table,
        step: usize,
    }
    impl RowSource for ShortChunkSource<'_> {
        fn schema(&self) -> &Schema {
            self.table.schema()
        }
        fn next_chunk(&mut self, _max: usize) -> IoResult<Option<TableChunk<'_>>> {
            let start = self.step;
            self.step += 2; // always 2 rows, even though chunk_rows is 4
            if start >= self.table.row_count() {
                return Ok(None);
            }
            let end = (start + 2).min(self.table.row_count());
            Ok(Some(TableChunk::Borrowed(self.table.view(start..end).unwrap())))
        }
    }
    let t = fixture(12);
    let scheme = F2::builder().alpha(0.5).seed(1).build().unwrap();
    let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 4, seed: 1 }).unwrap();
    let mut source = ShortChunkSource { table: &t, step: 0 };
    let err = engine.run_streaming(&scheme, &mut source, Vec::new()).unwrap_err();
    assert!(err.to_string().contains("short chunk"), "{err}");
}
