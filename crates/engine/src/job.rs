//! Push-model streaming jobs: open a stream, append chunks as they arrive,
//! finish (or crash and resume) — the engine layer under a long-running service.
//!
//! [`Engine::run_streaming`] is pull-model: it owns the loop and drains a
//! [`RowSource`](f2_io::RowSource) to completion in one call. A server cannot
//! use that shape — rows arrive from a client one request at a time, with
//! arbitrary gaps (and possibly a process restart) between them. [`StreamJob`]
//! inverts control while reusing the exact same per-chunk encoder, so the bytes
//! a job writes are **byte-identical** to what `run_streaming` would have
//! produced over the same rows, scheme, and engine configuration:
//!
//! * [`Engine::begin_job`] truncates a [`StreamStore`] and writes the preamble
//!   and header frame.
//! * [`StreamJob::append_chunk`] encrypts one chunk and appends its frame —
//!   the caller must push full `chunk_rows` chunks until the final short one,
//!   exactly like a source on the pull path (violations are typed errors).
//! * [`StreamJob::finish`] writes the trailer and end marker and returns the
//!   same [`StreamOutcome`] the pull path reports.
//! * [`Engine::resume_job`] reopens a store torn by a crash or disconnect:
//!   it scans the intact prefix (the same validation as
//!   [`Engine::resume_streaming`]), truncates the tear, and returns a job
//!   positioned at the next chunk index. Unlike `resume_streaming` it needs
//!   **no source**: backends with derivable per-chunk reports rebuild their
//!   running totals arithmetically, and F² rebuilds them by decrypting each
//!   stored prefix chunk and re-encrypting it under its recorded seed,
//!   verifying the re-encryption CRC-matches the stored frame (which proves
//!   the store, owner state, and key material all still agree). The caller
//!   re-sends rows from [`StreamJob::rows`] onward.
//!
//! This is the substrate `f2_server` builds its crash-resumable, multi-tenant
//! job sessions on; it is equally usable directly for incremental encryption
//! pipelines that materialize rows in batches.

use crate::persist::{decode_table, encode_table, put_schema, StatefulScheme};
use crate::pipeline::{merge_reports, ChunkRecord, Engine};
use crate::resume::StreamPrefix;
use crate::stream::{
    encode_chunk, finish_stream, put_chunk_record, take_chunk_record, StreamOutcome,
    StreamProgress, FRAME_CHUNK, FRAME_HEADER,
};
use crate::wire::{Reader, Writer};
use f2_core::{ChunkedScheme, EncryptionReport, F2Error, Result, SchemeOutcome};
use f2_io::frame::{crc32, FrameReader, FrameSink};
use f2_io::{RetryPolicy, RetryingWriter, StreamStore, TableChunk};
use f2_relation::Schema;
use std::io::{Seek, SeekFrom};

/// An open push-model encryption stream over a [`StreamStore`].
///
/// Created by [`Engine::begin_job`] or [`Engine::resume_job`]; see the
/// [module docs](self) for the contract. The job owns the store (through the
/// engine's retrying writer) until [`StreamJob::finish`] closes the stream.
pub struct StreamJob<T: StreamStore> {
    seed: u64,
    chunk_rows: usize,
    sink: FrameSink<RetryingWriter<T>>,
    progress: StreamProgress,
}

impl<T: StreamStore> std::fmt::Debug for StreamJob<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamJob")
            .field("chunk_rows", &self.chunk_rows)
            .field("rows", &self.progress.rows)
            .field("encrypted_rows", &self.progress.encrypted_rows)
            .field("chunks", &self.progress.chunks.len())
            .field("bytes_written", &self.sink.bytes_written())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Start a fresh push-model stream in `store` (truncating whatever it
    /// held), writing the preamble and header frame for `scheme` and `schema`.
    /// The header pins the engine seed and `chunk_rows`, exactly as
    /// [`Engine::run_streaming`] writes it.
    pub fn begin_job<S, T>(&self, scheme: &S, schema: &Schema, mut store: T) -> Result<StreamJob<T>>
    where
        S: ChunkedScheme + StatefulScheme + ?Sized,
        T: StreamStore,
    {
        if schema.arity() == 0 {
            return Err(F2Error::UnsupportedInput("schema has no attributes".into()));
        }
        store.set_len(0).map_err(io_err)?;
        seek_to(&mut store, 0)?;
        let retry = self.retry().cloned().unwrap_or_else(RetryPolicy::disabled);
        let mut sink = FrameSink::new(retry.writer(store)).map_err(F2Error::from)?;
        let mut header = Writer::raw();
        header.put_str(scheme.name());
        header.put_u64(self.config().seed);
        header.put_usize(self.config().chunk_rows);
        put_schema(&mut header, schema);
        sink.write_frame(FRAME_HEADER, &header.finish()).map_err(F2Error::from)?;
        Ok(StreamJob {
            seed: self.config().seed,
            chunk_rows: self.config().chunk_rows,
            sink,
            progress: StreamProgress::start(),
        })
    }

    /// Reopen an interrupted push-model stream in `store`, returning a job
    /// positioned after the last intact chunk frame; everything past it
    /// (torn bytes, or the trailer of a finished stream) is truncated away.
    /// The caller continues by appending rows from [`StreamJob::rows`] onward
    /// — appends then produce a stream byte-identical to an uninterrupted one.
    ///
    /// A store torn before its first chunk frame starts over from scratch
    /// (exactly [`Engine::begin_job`]); a readable header that contradicts the
    /// scheme, engine configuration, or `schema` is an error, not damage. No
    /// source is needed: see the [module docs](self) for how each backend's
    /// running report is rebuilt, and the CRC cross-check that catches a
    /// store/key mismatch before any new bytes are written.
    pub fn resume_job<S, T>(
        &self,
        scheme: &S,
        schema: &Schema,
        mut store: T,
    ) -> Result<StreamJob<T>>
    where
        S: ChunkedScheme + StatefulScheme + ?Sized,
        T: StreamStore,
    {
        crate::obs::resumes().inc();
        seek_to(&mut store, 0)?;
        let Some(prefix) = self.scan_prefix(scheme, schema, &mut store)? else {
            // Nothing usable survives a torn preamble or header frame.
            return self.begin_job(scheme, schema, store);
        };
        let mut progress = StreamProgress::start();
        replay_stored_prefix(scheme, &prefix, &mut store, &mut progress)?;
        store.set_len(prefix.bytes).map_err(io_err)?;
        seek_to(&mut store, prefix.bytes)?;
        let retry = self.retry().cloned().unwrap_or_else(RetryPolicy::disabled);
        let sink = FrameSink::resume(retry.writer(store), prefix.bytes, prefix.frames);
        Ok(StreamJob {
            seed: self.config().seed,
            chunk_rows: self.config().chunk_rows,
            sink,
            progress,
        })
    }
}

impl<T: StreamStore> StreamJob<T> {
    /// Encrypt `chunk` and append its frame, returning the chunk's provenance
    /// record. The pull path's invariants apply: every chunk must hold
    /// `1..=chunk_rows` rows, and a short chunk must be the stream's last —
    /// an append after a short chunk is a typed error, never silent damage.
    pub fn append_chunk<S>(&mut self, scheme: &S, chunk: &TableChunk<'_>) -> Result<&ChunkRecord>
    where
        S: ChunkedScheme + StatefulScheme + ?Sized,
    {
        encode_chunk(
            scheme,
            self.seed,
            self.chunk_rows,
            chunk,
            &mut self.sink,
            &mut self.progress,
        )?;
        // encode_chunk pushed exactly one record on success.
        self.progress
            .chunks
            .last()
            .ok_or_else(|| F2Error::UnsupportedInput("chunk was encoded but not recorded".into()))
    }

    /// Write the trailer and end marker, close the stream, and report the
    /// totals — identical in content to [`Engine::run_streaming`]'s outcome.
    pub fn finish(self) -> Result<StreamOutcome> {
        finish_stream(self.sink, self.progress).map(|(outcome, _)| outcome)
    }

    /// Like [`StreamJob::finish`], but also hand the store back — for callers
    /// that need to sync, inspect, or reuse it after the stream closes.
    pub fn finish_into_store(self) -> Result<(StreamOutcome, T)> {
        finish_stream(self.sink, self.progress)
            .map(|(outcome, writer)| (outcome, writer.into_inner()))
    }

    /// Plaintext rows encrypted so far — the row index the next append's
    /// chunk must start at (and the resume point a reconnecting client
    /// re-sends from).
    pub fn rows(&self) -> usize {
        self.progress.rows
    }

    /// Encrypted rows written so far (padding rows included).
    pub fn encrypted_rows(&self) -> usize {
        self.progress.encrypted_rows
    }

    /// Index the next appended chunk will occupy.
    pub fn next_chunk_index(&self) -> usize {
        self.progress.chunks.len()
    }

    /// Provenance of the chunks written so far, in order.
    pub fn chunks(&self) -> &[ChunkRecord] {
        &self.progress.chunks
    }

    /// The stream's pinned chunk size.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Stream bytes written so far, preamble and frame headers included.
    pub fn bytes_written(&self) -> u64 {
        self.sink.bytes_written()
    }
}

/// Rebuild the running [`StreamProgress`] for a validated prefix using only
/// the store. Backends whose per-chunk reports are derivable from the row
/// count rebuild arithmetically; F² decrypts each stored chunk, re-encrypts
/// it under its recorded seed, and requires the re-encryption to CRC-match
/// the stored frame payload before trusting its report.
fn replay_stored_prefix<S, T>(
    scheme: &S,
    prefix: &StreamPrefix,
    store: &mut T,
    progress: &mut StreamProgress,
) -> Result<()>
where
    S: ChunkedScheme + StatefulScheme + ?Sized,
    T: StreamStore,
{
    let rederived: Option<Vec<_>> =
        prefix.records.iter().map(|r| scheme.rederive_chunk_report(r.rows.len())).collect();
    if let Some(reports) = rederived {
        for (record, report) in prefix.records.iter().zip(&reports) {
            merge_reports(&mut progress.report, report);
            progress.rows = record.rows.end;
            progress.encrypted_rows = record.output_rows.end;
            progress.chunks.push(record.clone());
        }
        return Ok(());
    }

    seek_to(store, 0)?;
    let mut frames = FrameReader::new(&mut *store).map_err(F2Error::from)?;
    // scan_prefix already validated the header frame; skip past it.
    let header = frames.next_frame().map_err(F2Error::from)?;
    if header.as_ref().map(|f| f.frame_type) != Some(FRAME_HEADER) {
        return Err(F2Error::UnsupportedInput(
            "stream changed between prefix scan and replay (header frame vanished)".into(),
        ));
    }
    for (record, &stored_crc) in prefix.records.iter().zip(&prefix.payload_crcs) {
        let frame = frames
            .next_frame()
            .map_err(F2Error::from)?
            .filter(|f| f.frame_type == FRAME_CHUNK)
            .ok_or_else(|| {
                F2Error::UnsupportedInput(
                    "stream changed between prefix scan and replay (chunk frame vanished)".into(),
                )
            })?;
        let mut r = Reader::raw(&frame.payload);
        let _ = take_chunk_record(&mut r)?;
        let state_blob = r.bytes().map_err(F2Error::from)?.to_vec();
        let encrypted = decode_table(r.bytes().map_err(F2Error::from)?)?;
        r.finish().map_err(F2Error::from)?;
        let stored = SchemeOutcome {
            encrypted,
            state: scheme.load_state(&state_blob)?,
            report: EncryptionReport::default(),
        };
        // `Scheme::decrypt` restores original row order (provenance rows are
        // sorted by source index), so re-encrypting its output under the
        // chunk's recorded seed must reproduce the stored bytes exactly.
        let plain = scheme.decrypt(&stored)?;
        let reencrypted = scheme.reseeded(record.seed).encrypt(&plain)?;
        let mut payload = Writer::raw();
        put_chunk_record(&mut payload, record);
        payload.put_bytes(&scheme.save_state(&reencrypted)?);
        payload.put_bytes(&encode_table(&reencrypted.encrypted));
        if crc32(&payload.finish()) != stored_crc {
            return Err(F2Error::UnsupportedInput(format!(
                "chunk {} re-encryption differs from the stored stream — the store was \
                 written under different key material or scheme parameters than the \
                 resuming scheme holds",
                record.index
            )));
        }
        merge_reports(&mut progress.report, &reencrypted.report);
        progress.rows = record.rows.end;
        progress.encrypted_rows = record.output_rows.end;
        progress.chunks.push(record.clone());
    }
    Ok(())
}

fn io_err(error: std::io::Error) -> F2Error {
    F2Error::from(f2_io::IoError::Io(error))
}

fn seek_to<T: Seek>(store: &mut T, pos: u64) -> Result<()> {
    store.seek(SeekFrom::Start(pos)).map_err(io_err)?;
    Ok(())
}
