//! # f2-engine — streaming, multi-threaded encryption with persistable owner state
//!
//! The paper's outsourcing story (§2.1) assumes the data owner encrypts a large
//! relation *once* and ships it to the server. The [`Scheme`](f2_core::Scheme)
//! backends encrypt a whole in-memory table single-threaded and keep their owner
//! state behind an in-process `Box<dyn Any>` — fine for the evaluation harness, a
//! dead end for production outsourcing. This crate adds the missing engine layer:
//!
//! * [`pipeline`] — [`Engine`]: shards a table into row-range chunks, fans the chunks
//!   out to scoped worker threads each driving any
//!   [`ChunkedScheme`](f2_core::ChunkedScheme) backend, and reassembles a
//!   deterministic, order-stable encrypted table with per-chunk provenance
//!   ([`ChunkRecord`]). Every chunk is encrypted under a seed derived from the engine
//!   seed and the chunk index, so parallel chunks never share a nonce stream and the
//!   output is byte-identical regardless of worker count. Note that F²'s α-security
//!   guarantee then holds *per chunk*, not across chunk boundaries — see
//!   [`EngineConfig::chunk_rows`](pipeline::EngineConfig::chunk_rows) before choosing
//!   a chunk size for a security-sensitive deployment.
//! * [`wire`] — the versioned, length-prefixed binary wire format (`F2WS`). Corrupt
//!   or truncated input decodes to an error, never a panic.
//! * [`persist`] — [`StatefulScheme`]: `save_state` / `load_state` over the wire
//!   format, implemented for all four backends, plus whole-outcome round-tripping
//!   ([`save_outcome`] / [`load_outcome`]) so a table encrypted in one process can be
//!   decrypted in another.
//!
//! ```
//! use f2_core::{Scheme, F2};
//! use f2_engine::{load_outcome, save_outcome, Engine, EngineConfig, StatefulScheme};
//! use f2_relation::table;
//!
//! let data = table! {
//!     ["Zip", "City"];
//!     ["07030", "Hoboken"], ["07030", "Hoboken"],
//!     ["10001", "NewYork"], ["10001", "NewYork"],
//! };
//! let scheme = F2::builder().alpha(0.5).seed(7).build().unwrap();
//! let engine = Engine::new(EngineConfig { workers: 2, chunk_rows: 2, seed: 7 }).unwrap();
//! let run = engine.encrypt(&scheme, &data).unwrap();
//! // The outcome survives the trip through the wire format …
//! let blob = save_outcome(&scheme, &run.outcome).unwrap();
//! let restored = load_outcome(&scheme, &blob).unwrap();
//! // … and decrypts through the ordinary Scheme::decrypt.
//! assert!(scheme.decrypt(&restored).unwrap().multiset_eq(&data));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod lossy;
pub(crate) mod obs;
pub mod persist;
pub mod pipeline;
pub mod resume;
pub mod stream;
pub use f2_io::wire;

pub use job::StreamJob;
pub use lossy::{decrypt_streaming_lossy, DamageReport};
pub use persist::{load_outcome, save_outcome, StatefulScheme};
pub use pipeline::{chunk_seed, ChunkRecord, Engine, EngineConfig, EngineOutcome};
pub use stream::{decrypt_streaming, load_streamed_outcome, read_outcome, StreamOutcome};
pub use wire::{Reader, WireError, Writer};

/// The engine's error type — an alias for [`f2_core::F2Error`], under the name
/// engine callers reach for when matching on streaming failures (for example
/// [`EngineError::WorkerPanicked`](f2_core::F2Error::WorkerPanicked)).
pub use f2_core::F2Error as EngineError;
