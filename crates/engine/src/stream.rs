//! End-to-end streaming encryption: source in, checksummed `F2WS` v2 stream out,
//! bounded peak memory in between.
//!
//! lint: untrusted-input — the stream readers below decode wire-derived frames.
//! lint: chunk-seed-authority — this module may derive per-chunk seeds via
//! [`chunk_seed`]; everywhere else must go through the pipeline entry points.
//!
//! [`Engine::run_streaming`] is the constant-memory sibling of [`Engine::encrypt`]:
//! instead of materialising the whole plaintext and the whole ciphertext, it pulls
//! one chunk at a time from a [`RowSource`], encrypts it with the chunk seed the
//! in-memory path would use ([`chunk_seed`]), and appends the result to a
//! [`FrameSink`] before pulling the next chunk — at no point does more than one
//! chunk of plaintext or ciphertext exist in memory (the **single-in-flight**
//! guarantee; the source side is equally bounded, see `f2_io::CsvSource`). Because
//! chunk seeds are a pure function of the engine seed and the chunk index, the
//! stream's chunks carry **exactly** the ciphertext bytes and owner states of the
//! in-memory path at any worker count, so the two paths are interchangeable
//! artifact-for-artifact.
//!
//! The stream layout (each item one checksummed frame, see [`f2_io::frame`]):
//!
//! ```text
//! HEADER   scheme name, engine seed, chunk_rows, plaintext schema
//! CHUNK*   ChunkRecord provenance + per-chunk owner state + encrypted chunk rows
//! TRAILER  chunk/row totals + merged encryption report
//! ```
//!
//! Reading back:
//!
//! * [`load_streamed_outcome`] — reassemble the whole [`SchemeOutcome`] (table +
//!   merged owner state + report) for in-memory decryption;
//! * [`decrypt_streaming`] — decrypt **chunk by chunk**, handing each recovered
//!   plaintext chunk to a callback: constant-memory decryption for datasets that
//!   never fit in RAM (per-chunk owner states are chunk-local, so no merged state is
//!   needed);
//! * [`read_outcome`] — version-sniffing loader accepting both a v1 single-blob
//!   [`save_outcome`](crate::save_outcome) file and a v2 stream.

use crate::persist::{
    decode_table, encode_table, put_report, put_schema, take_report, take_schema, StatefulScheme,
};
use crate::pipeline::{chunk_seed, merge_reports, ChunkRecord, Engine};
use crate::wire::{Reader, Writer};
use f2_core::{ChunkState, ChunkedScheme, EncryptionReport, F2Error, Result, SchemeOutcome};
use f2_io::frame::{FrameReader, FrameSink};
use f2_io::{sniff_version, RetryPolicy, RowSource, TableChunk};
use f2_relation::Table;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Frame type: the stream header (must be the first frame).
pub const FRAME_HEADER: u8 = 1;
/// Frame type: one encrypted chunk.
pub const FRAME_CHUNK: u8 = 2;
/// Frame type: the trailer (must be the last frame before the end marker).
pub const FRAME_TRAILER: u8 = 3;

/// Result of one [`Engine::run_streaming`] run.
#[derive(Debug)]
pub struct StreamOutcome {
    /// Per-chunk provenance, identical in content to the in-memory path's records
    /// (`worker` is always 0: the streaming path is single-in-flight by design).
    pub chunks: Vec<ChunkRecord>,
    /// Plaintext rows consumed from the source.
    pub rows: usize,
    /// Encrypted rows written to the stream.
    pub encrypted_rows: usize,
    /// Total bytes written, preamble and frame headers included.
    pub bytes_written: u64,
    /// The merged encryption report (also persisted in the trailer).
    pub report: EncryptionReport,
}

impl Engine {
    /// Encrypt a [`RowSource`] chunk by chunk into an `F2WS` v2 frame stream.
    ///
    /// Peak memory is bounded by one chunk (plaintext + its ciphertext + one frame
    /// buffer) plus the per-chunk [`ChunkRecord`]s — independent of the dataset
    /// size. The configured worker count is deliberately not used here: reading
    /// ahead `workers` chunks would trade the memory bound for parallelism, and the
    /// in-memory [`Engine::encrypt`] already covers the all-in-RAM parallel case
    /// with byte-identical output (same seeds, same chunk boundaries).
    ///
    /// The source must hand out **full chunks** (`chunk_rows` rows until the final
    /// partial chunk), which every `f2_io` source does; a short chunk mid-stream
    /// would shift chunk boundaries away from the in-memory path's and is rejected.
    pub fn run_streaming<S, W>(
        &self,
        scheme: &S,
        source: &mut dyn RowSource,
        writer: W,
    ) -> Result<StreamOutcome>
    where
        S: ChunkedScheme + StatefulScheme + ?Sized,
        W: Write,
    {
        let schema = source.schema().clone();
        if schema.arity() == 0 {
            return Err(F2Error::UnsupportedInput("source has no attributes".into()));
        }
        let chunk_rows = self.config().chunk_rows;
        let seed = self.config().seed;
        let retry = self.retry().cloned().unwrap_or_else(RetryPolicy::disabled);
        // Transient write failures are absorbed *below* the frame layer: a failed
        // raw `write` is guaranteed to have written nothing, so retrying it is
        // exact, whereas retrying a whole `write_frame` could duplicate the bytes
        // a partially-successful `write_all` already pushed out.
        let mut sink = FrameSink::new(retry.writer(writer)).map_err(F2Error::from)?;

        let mut header = Writer::raw();
        header.put_str(scheme.name());
        header.put_u64(seed);
        header.put_usize(chunk_rows);
        put_schema(&mut header, &schema);
        sink.write_frame(FRAME_HEADER, &header.finish()).map_err(F2Error::from)?;

        let mut progress = StreamProgress::start();
        pump_chunks(scheme, seed, chunk_rows, source, &retry, &mut sink, &mut progress)?;
        finish_stream(sink, progress).map(|(outcome, _)| outcome)
    }
}

/// Running totals of one streaming run. `run_streaming` starts from zero;
/// `resume_streaming` seeds it with the recovered prefix before pumping the
/// remaining chunks through the same code path.
pub(crate) struct StreamProgress {
    pub(crate) chunks: Vec<ChunkRecord>,
    pub(crate) rows: usize,
    pub(crate) encrypted_rows: usize,
    pub(crate) report: EncryptionReport,
}

impl StreamProgress {
    pub(crate) fn start() -> Self {
        StreamProgress {
            chunks: Vec::new(),
            rows: 0,
            encrypted_rows: 0,
            report: EncryptionReport::default(),
        }
    }
}

/// Pull chunks from `source` until it is exhausted, encrypting each and
/// appending its frame to `sink` — the shared main loop of `run_streaming` and
/// `resume_streaming`. Pulls run under `retry`: retrying a pull is sound only
/// because a failed `next_chunk` consumes nothing (see the soundness notes in
/// `f2_io::retry`). The retry loop is inlined rather than wrapped in
/// [`RetryPolicy::run`] because the pulled chunk borrows the source, so the
/// borrow may not escape to a retrying closure's caller.
pub(crate) fn pump_chunks<S, W>(
    scheme: &S,
    seed: u64,
    chunk_rows: usize,
    source: &mut dyn RowSource,
    retry: &RetryPolicy,
    sink: &mut FrameSink<W>,
    progress: &mut StreamProgress,
) -> Result<()>
where
    S: ChunkedScheme + StatefulScheme + ?Sized,
    W: Write,
{
    let mut pulls = retry.begin();
    loop {
        let attempt = {
            // Span covers source I/O plus chunk assembly (e.g. CSV parsing).
            let _pull = f2_obs::span!("engine.chunk.pull");
            source.next_chunk(chunk_rows)
        };
        let chunk = match attempt {
            Ok(None) => return Ok(()),
            Ok(Some(chunk)) => chunk,
            Err(error) => {
                pulls.absorb(error).map_err(F2Error::from)?;
                continue;
            }
        };
        encode_chunk(scheme, seed, chunk_rows, &chunk, sink, progress)?;
        // The pull budget is per-chunk, not per-stream: a success resets it.
        pulls = retry.begin();
        // `chunk` (the only live copy of the chunk's plaintext) drops here,
        // before the next chunk is pulled.
    }
}

/// Encrypt one pulled chunk and append its frame: the shared per-chunk step of
/// `run_streaming` and `resume_streaming`.
pub(crate) fn encode_chunk<S, W>(
    scheme: &S,
    seed: u64,
    chunk_rows: usize,
    chunk: &TableChunk<'_>,
    sink: &mut FrameSink<W>,
    progress: &mut StreamProgress,
) -> Result<()>
where
    S: ChunkedScheme + StatefulScheme + ?Sized,
    W: Write,
{
    let chunk_len = chunk.row_count();
    let index = progress.chunks.len();
    if chunk_len == 0 || chunk_len > chunk_rows {
        return Err(F2Error::UnsupportedInput(format!(
            "source produced a {chunk_len}-row chunk (expected 1..={chunk_rows})"
        )));
    }
    if progress.chunks.last().is_some_and(|prev| prev.rows.len() != chunk_rows) {
        return Err(F2Error::UnsupportedInput(
            "source produced a short chunk before the final one \
             (chunk boundaries would diverge from the in-memory path)"
                .into(),
        ));
    }
    let chunk_seed_value = chunk_seed(seed, index as u64);
    let start = Instant::now();
    // Owned chunks (e.g. freshly parsed CSV rows) go straight through
    // `encrypt` — materialising a view of an already-owned table would just
    // clone its rows again; borrowed chunks take the zero-copy view path.
    // The two are byte-identical by the `encrypt_view` contract (pinned by
    // `tests/stream_parity.rs`).
    let reseeded = scheme.reseeded(chunk_seed_value);
    let outcome = match chunk {
        TableChunk::Owned(table) => reseeded.encrypt(table)?,
        TableChunk::Borrowed(view) => reseeded.encrypt_view(view)?,
    };
    let wall = start.elapsed();
    let record = ChunkRecord {
        index,
        rows: progress.rows..progress.rows + chunk_len,
        output_rows: progress.encrypted_rows
            ..progress.encrypted_rows + outcome.encrypted.row_count(),
        seed: chunk_seed_value,
        worker: 0,
        wall,
    };
    let frame_payload = {
        let _serialize = f2_obs::span!("engine.chunk.serialize");
        let mut payload = Writer::raw();
        put_chunk_record(&mut payload, &record);
        payload.put_bytes(&scheme.save_state(&outcome)?);
        payload.put_bytes(&encode_table(&outcome.encrypted));
        payload.finish()
    };
    {
        let _write = f2_obs::span!("engine.chunk.write");
        sink.write_frame(FRAME_CHUNK, &frame_payload).map_err(F2Error::from)?;
    }
    crate::obs::chunk_encrypted(chunk_len, record.output_rows.len(), wall);
    // Attribute this chunk's volume to the active request trace, if any (the
    // server runs each request under one); no-ops otherwise.
    f2_obs::ctx::add_count("rows", chunk_len as u64);
    f2_obs::ctx::add_count("encrypted_rows", record.output_rows.len() as u64);
    f2_obs::ctx::add_count("chunk_bytes", frame_payload.len() as u64);
    f2_obs::trace_event(
        "engine.chunk",
        &[
            ("index", index as u64),
            ("rows", chunk_len as u64),
            ("encrypted_rows", record.output_rows.len() as u64),
            ("stream_bytes", sink.bytes_written()),
        ],
    );
    progress.rows = record.rows.end;
    progress.encrypted_rows = record.output_rows.end;
    merge_reports(&mut progress.report, &outcome.report);
    progress.chunks.push(record);
    Ok(())
    // `outcome` (the only live copy of the chunk's ciphertext) drops here.
}

/// Validate that a stored chunk record carries the seed this engine would have
/// derived for its index — resume refuses to extend a stream whose chunk seeds
/// were not produced from the engine seed it holds. Lives here so seed
/// derivation stays inside the chunk-seed-authority files.
pub(crate) fn verify_chunk_seed(engine_seed: u64, index: u64, stored: u64) -> Result<()> {
    if chunk_seed(engine_seed, index) != stored {
        return Err(F2Error::UnsupportedInput(format!(
            "stream chunk {index} was encrypted under a different engine seed"
        )));
    }
    Ok(())
}

/// Write the trailer and end frames and close out the stream — the shared
/// epilogue of `run_streaming` and `resume_streaming`.
pub(crate) fn finish_stream<W: Write>(
    mut sink: FrameSink<W>,
    progress: StreamProgress,
) -> Result<(StreamOutcome, W)> {
    let StreamProgress { chunks, rows, encrypted_rows, report } = progress;
    let mut trailer = Writer::raw();
    trailer.put_usize(chunks.len());
    trailer.put_usize(rows);
    trailer.put_usize(encrypted_rows);
    // Persist the structural report (row overheads, MAS/EC counts) with the
    // wall-clock step timings zeroed: like `ChunkRecord::wall`, timings vary run
    // to run and would make equal datasets produce byte-different streams.
    let mut persisted = report.clone();
    persisted.timings = Default::default();
    put_report(&mut trailer, &persisted);
    sink.write_frame(FRAME_TRAILER, &trailer.finish()).map_err(F2Error::from)?;
    let (writer, bytes_written) = sink.finish().map_err(F2Error::from)?;
    crate::obs::stream_bytes_total().add(bytes_written);
    Ok((StreamOutcome { chunks, rows, encrypted_rows, bytes_written, report }, writer))
}

/// The parsed header frame of one stream.
#[derive(Debug)]
struct StreamHeader {
    seed: u64,
    schema: f2_relation::Schema,
}

/// Drive a [`FrameReader`] over a stream, dispatching each frame: the header is
/// validated against `scheme`, every chunk goes to `on_chunk` (in order, with its
/// decoded record, owner state blob, and encrypted rows), and the trailer's totals
/// and report come back to the caller. Shared by [`load_streamed_outcome`] and
/// [`decrypt_streaming`] so both enforce the same structure.
fn walk_stream<R: Read>(
    scheme_name: &str,
    reader: R,
    mut on_chunk: impl FnMut(ChunkRecord, &[u8], Table) -> Result<()>,
) -> Result<(StreamHeader, usize, usize, usize, EncryptionReport)> {
    let mut frames = FrameReader::new(reader).map_err(F2Error::from)?;
    let malformed = |m: &str| F2Error::UnsupportedInput(format!("malformed F2WS stream: {m}"));

    let first = frames
        .next_frame()
        .map_err(F2Error::from)?
        .ok_or_else(|| malformed("empty stream (no header frame)"))?;
    if first.frame_type != FRAME_HEADER {
        return Err(malformed("stream does not start with a header frame"));
    }
    let mut r = Reader::raw(&first.payload);
    let name = r.str().map_err(F2Error::from)?;
    if name != scheme_name {
        return Err(F2Error::UnsupportedInput(format!(
            "stream was produced by the `{name}` scheme, loader holds `{scheme_name}`"
        )));
    }
    let seed = r.u64().map_err(F2Error::from)?;
    let _chunk_rows = r.usize().map_err(F2Error::from)?;
    let schema = take_schema(&mut r)?;
    r.finish().map_err(F2Error::from)?;
    let header = StreamHeader { seed, schema };

    let mut chunk_count = 0usize;
    // Running end positions: chunk ranges must tile the plaintext and output tables
    // gaplessly from 0 — a CRC only certifies transport, not a well-behaved
    // producer, and a gapped or overlapping range would silently corrupt the merged
    // owner state's row offsets.
    let mut next_row = 0usize;
    let mut next_output_row = 0usize;
    let trailer = loop {
        let frame = frames
            .next_frame()
            .map_err(F2Error::from)?
            .ok_or_else(|| malformed("stream ended without a trailer frame"))?;
        match frame.frame_type {
            FRAME_CHUNK => {
                let mut r = Reader::raw(&frame.payload);
                let record = take_chunk_record(&mut r)?;
                if record.index != chunk_count {
                    return Err(malformed(&format!(
                        "chunk {} arrived at position {chunk_count}",
                        record.index
                    )));
                }
                if record.rows.start != next_row || record.output_rows.start != next_output_row {
                    return Err(malformed(&format!(
                        "chunk {} covers rows {:?} → output {:?}, expected them to start at \
                         {next_row} → {next_output_row}",
                        record.index, record.rows, record.output_rows
                    )));
                }
                let state_blob = r.bytes().map_err(F2Error::from)?.to_vec();
                let encrypted = decode_table(r.bytes().map_err(F2Error::from)?)?;
                r.finish().map_err(F2Error::from)?;
                if encrypted.row_count() != record.output_rows.len() {
                    return Err(malformed("chunk row count disagrees with its record"));
                }
                next_row = record.rows.end;
                next_output_row = record.output_rows.end;
                on_chunk(record, &state_blob, encrypted)?;
                chunk_count += 1;
            }
            FRAME_TRAILER => break frame,
            other => return Err(malformed(&format!("unknown frame type {other}"))),
        }
    };
    let mut r = Reader::raw(&trailer.payload);
    let chunks = r.usize().map_err(F2Error::from)?;
    let rows = r.usize().map_err(F2Error::from)?;
    let encrypted_rows = r.usize().map_err(F2Error::from)?;
    let report = take_report(&mut r)?;
    r.finish().map_err(F2Error::from)?;
    if chunks != chunk_count || rows != next_row || encrypted_rows != next_output_row {
        return Err(malformed("trailer totals disagree with the chunk frames"));
    }
    if frames.next_frame().map_err(F2Error::from)?.is_some() {
        return Err(malformed("frames after the trailer"));
    }
    Ok((header, chunks, rows, encrypted_rows, report))
}

/// Reassemble a whole [`SchemeOutcome`] (plus the per-chunk provenance) from a v2
/// stream: chunks are appended in order and their owner states merged through
/// [`ChunkedScheme::merge_chunk_states`] — the same fold the in-memory path runs, so
/// the loaded outcome is artifact-identical to [`Engine::encrypt`]'s.
pub fn load_streamed_outcome<S, R>(
    scheme: &S,
    reader: R,
) -> Result<(SchemeOutcome, Vec<ChunkRecord>)>
where
    S: ChunkedScheme + StatefulScheme + ?Sized,
    R: Read,
{
    let mut encrypted: Option<Table> = None;
    let mut chunk_states: Vec<ChunkState> = Vec::new();
    let mut records: Vec<ChunkRecord> = Vec::new();
    let (header, _, rows, encrypted_rows, report) =
        walk_stream(scheme.name(), reader, |record, state_blob, chunk_table| {
            chunk_states.push(ChunkState {
                row_offset: record.rows.start,
                output_offset: record.output_rows.start,
                state: scheme.load_state(state_blob)?,
            });
            match &mut encrypted {
                None => encrypted = Some(chunk_table),
                Some(table) => table.append(chunk_table)?,
            }
            records.push(record);
            Ok(())
        })?;
    let outcome = match encrypted {
        Some(encrypted) => {
            // walk_stream already forced the chunk ranges to tile gaplessly and the
            // trailer totals to match them.
            debug_assert_eq!(encrypted.row_count(), encrypted_rows);
            let state = scheme.merge_chunk_states(chunk_states)?;
            SchemeOutcome { encrypted, state, report }
        }
        None => {
            if rows != 0 {
                return Err(F2Error::UnsupportedInput(
                    "malformed F2WS stream: rows recorded but no chunk frames".into(),
                ));
            }
            // Empty dataset: reconstruct the same empty outcome the in-memory path
            // produces for an empty table (chunk-0 seed, backend-shaped state).
            scheme
                .reseeded(chunk_seed(header.seed, 0))
                .encrypt(&Table::empty(header.schema.clone()))?
        }
    };
    Ok((outcome, records))
}

/// Decrypt a v2 stream **chunk by chunk**: each chunk's ciphertext is decrypted with
/// its own (chunk-local) owner state and handed to `emit` as a plaintext [`Table`],
/// so peak memory is one chunk regardless of the dataset size. Returns the total
/// number of plaintext rows emitted.
pub fn decrypt_streaming<S, R>(
    scheme: &S,
    reader: R,
    mut emit: impl FnMut(Table) -> Result<()>,
) -> Result<usize>
where
    S: ChunkedScheme + StatefulScheme + ?Sized,
    R: Read,
{
    let mut emitted = 0usize;
    let (_, _, rows, _, _) = walk_stream(scheme.name(), reader, |_, state_blob, chunk_table| {
        let chunk_outcome = SchemeOutcome {
            encrypted: chunk_table,
            state: scheme.load_state(state_blob)?,
            report: EncryptionReport::default(),
        };
        let plain = scheme.decrypt(&chunk_outcome)?;
        emitted += plain.row_count();
        emit(plain)
    })?;
    if emitted != rows {
        return Err(F2Error::UnsupportedInput(format!(
            "malformed F2WS stream: decrypted {emitted} rows, trailer promises {rows}"
        )));
    }
    Ok(emitted)
}

/// Load an encrypted outcome from either `F2WS` format: a **v1 single blob**
/// (written by [`save_outcome`](crate::save_outcome) — the pre-stream format, still
/// fully supported) or a **v2 frame stream** (written by [`Engine::run_streaming`]).
pub fn read_outcome<S>(scheme: &S, bytes: &[u8]) -> Result<SchemeOutcome>
where
    S: ChunkedScheme + StatefulScheme,
{
    match sniff_version(bytes).map_err(F2Error::from)? {
        1 => crate::persist::load_outcome(scheme, bytes),
        2 => Ok(load_streamed_outcome(scheme, bytes)?.0),
        other => Err(F2Error::UnsupportedInput(format!("unknown F2WS version {other}"))),
    }
}

// ── ChunkRecord codec ──────────────────────────────────────────────────────────────
//
// Scheduling diagnostics (`worker`, `wall`) are deliberately NOT part of the wire
// format: they vary run to run, and persisting them would make two streams of the
// same dataset byte-different — breaking reproducible artifacts and the frozen v2
// golden vectors. Loaded records report `worker = 0` and `wall = 0`.

pub(crate) fn put_chunk_record(w: &mut Writer, record: &ChunkRecord) {
    w.put_usize(record.index);
    w.put_usize(record.rows.start);
    w.put_usize(record.rows.end);
    w.put_usize(record.output_rows.start);
    w.put_usize(record.output_rows.end);
    w.put_u64(record.seed);
}

pub(crate) fn take_chunk_record(r: &mut Reader<'_>) -> Result<ChunkRecord> {
    let index = r.usize().map_err(F2Error::from)?;
    let rows = r.usize().map_err(F2Error::from)?..r.usize().map_err(F2Error::from)?;
    let output_rows = r.usize().map_err(F2Error::from)?..r.usize().map_err(F2Error::from)?;
    let seed = r.u64().map_err(F2Error::from)?;
    if rows.start > rows.end || output_rows.start > output_rows.end {
        return Err(F2Error::UnsupportedInput(
            "malformed F2WS stream: chunk record has a reversed row range".into(),
        ));
    }
    Ok(ChunkRecord { index, rows, output_rows, seed, worker: 0, wall: Duration::ZERO })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EngineConfig;
    use f2_core::{Scheme, F2};
    use f2_io::TableSource;
    use f2_relation::table;

    fn fixture() -> Table {
        table! {
            ["Zip", "City", "Name"];
            ["07030", "Hoboken", "alice"],
            ["07030", "Hoboken", "bob"],
            ["10001", "NewYork", "carol"],
            ["10001", "NewYork", "dave"],
            ["08540", "Princeton", "erin"],
            ["08540", "Princeton", "frank"],
        }
    }

    #[test]
    fn streamed_and_in_memory_paths_are_artifact_identical() {
        let t = fixture();
        let scheme = F2::builder().alpha(0.5).seed(33).build().unwrap();
        let engine = Engine::new(EngineConfig { workers: 2, chunk_rows: 2, seed: 33 }).unwrap();

        let in_memory = engine.encrypt(&scheme, &t).unwrap();
        let mut stream = Vec::new();
        let summary =
            engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut stream).unwrap();
        assert_eq!(summary.rows, t.row_count());
        assert_eq!(summary.chunks.len(), in_memory.chunks.len());

        let (loaded, records) = load_streamed_outcome(&scheme, &stream[..]).unwrap();
        assert_eq!(loaded.encrypted, in_memory.outcome.encrypted);
        assert_eq!(
            scheme.save_state(&loaded).unwrap(),
            scheme.save_state(&in_memory.outcome).unwrap()
        );
        for (streamed, in_mem) in records.iter().zip(&in_memory.chunks) {
            assert_eq!(streamed.rows, in_mem.rows);
            assert_eq!(streamed.output_rows, in_mem.output_rows);
            assert_eq!(streamed.seed, in_mem.seed);
        }
        assert!(scheme.decrypt(&loaded).unwrap().multiset_eq(&t));
    }

    #[test]
    fn chunkwise_streaming_decryption_recovers_the_table() {
        let t = fixture();
        let scheme = F2::builder().alpha(0.5).seed(7).build().unwrap();
        let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 2, seed: 7 }).unwrap();
        let mut stream = Vec::new();
        engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut stream).unwrap();

        let mut recovered: Option<Table> = None;
        let rows = decrypt_streaming(&scheme, &stream[..], |chunk| {
            match &mut recovered {
                None => recovered = Some(chunk),
                Some(all) => all.append(chunk)?,
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(rows, t.row_count());
        assert!(recovered.unwrap().multiset_eq(&t));
    }

    #[test]
    fn empty_sources_stream_and_load() {
        let t = Table::empty(fixture().schema().clone());
        let scheme = F2::builder().seed(5).build().unwrap();
        let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 4, seed: 5 }).unwrap();
        let mut stream = Vec::new();
        let summary =
            engine.run_streaming(&scheme, &mut TableSource::new(&t), &mut stream).unwrap();
        assert_eq!(summary.rows, 0);
        assert!(summary.chunks.is_empty());
        let (loaded, records) = load_streamed_outcome(&scheme, &stream[..]).unwrap();
        assert!(records.is_empty());
        assert_eq!(loaded.encrypted.row_count(), 0);
        assert!(scheme.decrypt(&loaded).unwrap().multiset_eq(&t));
    }

    #[test]
    fn wrong_scheme_is_rejected_by_name() {
        let t = fixture();
        let f2 = F2::builder().alpha(0.5).seed(3).build().unwrap();
        let engine = Engine::new(EngineConfig { workers: 1, chunk_rows: 3, seed: 3 }).unwrap();
        let mut stream = Vec::new();
        engine.run_streaming(&f2, &mut TableSource::new(&t), &mut stream).unwrap();
        let det = f2_core::DetScheme::new(f2_crypto::MasterKey::from_seed(3));
        let err = load_streamed_outcome(&det, &stream[..]).unwrap_err();
        assert!(err.to_string().contains("`f2`"), "{err}");
    }
}
