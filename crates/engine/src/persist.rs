//! Owner-state persistence: [`StatefulScheme`] and whole-outcome round-tripping.
//!
//! lint: untrusted-input — decoders below parse persisted blobs that may be
//! corrupt or hostile; the panic-freedom rules are enforced by `f2-lint`.
//!
//! A [`SchemeOutcome`](f2_core::SchemeOutcome) carries its owner state behind an
//! in-process `Box<dyn Any>` — it cannot be cloned, persisted, or shipped anywhere.
//! This module makes it durable: every backend implements [`StatefulScheme`], whose
//! `save_state` / `load_state` serialize the backend's owner state over the
//! [`wire`](crate::wire) format, and [`save_outcome`] / [`load_outcome`] bundle the
//! encrypted table, the owner state, and the encryption report into one blob. The key
//! material is deliberately **not** part of any blob — the loader must hold a scheme
//! built from the same keys (that is the outsourcing model: the state blob can sit
//! next to the ciphertext on untrusted storage, the keys never leave the owner).

use crate::wire::{Reader, WireError, WireResult, Writer};
use f2_core::scheme::CellWiseState;
use f2_core::{
    DetScheme, EncryptionReport, F2OwnerState, F2Scheme, OwnerState, PaillierScheme, ProbScheme,
    Provenance, Result, RowOrigin, Scheme, SchemeOutcome,
};
use f2_relation::{AttrSet, Attribute, DataType, Record, Schema, Table, Value};
use std::time::Duration;

/// Wire kind tag: an F² owner state.
pub const KIND_F2_STATE: u8 = 1;
/// Wire kind tag: a cell-wise (baseline) owner state.
pub const KIND_CELL_WISE_STATE: u8 = 2;
/// Wire kind tag: an encrypted table.
pub const KIND_TABLE: u8 = 3;
/// Wire kind tag: a whole [`SchemeOutcome`].
pub const KIND_OUTCOME: u8 = 4;

/// A [`Scheme`] whose owner state round-trips through the wire format, so encryption
/// and decryption can happen in different processes.
pub trait StatefulScheme: Scheme {
    /// Serialize `outcome`'s owner state. Errors if the outcome was produced by a
    /// different backend.
    fn save_state(&self, outcome: &SchemeOutcome) -> Result<Vec<u8>>;

    /// Reconstruct an owner state previously produced by [`StatefulScheme::save_state`]
    /// (possibly by another process). Corrupt or truncated input errors, never panics.
    fn load_state(&self, bytes: &[u8]) -> Result<OwnerState>;
}

fn foreign_outcome(scheme: &str) -> f2_core::F2Error {
    f2_core::F2Error::UnsupportedInput(format!(
        "outcome was not produced by the `{scheme}` scheme (owner state type mismatch)"
    ))
}

impl StatefulScheme for F2Scheme {
    fn save_state(&self, outcome: &SchemeOutcome) -> Result<Vec<u8>> {
        let state = outcome.f2_state().ok_or_else(|| foreign_outcome(self.name()))?;
        let mut w = Writer::versioned(KIND_F2_STATE);
        put_schema(&mut w, &state.plaintext_schema);
        let mas_count = u32::try_from(state.mas_sets.len()).map_err(|_| {
            f2_core::F2Error::UnsupportedInput(
                "owner state holds more than u32::MAX MAS sets".into(),
            )
        })?;
        w.put_u32(mas_count);
        for mas in &state.mas_sets {
            w.put_u64(mas.bits());
        }
        put_provenance(&mut w, &state.provenance);
        Ok(w.finish())
    }

    fn load_state(&self, bytes: &[u8]) -> Result<OwnerState> {
        let mut r = Reader::versioned(bytes, KIND_F2_STATE)?;
        let plaintext_schema = take_schema(&mut r)?;
        let mas_count = r.count_u32(8)?; // 8 bytes per AttrSet
        let mut mas_sets = Vec::with_capacity(mas_count);
        for _ in 0..mas_count {
            mas_sets.push(AttrSet::from_bits(r.u64()?));
        }
        let provenance = take_provenance(&mut r)?;
        r.finish()?;
        Ok(OwnerState::new(F2OwnerState { provenance, mas_sets, plaintext_schema }))
    }
}

/// Shared `StatefulScheme` implementation for the cell-wise baselines, whose owner
/// state is just the plaintext schema.
macro_rules! cell_wise_stateful {
    ($($scheme:ty),+) => {$(
        impl StatefulScheme for $scheme {
            fn save_state(&self, outcome: &SchemeOutcome) -> Result<Vec<u8>> {
                let state: &CellWiseState = outcome
                    .state
                    .downcast_ref()
                    .ok_or_else(|| foreign_outcome(self.name()))?;
                let mut w = Writer::versioned(KIND_CELL_WISE_STATE);
                put_schema(&mut w, &state.plaintext_schema);
                Ok(w.finish())
            }

            fn load_state(&self, bytes: &[u8]) -> Result<OwnerState> {
                let mut r = Reader::versioned(bytes, KIND_CELL_WISE_STATE)?;
                let plaintext_schema = take_schema(&mut r)?;
                r.finish()?;
                Ok(OwnerState::new(CellWiseState { plaintext_schema }))
            }
        }
    )+};
}

cell_wise_stateful!(DetScheme, ProbScheme, PaillierScheme);

/// Serialize a whole [`SchemeOutcome`] — encrypted table, owner state, report — into
/// one durable blob. The inverse is [`load_outcome`].
pub fn save_outcome(scheme: &dyn StatefulScheme, outcome: &SchemeOutcome) -> Result<Vec<u8>> {
    let mut w = Writer::versioned(KIND_OUTCOME);
    w.put_bytes(&encode_table(&outcome.encrypted));
    w.put_bytes(&scheme.save_state(outcome)?);
    put_report(&mut w, &outcome.report);
    Ok(w.finish())
}

/// Reconstruct a [`SchemeOutcome`] from a [`save_outcome`] blob. The scheme only
/// contributes its state codec — the keys needed for decryption stay inside it.
pub fn load_outcome(scheme: &dyn StatefulScheme, bytes: &[u8]) -> Result<SchemeOutcome> {
    let mut r = Reader::versioned(bytes, KIND_OUTCOME)?;
    let encrypted = decode_table(r.bytes()?)?;
    let state = scheme.load_state(r.bytes()?)?;
    let report = take_report(&mut r)?;
    r.finish()?;
    Ok(SchemeOutcome { encrypted, state, report })
}

/// Serialize a table (schema + rows) as a standalone wire blob.
pub fn encode_table(table: &Table) -> Vec<u8> {
    let mut w = Writer::versioned(KIND_TABLE);
    put_schema(&mut w, table.schema());
    w.put_usize(table.row_count());
    for (_, rec) in table.iter() {
        for v in rec.values() {
            w.put_bytes(&v.encode());
        }
    }
    w.finish()
}

/// Inverse of [`encode_table`].
pub fn decode_table(bytes: &[u8]) -> Result<Table> {
    let mut r = Reader::versioned(bytes, KIND_TABLE)?;
    let schema = take_schema(&mut r)?;
    // Every cell carries at least its 4-byte length prefix; `arity.max(1)` keeps the
    // bound meaningful for zero-arity tables (whose rows consume no input at all, so
    // any claimed row count beyond the remaining bytes is corrupt).
    let rows = r.count_u64(schema.arity().max(1) * 4)?;
    let mut records = Vec::with_capacity(rows.min(1 << 20));
    for _ in 0..rows {
        let mut values = Vec::with_capacity(schema.arity());
        for _ in 0..schema.arity() {
            let encoding = r.bytes()?;
            values.push(Value::decode(encoding).ok_or_else(|| {
                WireError::Malformed("cell encoding does not decode to a value".into())
            })?);
        }
        records.push(Record::new(values));
    }
    r.finish()?;
    Ok(Table::new(schema, records)?)
}

// ── field codecs ───────────────────────────────────────────────────────────────────

fn data_type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Decimal => 1,
        DataType::Text => 2,
        DataType::Date => 3,
        DataType::Bytes => 4,
        DataType::Any => 5,
    }
}

fn data_type_from_tag(tag: u8) -> WireResult<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Decimal,
        2 => DataType::Text,
        3 => DataType::Date,
        4 => DataType::Bytes,
        5 => DataType::Any,
        other => return Err(WireError::Malformed(format!("unknown data-type tag {other}"))),
    })
}

/// Serialize a [`Schema`] into a wire [`Writer`] (arity-prefixed attribute
/// names and type tags) — the same encoding stream headers and owner states
/// embed, exported so protocol layers (e.g. `f2_server`) can carry schemas.
pub fn put_schema(w: &mut Writer, schema: &Schema) {
    // lint: allow(truncating-cast) — arity ≤ 64: attribute sets are 64-bit masks
    w.put_u16(schema.arity() as u16);
    for attr in schema.attributes() {
        w.put_str(&attr.name);
        w.put_u8(data_type_tag(attr.data_type));
    }
}

/// Decode a [`Schema`] previously written by [`put_schema`]. Corrupt or
/// truncated input errors, never panics.
pub fn take_schema(r: &mut Reader<'_>) -> Result<Schema> {
    let arity = usize::from(r.u16()?);
    // lint: allow(alloc-before-cap) — the u16 arity caps this allocation at 65 535
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = r.str()?;
        let data_type = data_type_from_tag(r.u8()?)?;
        attrs.push(Attribute::new(name, data_type));
    }
    Ok(Schema::new(attrs)?)
}

const ORIGIN_REAL: u8 = 0;
const ORIGIN_SCALE_COPY: u8 = 1;
const ORIGIN_GROUP_FAKE: u8 = 2;
const ORIGIN_CONFLICT_COMPANION: u8 = 3;
const ORIGIN_FALSE_POSITIVE: u8 = 4;

fn put_provenance(w: &mut Writer, provenance: &Provenance) {
    w.put_usize(provenance.origins.len());
    for origin in &provenance.origins {
        let (tag, payload) = match *origin {
            RowOrigin::Real { original_row } => (ORIGIN_REAL, original_row),
            RowOrigin::ScaleCopy { mas_index } => (ORIGIN_SCALE_COPY, mas_index),
            RowOrigin::GroupFake { mas_index } => (ORIGIN_GROUP_FAKE, mas_index),
            RowOrigin::ConflictCompanion { original_row } => {
                (ORIGIN_CONFLICT_COMPANION, original_row)
            }
            RowOrigin::FalsePositive { mas_index } => (ORIGIN_FALSE_POSITIVE, mas_index),
        };
        w.put_u8(tag);
        w.put_usize(payload);
    }
    // Sorted for a canonical encoding: equal provenances serialize identically.
    let mut patches: Vec<_> = provenance.patches.iter().collect();
    patches.sort_by_key(|(row, _)| **row);
    w.put_usize(patches.len());
    for (original_row, cells) in patches {
        w.put_usize(*original_row);
        // lint: allow(truncating-cast) — a row patches at most one cell per attribute (≤ 64)
        w.put_u32(cells.len() as u32);
        for &(attr, companion_row) in cells {
            // lint: allow(truncating-cast) — attr is an index below the arity (≤ 64)
            w.put_u32(attr as u32);
            w.put_usize(companion_row);
        }
    }
}

fn take_provenance(r: &mut Reader<'_>) -> Result<Provenance> {
    let origin_count = r.count_u64(9)?; // 1-byte tag + 8-byte payload per origin
    let mut provenance = Provenance::default();
    provenance.origins.reserve(origin_count);
    for _ in 0..origin_count {
        let tag = r.u8()?;
        let payload = r.usize()?;
        provenance.origins.push(match tag {
            ORIGIN_REAL => RowOrigin::Real { original_row: payload },
            ORIGIN_SCALE_COPY => RowOrigin::ScaleCopy { mas_index: payload },
            ORIGIN_GROUP_FAKE => RowOrigin::GroupFake { mas_index: payload },
            ORIGIN_CONFLICT_COMPANION => RowOrigin::ConflictCompanion { original_row: payload },
            ORIGIN_FALSE_POSITIVE => RowOrigin::FalsePositive { mas_index: payload },
            other => {
                return Err(WireError::Malformed(format!("unknown row-origin tag {other}")).into())
            }
        });
    }
    let patch_count = r.count_u64(12)?; // 8-byte row + 4-byte cell count per patch
    for _ in 0..patch_count {
        let original_row = r.usize()?;
        let cell_count = r.count_u32(12)?; // 4-byte attr + 8-byte row per cell
        let mut cells = Vec::with_capacity(cell_count);
        for _ in 0..cell_count {
            let attr = usize::try_from(r.u32()?).map_err(|_| {
                WireError::Malformed("attribute index exceeds the platform word size".into())
            })?;
            let companion_row = r.usize()?;
            cells.push((attr, companion_row));
        }
        if provenance.patches.insert(original_row, cells).is_some() {
            return Err(WireError::Malformed(format!(
                "duplicate patch entry for original row {original_row}"
            ))
            .into());
        }
    }
    Ok(provenance)
}

pub(crate) fn put_report(w: &mut Writer, report: &EncryptionReport) {
    for d in [report.timings.max, report.timings.sse, report.timings.syn, report.timings.fp] {
        w.put_u64(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    for n in [
        report.overhead.original_rows,
        report.overhead.group_rows,
        report.overhead.scale_rows,
        report.overhead.syn_rows,
        report.overhead.fp_rows,
        report.mas_count,
        report.overlapping_mas_pairs,
        report.equivalence_classes,
        report.false_positive_fds,
    ] {
        w.put_usize(n);
    }
}

pub(crate) fn take_report(r: &mut Reader<'_>) -> Result<EncryptionReport> {
    let timings = f2_core::report::StepTimings {
        max: Duration::from_nanos(r.u64()?),
        sse: Duration::from_nanos(r.u64()?),
        syn: Duration::from_nanos(r.u64()?),
        fp: Duration::from_nanos(r.u64()?),
    };
    let overhead = f2_core::report::OverheadBreakdown {
        original_rows: r.usize()?,
        group_rows: r.usize()?,
        scale_rows: r.usize()?,
        syn_rows: r.usize()?,
        fp_rows: r.usize()?,
    };
    Ok(EncryptionReport {
        timings,
        overhead,
        mas_count: r.usize()?,
        overlapping_mas_pairs: r.usize()?,
        equivalence_classes: r.usize()?,
        false_positive_fds: r.usize()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_core::{Scheme, F2};
    use f2_crypto::MasterKey;
    use f2_relation::table;

    fn fixture() -> Table {
        table! {
            ["Zip", "City", "Name"];
            ["07030", "Hoboken", "alice"],
            ["07030", "Hoboken", "bob"],
            ["10001", "NewYork", "carol"],
            ["10001", "NewYork", "dave"],
            ["08540", "Princeton", "erin"],
        }
    }

    #[test]
    fn table_blob_roundtrip() {
        let t = fixture();
        let blob = encode_table(&t);
        assert_eq!(decode_table(&blob).unwrap(), t);
        assert!(decode_table(&blob[..blob.len() - 1]).is_err());
        assert!(decode_table(&[]).is_err());
    }

    #[test]
    fn f2_state_roundtrips_and_decrypts() {
        let t = fixture();
        let scheme = F2::builder().alpha(0.5).seed(9).build().unwrap();
        let outcome = scheme.encrypt(&t).unwrap();
        let blob = scheme.save_state(&outcome).unwrap();
        let restored = SchemeOutcome {
            encrypted: outcome.encrypted.clone(),
            state: scheme.load_state(&blob).unwrap(),
            report: EncryptionReport::default(),
        };
        assert!(scheme.decrypt(&restored).unwrap().multiset_eq(&t));
        // The loaded state is structurally identical, not just behaviorally.
        let (a, b) = (outcome.f2_state().unwrap(), restored.f2_state().unwrap());
        assert_eq!(a.provenance, b.provenance);
        assert_eq!(a.mas_sets, b.mas_sets);
        assert_eq!(a.plaintext_schema, b.plaintext_schema);
    }

    #[test]
    fn save_state_rejects_foreign_outcomes() {
        let t = fixture();
        let det = DetScheme::new(MasterKey::from_seed(2));
        let f2 = F2::builder().seed(2).build().unwrap();
        let det_outcome = det.encrypt(&t).unwrap();
        let f2_outcome = f2.encrypt(&t).unwrap();
        assert!(f2.save_state(&det_outcome).is_err());
        assert!(det.save_state(&f2_outcome).is_err());
        // A cell-wise blob does not load as an F² state and vice versa.
        let det_blob = det.save_state(&det_outcome).unwrap();
        let f2_blob = f2.save_state(&f2_outcome).unwrap();
        assert!(f2.load_state(&det_blob).is_err());
        assert!(det.load_state(&f2_blob).is_err());
    }

    #[test]
    fn hostile_counts_error_instead_of_allocating() {
        // A ~15-byte blob promising 2³²−1 MAS sets must error, not reserve 32 GiB.
        let mut w = Writer::versioned(KIND_F2_STATE);
        w.put_u16(0); // zero-arity schema
        w.put_u32(u32::MAX);
        let f2 = F2::builder().seed(1).build().unwrap();
        assert!(f2.load_state(&w.finish()).is_err());

        // A table blob promising 2⁶⁴−1 rows of a zero-arity schema must error, not
        // loop pushing empty records until OOM.
        let mut w = Writer::versioned(KIND_TABLE);
        w.put_u16(0);
        w.put_u64(u64::MAX);
        assert!(decode_table(&w.finish()).is_err());

        // Same for a provenance claiming more origins than the blob can hold.
        let mut w = Writer::versioned(KIND_F2_STATE);
        w.put_u16(0);
        w.put_u32(0); // no MAS sets
        w.put_u64(u64::MAX); // origin count
        assert!(f2.load_state(&w.finish()).is_err());
    }

    #[test]
    fn outcome_blob_preserves_the_report() {
        let t = fixture();
        let scheme = F2::builder().alpha(0.5).seed(4).build().unwrap();
        let outcome = scheme.encrypt(&t).unwrap();
        let blob = save_outcome(&scheme, &outcome).unwrap();
        let restored = load_outcome(&scheme, &blob).unwrap();
        assert_eq!(restored.encrypted, outcome.encrypted);
        assert_eq!(restored.report.overhead, outcome.report.overhead);
        assert_eq!(restored.report.mas_count, outcome.report.mas_count);
        assert!(scheme.decrypt(&restored).unwrap().multiset_eq(&t));
    }
}
