//! The chunked, multi-threaded encryption pipeline.
//!
//! lint: chunk-seed-authority — [`chunk_seed`] is defined here; deriving per-chunk
//! seeds anywhere outside the annotated authority files breaks the nonce-domain
//! discipline (`f2-lint` rule `chunk-seed-discipline`).
//!
//! [`Engine::encrypt`] shards the plaintext table into row-range chunks, hands the
//! chunks to a pool of scoped worker threads — each driving the caller's
//! [`ChunkedScheme`] backend through a per-chunk [`ChunkedScheme::reseeded`] clone —
//! and reassembles the encrypted chunks **in chunk order** into one table-level
//! [`SchemeOutcome`]. Because every chunk's seed is a pure function of the engine seed
//! and the chunk index ([`chunk_seed`]), the merged output is byte-identical whatever
//! the worker count or scheduling order: parallelism changes wall-clock time, never
//! the ciphertext. Decryption goes through the ordinary `Scheme::decrypt` of the
//! original scheme — the merged owner state is indistinguishable from a single-shot
//! one as far as the decryptor is concerned.

use f2_core::{ChunkState, ChunkedScheme, EncryptionReport, F2Error, Result, SchemeOutcome};
use f2_io::RetryPolicy;
use f2_relation::Table;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Derive the RNG seed of chunk `index` from the engine seed
/// ([`f2_crypto::splitmix64`]): chunks get pairwise-distinct, scheduling-independent
/// nonce domains.
pub fn chunk_seed(engine_seed: u64, index: u64) -> u64 {
    f2_crypto::splitmix64(engine_seed ^ (index.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Configuration of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of worker threads (≥ 1). Defaults to the machine's available
    /// parallelism, capped at 8.
    pub workers: usize,
    /// Rows per chunk (≥ 1). Defaults to 1024.
    ///
    /// **Security scope for F²:** the F² backend discovers MASs and flattens
    /// ciphertext frequencies *per chunk*, so the α-security guarantee of the merged
    /// table holds within each chunk but not across chunk boundaries — a value
    /// occurring in many chunks still accumulates a table-wide frequency. Cell-wise
    /// backends are indifferent (deterministic AES leaks frequencies regardless; the
    /// probabilistic ciphers hide them regardless). Pick `chunk_rows ≥ row count` to
    /// recover the paper's table-wide guarantee, or treat chunks as independently
    /// outsourced relations; quantifying the cross-chunk leakage with the attack
    /// harness is tracked in ROADMAP.md.
    pub chunk_rows: usize,
    /// Engine seed: per-chunk scheme seeds derive from it via [`chunk_seed`]. Use
    /// [`f2_crypto::entropy_seed`] when reproducibility is not required.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).clamp(1, 8);
        EngineConfig { workers, chunk_rows: 1024, seed: 0x5eed }
    }
}

impl EngineConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(F2Error::InvalidConfig("engine needs at least one worker".into()));
        }
        if self.chunk_rows == 0 {
            return Err(F2Error::InvalidConfig("chunks must hold at least one row".into()));
        }
        Ok(())
    }
}

/// Per-chunk provenance of one [`Engine::encrypt`] run: which rows the chunk covered,
/// where its ciphertext landed, which seed and worker encrypted it, and how long it
/// took. This is the engine-level audit trail (the owner-side row provenance lives in
/// the merged [`SchemeOutcome`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Chunk index, dense from 0 in table order.
    pub index: usize,
    /// Row range of the *plaintext* table this chunk covered.
    pub rows: Range<usize>,
    /// Row range of the *merged encrypted* table this chunk produced (F² chunks emit
    /// more rows than they consume; cell-wise chunks map 1:1).
    pub output_rows: Range<usize>,
    /// The seed the chunk's reseeded scheme ran under.
    pub seed: u64,
    /// Index of the worker thread that encrypted the chunk.
    pub worker: usize,
    /// Wall-clock encryption time of this chunk.
    pub wall: Duration,
}

/// Result of one [`Engine::encrypt`] run.
#[derive(Debug)]
pub struct EngineOutcome {
    /// The merged, order-stable outcome — decrypts through the ordinary
    /// `Scheme::decrypt` of the scheme that produced it.
    pub outcome: SchemeOutcome,
    /// Per-chunk provenance, in chunk order.
    pub chunks: Vec<ChunkRecord>,
}

/// The streaming encryption engine. See the [module docs](self) for the contract.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
    retry: Option<RetryPolicy>,
}

/// What one worker records for one finished chunk.
struct ChunkSlot {
    outcome: SchemeOutcome,
    worker: usize,
    wall: Duration,
}

impl Engine {
    /// Create an engine, validating the configuration.
    pub fn new(config: EngineConfig) -> Result<Self> {
        config.validate()?;
        Ok(Engine { config, retry: None })
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Opt the *streaming* paths into transient-failure retries: source pulls
    /// and sink writes in [`Engine::run_streaming`] run under `policy`
    /// (bounded attempts, deterministic backoff — see [`RetryPolicy`]). The
    /// in-memory [`Engine::encrypt`] does no I/O and is unaffected. Without
    /// this, every I/O error is final — the fault-free hot path pays nothing.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The streaming retry policy, if one was opted into via
    /// [`Engine::with_retry`].
    pub fn retry(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    /// Encrypt `table` with `scheme`, chunked and (for `workers > 1`) in parallel.
    pub fn encrypt(&self, scheme: &dyn ChunkedScheme, table: &Table) -> Result<EngineOutcome> {
        if table.arity() == 0 {
            return Err(F2Error::UnsupportedInput("table has no attributes".into()));
        }
        if table.is_empty() {
            // Nothing to shard: a single empty "chunk" through the scheme itself keeps
            // the outcome shape (schema, state) consistent with the backend.
            let outcome = scheme.reseeded(chunk_seed(self.config.seed, 0)).encrypt(table)?;
            return Ok(EngineOutcome { outcome, chunks: Vec::new() });
        }

        let ranges: Vec<Range<usize>> = (0..table.row_count())
            .step_by(self.config.chunk_rows)
            .map(|start| start..(start + self.config.chunk_rows).min(table.row_count()))
            .collect();
        let slots: Vec<Mutex<Option<Result<ChunkSlot>>>> =
            ranges.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        let run_worker = |worker: usize| loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            let Some(range) = ranges.get(index) else { break };
            // A panicking backend loses its chunk, not the process: the panic is
            // contained here and surfaces as a typed `WorkerPanicked` from
            // `assemble`, with the worker going on to its next chunk. Unwind
            // safety holds because everything the closure mutates is chunk-local
            // (the reseeded scheme clone and the outcome under construction) and
            // is discarded with the catch.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                // A borrowed view, not a cloned sub-table: cell-wise backends encrypt
                // straight off the parent's rows, and F² materialises with the
                // chunk's dictionaries derived from the parent's index.
                let chunk = table.view(range.clone())?;
                let start = Instant::now();
                let outcome = scheme
                    .reseeded(chunk_seed(self.config.seed, index as u64))
                    .encrypt_view(&chunk)?;
                Ok(ChunkSlot { outcome, worker, wall: start.elapsed() })
            }));
            let result = attempt.unwrap_or_else(|payload| {
                Err(F2Error::WorkerPanicked { chunk: index, message: panic_text(&*payload) })
            });
            *slots[index].lock().expect("no poisoned chunk slot") = Some(result);
        };

        let workers = self.config.workers.min(ranges.len());
        if workers <= 1 {
            run_worker(0);
        } else {
            std::thread::scope(|scope| {
                let run_worker = &run_worker;
                for worker in 0..workers {
                    scope.spawn(move || run_worker(worker));
                }
            });
        }

        self.assemble(scheme, &ranges, slots)
    }

    /// Reassemble per-chunk outcomes (in chunk order) into one table-level outcome.
    fn assemble(
        &self,
        scheme: &dyn ChunkedScheme,
        ranges: &[Range<usize>],
        slots: Vec<Mutex<Option<Result<ChunkSlot>>>>,
    ) -> Result<EngineOutcome> {
        let mut encrypted: Option<Table> = None;
        let mut chunk_states = Vec::with_capacity(ranges.len());
        let mut chunks = Vec::with_capacity(ranges.len());
        let mut report = EncryptionReport::default();
        for (index, (range, slot)) in ranges.iter().zip(slots).enumerate() {
            let ChunkSlot { outcome, worker, wall } = slot
                .into_inner()
                .expect("no poisoned chunk slot")
                .expect("every chunk index was claimed by a worker")?;
            let output_offset = encrypted.as_ref().map_or(0, Table::row_count);
            chunk_states.push(ChunkState {
                row_offset: range.start,
                output_offset,
                state: outcome.state,
            });
            match &mut encrypted {
                None => encrypted = Some(outcome.encrypted),
                Some(table) => table.append(outcome.encrypted)?,
            }
            let output_end = encrypted.as_ref().map_or(0, Table::row_count);
            crate::obs::chunk_encrypted(range.len(), output_end - output_offset, wall);
            chunks.push(ChunkRecord {
                index,
                rows: range.clone(),
                output_rows: output_offset..output_end,
                seed: chunk_seed(self.config.seed, index as u64),
                worker,
                wall,
            });
            merge_reports(&mut report, &outcome.report);
        }
        let encrypted = encrypted.expect("tables with rows produce at least one chunk");
        let state = scheme.merge_chunk_states(chunk_states)?;
        Ok(EngineOutcome { outcome: SchemeOutcome { encrypted, state, report }, chunks })
    }
}

/// Render a caught panic payload — `&str` and `String` cover what `panic!` and
/// the `assert!`/`expect` families produce; anything else gets a placeholder.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Accumulate one chunk's report into the table-level report: timings and row counts
/// add up; the wall-clock sums are CPU time across workers, not elapsed time (the
/// per-chunk elapsed times live in [`ChunkRecord::wall`]).
pub(crate) fn merge_reports(total: &mut EncryptionReport, chunk: &EncryptionReport) {
    total.timings.max += chunk.timings.max;
    total.timings.sse += chunk.timings.sse;
    total.timings.syn += chunk.timings.syn;
    total.timings.fp += chunk.timings.fp;
    total.overhead.original_rows += chunk.overhead.original_rows;
    total.overhead.group_rows += chunk.overhead.group_rows;
    total.overhead.scale_rows += chunk.overhead.scale_rows;
    total.overhead.syn_rows += chunk.overhead.syn_rows;
    total.overhead.fp_rows += chunk.overhead.fp_rows;
    total.mas_count += chunk.mas_count;
    total.overlapping_mas_pairs += chunk.overlapping_mas_pairs;
    total.equivalence_classes += chunk.equivalence_classes;
    total.false_positive_fds += chunk.false_positive_fds;
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_core::{DetScheme, ProbScheme, Scheme, F2};
    use f2_crypto::MasterKey;
    use f2_relation::{table, Schema};

    fn fixture() -> Table {
        table! {
            ["Zip", "City", "Name"];
            ["07030", "Hoboken", "alice"],
            ["07030", "Hoboken", "bob"],
            ["10001", "NewYork", "carol"],
            ["10001", "NewYork", "dave"],
            ["08540", "Princeton", "erin"],
            ["08540", "Princeton", "frank"],
        }
    }

    #[test]
    fn config_is_validated() {
        assert!(Engine::new(EngineConfig { workers: 0, ..EngineConfig::default() }).is_err());
        assert!(Engine::new(EngineConfig { chunk_rows: 0, ..EngineConfig::default() }).is_err());
        assert!(EngineConfig::default().validate().is_ok());
    }

    #[test]
    fn output_is_deterministic_across_worker_counts() {
        let t = fixture();
        let scheme = ProbScheme::new(MasterKey::from_seed(3), 3);
        let run = |workers| {
            Engine::new(EngineConfig { workers, chunk_rows: 2, seed: 11 })
                .unwrap()
                .encrypt(&scheme, &t)
                .unwrap()
        };
        let (one, four) = (run(1), run(4));
        assert_eq!(one.outcome.encrypted, four.outcome.encrypted);
        assert_eq!(one.chunks.len(), 3);
        // Chunk records differ only in scheduling metadata (worker, wall).
        for (a, b) in one.chunks.iter().zip(&four.chunks) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.output_rows, b.output_rows);
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn identical_chunks_get_disjoint_nonce_streams() {
        // Two chunks with identical rows: the per-table fingerprint alone would feed
        // both the same RNG stream; per-chunk reseeding must keep them apart.
        let t = table! {
            ["A"]; ["x"], ["x"]
        };
        let scheme = ProbScheme::new(MasterKey::from_seed(5), 5);
        let engine = Engine::new(EngineConfig { workers: 2, chunk_rows: 1, seed: 5 }).unwrap();
        let run = engine.encrypt(&scheme, &t).unwrap();
        let c0 = run.outcome.encrypted.cell(0, 0).unwrap().as_bytes().unwrap();
        let c1 = run.outcome.encrypted.cell(1, 0).unwrap().as_bytes().unwrap();
        assert_ne!(&c0[..16], &c1[..16], "nonce reused across identical chunks");
    }

    #[test]
    fn chunk_records_track_f2_row_expansion() {
        let t = fixture();
        let scheme = F2::builder().alpha(0.5).seed(7).build().unwrap();
        let engine = Engine::new(EngineConfig { workers: 2, chunk_rows: 3, seed: 7 }).unwrap();
        let run = engine.encrypt(&scheme, &t).unwrap();
        assert_eq!(run.chunks.len(), 2);
        let mut expected_start = 0;
        for record in &run.chunks {
            assert_eq!(record.output_rows.start, expected_start);
            assert!(record.output_rows.len() >= record.rows.len(), "F2 never shrinks a chunk");
            expected_start = record.output_rows.end;
        }
        assert_eq!(expected_start, run.outcome.encrypted.row_count());
        // The merged outcome decrypts through the plain Scheme::decrypt.
        assert!(scheme.decrypt(&run.outcome).unwrap().multiset_eq(&t));
    }

    #[test]
    fn empty_and_zero_arity_tables() {
        let det = DetScheme::new(MasterKey::from_seed(1));
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let empty = Table::empty(Schema::from_names(["A", "B"]).unwrap());
        let run = engine.encrypt(&det, &empty).unwrap();
        assert_eq!(run.outcome.encrypted.row_count(), 0);
        assert!(run.chunks.is_empty());
        let no_attrs = Table::empty(Schema::new(vec![]).unwrap());
        assert!(engine.encrypt(&det, &no_attrs).is_err());
    }

    #[test]
    fn chunk_seeds_are_pairwise_distinct() {
        let mut seen = std::collections::HashSet::new();
        for index in 0..10_000u64 {
            assert!(seen.insert(chunk_seed(42, index)));
        }
    }
}
