//! Crash-safe resume of an interrupted `F2WS` v2 stream.
//!
//! lint: untrusted-input — the scan below decodes a possibly damaged stream.
//!
//! A streaming encryption job that dies mid-write leaves a *prefix* of a valid
//! stream behind: the preamble, the header frame, some number of complete
//! chunk frames, and usually a torn frame at the tail. [`Engine::resume_streaming`]
//! turns that wreckage back into exactly the stream an uninterrupted run would
//! have produced:
//!
//! 1. **Scan** — walk the store's frames, validating the header against the
//!    engine configuration, scheme, and source, and each chunk record's
//!    continuity and seed, until the first damage (torn or checksum-failing
//!    frame) or the trailer.
//! 2. **Truncate** — cut the store back to the end of the last complete chunk
//!    frame; a torn tail is unusable by construction, and a surviving trailer
//!    is rewritten rather than trusted (its totals must cover the whole run).
//! 3. **Replay** — advance the source past the rows the prefix already
//!    covers. Backends whose per-chunk report is a pure function of the row
//!    count ([`ChunkedScheme::rederive_chunk_report`]) skip straight over
//!    them — and when the source is also a
//!    [`SeekableSource`](f2_io::SeekableSource), the skip is a single
//!    `seek_to_row` with **zero** prefix pulls; F² (whose report depends on
//!    the data) re-encrypts the prefix chunks — deterministic under the
//!    stored chunk seeds — and verifies them against the stored frames'
//!    payload checksums, refusing to extend a stream whose source has changed
//!    since the interrupted run.
//! 4. **Continue** — encrypt and append the remaining chunks, the trailer,
//!    and the end frame through the same code path as
//!    [`Engine::run_streaming`].
//!
//! The result is **byte-identical** to the uninterrupted stream at every
//! interruption point (pinned per backend by `tests/resume_golden.rs`):
//! chunk seeds are pure functions of the engine seed and chunk index,
//! ciphertexts are deterministic given those seeds, and the persisted trailer
//! zeroes its run-varying timings. A store damaged before its first chunk
//! frame (torn preamble or header) has no usable prefix and is restarted from
//! scratch. Resumes are counted in `f2_engine_resume_total`.

use crate::persist::{encode_table, take_schema, StatefulScheme};
use crate::pipeline::{merge_reports, ChunkRecord, Engine};
use crate::stream::{
    finish_stream, pump_chunks, put_chunk_record, take_chunk_record, verify_chunk_seed,
    StreamOutcome, StreamProgress, FRAME_CHUNK, FRAME_HEADER,
};
use crate::wire::{Reader, Writer};
use f2_core::{ChunkedScheme, F2Error, Result};
use f2_io::frame::{crc32, FrameReader, FrameSink};
use f2_io::{IoError, RetryPolicy, RowSource, StreamStore, TableChunk};
use f2_relation::Schema;
use std::io::{Read, Seek, SeekFrom};

/// The validated prefix of an interrupted stream: everything before the first
/// damaged byte (or before the trailer, for a stream that only lost its tail).
pub(crate) struct StreamPrefix {
    /// Complete chunk records in order, continuity- and seed-verified.
    pub(crate) records: Vec<ChunkRecord>,
    /// CRC32 of each chunk frame's (decompressed) payload — what F²'s replay
    /// verification compares its re-encryptions against.
    pub(crate) payload_crcs: Vec<u32>,
    /// Store offset one past the last complete chunk frame: the resume point.
    pub(crate) bytes: u64,
    /// Frames in the prefix (header + chunks) — seeds the resumed sink's count.
    pub(crate) frames: u64,
}

impl Engine {
    /// Resume an interrupted [`Engine::run_streaming`] job in `store`,
    /// producing a stream **byte-identical** to the one an uninterrupted run
    /// over the same `scheme`, `source`, and engine configuration would have
    /// written. `source` must be the original source, rewound to its first
    /// row — resume replays (or, for F², re-encrypts and verifies) the rows
    /// the surviving prefix already covers before continuing with the rest.
    ///
    /// The engine seed and `chunk_rows` must match the interrupted run's; a
    /// readable header that contradicts them (or the scheme, or the source
    /// schema) is an error rather than damage. A store torn before its first
    /// chunk frame is truncated to zero and re-encrypted from scratch.
    pub fn resume_streaming<S, T>(
        &self,
        scheme: &S,
        source: &mut dyn RowSource,
        store: &mut T,
    ) -> Result<StreamOutcome>
    where
        S: ChunkedScheme + StatefulScheme + ?Sized,
        T: StreamStore,
    {
        crate::obs::resumes().inc();
        let retry = self.retry().cloned().unwrap_or_else(RetryPolicy::disabled);
        let schema = source.schema().clone();
        seek_to(store, 0)?;
        let prefix = match self.scan_prefix(scheme, &schema, &mut *store)? {
            Some(prefix) => prefix,
            None => {
                // Nothing usable survives a torn preamble or header frame:
                // start the stream over from the first byte.
                store.set_len(0).map_err(io_err)?;
                seek_to(store, 0)?;
                return self.run_streaming(scheme, source, &mut *store);
            }
        };
        store.set_len(prefix.bytes).map_err(io_err)?;
        seek_to(store, prefix.bytes)?;

        let mut progress = StreamProgress::start();
        self.replay_prefix(scheme, source, &retry, &prefix, &mut progress)?;

        let mut sink = FrameSink::resume(retry.writer(&mut *store), prefix.bytes, prefix.frames);
        pump_chunks(
            scheme,
            self.config().seed,
            self.config().chunk_rows,
            source,
            &retry,
            &mut sink,
            &mut progress,
        )?;
        finish_stream(sink, progress).map(|(outcome, _)| outcome)
    }

    /// Scan the store for its intact prefix. `Ok(None)` means no usable prefix
    /// (torn preamble or header frame); a readable header that contradicts the
    /// engine configuration, scheme, or source schema is a hard error — the
    /// caller would otherwise splice two different runs into one stream.
    pub(crate) fn scan_prefix<S>(
        &self,
        scheme: &S,
        source_schema: &Schema,
        reader: impl Read,
    ) -> Result<Option<StreamPrefix>>
    where
        S: ChunkedScheme + StatefulScheme + ?Sized,
    {
        let Ok(mut frames) = FrameReader::new(reader) else { return Ok(None) };
        let header = match frames.next_frame() {
            Ok(Some(frame)) if frame.frame_type == FRAME_HEADER => frame,
            Ok(_) | Err(_) => return Ok(None),
        };
        let parsed = (|| -> Result<(String, u64, usize, Schema)> {
            let mut r = Reader::raw(&header.payload);
            let name = r.str().map_err(F2Error::from)?.to_string();
            let seed = r.u64().map_err(F2Error::from)?;
            let chunk_rows = r.usize().map_err(F2Error::from)?;
            let schema = take_schema(&mut r)?;
            r.finish().map_err(F2Error::from)?;
            Ok((name, seed, chunk_rows, schema))
        })();
        // The frame passed its CRC, so an undecodable header is a producer bug,
        // not transport damage — but either way there is no prefix to keep.
        let Ok((name, seed, chunk_rows, schema)) = parsed else { return Ok(None) };
        if name != scheme.name() {
            return Err(F2Error::UnsupportedInput(format!(
                "stream was produced by the `{name}` scheme, resume holds `{}`",
                scheme.name()
            )));
        }
        if seed != self.config().seed || chunk_rows != self.config().chunk_rows {
            return Err(F2Error::UnsupportedInput(format!(
                "stream was produced with seed {seed} / chunk_rows {chunk_rows}, the resuming \
                 engine holds seed {} / chunk_rows {} — resume needs the original configuration",
                self.config().seed,
                self.config().chunk_rows
            )));
        }
        if &schema != source_schema {
            return Err(F2Error::UnsupportedInput(
                "stream header schema disagrees with the source — resume needs the original \
                 source"
                    .into(),
            ));
        }

        let mut records: Vec<ChunkRecord> = Vec::new();
        let mut payload_crcs = Vec::new();
        let mut bytes = frames.bytes_consumed();
        let mut frame_count = 1u64;
        loop {
            // Only a full-sized chunk may be followed by another: a short chunk
            // is the stream's final one, so the prefix cannot extend past it.
            if records.last().is_some_and(|prev| prev.rows.len() != chunk_rows) {
                break;
            }
            let frame = match frames.next_frame() {
                Ok(Some(frame)) if frame.frame_type == FRAME_CHUNK => frame,
                // Trailer, end marker, unknown frame type, torn or damaged
                // tail: the chunk prefix ends here — everything at and past
                // this offset is rewritten by the resumed run.
                _ => break,
            };
            let mut r = Reader::raw(&frame.payload);
            let Ok(record) = take_chunk_record(&mut r) else { break };
            let next_row = records.last().map_or(0, |prev| prev.rows.end);
            let next_output = records.last().map_or(0, |prev| prev.output_rows.end);
            if record.index != records.len()
                || record.rows.start != next_row
                || record.output_rows.start != next_output
                || record.rows.is_empty()
                || record.rows.len() > chunk_rows
            {
                break;
            }
            verify_chunk_seed(seed, record.index as u64, record.seed)?;
            payload_crcs.push(crc32(&frame.payload));
            records.push(record);
            bytes = frames.bytes_consumed();
            frame_count += 1;
        }
        Ok(Some(StreamPrefix { records, payload_crcs, bytes, frames: frame_count }))
    }

    /// Advance `source` past the rows the prefix covers, rebuilding the running
    /// report (and, for F², verifying the stored frames against the source) and
    /// seeding `progress` so the continued run picks up at the right chunk.
    fn replay_prefix<S>(
        &self,
        scheme: &S,
        source: &mut dyn RowSource,
        retry: &RetryPolicy,
        prefix: &StreamPrefix,
        progress: &mut StreamProgress,
    ) -> Result<()>
    where
        S: ChunkedScheme + StatefulScheme + ?Sized,
    {
        // Seekable fast path: when every prefix chunk's report is a pure
        // function of its row count *and* the source can seek, there is
        // nothing to replay — merge the rederived reports and jump the source
        // straight to the resume row. F² stays on the slow path by design
        // (`rederive_chunk_report` is `None`): its reports depend on the data,
        // and the replay's CRC comparison is what proves the source unchanged.
        let rederived: Option<Vec<_>> =
            prefix.records.iter().map(|r| scheme.rederive_chunk_report(r.rows.len())).collect();
        if let Some(reports) = rederived {
            if let Some(seekable) = source.as_seekable() {
                let resume_row = prefix.records.last().map_or(0, |last| last.rows.end);
                seekable.seek_to_row(resume_row).map_err(|e| {
                    F2Error::UnsupportedInput(format!(
                        "source ended (or refused to seek) before the {resume_row} rows the \
                         stream prefix covers — resume needs the original source: {e}"
                    ))
                })?;
                for (record, report) in prefix.records.iter().zip(&reports) {
                    merge_reports(&mut progress.report, report);
                    progress.rows = record.rows.end;
                    progress.encrypted_rows = record.output_rows.end;
                    progress.chunks.push(record.clone());
                }
                return Ok(());
            }
        }

        let mut pulls = retry.begin();
        let mut remaining = prefix.records.iter().zip(&prefix.payload_crcs);
        let mut current = remaining.next();
        while let Some((record, &stored_crc)) = current {
            let want = record.rows.len();
            // The same inline retry loop as `pump_chunks` — the pulled chunk
            // borrows the source, so `RetryPolicy::run` cannot wrap the pull.
            let chunk = match source.next_chunk(want) {
                Err(error) => {
                    pulls.absorb(error).map_err(F2Error::from)?;
                    continue;
                }
                Ok(None) => {
                    return Err(F2Error::UnsupportedInput(format!(
                        "source ended at row {} but the stream prefix covers {} rows — resume \
                         needs the original source, rewound to its first row",
                        record.rows.start,
                        prefix.records.last().map_or(0, |last| last.rows.end)
                    )));
                }
                Ok(Some(chunk)) => chunk,
            };
            if chunk.row_count() != want {
                return Err(F2Error::UnsupportedInput(format!(
                    "source produced {} rows where the stream prefix recorded {want} — resume \
                     needs the original source",
                    chunk.row_count()
                )));
            }
            match scheme.rederive_chunk_report(want) {
                Some(report) => merge_reports(&mut progress.report, &report),
                None => {
                    // F²: the per-chunk report depends on the data, so the
                    // chunk is re-encrypted (deterministic under the stored,
                    // seed-verified chunk seed). Comparing the rebuilt frame
                    // payload's checksum against the stored frame's doubles as
                    // proof that the source still holds the rows the prefix
                    // was built from.
                    let reseeded = scheme.reseeded(record.seed);
                    let outcome = match &chunk {
                        TableChunk::Owned(table) => reseeded.encrypt(table)?,
                        TableChunk::Borrowed(view) => reseeded.encrypt_view(view)?,
                    };
                    let mut payload = Writer::raw();
                    put_chunk_record(&mut payload, record);
                    payload.put_bytes(&scheme.save_state(&outcome)?);
                    payload.put_bytes(&encode_table(&outcome.encrypted));
                    if crc32(&payload.finish()) != stored_crc {
                        return Err(F2Error::UnsupportedInput(format!(
                            "chunk {} re-encrypted from the source does not match the stored \
                             stream — the source changed since the interrupted run",
                            record.index
                        )));
                    }
                    merge_reports(&mut progress.report, &outcome.report);
                }
            }
            progress.rows = record.rows.end;
            progress.encrypted_rows = record.output_rows.end;
            progress.chunks.push(record.clone());
            current = remaining.next();
            pulls = retry.begin();
        }
        Ok(())
    }
}

fn io_err(error: std::io::Error) -> F2Error {
    F2Error::from(IoError::Io(error))
}

fn seek_to<T: Seek + ?Sized>(store: &mut T, offset: u64) -> Result<()> {
    store.seek(SeekFrom::Start(offset)).map_err(io_err)?;
    Ok(())
}
