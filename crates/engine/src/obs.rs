//! Cached telemetry handles for the chunk pipeline.
//!
//! The engine exposes two views of the same work: counters for volume (chunks,
//! rows, stream bytes) and latency histograms for the chunk lifecycle. The
//! pull → serialize → write stages of the streaming loop are timed with
//! [`f2_obs::span!`] guards at the call sites; the encrypt stage reuses the
//! wall-clock the pipeline already measures for [`ChunkRecord::wall`]
//! (recorded here via [`chunk_encrypted`]), so instrumenting it adds no clock
//! reads to the encryption path on either the streaming or the in-memory path.
//!
//! [`ChunkRecord::wall`]: crate::pipeline::ChunkRecord::wall

use f2_obs::{Counter, Histogram, Unit};
use std::sync::OnceLock;
use std::time::Duration;

/// Per-chunk encryption latency across both engine paths.
fn chunk_seconds() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        f2_obs::global().histogram(
            "f2_engine_chunk_seconds",
            "Wall-clock encryption time per chunk (streaming and in-memory paths).",
            &[],
            Unit::Seconds,
        )
    })
}

/// The encrypt stage's sample in the span hierarchy — same family the
/// `span!`-timed pull/serialize/write stages record into.
fn encrypt_span_seconds() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        f2_obs::global().histogram(
            "f2_span_seconds",
            "Wall-clock duration of instrumented spans.",
            &[("span", "engine.chunk.encrypt")],
            Unit::Seconds,
        )
    })
}

fn chunks_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_engine_chunks_total",
            "Chunks encrypted by the engine (both paths).",
            &[],
        )
    })
}

fn rows_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_engine_rows_total",
            "Plaintext rows consumed by the engine.",
            &[],
        )
    })
}

fn encrypted_rows_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_engine_encrypted_rows_total",
            "Encrypted rows produced by the engine (padding rows included).",
            &[],
        )
    })
}

/// Bytes of finished v2 streams, preamble and frame headers included.
pub(crate) fn stream_bytes_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_engine_stream_bytes_total",
            "Bytes of finished F2WS v2 streams written by run_streaming.",
            &[],
        )
    })
}

/// Streams picked back up by `Engine::resume_streaming` (header-damaged
/// restarts-from-scratch included).
pub(crate) fn resumes() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_engine_resume_total",
            "Interrupted F2WS v2 streams resumed by Engine::resume_streaming.",
            &[],
        )
    })
}

/// Record one encrypted chunk: volume counters plus both latency views of the
/// already-measured encrypt wall-clock.
pub(crate) fn chunk_encrypted(rows: usize, encrypted_rows: usize, wall: Duration) {
    chunks_total().inc();
    rows_total().add(rows as u64);
    encrypted_rows_total().add(encrypted_rows as u64);
    chunk_seconds().record_duration(wall);
    encrypt_span_seconds().record_duration(wall);
}
