//! Lossy, best-effort decryption of damaged `F2WS` v2 streams.
//!
//! lint: untrusted-input — everything below decodes wire-derived, possibly
//! corrupted frames.
//!
//! [`decrypt_streaming`](crate::decrypt_streaming) is all-or-nothing: the
//! first damaged frame fails the whole run, which is the right default for a
//! pipeline but useless for salvage. [`decrypt_streaming_lossy`] instead
//! drives [`FrameReader::recover`] over every damaged region — resynchronizing
//! to the next frame whose checksum verifies — decrypts **every intact
//! chunk** (per-chunk owner states are chunk-local, so one lost chunk never
//! takes its neighbours down), and accounts for what could not be saved in a
//! [`DamageReport`]: chunks and rows lost, the exact byte ranges skipped, and
//! whether the header and trailer survived.
//!
//! Limits, by construction: chunks torn off the *tail* of a stream that also
//! lost its trailer cannot be counted exactly (nothing intact records how many
//! chunks there should have been), so the tail's damaged bytes are converted
//! into a size-based *estimate* — [`DamageReport::suspected_lost`] — by
//! dividing them by the mean intact chunk-frame size. A tail torn off cleanly
//! at a frame boundary leaves zero damaged bytes and therefore zero suspected
//! chunks; and a damaged preamble fails the whole call — the 7-byte preamble
//! is what identifies the stream format in the first place.

use crate::persist::{decode_table, take_report, StatefulScheme};
use crate::stream::{take_chunk_record, FRAME_CHUNK, FRAME_HEADER, FRAME_TRAILER};
use crate::wire::Reader;
use f2_core::{ChunkedScheme, EncryptionReport, F2Error, Result, SchemeOutcome};
use f2_io::frame::{Frame, FrameReader};
use f2_io::SkippedRange;
use f2_relation::Table;
use std::io::Read;

/// What a [`decrypt_streaming_lossy`] salvage run recovered and what it lost.
#[derive(Debug, Clone, Default)]
pub struct DamageReport {
    /// Chunk count the trailer promised, when the trailer survived.
    pub chunks_total: Option<usize>,
    /// Chunks decrypted and emitted.
    pub chunks_recovered: usize,
    /// Chunks known to be lost: the trailer's count minus recovered when the
    /// trailer survived, otherwise the gaps in the recovered chunk indices
    /// (tail losses are invisible without a trailer).
    pub chunks_lost: usize,
    /// Plaintext rows decrypted and emitted.
    pub rows_recovered: usize,
    /// Rows lost with the lost chunks, when the trailer survived to say.
    pub rows_lost: Option<usize>,
    /// Estimated chunks torn off the *tail* of a stream whose trailer was also
    /// lost — the case [`DamageReport::chunks_lost`] cannot see. Computed from
    /// the damaged bytes past the last intact frame, divided by the mean
    /// intact chunk-frame size (rounded to nearest); zero whenever the trailer
    /// survived (exact accounting wins) or the tail left no damaged bytes.
    /// An estimate, not a count: trust it to flag loss, not to size it.
    pub suspected_lost: usize,
    /// Total damaged bytes skipped while resynchronizing.
    pub bytes_skipped: u64,
    /// The exact byte ranges skipped, as absolute stream offsets.
    pub skipped_ranges: Vec<SkippedRange>,
    /// Whether the header frame survived.
    pub header_recovered: bool,
    /// Whether the trailer frame survived.
    pub trailer_recovered: bool,
}

impl DamageReport {
    /// True when the salvage run saw no damage at all: every frame intact,
    /// header and trailer included, no bytes skipped.
    pub fn is_lossless(&self) -> bool {
        self.header_recovered
            && self.trailer_recovered
            && self.chunks_lost == 0
            && self.suspected_lost == 0
            && self.bytes_skipped == 0
    }
}

/// Decrypt every intact chunk of a (possibly damaged) v2 stream, handing each
/// recovered plaintext chunk to `emit` in stream order, and report the damage.
/// Peak memory stays one chunk, as in [`decrypt_streaming`](crate::decrypt_streaming).
///
/// Per-chunk failures — a frame that resisted recovery, a chunk whose payload
/// does not decode or decrypt — are counted, never propagated; the only errors
/// returned are a damaged preamble, a header naming a different scheme, a
/// non-transport I/O failure from the reader, or an error from `emit` itself.
pub fn decrypt_streaming_lossy<S, R>(
    scheme: &S,
    reader: R,
    mut emit: impl FnMut(Table) -> Result<()>,
) -> Result<DamageReport>
where
    S: ChunkedScheme + StatefulScheme + ?Sized,
    R: Read,
{
    let mut frames = FrameReader::new(reader).map_err(F2Error::from)?;
    let mut report = DamageReport::default();
    // Highest chunk index seen plus one — with no trailer, index gaps are the
    // only evidence of loss.
    let mut indices_seen = 0usize;
    let mut trailer_rows: Option<usize> = None;
    // Tail-loss evidence: where the last intact frame ended, and how big an
    // intact chunk frame is on average (wire bytes, headers included).
    let mut last_intact_end = frames.bytes_consumed();
    let mut chunk_wire_bytes = 0u64;
    let mut chunk_frames_seen = 0u64;

    loop {
        let before_bytes = frames.bytes_consumed();
        let before_skipped: u64 = frames.skipped_ranges().iter().map(SkippedRange::len).sum();
        let frame = match frames.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            // Damage: resynchronize to the next checksum-verified frame. The
            // skipped ranges are tracked by the reader itself.
            Err(_) => match frames.recover().map_err(F2Error::from)? {
                Some(frame) => frame,
                None => break,
            },
        };
        let after_skipped: u64 = frames.skipped_ranges().iter().map(SkippedRange::len).sum();
        let frame_bytes = frames
            .bytes_consumed()
            .saturating_sub(before_bytes)
            .saturating_sub(after_skipped.saturating_sub(before_skipped));
        last_intact_end = frames.bytes_consumed();
        if frame.frame_type == FRAME_CHUNK {
            chunk_wire_bytes += frame_bytes;
            chunk_frames_seen += 1;
        }
        match frame.frame_type {
            FRAME_HEADER => {
                // Validate the scheme name when the header is intact — a
                // wrong-scheme salvage would "recover" garbage rows.
                let mut r = Reader::raw(&frame.payload);
                if let Ok(name) = r.str() {
                    if name != scheme.name() {
                        return Err(F2Error::UnsupportedInput(format!(
                            "stream was produced by the `{name}` scheme, salvage holds `{}`",
                            scheme.name()
                        )));
                    }
                }
                report.header_recovered = true;
            }
            FRAME_CHUNK => match salvage_chunk(scheme, &frame) {
                Some((index, plain)) => {
                    indices_seen = indices_seen.max(index + 1);
                    report.chunks_recovered += 1;
                    report.rows_recovered += plain.row_count();
                    emit(plain)?;
                }
                // A CRC-valid frame that fails to decode or decrypt is a lost
                // chunk, not a fatal error: its neighbours are still intact.
                None => report.chunks_lost += 1,
            },
            FRAME_TRAILER => {
                let mut r = Reader::raw(&frame.payload);
                let parsed = (|| -> Result<(usize, usize)> {
                    let chunks = r.usize().map_err(F2Error::from)?;
                    let rows = r.usize().map_err(F2Error::from)?;
                    let _encrypted_rows = r.usize().map_err(F2Error::from)?;
                    let _report = take_report(&mut r)?;
                    Ok((chunks, rows))
                })();
                if let Ok((chunks, rows)) = parsed {
                    report.chunks_total = Some(chunks);
                    trailer_rows = Some(rows);
                    report.trailer_recovered = true;
                }
            }
            // Unknown frame types are skipped: forward compatibility over
            // strictness in a salvage path.
            _ => {}
        }
    }

    if let Some(total) = report.chunks_total {
        report.chunks_lost = total.saturating_sub(report.chunks_recovered);
    } else {
        report.chunks_lost =
            report.chunks_lost.max(indices_seen.saturating_sub(report.chunks_recovered));
    }
    report.rows_lost = trailer_rows.map(|rows| rows.saturating_sub(report.rows_recovered));
    report.skipped_ranges = frames.skipped_ranges().to_vec();
    report.bytes_skipped = report.skipped_ranges.iter().map(SkippedRange::len).sum();
    if !report.trailer_recovered {
        // No trailer to count against: estimate tail losses from the damaged
        // bytes past the last intact frame. (With a trailer, `chunks_lost`
        // already accounts for every chunk exactly.)
        let tail: u64 = report
            .skipped_ranges
            .iter()
            .filter(|r| r.start >= last_intact_end)
            .map(SkippedRange::len)
            .sum();
        if tail > 0 {
            report.suspected_lost = if chunk_frames_seen == 0 {
                // No intact chunk to size the estimate against; all that is
                // certain is that *something* was torn off.
                1
            } else {
                let avg = chunk_wire_bytes.checked_div(chunk_frames_seen).unwrap_or(0).max(1);
                usize::try_from((tail + avg / 2) / avg).unwrap_or(usize::MAX)
            };
        }
    }
    Ok(report)
}

/// Decode and decrypt one chunk frame; `None` means the chunk is lost even
/// though its frame's checksum verified (undecodable payload, state blob the
/// scheme rejects, or ciphertext that fails to decrypt).
fn salvage_chunk<S>(scheme: &S, frame: &Frame) -> Option<(usize, Table)>
where
    S: ChunkedScheme + StatefulScheme + ?Sized,
{
    let mut r = Reader::raw(&frame.payload);
    let record = take_chunk_record(&mut r).ok()?;
    let state_blob = r.bytes().ok()?.to_vec();
    let encrypted = decode_table(r.bytes().ok()?).ok()?;
    r.finish().ok()?;
    if encrypted.row_count() != record.output_rows.len() {
        return None;
    }
    let chunk_outcome = SchemeOutcome {
        encrypted,
        state: scheme.load_state(&state_blob).ok()?,
        report: EncryptionReport::default(),
    };
    let plain = scheme.decrypt(&chunk_outcome).ok()?;
    Some((record.index, plain))
}
