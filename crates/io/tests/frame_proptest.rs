//! Property tests for the `F2WS` v2 frame stream: arbitrary frame sequences round
//! trip exactly (through the RLE compressor when it engages), every truncation
//! errors, and every single-bit flip is caught by the frame checksums.

use f2_io::{Frame, FrameReader, FrameSink, IoResult};
use proptest::collection::vec;
use proptest::prelude::*;

/// Payloads as concatenated `(byte, run length)` segments: short segments make
/// noise, long ones make the runs the RLE compressor targets.
fn payload() -> impl Strategy<Value = Vec<u8>> {
    vec((0u8..=255, 0usize..48), 0..12).prop_map(|segments| {
        segments.into_iter().flat_map(|(b, n)| std::iter::repeat_n(b, n)).collect()
    })
}

fn write_stream(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut sink = FrameSink::new(Vec::new()).expect("sink opens");
    for (frame_type, payload) in frames {
        sink.write_frame(*frame_type, payload).expect("frame writes");
    }
    sink.finish().expect("stream finishes").0
}

fn read_stream(bytes: &[u8]) -> IoResult<Vec<Frame>> {
    let mut reader = FrameReader::new(bytes)?;
    let mut frames = Vec::new();
    while let Some(frame) = reader.next_frame()? {
        frames.push(frame);
    }
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_sequences_roundtrip_exactly(
        frames in vec((1u8..=255, payload()), 0..8),
    ) {
        let stream = write_stream(&frames);
        let read = read_stream(&stream).expect("own stream reads");
        prop_assert_eq!(read.len(), frames.len());
        for (got, (frame_type, payload)) in read.iter().zip(&frames) {
            prop_assert_eq!(got.frame_type, *frame_type);
            prop_assert_eq!(&got.payload, payload);
        }
    }

    #[test]
    fn truncations_error_not_panic(
        frames in vec((1u8..=255, payload()), 1..5),
        cut_per_mille in 0u64..1000,
    ) {
        let stream = write_stream(&frames);
        let cut = (stream.len() as u64 * cut_per_mille / 1000) as usize;
        // Every strict prefix is missing at least the end frame.
        prop_assert!(read_stream(&stream[..cut]).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_reader(bytes in vec(0u8..=255, 0..512)) {
        // Byte soup must surface as an `IoError`, never a panic — in the version
        // sniffer and in the full frame reader alike.
        let _ = f2_io::sniff_version(&bytes);
        let _ = read_stream(&bytes);
    }

    #[test]
    fn garbage_after_a_valid_preamble_errors_not_panics(bytes in vec(0u8..=255, 0..256)) {
        // Get past the magic/version checks so the garbage lands on the frame
        // header and payload parsing itself.
        let mut stream = write_stream(&[]);
        stream.truncate(7);
        stream.extend_from_slice(&bytes);
        let _ = read_stream(&stream);
    }

    #[test]
    fn single_bit_flips_are_always_detected(
        frames in vec((1u8..=255, payload()), 1..4),
        position_per_mille in 0u64..1000,
        bit in 0u32..8,
    ) {
        let stream = write_stream(&frames);
        let at = ((stream.len() as u64 - 1) * position_per_mille / 999) as usize;
        let mut corrupt = stream.clone();
        corrupt[at] ^= 1u8 << bit;
        // Detection can surface as any IoError (checksum, truncation, cap, magic);
        // what may never happen is a clean read of different bytes.
        prop_assert!(
            read_stream(&corrupt).is_err(),
            "flip at {} bit {} went undetected",
            at,
            bit
        );
    }
}
