//! Property tests for the streaming CSV source: whatever `f2_relation::csv` writes,
//! [`CsvSource`] parses back — chunk by chunk, at any chunk size, through quoting,
//! escapes, embedded newlines, and every typed column — and hostile inputs error
//! instead of panicking.

use f2_io::{CsvOptions, CsvSource, RowSource};
use f2_relation::csv::to_csv_string;
use f2_relation::{Attribute, DataType, Record, Schema, Table, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// Character set exercising the quoting rules: delimiters, quotes, newlines, tabs,
/// unicode. `\r` is excluded — CSV line endings are CRLF-normalized on read, so a
/// bare carriage return inside a field does not survive a round trip (same as v1).
const CHARSET: &[char] = &['a', 'Z', '0', '9', ' ', ',', '"', '\n', '\'', 'é', '|', '\t', '_', '-'];

/// Non-empty text payloads over [`CHARSET`] (an empty field reads back as NULL).
fn text_value() -> impl Strategy<Value = String> {
    vec(0usize..CHARSET.len(), 1..12)
        .prop_map(|indices| indices.into_iter().map(|i| CHARSET[i]).collect())
}

/// One typed cell per column type, from a sampled integer.
fn cell_for(dt: DataType, payload: i64, nullable: bool) -> Value {
    if nullable && payload % 7 == 0 {
        return Value::Null;
    }
    match dt {
        DataType::Int => Value::Int(payload),
        // Bounded digits and scale ≥ 1: the CSV rendering of a decimal re-parses to
        // the same (digits, scale) only when the textual form carries a fraction.
        DataType::Decimal => Value::Decimal {
            digits: payload.rem_euclid(1_000_000_000_000),
            scale: 1 + payload.rem_euclid(3) as u8,
        },
        DataType::Date => Value::Date(payload as i32),
        DataType::Bytes => Value::bytes(payload.to_le_bytes().to_vec()),
        DataType::Text | DataType::Any => Value::text(format!("t{payload}")),
    }
}

fn drain_concat(source: &mut dyn RowSource, max_rows: usize) -> Table {
    let mut all = Table::empty(source.schema().clone());
    while let Some(chunk) = source.next_chunk(max_rows).expect("valid chunk") {
        assert!(chunk.row_count() >= 1 && chunk.row_count() <= max_rows);
        all.append(chunk.view().to_table()).expect("schemas agree");
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn text_tables_roundtrip_through_any_chunk_size(
        arity in 1usize..5,
        cells in vec(text_value(), 1..60),
        chunk_rows in 1usize..9,
    ) {
        let schema = Schema::from_names((0..arity).map(|a| format!("c{a}"))).expect("schema");
        let records: Vec<Record> = cells
            .chunks_exact(arity)
            .map(|row| Record::new(row.iter().map(Value::text).collect()))
            .collect();
        let table = Table::new(schema.clone(), records).expect("consistent arity");
        let csv = to_csv_string(&table);
        let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv().with_schema(schema))
            .expect("own output parses");
        let parsed = drain_concat(&mut source, chunk_rows);
        prop_assert_eq!(parsed, table);
    }

    #[test]
    fn typed_tables_roundtrip_with_explicit_schemas(
        payloads in vec((0u64..=u64::MAX, 0u8..2), 1..40),
        chunk_rows in 1usize..9,
    ) {
        let types =
            [DataType::Int, DataType::Decimal, DataType::Date, DataType::Bytes, DataType::Text];
        let schema = Schema::new(
            types.iter().enumerate().map(|(i, &dt)| Attribute::new(format!("c{i}"), dt)).collect(),
        )
        .expect("schema");
        let records: Vec<Record> = payloads
            .iter()
            .map(|&(payload, nullable)| {
                let payload = payload as i64;
                Record::new(
                    types.iter().map(|&dt| cell_for(dt, payload, nullable == 1)).collect(),
                )
            })
            .collect();
        let table = Table::new(schema.clone(), records).expect("consistent arity");
        let csv = to_csv_string(&table);
        let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv().with_schema(schema))
            .expect("own output parses");
        prop_assert_eq!(drain_concat(&mut source, chunk_rows), table);
    }

    #[test]
    fn inference_recovers_uniformly_typed_columns(
        payloads in vec(0u64..=u64::from(u32::MAX), 1..40),
        chunk_rows in 1usize..9,
    ) {
        // One column per inferable type, every field canonical for its type.
        let mut csv = String::from("i,d,t,dt,b");
        for &p in &payloads {
            let p = p as u32 as i64;
            csv.push_str(&format!("\n{p},{p}.5,x{p},@{},0x{:02x}", p as i32, (p & 0xff) as u8));
        }
        csv.push('\n');
        let mut source =
            CsvSource::new(csv.as_bytes(), CsvOptions::csv()).expect("inference succeeds");
        let inferred: Vec<DataType> =
            source.schema().attributes().iter().map(|a| a.data_type).collect();
        prop_assert_eq!(
            inferred,
            vec![DataType::Int, DataType::Decimal, DataType::Text, DataType::Date, DataType::Bytes]
        );
        let parsed = drain_concat(&mut source, chunk_rows);
        prop_assert_eq!(parsed.row_count(), payloads.len());
        prop_assert_eq!(parsed.cell(0, 0).unwrap(), &Value::Int(payloads[0] as u32 as i64));
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_csv_source(
        bytes in vec(0u8..=255, 0..400),
        chunk_rows in 1usize..5,
    ) {
        // Invalid UTF-8, stray quotes, ragged rows: construction and pulling may
        // error (and a caller may keep pulling after an error) but never panic.
        if let Ok(mut source) = CsvSource::new(bytes.as_slice(), CsvOptions::csv()) {
            let mut errors = 0;
            for _ in 0..64 {
                match source.next_chunk(chunk_rows) {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        errors += 1;
                        if errors > 8 { break; }
                    }
                }
            }
        }
    }

    #[test]
    fn truncated_documents_error_not_panic(
        cells in vec(text_value(), 4..40),
        cut_per_mille in 0u64..1000,
    ) {
        let schema = Schema::from_names(["a", "b"]).expect("schema");
        let records: Vec<Record> = cells
            .chunks_exact(2)
            .map(|row| Record::new(row.iter().map(Value::text).collect()))
            .collect();
        let table = Table::new(schema.clone(), records).expect("consistent arity");
        let csv = to_csv_string(&table);
        let cut = (csv.len() as u64 * cut_per_mille / 1000) as usize;
        // Cut at a UTF-8 boundary at or below the target.
        let cut = (0..=cut).rev().find(|&i| csv.is_char_boundary(i)).unwrap_or(0);
        // A truncated document either parses to a prefix of the rows or errors —
        // it must never panic and never invent cells.
        match CsvSource::new(&csv.as_bytes()[..cut], CsvOptions::csv().with_schema(schema)) {
            Err(_) => {}
            Ok(mut source) => loop {
                match source.next_chunk(8) {
                    Ok(Some(chunk)) => {
                        for (_, rec) in chunk.view().to_table().iter() {
                            prop_assert_eq!(rec.arity(), 2);
                        }
                    }
                    Ok(None) => break,
                    Err(_) => break,
                }
            },
        }
    }
}
