//! Integration tests of the fault-injection harness against the retry and
//! recovery layers: seeded [`FaultPlan`]s drive [`FaultyReader`] /
//! [`FaultyWriter`] / [`FaultySource`] wrappers, and the suite asserts that
//! [`RetryPolicy`]-wrapped transports absorb exactly the transient faults,
//! propagate fatal ones, and that the frame layer's recovery resynchronizes
//! across injected corruption — all deterministically reproducible from the
//! plan's seed.

use f2_io::{
    FaultKind, FaultPlan, FaultyReader, FaultySource, FaultyWriter, FrameReader, FrameSink,
    RetryPolicy, RowSource, TableSource,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::{ErrorKind, Read, Write};

/// A frame stream of `frames` payloads, plus each frame's absolute offset.
fn golden_stream(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut sink = FrameSink::new(Vec::new()).expect("sink opens");
    for (i, payload) in payloads.iter().enumerate() {
        let frame_type = if i == 0 { 1 } else { 2 };
        sink.write_frame(frame_type, payload).expect("frame writes");
    }
    sink.finish().expect("stream finishes").0
}

#[test]
fn retrying_reader_absorbs_transient_faults_and_delivers_exact_bytes() {
    let data: Vec<u8> = (0u8..=255).cycle().take(4096).collect();
    // Three transient faults scattered across the stream: each fails one read,
    // consumes nothing, and heals on the retry.
    let plan = FaultPlan::new()
        .with(0, FaultKind::Transient(ErrorKind::TimedOut))
        .with(1500, FaultKind::Transient(ErrorKind::ConnectionReset))
        .with(4000, FaultKind::Transient(ErrorKind::WouldBlock));
    let policy = RetryPolicy::no_backoff(4);
    let mut reader = policy.reader(FaultyReader::new(&data[..], plan));
    let mut out = Vec::new();
    reader.read_to_end(&mut out).expect("retries absorb every transient fault");
    assert_eq!(out, data, "retried reads must deliver the exact byte stream");
}

#[test]
fn retrying_writer_absorbs_transients_and_short_writes() {
    let data: Vec<u8> = (0u8..=255).cycle().take(4096).collect();
    let plan = FaultPlan::new()
        .with(10, FaultKind::Transient(ErrorKind::TimedOut))
        .with(700, FaultKind::ShortWrite(3))
        .with(2048, FaultKind::Transient(ErrorKind::ConnectionAborted))
        .with(3000, FaultKind::ShortWrite(1));
    let policy = RetryPolicy::no_backoff(4);
    let mut writer = policy.writer(FaultyWriter::new(Vec::new(), plan));
    writer.write_all(&data).expect("retries and write_all absorb the plan");
    writer.flush().unwrap();
    assert_eq!(writer.into_inner().into_inner(), data);
}

#[test]
fn a_disabled_policy_propagates_the_first_transient_fault() {
    let data = [7u8; 64];
    let plan = FaultPlan::new().with(0, FaultKind::Transient(ErrorKind::TimedOut));
    let mut reader = RetryPolicy::disabled().reader(FaultyReader::new(&data[..], plan));
    let err = reader.read_to_end(&mut Vec::new()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::TimedOut);
}

#[test]
fn fatal_errors_are_never_retried() {
    // NotFound is not in the transient class: one failure ends the operation
    // even with a generous budget.
    let data = [7u8; 64];
    let plan = FaultPlan::new().with(0, FaultKind::Transient(ErrorKind::NotFound));
    let mut reader = RetryPolicy::no_backoff(10).reader(FaultyReader::new(&data[..], plan));
    let err = reader.read_to_end(&mut Vec::new()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::NotFound);
}

#[test]
fn an_exhausted_retry_budget_surfaces_the_last_transient_error() {
    // More consecutive faults at the same offset than the budget allows.
    let data = [7u8; 64];
    let mut plan = FaultPlan::new();
    for _ in 0..5 {
        plan.push(0, FaultKind::Transient(ErrorKind::TimedOut));
    }
    let mut reader = RetryPolicy::no_backoff(3).reader(FaultyReader::new(&data[..], plan));
    let err = reader.read_to_end(&mut Vec::new()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::TimedOut, "budget exhausted: the fault surfaces");
    // The same plan under a budget larger than the fault count succeeds.
    let mut plan = FaultPlan::new();
    for _ in 0..5 {
        plan.push(0, FaultKind::Transient(ErrorKind::TimedOut));
    }
    let mut reader = RetryPolicy::no_backoff(8).reader(FaultyReader::new(&data[..], plan));
    let mut out = Vec::new();
    reader.read_to_end(&mut out).expect("budget covers the fault burst");
    assert_eq!(out, data);
}

#[test]
fn frames_written_through_faulty_retrying_transport_read_back_exactly() {
    // The composition the engine uses: FrameSink over RetryingWriter over the
    // raw (here: faulty) transport. The injected transients and short writes
    // must be invisible in the finished stream.
    let payloads: Vec<Vec<u8>> =
        (0..6).map(|i| (0..200 + i * 37).map(|b| (b % 251) as u8).collect()).collect();
    let clean = golden_stream(&payloads);

    let plan = FaultPlan::random(0xFA_417, clean.len() as u64, 6);
    // Random plans mix in bit flips, which a writer cannot mask — keep only the
    // producer-side-absorbable kinds for this byte-identity check.
    let mut producer_plan = FaultPlan::new();
    for fault in plan.faults() {
        if !matches!(fault.kind, FaultKind::BitFlip(_)) {
            producer_plan.push(fault.at, fault.kind);
        }
    }
    producer_plan.push(40, FaultKind::Transient(ErrorKind::TimedOut));
    producer_plan.push(41, FaultKind::ShortWrite(2));

    let policy = RetryPolicy::no_backoff(4);
    let mut sink = FrameSink::new(policy.writer(FaultyWriter::new(Vec::new(), producer_plan)))
        .expect("sink opens through the faulty transport");
    for (i, payload) in payloads.iter().enumerate() {
        let frame_type = if i == 0 { 1 } else { 2 };
        sink.write_frame(frame_type, payload).expect("frame writes through faults");
    }
    let (writer, _) = sink.finish().expect("stream finishes");
    assert_eq!(writer.into_inner().into_inner(), clean, "faults leaked into the stream bytes");
}

#[test]
fn recovery_resynchronizes_across_injected_bit_flips() {
    let payloads: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8 + 1; 300]).collect();
    let clean = golden_stream(&payloads);
    // Flip one bit inside the stream's middle — exactly one frame dies, every
    // other frame is recovered.
    let plan = FaultPlan::new().with(clean.len() as u64 / 2, FaultKind::BitFlip(0x10));
    let mut reader =
        FrameReader::new(FaultyReader::new(&clean[..], plan)).expect("preamble intact");
    let mut recovered = 0usize;
    loop {
        match reader.next_frame() {
            Ok(Some(_)) => recovered += 1,
            Ok(None) => break,
            Err(_) => match reader.recover().expect("recovery scans, not fails") {
                Some(_) => recovered += 1,
                None => break,
            },
        }
    }
    assert_eq!(recovered, payloads.len() - 1, "exactly the flipped frame is lost");
    assert_eq!(reader.skipped_ranges().len(), 1);
    assert!(reader.ended(), "the stream still ends cleanly after recovery");
}

#[test]
fn source_pull_retries_deliver_every_chunk_exactly_once() {
    let table = f2_relation::table! {
        ["A"]; ["r0"], ["r1"], ["r2"], ["r3"], ["r4"], ["r5"]
    };
    // Fault pulls 0 and 2; FaultySource fails *before* delegating, so a retried
    // pull sees the source exactly as the failed one did.
    let plan = FaultPlan::new()
        .with(0, FaultKind::Transient(ErrorKind::TimedOut))
        .with(2, FaultKind::Transient(ErrorKind::ConnectionReset));
    let mut source = FaultySource::new(TableSource::new(&table), plan);
    let policy = RetryPolicy::no_backoff(3);

    let mut rows_seen = 0usize;
    let mut state = policy.begin();
    loop {
        match source.next_chunk(2) {
            Ok(None) => break,
            Ok(Some(chunk)) => {
                rows_seen += chunk.row_count();
                state = policy.begin(); // per-chunk budget, as in the engine
            }
            Err(error) => state.absorb(error).expect("transient pull faults are absorbed"),
        }
    }
    assert_eq!(rows_seen, table.row_count(), "each chunk delivered exactly once");
    assert!(matches!(source.next_chunk(2), Ok(None)));
}

#[test]
fn backoff_schedule_is_deterministic_and_bounded() {
    let policy = RetryPolicy::new(8).with_seed(1234);
    let schedule = |p: &RetryPolicy| {
        let mut rng = p.seed;
        let mut prev = p.base_delay;
        (0..16)
            .map(|_| {
                let d = p.next_delay(&mut rng, prev);
                prev = d.max(p.base_delay);
                d
            })
            .collect::<Vec<_>>()
    };
    let a = schedule(&policy);
    let b = schedule(&policy);
    assert_eq!(a, b, "same seed, same schedule");
    assert!(a.iter().all(|d| *d >= policy.base_delay && *d <= policy.max_delay));
    let c = schedule(&RetryPolicy::new(8).with_seed(77));
    assert_ne!(a, c, "different seed, different schedule");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random fault plans against the recovering frame reader: whatever the
    /// plan does to the bytes, the reader must never panic, and every frame it
    /// does deliver must be one of the originals (CRC-verified resync never
    /// invents data).
    #[test]
    fn random_fault_plans_never_panic_the_recovering_reader(
        seed in 0u64..1 << 48,
        fault_count in 0usize..12,
        payload_sizes in vec(1usize..400, 1..6),
    ) {
        let payloads: Vec<Vec<u8>> = payload_sizes
            .iter()
            .enumerate()
            .map(|(i, len)| (0..*len).map(|b| ((b * 7 + i * 13) % 256) as u8).collect())
            .collect();
        let clean = golden_stream(&payloads);
        let mut plan = FaultPlan::random(seed, clean.len() as u64, fault_count);
        if seed % 3 == 0 {
            plan.push(seed % clean.len() as u64, FaultKind::Truncate);
        }
        let policy = RetryPolicy::no_backoff(16);
        let mut reader = match FrameReader::new(
            policy.reader(FaultyReader::new(&clean[..], plan)),
        ) {
            Ok(reader) => reader,
            Err(_) => continue, // damaged preamble: a legal, clean failure
        };
        let mut delivered = 0usize;
        loop {
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    prop_assert!(
                        payloads.contains(&frame.payload),
                        "recovery invented a frame payload"
                    );
                    delivered += 1;
                }
                Ok(None) => break,
                Err(_) => match reader.recover() {
                    Ok(Some(frame)) => {
                        prop_assert!(
                            payloads.contains(&frame.payload),
                            "recovery invented a frame payload"
                        );
                        delivered += 1;
                    }
                    Ok(None) => break,
                    // Non-transient transport error: clean failure, no panic.
                    Err(_) => break,
                },
            }
        }
        // Every original frame is either delivered or accounted as damage
        // (skipped bytes / lost tail) — never silently both or neither.
        prop_assert!(delivered <= payloads.len());
    }
}
