//! Error type of the streaming I/O subsystem.

use std::fmt;

/// Errors raised by sources, sinks, and frame codecs. Every failure mode of a
/// corrupt, truncated, or hostile input maps here — the subsystem never panics on
/// bad data.
#[derive(Debug)]
pub enum IoError {
    /// An error from the underlying reader/writer.
    Io(std::io::Error),
    /// A malformed CSV/TSV input, with the 1-based line it was detected on.
    Csv {
        /// 1-based input line (header = line 1).
        line: u64,
        /// What was wrong.
        message: String,
    },
    /// The input does not start with the `F2WS` magic.
    BadMagic,
    /// The input's `F2WS` version is not the one this reader handles.
    UnsupportedVersion(u16),
    /// The input ended before the structure it promised.
    Truncated(String),
    /// A frame's payload failed its CRC32 — the bytes were damaged in storage or
    /// transit.
    Checksum {
        /// Index of the damaged frame.
        frame: u64,
        /// Checksum recorded in the frame header.
        stored: u32,
        /// Checksum of the bytes actually read.
        computed: u32,
    },
    /// A declared length exceeds the format's allocation cap.
    Oversized {
        /// The length the input claimed.
        declared: usize,
        /// The enforced ceiling.
        cap: usize,
    },
    /// The input decoded structurally but its content is invalid.
    Malformed(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            IoError::BadMagic => write!(f, "missing F2WS magic"),
            IoError::UnsupportedVersion(v) => write!(f, "unsupported F2WS stream version {v}"),
            IoError::Truncated(m) => write!(f, "truncated input: {m}"),
            IoError::Checksum { frame, stored, computed } => write!(
                f,
                "checksum mismatch in frame {frame}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            IoError::Oversized { declared, cap } => {
                write!(f, "declared length {declared} exceeds the {cap}-byte frame cap")
            }
            IoError::Malformed(m) => write!(f, "malformed input: {m}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<IoError> for f2_core::F2Error {
    fn from(e: IoError) -> Self {
        f2_core::F2Error::UnsupportedInput(format!("stream I/O failed: {e}"))
    }
}

/// Result alias of the streaming I/O subsystem.
pub type IoResult<T> = std::result::Result<T, IoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IoError::Checksum { frame: 3, stored: 1, computed: 2 };
        assert!(e.to_string().contains("frame 3"));
        let e = IoError::Csv { line: 7, message: "bad field".into() };
        assert!(e.to_string().contains("line 7"));
        let core: f2_core::F2Error = IoError::BadMagic.into();
        assert!(core.to_string().contains("magic"));
    }
}
