//! The `F2WS` **v2 stream format**: checksummed, optionally compressed frames
//! written and read incrementally.
//!
//! lint: untrusted-input — this module parses attacker-controllable bytes; the
//! panic-freedom rules (`no-unwrap`, `slice-index`, …) are enforced by `f2-lint`.
//!
//! Version 1 of `F2WS` (see [`crate::wire`]) is a *single blob*: the whole encrypted
//! outcome is serialized in memory and written at once — fine for owner states,
//! a dead end for datasets larger than RAM. Version 2 keeps the same 7-byte preamble
//! (`F2WS` magic, little-endian `u16` version, kind tag) so readers can sniff either
//! format, but the payload is a **sequence of frames**, each independently
//! checksummed and sized, so a producer can append frames as chunks finish and a
//! consumer can process them one at a time in constant memory:
//!
//! ```text
//! "F2WS" | u16 version = 2 | u8 kind = KIND_STREAM
//! frame*:  u8 type | u8 flags | u32 wire_len | u32 raw_len | u32 crc32 | payload
//! end:     one frame with type = FRAME_END and an empty payload
//! ```
//!
//! * **Checksums.** `crc32` (IEEE) over the frame header (type, flags, lengths)
//!   *and* the wire payload, so a flipped bit anywhere in a frame surfaces as an
//!   [`IoError`] — never a panic, never silently wrong data (a corrupted length may
//!   surface as a truncation or cap error before the checksum is even computed).
//! * **Compression.** Frames whose payload shrinks under the varint-RLE byte
//!   compressor ([`rle_compress`]) are stored compressed (`FLAG_RLE`); incompressible
//!   payloads are stored raw, so the worst case costs nothing but the flag bit.
//! * **Bounded allocation.** Both `wire_len` and `raw_len` are validated against
//!   [`MAX_FRAME_BYTES`] before any buffer is sized, so a corrupted length errors
//!   instead of attempting a multi-gigabyte allocation.
//!
//! What the frames *mean* (header / chunk / trailer layout) is defined by the
//! producer — the streaming engine (`f2_engine::stream`) for encrypted outcomes.
//! This module only guarantees transport integrity.

use crate::error::{IoError, IoResult};
use crate::wire::MAGIC;
use std::io::{Read, Write};
use std::sync::OnceLock;

/// `F2WS` format version of framed streams (version 1 is the single-blob format).
pub const STREAM_VERSION: u16 = 2;

/// Kind tag of a framed stream (the v1 kind tags 1–4 identify single blobs).
pub const KIND_STREAM: u8 = 5;

/// Frame type closing a stream. All other type values are producer-defined.
pub const FRAME_END: u8 = 0;

/// Hard upper bound on a single frame's payload (wire or raw), validated before any
/// allocation: frames hold one chunk of a dataset, and a chunk of this size means a
/// corrupted length field, not data.
pub const MAX_FRAME_BYTES: usize = 1 << 28; // 256 MiB

/// Frame flag bit: the payload is varint-RLE compressed.
pub(crate) const FLAG_RLE: u8 = 1;

/// Bytes of the fixed per-frame header (type, flags, wire_len, raw_len, crc32).
pub(crate) const FRAME_HEADER_BYTES: usize = 1 + 1 + 4 + 4 + 4;

// ── CRC32 ──────────────────────────────────────────────────────────────────────────

/// Fold `bytes` into a raw (pre-inversion) CRC-32 state.
fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            // lint: allow(truncating-cast) — enumerate index over a 256-entry table
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    });
    #[allow(clippy::indexing_slicing)]
    for &b in bytes {
        // lint: allow(slice-index, truncating-cast) — index masked to 8 bits into a fixed 256-entry table
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(!0, bytes)
}

/// The checksum stored in a frame: CRC-32 over the header bytes before the checksum
/// field, continued over the wire payload (no concatenation buffer needed).
pub(crate) fn frame_crc(header_prefix: &[u8], wire: &[u8]) -> u32 {
    !crc32_update(crc32_update(!0, header_prefix), wire)
}

/// Widen a header-declared `u32` length to `usize` (fallible only on 16-bit targets).
fn decoded_len(v: u32) -> IoResult<usize> {
    usize::try_from(v)
        .map_err(|_| IoError::Malformed("frame length exceeds the platform word size".into()))
}

// ── varint-RLE compression ─────────────────────────────────────────────────────────

/// Append a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        // lint: allow(truncating-cast) — value masked to 7 bits first
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing `pos`. `None` on truncation or overflow.
fn take_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

/// Shortest run worth a run token (a run token costs ≥ 2 bytes).
const MIN_RUN: usize = 4;

/// Compress `raw` with the varint-RLE byte scheme: a token stream where each token
/// is a varint `t` — even `t` announces `t/2` literal bytes (following verbatim),
/// odd `t` announces `t/2` copies of the single following byte. Returns `None` when
/// the compressed form is not strictly smaller (the caller stores raw).
///
/// The scheme targets the long zero/padding runs of fixed-width ciphertext frames
/// and length-prefixed table encodings; incompressible payloads cost nothing because
/// they are stored raw.
pub fn rle_compress(raw: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw.len() / 2);
    let mut literal_start = 0usize;
    let mut i = 0usize;
    let flush_literals = |out: &mut Vec<u8>, start: usize, end: usize| {
        if let Some(chunk) = raw.get(start..end) {
            if !chunk.is_empty() {
                put_varint(out, (chunk.len() as u64) << 1);
                out.extend_from_slice(chunk);
            }
        }
    };
    while let Some(&b) = raw.get(i) {
        let run = 1 + raw.iter().skip(i + 1).take_while(|&&x| x == b).count();
        if run >= MIN_RUN {
            flush_literals(&mut out, literal_start, i);
            put_varint(&mut out, ((run as u64) << 1) | 1);
            out.push(b);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
        if out.len() >= raw.len() {
            return None; // already no smaller — bail out early
        }
    }
    flush_literals(&mut out, literal_start, raw.len());
    (out.len() < raw.len()).then_some(out)
}

/// Decompress a [`rle_compress`] token stream, validating that it produces exactly
/// `raw_len` bytes.
pub fn rle_decompress(packed: &[u8], raw_len: usize) -> IoResult<Vec<u8>> {
    let malformed = |m: &str| IoError::Malformed(format!("RLE stream: {m}"));
    if raw_len > MAX_FRAME_BYTES {
        return Err(IoError::Oversized { declared: raw_len, cap: MAX_FRAME_BYTES });
    }
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while pos < packed.len() {
        let token = take_varint(packed, &mut pos).ok_or_else(|| malformed("truncated token"))?;
        let len = usize::try_from(token >> 1).map_err(|_| malformed("oversized token"))?;
        if len > raw_len.saturating_sub(out.len()) {
            return Err(malformed("token runs past the declared raw length"));
        }
        if token & 1 == 1 {
            let byte = *packed.get(pos).ok_or_else(|| malformed("run without its byte"))?;
            pos += 1;
            out.resize(out.len() + len, byte);
        } else {
            let literals =
                packed.get(pos..pos + len).ok_or_else(|| malformed("truncated literals"))?;
            pos += len;
            out.extend_from_slice(literals);
        }
    }
    if out.len() != raw_len {
        return Err(malformed("stream ended short of the declared raw length"));
    }
    Ok(out)
}

// ── FrameSink ──────────────────────────────────────────────────────────────────────

/// Incremental writer of an `F2WS` v2 frame stream.
///
/// Construction writes the 7-byte preamble; every [`FrameSink::write_frame`] emits
/// exactly one frame with exactly one `write_all` call on the underlying writer (so
/// a frame is never partially interleaved with other writers of the same pipe), and
/// [`FrameSink::finish`] appends the [`FRAME_END`] terminator and flushes.
#[derive(Debug)]
pub struct FrameSink<W: Write> {
    writer: W,
    bytes_written: u64,
    frames: u64,
}

impl<W: Write> FrameSink<W> {
    /// Open a stream: writes the preamble.
    pub fn new(mut writer: W) -> IoResult<Self> {
        let [m0, m1, m2, m3] = MAGIC;
        let [v0, v1] = STREAM_VERSION.to_le_bytes();
        let preamble = [m0, m1, m2, m3, v0, v1, KIND_STREAM];
        writer.write_all(&preamble)?;
        Ok(FrameSink { writer, bytes_written: preamble.len() as u64, frames: 0 })
    }

    /// Reopen a sink mid-stream: `writer` must be positioned right after the last
    /// complete frame of a stream whose preamble was already written, and the
    /// counters pick up from `bytes_already` / `frames_already`. No preamble is
    /// emitted — this is the append constructor crash-safe resume
    /// (`f2_engine::Engine::resume_streaming`) builds on, so the resumed stream's
    /// byte totals match an uninterrupted run exactly.
    pub fn resume(writer: W, bytes_already: u64, frames_already: u64) -> Self {
        FrameSink { writer, bytes_written: bytes_already, frames: frames_already }
    }

    /// Append one frame. `frame_type` must not be [`FRAME_END`] (that frame is
    /// written by [`FrameSink::finish`]); the payload is compressed when that helps.
    pub fn write_frame(&mut self, frame_type: u8, payload: &[u8]) -> IoResult<()> {
        if frame_type == FRAME_END {
            return Err(IoError::Malformed("FRAME_END is written by finish()".into()));
        }
        if payload.len() > MAX_FRAME_BYTES {
            return Err(IoError::Oversized { declared: payload.len(), cap: MAX_FRAME_BYTES });
        }
        let compressed = rle_compress(payload);
        let (wire, flags): (&[u8], u8) = match &compressed {
            Some(packed) => (packed, FLAG_RLE),
            None => (payload, 0),
        };
        self.emit(frame_type, flags, wire, payload.len())
    }

    /// Close the stream: write the end frame, flush, and hand back the writer plus
    /// the total bytes written (preamble, every frame header, and the end frame).
    pub fn finish(mut self) -> IoResult<(W, u64)> {
        self.emit(FRAME_END, 0, &[], 0)?;
        self.writer.flush()?;
        Ok((self.writer, self.bytes_written))
    }

    /// Bytes written so far, preamble and frame headers included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Frames written so far (the end frame counts once written).
    pub fn frames(&self) -> u64 {
        self.frames
    }

    fn emit(&mut self, frame_type: u8, flags: u8, wire: &[u8], raw_len: usize) -> IoResult<()> {
        let encode_len = |len: usize| {
            u32::try_from(len)
                .map_err(|_| IoError::Oversized { declared: len, cap: MAX_FRAME_BYTES })
        };
        let [w0, w1, w2, w3] = encode_len(wire.len())?.to_le_bytes();
        let [r0, r1, r2, r3] = encode_len(raw_len)?.to_le_bytes();
        // The checksum covers the header fields plus the payload, so a flip in *any*
        // frame byte (not just the payload) is caught.
        let prefix = [frame_type, flags, w0, w1, w2, w3, r0, r1, r2, r3];
        let crc = frame_crc(&prefix, wire);
        let mut buf = Vec::with_capacity(FRAME_HEADER_BYTES + wire.len());
        buf.extend_from_slice(&prefix);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(wire);
        self.writer.write_all(&buf)?;
        self.bytes_written += buf.len() as u64;
        self.frames += 1;
        crate::obs::frames_written().inc();
        crate::obs::bytes_written().add(buf.len() as u64);
        f2_obs::ctx::add_count("io_frames", 1);
        if flags & FLAG_RLE != 0 {
            crate::obs::compressed_frames().inc();
        }
        Ok(())
    }
}

// ── FrameReader ────────────────────────────────────────────────────────────────────

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Producer-defined frame type (never [`FRAME_END`] — that ends iteration).
    pub frame_type: u8,
    /// The decompressed, checksum-verified payload.
    pub payload: Vec<u8>,
}

/// Incremental reader of an `F2WS` v2 frame stream. Corrupt, truncated, or
/// bit-flipped input surfaces as an [`IoError`] — never a panic — and the bytes
/// of a failed frame are retained so [`FrameReader::recover`] (see
/// [`crate::recover`]) can resynchronize to the next intact frame instead of
/// abandoning the stream.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    pub(crate) reader: R,
    pub(crate) frame_index: u64,
    pub(crate) ended: bool,
    /// Absolute stream offset (preamble included) of the next byte [`Self::fill`]
    /// will serve — i.e. of `pending[cursor]` when the pushback buffer is
    /// non-empty.
    pub(crate) consumed: u64,
    /// Pushback buffer: bytes pulled from the reader but handed back on an error
    /// path (`pending[cursor..]` is live). Empty throughout fault-free streaming,
    /// so the hot path pays one emptiness check and nothing else.
    pub(crate) pending: Vec<u8>,
    pub(crate) cursor: usize,
    /// Byte ranges recovery skipped as damaged, in scan order.
    pub(crate) skipped: Vec<crate::recover::SkippedRange>,
    /// Per-reader payload cap, `≤` [`MAX_FRAME_BYTES`]. Consumers of untrusted
    /// streams (the server protocol) lower it to bound per-connection memory.
    pub(crate) frame_cap: usize,
}

impl<R: Read> FrameReader<R> {
    /// Open a stream: reads and validates the preamble. A v1 single blob fails here
    /// with [`IoError::UnsupportedVersion`]`(1)` — route those to the v1 loader.
    pub fn new(mut reader: R) -> IoResult<Self> {
        let mut preamble = [0u8; 7];
        reader
            .read_exact(&mut preamble)
            .map_err(|_| IoError::Truncated("stream shorter than the F2WS preamble".into()))?;
        let [m0, m1, m2, m3, v0, v1, kind] = preamble;
        if [m0, m1, m2, m3] != MAGIC {
            return Err(IoError::BadMagic);
        }
        let version = u16::from_le_bytes([v0, v1]);
        if version != STREAM_VERSION {
            return Err(IoError::UnsupportedVersion(version));
        }
        if kind != KIND_STREAM {
            return Err(IoError::Malformed(format!(
                "version-2 payload has kind {kind}, expected a frame stream ({KIND_STREAM})"
            )));
        }
        Ok(FrameReader {
            reader,
            frame_index: 0,
            ended: false,
            consumed: preamble.len() as u64,
            pending: Vec::new(),
            cursor: 0,
            skipped: Vec::new(),
            frame_cap: MAX_FRAME_BYTES,
        })
    }

    /// Lower the per-frame payload cap below the format-wide
    /// [`MAX_FRAME_BYTES`]: frames declaring a larger wire or raw length fail
    /// with [`IoError::Oversized`] *before* any allocation, and recovery
    /// ([`FrameReader::recover`](crate::recover)) treats them as implausible.
    /// Values outside `1..=MAX_FRAME_BYTES` are clamped. Use this on untrusted
    /// transports to bound a single peer's memory footprint.
    #[must_use]
    pub fn with_frame_cap(mut self, cap: usize) -> Self {
        self.frame_cap = cap.clamp(1, MAX_FRAME_BYTES);
        self
    }

    /// Bytes still buffered in the pushback buffer.
    pub(crate) fn buffered(&self) -> usize {
        self.pending.len() - self.cursor
    }

    /// Fill `buf` from the pushback buffer, then the reader. Returns the bytes
    /// filled, which is short of `buf.len()` only at end of input. On a reader
    /// error, bytes already filled are handed back first, so a retried call (or a
    /// recovery scan) resumes exactly where this one started.
    fn fill(&mut self, buf: &mut [u8]) -> IoResult<usize> {
        let mut filled = 0usize;
        let avail = self.buffered();
        if avail > 0 {
            let n = avail.min(buf.len());
            let (dst, _) = buf.split_at_mut(n);
            if let Some(src) = self.pending.get(self.cursor..self.cursor + n) {
                dst.copy_from_slice(src);
            }
            self.cursor += n;
            self.consumed += n as u64;
            filled = n;
            if self.cursor == self.pending.len() {
                self.pending.clear();
                self.cursor = 0;
            }
        }
        while filled < buf.len() {
            let Some(target) = buf.get_mut(filled..) else { break };
            match self.reader.read(target) {
                Ok(0) => break,
                Ok(n) => {
                    filled += n;
                    self.consumed += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    let (head, _) = buf.split_at(filled);
                    let head = head.to_vec();
                    self.unread(&head);
                    return Err(IoError::Io(e));
                }
            }
        }
        Ok(filled)
    }

    /// Hand bytes back to the front of the pushback buffer (they will be served
    /// again before the reader is touched). Error-path only — the fault-free hot
    /// path never copies through `pending`.
    pub(crate) fn unread(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        let mut buf = Vec::with_capacity(bytes.len() + self.buffered());
        buf.extend_from_slice(bytes);
        buf.extend_from_slice(self.pending.get(self.cursor..).unwrap_or(&[]));
        self.pending = buf;
        self.cursor = 0;
        self.consumed -= bytes.len() as u64;
    }

    /// The next frame, or `None` once the end frame has been consumed. Reaching EOF
    /// *before* the end frame is a truncation error: every well-formed stream is
    /// explicitly terminated.
    pub fn next_frame(&mut self) -> IoResult<Option<Frame>> {
        if self.ended {
            return Ok(None);
        }
        let mut header = [0u8; FRAME_HEADER_BYTES];
        let got = self.fill(&mut header)?;
        if got < FRAME_HEADER_BYTES {
            let (head, _) = header.split_at(got);
            self.unread(head);
            crate::obs::truncation_errors().inc();
            return Err(IoError::Truncated(format!(
                "stream ended inside the header of frame {} (no end frame seen)",
                self.frame_index
            )));
        }
        let [frame_type, flags, w0, w1, w2, w3, r0, r1, r2, r3, c0, c1, c2, c3] = header;
        let wire_len = decoded_len(u32::from_le_bytes([w0, w1, w2, w3]))?;
        let raw_len = decoded_len(u32::from_le_bytes([r0, r1, r2, r3]))?;
        let stored_crc = u32::from_le_bytes([c0, c1, c2, c3]);
        if wire_len > self.frame_cap || raw_len > self.frame_cap {
            self.unread(&header);
            crate::obs::oversize_errors().inc();
            return Err(IoError::Oversized {
                declared: wire_len.max(raw_len),
                cap: self.frame_cap,
            });
        }
        let mut wire = vec![0u8; wire_len.min(self.frame_cap)];
        let got = self.fill(&mut wire)?;
        if got < wire_len {
            wire.truncate(got);
            let mut salvage = Vec::with_capacity(FRAME_HEADER_BYTES + wire.len());
            salvage.extend_from_slice(&header);
            salvage.extend_from_slice(&wire);
            self.unread(&salvage);
            crate::obs::truncation_errors().inc();
            return Err(IoError::Truncated(format!(
                "stream ended inside the payload of frame {}",
                self.frame_index
            )));
        }
        let prefix = [frame_type, flags, w0, w1, w2, w3, r0, r1, r2, r3];
        let computed = frame_crc(&prefix, &wire);
        if computed != stored_crc {
            let mut salvage = Vec::with_capacity(FRAME_HEADER_BYTES + wire.len());
            salvage.extend_from_slice(&header);
            salvage.extend_from_slice(&wire);
            self.unread(&salvage);
            crate::obs::checksum_errors().inc();
            return Err(IoError::Checksum {
                frame: self.frame_index,
                stored: stored_crc,
                computed,
            });
        }
        self.frame_index += 1;
        crate::obs::frames_read().inc();
        crate::obs::bytes_read().add((FRAME_HEADER_BYTES + wire_len) as u64);
        if frame_type == FRAME_END {
            if wire_len != 0 || raw_len != 0 {
                return Err(IoError::Malformed("end frame carries a payload".into()));
            }
            self.ended = true;
            return Ok(None);
        }
        let payload = if flags & FLAG_RLE != 0 {
            rle_decompress(&wire, raw_len)?
        } else {
            if raw_len != wire_len {
                return Err(IoError::Malformed(
                    "uncompressed frame declares a different raw length".into(),
                ));
            }
            wire
        };
        Ok(Some(Frame { frame_type, payload }))
    }

    /// Frames fully consumed so far (end frame included once seen).
    pub fn frames_read(&self) -> u64 {
        self.frame_index
    }

    /// Bytes of the underlying stream consumed so far (preamble included).
    /// After a frame error, points at the start of the failed frame — the bytes
    /// were handed back for recovery.
    pub fn bytes_consumed(&self) -> u64 {
        self.consumed
    }

    /// Whether the end frame has been consumed (the stream terminated cleanly).
    pub fn ended(&self) -> bool {
        self.ended
    }
}

/// The `F2WS` version a byte buffer claims, after validating the magic: `1` for
/// single blobs, `2` for frame streams. This is the dispatch point for readers that
/// accept both formats.
pub fn sniff_version(bytes: &[u8]) -> IoResult<u16> {
    let &[m0, m1, m2, m3, v0, v1, ..] = bytes else {
        return Err(IoError::Truncated("buffer shorter than the F2WS preamble".into()));
    };
    if [m0, m1, m2, m3] != MAGIC {
        return Err(IoError::BadMagic);
    }
    Ok(u16::from_le_bytes([v0, v1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn rle_roundtrips_and_compresses_runs() {
        let runs: Vec<u8> =
            [vec![0u8; 500], b"abc".to_vec(), vec![0xFF; 300], vec![7u8; 3]].concat();
        let packed = rle_compress(&runs).expect("runs compress");
        assert!(packed.len() < runs.len() / 4);
        assert_eq!(rle_decompress(&packed, runs.len()).unwrap(), runs);
        // Incompressible data is declined rather than inflated.
        let noise: Vec<u8> = (0..=255u8).cycle().take(600).collect();
        assert!(rle_compress(&noise).is_none());
        // Empty input: nothing to gain.
        assert!(rle_compress(&[]).is_none());
    }

    #[test]
    fn rle_decompress_rejects_corrupt_streams() {
        let raw = vec![9u8; 64];
        let packed = rle_compress(&raw).unwrap();
        assert!(rle_decompress(&packed, raw.len() + 1).is_err());
        assert!(rle_decompress(&packed, raw.len() - 1).is_err());
        assert!(rle_decompress(&packed[..packed.len() - 1], raw.len()).is_err());
        // A varint promising 2⁶³ bytes errors instead of allocating.
        let hostile = vec![0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        assert!(rle_decompress(&hostile, 16).is_err());
    }

    #[test]
    fn frames_roundtrip_through_a_stream() {
        let mut sink = FrameSink::new(Vec::new()).unwrap();
        sink.write_frame(1, b"header").unwrap();
        sink.write_frame(2, &vec![0u8; 1000]).unwrap();
        sink.write_frame(2, b"").unwrap();
        let (bytes, total) = sink.finish().unwrap();
        // The byte count covers the whole stream, end frame included …
        assert_eq!(total, bytes.len() as u64);
        // … and the zero-run frame compressed well below its raw size.
        assert!(bytes.len() < 300, "stream is {} bytes", bytes.len());

        let mut reader = FrameReader::new(&bytes[..]).unwrap();
        assert_eq!(
            reader.next_frame().unwrap().unwrap(),
            Frame { frame_type: 1, payload: b"header".to_vec() }
        );
        assert_eq!(reader.next_frame().unwrap().unwrap().payload, vec![0u8; 1000]);
        assert_eq!(reader.next_frame().unwrap().unwrap().payload, b"");
        assert!(reader.next_frame().unwrap().is_none());
        assert!(reader.next_frame().unwrap().is_none()); // idempotent after END
    }

    #[test]
    fn bit_flips_are_detected_at_every_byte_of_the_stream() {
        let mut sink = FrameSink::new(Vec::new()).unwrap();
        sink.write_frame(1, b"header").unwrap();
        sink.write_frame(2, &[b"payload-bytes-under-test".to_vec(), vec![0u8; 64]].concat())
            .unwrap();
        let (clean, _) = sink.finish().unwrap();
        // Flip one bit at every byte position — preamble, frame headers, payloads,
        // checksums, end frame. Every flip must surface as an error (the checksum
        // covers the frame header too, so even type/flag/length flips are caught).
        for at in 0..clean.len() {
            for bit in [0x01u8, 0x80] {
                let mut corrupt = clean.clone();
                corrupt[at] ^= bit;
                let outcome = || -> IoResult<()> {
                    let mut reader = FrameReader::new(&corrupt[..])?;
                    while reader.next_frame()?.is_some() {}
                    Ok(())
                };
                assert!(outcome().is_err(), "flip of bit {bit:#04x} at {at} went undetected");
            }
        }
        // The clean stream still reads fully, of course.
        let mut reader = FrameReader::new(&clean[..]).unwrap();
        while reader.next_frame().unwrap().is_some() {}
    }

    #[test]
    fn truncation_and_bad_preambles_error() {
        let mut sink = FrameSink::new(Vec::new()).unwrap();
        sink.write_frame(2, b"data").unwrap();
        let (clean, _) = sink.finish().unwrap();
        for cut in 0..clean.len() {
            let mut reader = match FrameReader::new(&clean[..cut]) {
                Ok(r) => r,
                Err(_) => continue, // preamble truncation already errored
            };
            let mut drained = || -> IoResult<()> {
                while reader.next_frame()?.is_some() {}
                Ok(())
            };
            assert!(drained().is_err(), "cut at {cut} went undetected");
        }
        assert!(matches!(FrameReader::new(&b"XXWS\x02\x00\x05"[..]), Err(IoError::BadMagic)));
        assert!(matches!(
            FrameReader::new(&b"F2WS\x01\x00\x04"[..]),
            Err(IoError::UnsupportedVersion(1))
        ));
        assert_eq!(sniff_version(&clean).unwrap(), 2);
        assert!(sniff_version(&clean[..3]).is_err());
    }

    #[test]
    fn oversized_lengths_error_before_allocating() {
        let mut stream = Vec::new();
        let mut sink = FrameSink::new(&mut stream).unwrap();
        sink.write_frame(1, b"x").unwrap();
        sink.finish().unwrap();
        // Rewrite the first frame's wire_len to 3 GiB.
        stream[9..13].copy_from_slice(&(3u32 << 30).to_le_bytes());
        let mut reader = FrameReader::new(&stream[..]).unwrap();
        assert!(matches!(reader.next_frame(), Err(IoError::Oversized { .. })));
    }
}
