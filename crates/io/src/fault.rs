//! Deterministic fault injection: seeded wrappers that make every I/O failure
//! mode reproducible in tests.
//!
//! lint: untrusted-input — these wrappers sit on the same byte paths as real
//! transports and must themselves be panic-free; rules enforced by `f2-lint`.
//!
//! Robustness code is only trustworthy if its failure paths are *exercised*, and
//! real storage fails rarely and unreproducibly. This module makes failure a
//! first-class, deterministic input: a [`FaultPlan`] is an explicit schedule of
//! faults pinned to byte offsets (or pull indices, for sources), and the
//! [`FaultyReader`] / [`FaultyWriter`] / [`FaultySource`] wrappers replay that
//! schedule exactly. [`FaultPlan::random`] derives a plan from a seed with a
//! splitmix64 generator, so a failing property test shrinks to a one-line repro.
//!
//! Four fault kinds cover the failure model of `docs/ROBUSTNESS.md`:
//!
//! * [`FaultKind::Transient`] — the operation touching the offset fails once
//!   with the given [`std::io::ErrorKind`], then heals: what
//!   [`RetryPolicy`](crate::retry::RetryPolicy) absorbs.
//! * [`FaultKind::ShortWrite`] — the write touching the offset accepts only a
//!   prefix: exercises `write_all`-style loops.
//! * [`FaultKind::BitFlip`] — the byte at the offset is XORed with a mask:
//!   exercises checksums and [`FrameReader::recover`](crate::FrameReader::recover).
//! * [`FaultKind::Truncate`] — the stream ends at the offset: readers see EOF,
//!   writers silently lose the tail (a crash mid-stream — what
//!   `Engine::resume_streaming` repairs).

use crate::error::{IoError, IoResult};
use crate::source::{RowSource, TableChunk};
use f2_relation::Schema;
use std::io::{ErrorKind, Read, Write};

/// Advance a splitmix64 state and return the next pseudo-random word. The same
/// generator the engine uses for chunk-seed derivation; duplicated here because
/// `f2-io` sits below `f2-crypto` in the dependency graph.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What goes wrong when a fault fires. See the [module docs](self) for the
/// semantics of each kind on readers, writers, and sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation touching the offset once with this error kind, then heal.
    Transient(ErrorKind),
    /// Accept at most this many bytes of the write touching the offset (min 1).
    ShortWrite(usize),
    /// XOR the byte at the offset with this mask (a zero mask is a no-op).
    BitFlip(u8),
    /// End the stream at the offset: reads report EOF, written bytes at or past
    /// the offset are silently dropped (the producer still sees success — exactly
    /// a buffered write lost to a crash).
    Truncate,
}

/// One scheduled fault: a [`FaultKind`] pinned to a position. For byte streams
/// ([`FaultyReader`] / [`FaultyWriter`]) `at` is a byte offset; for
/// [`FaultySource`] it is the 0-based `next_chunk` call index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Byte offset (streams) or pull index (sources) the fault is pinned to.
    pub at: u64,
    /// What goes wrong there.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults. One-shot faults ([`FaultKind::Transient`],
/// [`FaultKind::ShortWrite`], [`FaultKind::BitFlip`]) are consumed when they
/// fire; [`FaultKind::Truncate`] is permanent.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (wrappers behave transparently).
    pub fn new() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// Builder-style: add a fault at `at`.
    #[must_use]
    pub fn with(mut self, at: u64, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Add a fault at `at`.
    pub fn push(&mut self, at: u64, kind: FaultKind) {
        self.faults.push(Fault { at, kind });
    }

    /// The scheduled faults still pending, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether no faults remain pending.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Derive a plan of `count` faults over offsets `[0, len)` from a seed: a
    /// deterministic mix of transient errors, bit flips, and short writes. The
    /// same `(seed, len, count)` always yields the same plan. Truncations are
    /// never generated (they end a stream outright) — add one explicitly with
    /// [`FaultPlan::with`] when the scenario calls for it.
    pub fn random(seed: u64, len: u64, count: usize) -> Self {
        let mut state = seed ^ 0xF2F2_0FA0_17F1_A217;
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let at = if len == 0 { 0 } else { splitmix64(&mut state) % len };
            let kind = match splitmix64(&mut state) % 3 {
                0 => {
                    // Non-`Interrupted` kinds only: `std` read/write loops absorb
                    // `Interrupted` themselves, which would mask the fault.
                    let kind = match splitmix64(&mut state) % 4 {
                        0 => ErrorKind::WouldBlock,
                        1 => ErrorKind::TimedOut,
                        2 => ErrorKind::ConnectionReset,
                        _ => ErrorKind::ConnectionAborted,
                    };
                    FaultKind::Transient(kind)
                }
                1 => FaultKind::BitFlip(
                    u8::try_from(1u64 << (splitmix64(&mut state) % 8)).unwrap_or(1),
                ),
                _ => FaultKind::ShortWrite(
                    usize::try_from((splitmix64(&mut state) % 64) + 1).unwrap_or(1),
                ),
            };
            plan.push(at, kind);
        }
        plan
    }

    /// The earliest scheduled truncation offset, if any.
    pub fn truncate_at(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| matches!(f.kind, FaultKind::Truncate).then_some(f.at))
            .min()
    }

    /// Consume the first pending [`FaultKind::Transient`] whose offset falls in
    /// `[start, start + len)`.
    fn take_transient_touching(&mut self, start: u64, len: usize) -> Option<ErrorKind> {
        let len = len as u64;
        let idx = self.faults.iter().position(|f| {
            matches!(f.kind, FaultKind::Transient(_)) && f.at >= start && f.at - start < len
        })?;
        match self.faults.swap_remove(idx).kind {
            FaultKind::Transient(kind) => Some(kind),
            _ => None,
        }
    }

    /// Consume the first pending [`FaultKind::ShortWrite`] whose offset falls in
    /// `[start, start + len)`.
    fn take_short_write_touching(&mut self, start: u64, len: usize) -> Option<usize> {
        let len = len as u64;
        let idx = self.faults.iter().position(|f| {
            matches!(f.kind, FaultKind::ShortWrite(_)) && f.at >= start && f.at - start < len
        })?;
        match self.faults.swap_remove(idx).kind {
            FaultKind::ShortWrite(max) => Some(max),
            _ => None,
        }
    }

    /// Apply and consume every pending [`FaultKind::BitFlip`] whose offset falls
    /// inside the buffer that starts at stream offset `start`.
    fn apply_flips(&mut self, start: u64, buf: &mut [u8]) {
        let len = buf.len() as u64;
        let mut i = 0;
        while i < self.faults.len() {
            let Some(&Fault { at, kind }) = self.faults.get(i) else { break };
            if let FaultKind::BitFlip(mask) = kind {
                if at >= start && at - start < len {
                    if let Some(byte) =
                        usize::try_from(at - start).ok().and_then(|off| buf.get_mut(off))
                    {
                        *byte ^= mask;
                    }
                    self.faults.swap_remove(i);
                    continue;
                }
            }
            i += 1;
        }
    }
}

// ── FaultyReader ───────────────────────────────────────────────────────────────────

/// A [`Read`] wrapper that replays a [`FaultPlan`] against the byte stream:
/// transient errors fire on the read touching their offset (consuming nothing,
/// per the `Read` contract), bit flips corrupt delivered bytes in place, and a
/// truncation makes the stream end early.
#[derive(Debug)]
pub struct FaultyReader<R: Read> {
    inner: R,
    plan: FaultPlan,
    pos: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wrap a reader with a fault schedule.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        FaultyReader { inner, plan, pos: 0 }
    }

    /// Byte offset of the next read.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Unwrap the underlying reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let window = match self.plan.truncate_at() {
            Some(cut) if self.pos >= cut => return Ok(0),
            Some(cut) => usize::try_from(cut - self.pos).unwrap_or(usize::MAX).min(buf.len()),
            None => buf.len(),
        };
        if let Some(kind) = self.plan.take_transient_touching(self.pos, window) {
            return Err(std::io::Error::new(kind, "injected transient read fault"));
        }
        let (target, _) = buf.split_at_mut(window.min(buf.len()));
        let n = self.inner.read(target)?;
        let (delivered, _) = target.split_at_mut(n.min(target.len()));
        self.plan.apply_flips(self.pos, delivered);
        self.pos += n as u64;
        Ok(n)
    }
}

// ── FaultyWriter ───────────────────────────────────────────────────────────────────

/// A [`Write`] wrapper that replays a [`FaultPlan`] against the byte stream:
/// transient errors fire on the write touching their offset (consuming nothing,
/// per the `Write` contract), short writes accept only a prefix, bit flips
/// corrupt bytes on their way down, and a truncation silently drops everything
/// at or past its offset while still reporting success — the "crash with a
/// dirty page cache" scenario crash-safe resume exists for.
#[derive(Debug)]
pub struct FaultyWriter<W: Write> {
    inner: W,
    plan: FaultPlan,
    pos: u64,
}

impl<W: Write> FaultyWriter<W> {
    /// Wrap a writer with a fault schedule.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        FaultyWriter { inner, plan, pos: 0 }
    }

    /// Byte offset of the next write, as the *producer* sees it (dropped bytes
    /// past a truncation still advance it — the producer believes they landed).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(kind) = self.plan.take_transient_touching(self.pos, buf.len()) {
            return Err(std::io::Error::new(kind, "injected transient write fault"));
        }
        let window = match self.plan.take_short_write_touching(self.pos, buf.len()) {
            Some(max) => max.clamp(1, buf.len()),
            None => buf.len(),
        };
        let (accepted, _) = buf.split_at(window.min(buf.len()));
        let deliver = match self.plan.truncate_at() {
            Some(cut) if self.pos >= cut => 0,
            Some(cut) => usize::try_from(cut - self.pos).unwrap_or(usize::MAX).min(accepted.len()),
            None => accepted.len(),
        };
        if deliver > 0 {
            let (head, _) = accepted.split_at(deliver);
            let mut bytes = head.to_vec();
            self.plan.apply_flips(self.pos, &mut bytes);
            self.inner.write_all(&bytes)?;
        }
        self.pos += accepted.len() as u64;
        Ok(accepted.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

// ── FaultySource ───────────────────────────────────────────────────────────────────

/// A [`RowSource`] wrapper that injects transient failures into `next_chunk`
/// pulls. The plan's offsets are interpreted as 0-based pull-attempt indices;
/// only [`FaultKind::Transient`] faults apply (others are ignored). A faulted
/// pull fails *before* delegating, so a retried pull sees the source exactly as
/// the failed one did — the wrapper is pull-retry-safe by construction.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    plan: FaultPlan,
    attempts: u64,
}

impl<S> FaultySource<S> {
    /// Wrap a source with a fault schedule keyed by pull index.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultySource { inner, plan, attempts: 0 }
    }

    /// Pull attempts made so far (failed ones included).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Unwrap the underlying source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RowSource> RowSource for FaultySource<S> {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_chunk(&mut self, max_rows: usize) -> IoResult<Option<TableChunk<'_>>> {
        let attempt = self.attempts;
        self.attempts += 1;
        if let Some(kind) = self.plan.take_transient_touching(attempt, 1) {
            return Err(IoError::Io(std::io::Error::new(kind, "injected transient source fault")));
        }
        self.inner.next_chunk(max_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TableSource;
    use std::io::Cursor;

    #[test]
    fn random_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::random(7, 1024, 8);
        let b = FaultPlan::random(7, 1024, 8);
        assert_eq!(a.faults(), b.faults());
        assert_eq!(a.faults().len(), 8);
        let c = FaultPlan::random(8, 1024, 8);
        assert_ne!(a.faults(), c.faults());
        assert!(a.faults().iter().all(|f| f.at < 1024));
        assert!(a.truncate_at().is_none(), "random plans never truncate");
    }

    #[test]
    fn reader_flips_truncates_and_errors_once() {
        let data: Vec<u8> = (0..=99).collect();
        let plan = FaultPlan::new()
            .with(10, FaultKind::BitFlip(0xFF))
            .with(5, FaultKind::Transient(ErrorKind::TimedOut))
            .with(50, FaultKind::Truncate);
        let mut reader = FaultyReader::new(Cursor::new(data), plan);
        let mut out = Vec::new();
        // First read hits the transient fault once …
        let err = reader.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        assert_eq!(reader.position(), 0, "a failed read consumes nothing");
        // … the retried read heals, delivers the flipped byte, and ends at the cut.
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 50);
        assert_eq!(out[10], 10 ^ 0xFF);
        assert_eq!(out[9], 9);
        assert!(reader.plan.is_empty() || reader.plan.truncate_at().is_some());
    }

    #[test]
    fn writer_short_writes_are_absorbed_by_write_all() {
        let plan = FaultPlan::new().with(3, FaultKind::ShortWrite(2));
        let mut writer = FaultyWriter::new(Vec::new(), plan);
        writer.write_all(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(writer.into_inner(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn writer_truncation_drops_the_tail_silently() {
        let plan = FaultPlan::new().with(4, FaultKind::Truncate);
        let mut writer = FaultyWriter::new(Vec::new(), plan);
        writer.write_all(b"abcdefgh").unwrap(); // producer sees success
        assert_eq!(writer.position(), 8);
        assert_eq!(writer.into_inner(), b"abcd".to_vec());
    }

    #[test]
    fn source_faults_fire_on_the_scheduled_pull_and_heal() {
        let table = f2_relation::table! { ["A"]; ["r0"], ["r1"], ["r2"], ["r3"] };
        let plan = FaultPlan::new().with(1, FaultKind::Transient(ErrorKind::ConnectionReset));
        let mut source = FaultySource::new(TableSource::new(&table), plan);
        assert_eq!(source.next_chunk(2).unwrap().unwrap().row_count(), 2);
        let err = source.next_chunk(2).unwrap_err();
        assert!(matches!(err, IoError::Io(ref e) if e.kind() == ErrorKind::ConnectionReset));
        // The retried pull delivers the rows the faulted pull would have.
        assert_eq!(source.next_chunk(2).unwrap().unwrap().row_count(), 2);
        assert!(source.next_chunk(2).unwrap().is_none());
        assert_eq!(source.attempts(), 4);
    }
}
