//! The `F2WS` wire format: versioned, length-prefixed binary encoding.
//!
//! lint: untrusted-input — every byte this module decodes may come from a corrupt
//! or adversarial blob; `f2-lint` forbids panics, raw indexing, and truncating
//! casts here.
//!
//! Every persisted artifact (owner states, encrypted tables, whole outcomes) starts
//! with the 4-byte magic `F2WS`, a little-endian `u16` format version, and a one-byte
//! *kind* tag identifying the payload. All integers are little-endian; variable-length
//! payloads (byte strings, UTF-8 strings) are `u32`-length-prefixed. [`Reader`] checks
//! every read against the remaining input, so corrupt or truncated blobs surface as
//! [`WireError`]s — never as panics or over-allocation (a length prefix is validated
//! against the remaining bytes before anything is allocated).

use std::fmt;

/// Magic bytes opening every wire blob.
pub const MAGIC: [u8; 4] = *b"F2WS";

/// Current wire-format version. Bump on any incompatible layout change; readers
/// reject versions they do not understand instead of misparsing them.
pub const VERSION: u16 = 1;

/// Decoding failure: what the blob promised and what it actually held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The blob does not start with the `F2WS` magic.
    BadMagic,
    /// The blob's version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The blob carries a different kind of payload than the caller expected.
    WrongKind {
        /// Kind tag the caller asked for.
        expected: u8,
        /// Kind tag found in the header.
        got: u8,
    },
    /// A read ran past the end of the blob.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The blob decoded structurally but the content is invalid.
    Malformed(String),
    /// Decoding finished with unread bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "missing F2WS magic"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v} (max {VERSION})")
            }
            WireError::WrongKind { expected, got } => {
                write!(f, "wrong payload kind: expected {expected}, got {got}")
            }
            WireError::Truncated { needed, remaining } => {
                write!(f, "truncated input: needed {needed} bytes, {remaining} remaining")
            }
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for f2_core::F2Error {
    fn from(e: WireError) -> Self {
        f2_core::F2Error::UnsupportedInput(format!("wire decode failed: {e}"))
    }
}

/// Result alias for wire decoding.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// Append-only encoder for one wire blob.
#[derive(Debug, Clone, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start a blob of the given kind: magic, version, kind tag.
    pub fn versioned(kind: u8) -> Self {
        let mut w = Writer { buf: Vec::with_capacity(64) };
        w.buf.extend_from_slice(&MAGIC);
        w.put_u16(VERSION);
        w.put_u8(kind);
        w
    }

    /// Start a bare payload with no header — for content that lives *inside* an
    /// already-versioned container (e.g. one frame of an `F2WS` v2 stream, whose
    /// preamble carries the magic and version once for the whole stream).
    pub fn raw() -> Self {
        Writer::default()
    }

    /// Append a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the format is 64-bit regardless of platform).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a `u32`-length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        // lint: allow(no-unwrap) — encoder-side invariant: no producer in the
        // workspace builds a single cell anywhere near 4 GiB
        self.put_u32(u32::try_from(bytes.len()).expect("payload under 4 GiB"));
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Finish the blob.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Checked decoder over one wire blob.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Open a blob, validating magic and version, and expecting the given kind tag.
    pub fn versioned(buf: &'a [u8], kind: u8) -> WireResult<Self> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u16()?;
        if version == 0 || version > VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let got = r.u8()?;
        if got != kind {
            return Err(WireError::WrongKind { expected: kind, got });
        }
        Ok(r)
    }

    /// Open a bare payload written by [`Writer::raw`] (no magic/version/kind header).
    pub fn raw(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let truncated = WireError::Truncated { needed: n, remaining: self.remaining() };
        let end = self.pos.checked_add(n).ok_or_else(|| truncated.clone())?;
        let slice = self.buf.get(self.pos..end).ok_or(truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Take the next `N` bytes as a fixed-size array.
    fn array<const N: usize>(&mut self) -> WireResult<[u8; N]> {
        self.take(N)?.try_into().map_err(|_| WireError::Truncated { needed: N, remaining: 0 })
    }

    /// Read a raw byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        let [b] = self.array()?;
        Ok(b)
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Read a `u64` and convert it to `usize`.
    pub fn usize(&mut self) -> WireResult<usize> {
        usize::try_from(self.u64()?)
            .map_err(|_| WireError::Malformed("count exceeds the platform word size".into()))
    }

    /// Read a `u32` element count, validating that `count × min_elem_bytes` does not
    /// exceed the remaining input. Collection decoders must size their allocations
    /// through this (or [`Reader::count_u64`]) so that a corrupt count errors instead
    /// of requesting a multi-gigabyte `Vec`.
    pub fn count_u32(&mut self, min_elem_bytes: usize) -> WireResult<usize> {
        let count = self.u32_len()?;
        self.check_count(count, min_elem_bytes)
    }

    /// [`Reader::count_u32`] for `u64`-encoded counts.
    pub fn count_u64(&mut self, min_elem_bytes: usize) -> WireResult<usize> {
        let count = self.usize()?;
        self.check_count(count, min_elem_bytes)
    }

    fn check_count(&self, count: usize, min_elem_bytes: usize) -> WireResult<usize> {
        let needed = count.saturating_mul(min_elem_bytes.max(1));
        if needed > self.remaining() {
            return Err(WireError::Truncated { needed, remaining: self.remaining() });
        }
        Ok(count)
    }

    /// Read a `u32` and widen it to `usize`.
    fn u32_len(&mut self) -> WireResult<usize> {
        usize::try_from(self.u32()?)
            .map_err(|_| WireError::Malformed("length exceeds the platform word size".into()))
    }

    /// Read a `u32`-length-prefixed byte string. The length is validated against the
    /// remaining input before any slice is taken.
    pub fn bytes(&mut self) -> WireResult<&'a [u8]> {
        let len = self.u32_len()?;
        self.take(len)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> WireResult<String> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| WireError::Malformed("string is not valid UTF-8".into()))
    }

    /// Assert the blob is fully consumed.
    pub fn finish(self) -> WireResult<()> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = Writer::versioned(9);
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(u64::MAX);
        w.put_usize(42);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("héllo");
        let blob = w.finish();

        let mut r = Reader::versioned(&blob, 9).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn header_is_validated() {
        let blob = Writer::versioned(1).finish();
        assert!(matches!(
            Reader::versioned(&blob, 2).unwrap_err(),
            WireError::WrongKind { expected: 2, got: 1 }
        ));
        let mut bad_magic = blob.clone();
        bad_magic[0] = b'X';
        assert_eq!(Reader::versioned(&bad_magic, 1).unwrap_err(), WireError::BadMagic);
        let mut future = blob.clone();
        future[4] = 0xff;
        future[5] = 0xff;
        assert!(matches!(
            Reader::versioned(&future, 1).unwrap_err(),
            WireError::UnsupportedVersion(_)
        ));
        assert!(matches!(
            Reader::versioned(&blob[..3], 1).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn length_prefix_cannot_over_allocate() {
        let mut w = Writer::versioned(1);
        w.put_u32(u32::MAX); // a length prefix promising 4 GiB
        let blob = w.finish();
        let mut r = Reader::versioned(&blob, 1).unwrap();
        assert!(matches!(r.bytes().unwrap_err(), WireError::Truncated { .. }));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::versioned(1);
        w.put_u8(1);
        let blob = w.finish();
        let r = Reader::versioned(&blob, 1).unwrap();
        assert_eq!(r.finish().unwrap_err(), WireError::TrailingBytes(1));
    }
}
