//! # f2-io — streaming dataset I/O for the F² pipeline
//!
//! The paper's outsourcing story (Dong & Wang, ICDE 2017, §2.1) is owner → server
//! data shipping. Everything below the engine used to assume the whole plaintext
//! table and the whole encrypted outcome fit in RAM; this crate is the layer that
//! removes that assumption, separating *transport* from *pipeline* the way real
//! outsourcing clients do:
//!
//! * [`source`] — [`RowSource`]: constant-memory chunk producers. [`CsvSource`] is a
//!   streaming CSV/TSV parser (RFC-4180 quoting including embedded newlines, schema
//!   inference from a bounded sample or explicit typing) that never holds more than
//!   one chunk of parsed rows; [`TableSource`] pumps an in-memory table through the
//!   same interface as zero-copy [`TableView`](f2_relation::TableView) chunks.
//! * [`frame`] — the `F2WS` **v2 stream format**: [`FrameSink`] / [`FrameReader`]
//!   write and read length-prefixed frames with per-frame CRC32 checksums and an
//!   opportunistic varint-RLE byte compressor, incrementally and in constant memory.
//!   Corrupt, truncated, or bit-flipped input decodes to an [`IoError`] — never a
//!   panic.
//! * [`wire`] — the low-level `F2WS` primitives (length-prefixed little-endian
//!   encoding, the v1 single-blob header), re-exported by `f2_engine::wire` for the
//!   owner-state codecs.
//! * [`fault`] / [`retry`] — the fault-tolerance substrate: deterministic,
//!   seeded fault injection ([`FaultPlan`] replayed by [`FaultyReader`] /
//!   [`FaultyWriter`] / [`FaultySource`]) and bounded retry with deterministic
//!   decorrelated-jitter backoff ([`RetryPolicy`], [`RetryingReader`] /
//!   [`RetryingWriter`]). [`FrameReader::recover`] resynchronizes a damaged
//!   stream to its next intact frame; see `docs/ROBUSTNESS.md` for the failure
//!   model end to end.
//!
//! The engine composes these into end-to-end streaming encryption
//! (`f2_engine::Engine::run_streaming`): CSV/table source in, checksummed encrypted
//! frame stream out, bounded peak memory in between.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fault;
pub mod frame;
pub(crate) mod obs;
pub mod recover;
pub mod retry;
pub mod source;
pub mod wire;

pub use error::{IoError, IoResult};
pub use fault::{Fault, FaultKind, FaultPlan, FaultyReader, FaultySource, FaultyWriter};
pub use frame::{crc32, sniff_version, Frame, FrameReader, FrameSink};
pub use recover::{SkippedRange, StreamStore};
pub use retry::{RetryPolicy, RetryState, RetryingReader, RetryingWriter};
pub use source::{CsvOptions, CsvSource, RowSource, SeekableSource, TableChunk, TableSource};
