//! Frame-level damage recovery: resynchronize a corrupted stream to its next
//! intact frame, and the [`StreamStore`] abstraction crash-safe resume repairs
//! streams through.
//!
//! lint: untrusted-input — this module scans attacker-controllable bytes; the
//! panic-freedom rules (`no-unwrap`, `slice-index`, …) are enforced by `f2-lint`.
//!
//! [`FrameReader::next_frame`] stops at the first damaged frame — the right
//! default for a pipeline that must never act on corrupt data. But because every
//! frame is independently length-prefixed and CRC-checked, damage is *local*:
//! everything after the damaged bytes is still perfectly decodable, if only the
//! reader can find the next frame boundary. [`FrameReader::recover`] does
//! exactly that: it scans forward byte by byte, treats every position as a
//! candidate frame header, discards implausible candidates cheaply (flag bits,
//! length caps, end-frame shape), and accepts a candidate only when its CRC32 —
//! covering the header *and* the payload — verifies. A 32-bit checksum over a
//! plausibility-filtered candidate makes a false resync on line noise a
//! ~2⁻³² event; the scan is driven by the same pushback buffer `next_frame`
//! salvages failed-frame bytes into, so recovery re-reads nothing.
//!
//! Skipped bytes are reported as [`SkippedRange`]s (absolute offsets) for the
//! damage accounting `f2_engine::stream::decrypt_streaming_lossy` surfaces, and
//! counted in `f2_io_frames_recovered_total` / `f2_io_recovery_skipped_bytes_total`.

use crate::error::{IoError, IoResult};
use crate::frame::{
    frame_crc, rle_decompress, Frame, FrameReader, FLAG_RLE, FRAME_END, FRAME_HEADER_BYTES,
};
use std::io::{Read, Seek, Write};

/// A half-open byte range `[start, end)` of the underlying stream that recovery
/// skipped as damaged. Offsets are absolute (the 7-byte preamble included), so
/// ranges can be mapped straight back to file positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkippedRange {
    /// First damaged byte.
    pub start: u64,
    /// One past the last damaged byte.
    pub end: u64,
}

impl SkippedRange {
    /// Bytes covered by the range.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

impl<R: Read> FrameReader<R> {
    /// After [`FrameReader::next_frame`] returned an error, scan forward to the
    /// next intact frame and return it. `Ok(None)` means no further intact data
    /// frame exists: either the stream's end frame was found during the scan
    /// (then [`FrameReader::ended`] is true — the tail of the stream was intact)
    /// or the stream ran out of bytes (`ended()` stays false — the tail is lost).
    ///
    /// Every byte passed over is recorded in [`FrameReader::skipped_ranges`];
    /// transient reader errors propagate (wrap the transport in a
    /// [`RetryingReader`](crate::retry::RetryingReader) to absorb them) and the
    /// scan can be re-entered by calling `recover` again.
    pub fn recover(&mut self) -> IoResult<Option<Frame>> {
        if self.ended {
            return Ok(None);
        }
        let mut scan_start = self.consumed;
        loop {
            if !self.buffer_at_least(FRAME_HEADER_BYTES)? {
                // Fewer bytes remain than a frame header: all of them are damage.
                self.discard_buffered();
                self.note_skip(scan_start);
                return Ok(None);
            }
            let Some(&[frame_type, flags, w0, w1, w2, w3, r0, r1, r2, r3, c0, c1, c2, c3]) =
                self.pending.get(self.cursor..self.cursor + FRAME_HEADER_BYTES)
            else {
                self.discard_buffered();
                self.note_skip(scan_start);
                return Ok(None);
            };
            let wire_len =
                usize::try_from(u32::from_le_bytes([w0, w1, w2, w3])).unwrap_or(usize::MAX);
            let raw_len =
                usize::try_from(u32::from_le_bytes([r0, r1, r2, r3])).unwrap_or(usize::MAX);
            let stored_crc = u32::from_le_bytes([c0, c1, c2, c3]);
            // Cheap plausibility gates before the CRC: unknown flag bits, lengths
            // over the cap, a non-empty end frame, or length fields inconsistent
            // with the compression flag cannot be a frame this sink wrote.
            let plausible = flags <= FLAG_RLE
                && wire_len <= self.frame_cap
                && raw_len <= self.frame_cap
                && (frame_type != FRAME_END || (wire_len == 0 && raw_len == 0))
                && (flags & FLAG_RLE != 0 || wire_len == raw_len)
                && (flags & FLAG_RLE == 0 || wire_len < raw_len);
            if !plausible {
                self.skip_byte();
                continue;
            }
            let total = FRAME_HEADER_BYTES + wire_len;
            if !self.buffer_at_least(total)? {
                // The stream ends before the candidate completes: not a frame.
                self.skip_byte();
                continue;
            }
            let crc_ok = {
                let prefix = self.pending.get(self.cursor..self.cursor + 10).unwrap_or(&[]);
                let wire = self
                    .pending
                    .get(self.cursor + FRAME_HEADER_BYTES..self.cursor + total)
                    .unwrap_or(&[]);
                frame_crc(prefix, wire) == stored_crc
            };
            if !crc_ok {
                self.skip_byte();
                continue;
            }
            // Intact frame found: everything between the scan start and here was
            // damage; consume the frame from the pushback buffer.
            self.note_skip(scan_start);
            let frame_start = self.consumed;
            let wire = self
                .pending
                .get(self.cursor + FRAME_HEADER_BYTES..self.cursor + total)
                .unwrap_or(&[])
                .to_vec();
            self.cursor += total;
            self.consumed += total as u64;
            if self.cursor == self.pending.len() {
                self.pending.clear();
                self.cursor = 0;
            }
            self.frame_index += 1;
            crate::obs::frames_read().inc();
            crate::obs::bytes_read().add(total as u64);
            if frame_type == FRAME_END {
                self.ended = true;
                return Ok(None);
            }
            let payload = if flags & FLAG_RLE != 0 {
                match rle_decompress(&wire, raw_len) {
                    Ok(payload) => payload,
                    Err(_) => {
                        // CRC-valid yet undecodable — a producer bug, not line
                        // noise. Count the frame as damage and keep scanning.
                        scan_start = frame_start;
                        continue;
                    }
                }
            } else {
                wire
            };
            crate::obs::frames_recovered().inc();
            return Ok(Some(Frame { frame_type, payload }));
        }
    }

    /// Byte ranges [`FrameReader::recover`] skipped as damaged, in scan order.
    pub fn skipped_ranges(&self) -> &[SkippedRange] {
        &self.skipped
    }

    /// Load bytes into the pushback buffer until at least `needed` are available
    /// or the stream ends (`false`). Buffered bytes are *not* consumed.
    fn buffer_at_least(&mut self, needed: usize) -> IoResult<bool> {
        if self.cursor >= 4096 || self.cursor >= self.pending.len() {
            // Amortized compaction keeps the scan O(n) over a damaged region
            // without shifting the buffer on every skipped byte.
            self.pending.drain(..self.cursor.min(self.pending.len()));
            self.cursor = 0;
        }
        while self.buffered() < needed {
            let mut chunk = [0u8; 4096];
            let want = (needed - self.buffered()).min(chunk.len());
            let Some(target) = chunk.get_mut(..want) else { break };
            match self.reader.read(target) {
                Ok(0) => return Ok(false),
                Ok(n) => self.pending.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(IoError::Io(e)),
            }
        }
        Ok(true)
    }

    /// Pass over one buffered byte as damage.
    fn skip_byte(&mut self) {
        if self.buffered() > 0 {
            self.cursor += 1;
            self.consumed += 1;
        }
    }

    /// Drop whatever remains buffered, accounting it as consumed.
    fn discard_buffered(&mut self) {
        self.consumed += self.buffered() as u64;
        self.pending.clear();
        self.cursor = 0;
    }

    /// Record `from..self.consumed` as a skipped range (no-op when empty).
    fn note_skip(&mut self, from: u64) {
        let to = self.consumed;
        if to > from {
            self.skipped.push(SkippedRange { start: from, end: to });
            crate::obs::recovery_bytes_skipped().add(to - from);
        }
    }
}

// ── StreamStore ────────────────────────────────────────────────────────────────────

/// Random-access storage a frame stream can be repaired *in place* on: read,
/// write, seek, and truncate. Crash-safe resume
/// (`f2_engine::Engine::resume_streaming`) scans a store, truncates the trailing
/// partial frame of an interrupted run, and appends from there. [`std::fs::File`]
/// is the production implementation; `Cursor<Vec<u8>>` the in-memory one.
pub trait StreamStore: Read + Write + Seek {
    /// Truncate (or zero-extend) the store to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> std::io::Result<()>;
}

impl<S: StreamStore + ?Sized> StreamStore for Box<S> {
    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        (**self).set_len(len)
    }
}

impl StreamStore for std::fs::File {
    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        std::fs::File::set_len(self, len)
    }
}

impl StreamStore for std::io::Cursor<Vec<u8>> {
    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "length exceeds addressable memory",
            )
        })?;
        let buf = self.get_mut();
        if len <= buf.len() {
            buf.truncate(len);
        } else {
            buf.resize(len, 0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameSink;
    use std::io::Cursor;

    /// A three-data-frame stream and the absolute offset of each frame.
    fn golden() -> (Vec<u8>, Vec<u64>) {
        let mut sink = FrameSink::new(Vec::new()).unwrap();
        let mut offsets = Vec::new();
        for (t, payload) in
            [(1u8, b"header-payload".to_vec()), (2, vec![7u8; 600]), (2, b"tail".to_vec())]
        {
            offsets.push(sink.bytes_written());
            sink.write_frame(t, &payload).unwrap();
        }
        offsets.push(sink.bytes_written()); // end frame
        let (bytes, _) = sink.finish().unwrap();
        (bytes, offsets)
    }

    #[test]
    fn recover_resyncs_past_a_flipped_bit() {
        let (mut bytes, offsets) = golden();
        // Damage the middle frame's (RLE-compressed, so short) payload.
        bytes[usize::try_from(offsets[1]).unwrap() + 15] ^= 0x40;
        let mut reader = FrameReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.next_frame().unwrap().unwrap().payload, b"header-payload");
        assert!(matches!(reader.next_frame(), Err(IoError::Checksum { .. })));
        // The failed frame's bytes were handed back …
        assert_eq!(reader.bytes_consumed(), offsets[1]);
        // … and recovery lands exactly on the third frame.
        let frame = reader.recover().unwrap().unwrap();
        assert_eq!(frame.payload, b"tail");
        assert_eq!(reader.skipped_ranges(), &[SkippedRange { start: offsets[1], end: offsets[2] }]);
        assert_eq!(reader.skipped_ranges()[0].len(), offsets[2] - offsets[1]);
        // The stream then finishes cleanly through the normal path.
        assert!(reader.next_frame().unwrap().is_none());
        assert!(reader.ended());
    }

    #[test]
    fn recover_finds_the_end_frame_when_the_last_data_frame_dies() {
        let (mut bytes, offsets) = golden();
        bytes[usize::try_from(offsets[2]).unwrap() + 2] ^= 0x01; // corrupt frame 3's length
        let mut reader = FrameReader::new(&bytes[..]).unwrap();
        reader.next_frame().unwrap();
        reader.next_frame().unwrap();
        assert!(reader.next_frame().is_err());
        // Recovery walks into the end frame: no more data, but a clean ending.
        assert!(reader.recover().unwrap().is_none());
        assert!(reader.ended());
        assert_eq!(reader.skipped_ranges(), &[SkippedRange { start: offsets[2], end: offsets[3] }]);
    }

    #[test]
    fn recover_reports_a_lost_tail() {
        let (bytes, offsets) = golden();
        // Cut mid-way through the second frame: its error hands the bytes back,
        // and recovery finds nothing after them.
        let cut = usize::try_from(offsets[1]).unwrap() + 9;
        let mut reader = FrameReader::new(&bytes[..cut]).unwrap();
        reader.next_frame().unwrap();
        assert!(matches!(reader.next_frame(), Err(IoError::Truncated(_))));
        assert!(reader.recover().unwrap().is_none());
        assert!(!reader.ended(), "no end frame: the tail is lost, not finished");
        assert_eq!(reader.skipped_ranges(), &[SkippedRange { start: offsets[1], end: cut as u64 }]);
    }

    #[test]
    fn recover_survives_damage_spanning_several_frames() {
        let (mut bytes, offsets) = golden();
        // Wreck frames 1 and 2 entirely.
        for at in offsets[0]..offsets[2] {
            bytes[usize::try_from(at).unwrap()] ^= 0xA5;
        }
        let mut reader = FrameReader::new(&bytes[..]).unwrap();
        assert!(reader.next_frame().is_err());
        let frame = reader.recover().unwrap().unwrap();
        assert_eq!(frame.payload, b"tail");
        let total_skipped: u64 = reader.skipped_ranges().iter().map(SkippedRange::len).sum();
        assert_eq!(total_skipped, offsets[2] - offsets[0]);
        assert!(reader.next_frame().unwrap().is_none());
    }

    #[test]
    fn stream_store_cursor_truncates_and_extends() {
        let mut store = Cursor::new(vec![1u8, 2, 3, 4]);
        StreamStore::set_len(&mut store, 2).unwrap();
        assert_eq!(store.get_ref(), &vec![1, 2]);
        StreamStore::set_len(&mut store, 4).unwrap();
        assert_eq!(store.get_ref(), &vec![1, 2, 0, 0]);
    }
}
