//! Constant-memory row sources: where plaintext chunks come from.
//!
//! lint: untrusted-input — CSV and table inputs arrive from outside the trust
//! boundary; the panic-freedom rules are enforced by `f2-lint`.
//!
//! The streaming engine pulls its input through the [`RowSource`] trait: a schema
//! plus a `next_chunk(max_rows)` pump. A source never needs to hold more than one
//! chunk of parsed rows, so encrypting a dataset much larger than RAM is bounded by
//! the chunk size, not the dataset size. Two sources ship here:
//!
//! * [`CsvSource`] — a **streaming CSV/TSV parser**: RFC-4180 quoting (including
//!   quoted delimiters, escaped `""` quotes, and newlines *inside* quoted fields —
//!   which the line-oriented `f2_relation::csv` reader does not handle), a header
//!   row, and either an explicit [`Schema`] or per-column **type inference** from a
//!   bounded sample of leading rows ([`INFERENCE_SAMPLE_ROWS`]). Rows are parsed as
//!   they are pulled; the only buffering beyond one chunk is the inference sample.
//! * [`TableSource`] — adapts an in-memory [`Table`]: chunks are borrowed
//!   [`TableView`]s, so pumping a table through the streaming path clones nothing.
//!
//! Chunks are handed out as [`TableChunk`], either owned (parsed fresh) or borrowed
//! (a view); [`TableChunk::view`] is the uniform way to consume one.
//!
//! Two robustness hooks matter to callers that retry or resume:
//!
//! * **Retry-safety.** The engine's pull-retry assumes a failed `next_chunk`
//!   consumed nothing — true for [`TableSource`], but a transient read error in
//!   the middle of a CSV record discards the record's partially consumed bytes.
//!   [`CsvSource::with_retry`] / [`CsvSource::open_with_retry`] absorb transient
//!   errors *below* the parser (a [`RetryingReader`] under the [`BufRead`]
//!   buffer), so the parser only ever sees healed reads.
//! * **Seekability.** [`SeekableSource`] lets crash-safe resume
//!   (`f2_engine::Engine::resume_streaming`) skip the already-encrypted prefix
//!   by seeking to the resume row instead of re-pulling from row 0.

use crate::error::{IoError, IoResult};
use crate::retry::{RetryPolicy, RetryingReader};
use f2_relation::csv::{parse_typed_field, split_record};
use f2_relation::{Attribute, DataType, Record, Schema, Table, TableView, Value};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Rows buffered (at most) to infer column types when no explicit schema is given.
pub const INFERENCE_SAMPLE_ROWS: usize = 256;

/// A pull-based producer of plaintext row chunks with a fixed schema.
///
/// Contract: chunks are consecutive, non-overlapping row ranges of the underlying
/// dataset, each holding at least one and at most `max_rows` rows; after the first
/// `None` the source is exhausted and keeps returning `None`.
pub trait RowSource {
    /// The schema every produced chunk conforms to.
    fn schema(&self) -> &Schema;

    /// Produce the next chunk of at most `max_rows` rows (`max_rows ≥ 1`), or `None`
    /// when the source is exhausted.
    fn next_chunk(&mut self, max_rows: usize) -> IoResult<Option<TableChunk<'_>>>;

    /// The source as a [`SeekableSource`], when it supports seeking. The default
    /// is `None`; resumable pipelines use this to skip an already-processed
    /// prefix instead of re-pulling it row by row.
    fn as_seekable(&mut self) -> Option<&mut dyn SeekableSource> {
        None
    }
}

/// A [`RowSource`] that can reposition itself so the next produced row is a
/// given 0-based data row.
///
/// Contract: after `seek_to_row(n)` succeeds, the next `next_chunk` pull yields
/// row `n` onward; seeking past the end of the data is an error. In-memory
/// sources may seek anywhere; streaming sources ([`CsvSource`]) are
/// **forward-only** — seeking behind the rows already produced is an error, not
/// a rewind.
pub trait SeekableSource: RowSource {
    /// Position the source so the next produced row is data row `row` (0-based).
    fn seek_to_row(&mut self, row: usize) -> IoResult<()>;
}

/// One chunk produced by a [`RowSource`]: parsed fresh (owned) or borrowed from an
/// in-memory table (a zero-copy view).
#[derive(Debug)]
pub enum TableChunk<'a> {
    /// A chunk materialised by the source (e.g. parsed from CSV).
    Owned(Table),
    /// A borrowed row range of a table the source wraps.
    Borrowed(TableView<'a>),
}

impl TableChunk<'_> {
    /// A uniform borrowed view of the chunk's rows.
    pub fn view(&self) -> TableView<'_> {
        match self {
            TableChunk::Owned(table) => table.as_view(),
            TableChunk::Borrowed(view) => view.clone(),
        }
    }

    /// Rows in the chunk.
    pub fn row_count(&self) -> usize {
        match self {
            TableChunk::Owned(table) => table.row_count(),
            TableChunk::Borrowed(view) => view.row_count(),
        }
    }
}

/// Validate the shared `max_rows ≥ 1` precondition of [`RowSource::next_chunk`].
fn check_max_rows(max_rows: usize) -> IoResult<()> {
    if max_rows == 0 {
        return Err(IoError::Malformed("a chunk must hold at least one row".into()));
    }
    Ok(())
}

// ── TableSource ────────────────────────────────────────────────────────────────────

/// A [`RowSource`] over an in-memory [`Table`]: chunks are borrowed row-range views,
/// so nothing is cloned.
#[derive(Debug)]
pub struct TableSource<'a> {
    table: &'a Table,
    cursor: usize,
}

impl<'a> TableSource<'a> {
    /// Wrap a table.
    pub fn new(table: &'a Table) -> Self {
        TableSource { table, cursor: 0 }
    }
}

impl RowSource for TableSource<'_> {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn next_chunk(&mut self, max_rows: usize) -> IoResult<Option<TableChunk<'_>>> {
        check_max_rows(max_rows)?;
        if self.cursor >= self.table.row_count() {
            return Ok(None);
        }
        let end = (self.cursor + max_rows).min(self.table.row_count());
        let view = self
            .table
            .view(self.cursor..end)
            .map_err(|e| IoError::Malformed(format!("table chunk range out of bounds: {e}")))?;
        self.cursor = end;
        Ok(Some(TableChunk::Borrowed(view)))
    }

    fn as_seekable(&mut self) -> Option<&mut dyn SeekableSource> {
        Some(self)
    }
}

impl SeekableSource for TableSource<'_> {
    fn seek_to_row(&mut self, row: usize) -> IoResult<()> {
        if row > self.table.row_count() {
            return Err(IoError::Malformed(format!(
                "seek to row {row} is past the table's {} rows",
                self.table.row_count()
            )));
        }
        self.cursor = row;
        Ok(())
    }
}

// ── CsvSource ──────────────────────────────────────────────────────────────────────

/// Configuration of a [`CsvSource`].
#[derive(Debug, Clone, Default)]
pub struct CsvOptions {
    delimiter: u8,
    schema: Option<Schema>,
    coerce_to_text: bool,
}

impl CsvOptions {
    /// Comma-separated values with type inference.
    pub fn csv() -> Self {
        CsvOptions { delimiter: b',', schema: None, coerce_to_text: false }
    }

    /// Tab-separated values with type inference.
    pub fn tsv() -> Self {
        CsvOptions { delimiter: b'\t', schema: None, coerce_to_text: false }
    }

    /// Use an explicit schema instead of inference: the header must have the same
    /// arity, and every field must parse under its attribute's [`DataType`].
    pub fn with_schema(mut self, schema: Schema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// Use a custom single-byte delimiter.
    pub fn with_delimiter(mut self, delimiter: u8) -> Self {
        self.delimiter = delimiter;
        self
    }

    /// In inference mode, widen a contradicting cell to text instead of failing.
    ///
    /// Type inference only sees the first [`INFERENCE_SAMPLE_ROWS`] rows; a later
    /// row can contradict the inferred type and, by default, fails the pull with a
    /// precise line-numbered error. With coercion on, such a cell is stored as
    /// [`Value::Text`] holding the raw field verbatim and parsing continues;
    /// [`CsvSource::coerced_cells`] counts how many cells were widened. Explicit
    /// schemas ([`with_schema`](Self::with_schema)) stay strict regardless — a
    /// declared type is a contract, not a guess.
    pub fn coerce_to_text(mut self, coerce: bool) -> Self {
        self.coerce_to_text = coerce;
        self
    }
}

/// A streaming CSV/TSV [`RowSource`]. See the [module docs](self) for the parsing
/// and inference rules; construction consumes the header (and, in inference mode, a
/// bounded row sample), after which [`RowSource::next_chunk`] parses rows on demand.
#[derive(Debug)]
pub struct CsvSource<R: BufRead> {
    reader: R,
    delimiter: u8,
    schema: Schema,
    /// Rows consumed during schema inference, served before fresh parsing resumes.
    buffered: VecDeque<Record>,
    /// Whether the schema's types were inferred from a sample (vs declared by the
    /// caller) — decides how a type mismatch on a later row is explained.
    inferred_types: bool,
    /// Widen inference-contradicting cells to text instead of erroring.
    coerce_to_text: bool,
    /// Cells widened to text under [`CsvOptions::coerce_to_text`].
    coerced_cells: u64,
    /// 1-based line of the most recently *started* record (header = line 1).
    line: u64,
    /// Data rows already handed out through `next_chunk` (or skipped by
    /// [`SeekableSource::seek_to_row`]) — the seek cursor.
    rows_consumed: usize,
    exhausted: bool,
}

impl CsvSource<BufReader<std::fs::File>> {
    /// Open a file as a CSV/TSV source.
    pub fn open(path: impl AsRef<Path>, options: CsvOptions) -> IoResult<Self> {
        let file = std::fs::File::open(path)?;
        Self::new(BufReader::new(file), options)
    }
}

impl CsvSource<BufReader<RetryingReader<std::fs::File>>> {
    /// Open a file as a CSV/TSV source with transient read errors absorbed
    /// *below* the parser. See [`CsvSource::with_retry`] for why the layering
    /// matters.
    pub fn open_with_retry(
        path: impl AsRef<Path>,
        options: CsvOptions,
        policy: RetryPolicy,
    ) -> IoResult<Self> {
        let file = std::fs::File::open(path)?;
        Self::with_retry(file, options, policy)
    }
}

impl<R: Read> CsvSource<BufReader<RetryingReader<R>>> {
    /// Wrap an unbuffered reader with a [`RetryingReader`] *under* the
    /// [`BufRead`] buffer, making the source safe to pull-retry.
    ///
    /// The layering is the point: a record's bytes are accumulated across
    /// `read` calls, so a transient error surfacing *above* the buffer discards
    /// the partially consumed record — a retried pull then resumes mid-record
    /// and corrupts or drops rows. With the retry below the buffer, transient
    /// errors are healed before the parser ever sees a byte, and a failed pull
    /// really has consumed nothing (the engine pull-retry's assumption).
    pub fn with_retry(reader: R, options: CsvOptions, policy: RetryPolicy) -> IoResult<Self> {
        Self::new(BufReader::new(policy.reader(reader)), options)
    }
}

impl<R: BufRead> CsvSource<R> {
    /// Wrap any buffered reader (a `&[u8]` works for in-memory documents). Reads the
    /// header immediately; with no explicit schema, additionally buffers up to
    /// [`INFERENCE_SAMPLE_ROWS`] rows and infers each column's [`DataType`] from
    /// them.
    pub fn new(reader: R, options: CsvOptions) -> IoResult<Self> {
        let delimiter = if options.delimiter == 0 { b',' } else { options.delimiter };
        let mut source = CsvSource {
            reader,
            delimiter,
            schema: Schema::new(vec![])
                .map_err(|e| IoError::Malformed(format!("empty schema rejected: {e}")))?,
            buffered: VecDeque::new(),
            line: 0,
            rows_consumed: 0,
            exhausted: false,
            inferred_types: options.schema.is_none(),
            coerce_to_text: options.coerce_to_text,
            coerced_cells: 0,
        };
        let (_, header) = source
            .read_raw_record(false)?
            .ok_or(IoError::Csv { line: 1, message: "empty input (no header row)".into() })?;
        match options.schema {
            Some(schema) => {
                if header.len() != schema.arity() {
                    return Err(IoError::Csv {
                        line: 1,
                        message: format!(
                            "header has {} fields, the explicit schema has {}",
                            header.len(),
                            schema.arity()
                        ),
                    });
                }
                // Names must match position for position: arity alone would let a
                // reordered schema silently apply the wrong type (and, downstream,
                // the wrong per-attribute encryption key) to every column.
                for (i, (got, attr)) in header.iter().zip(schema.attributes()).enumerate() {
                    if got != &attr.name {
                        return Err(IoError::Csv {
                            line: 1,
                            message: format!(
                                "header column {i} is `{got}` but the explicit schema expects \
                                 `{}` there — the schema must list the file's columns in file \
                                 order",
                                attr.name
                            ),
                        });
                    }
                }
                source.schema = schema;
            }
            None => source.infer_schema(header)?,
        }
        Ok(source)
    }

    /// Buffer up to [`INFERENCE_SAMPLE_ROWS`] rows, pick the narrowest [`DataType`]
    /// consistent with every sampled value per column, and parse the sample under
    /// the inferred schema.
    fn infer_schema(&mut self, header: Vec<String>) -> IoResult<()> {
        let arity = header.len();
        let mut sample: Vec<(u64, Vec<String>)> = Vec::new();
        while sample.len() < INFERENCE_SAMPLE_ROWS {
            // Blank-line skipping needs the final arity; it is already known here.
            let Some((line, fields)) = self.read_raw_record(arity != 1)? else { break };
            if fields.len() != arity {
                return Err(arity_error(line, fields.len(), arity));
            }
            sample.push((line, fields));
        }
        let attrs = header
            .into_iter()
            .enumerate()
            .map(|(a, name)| {
                let column =
                    sample.iter().map(|(_, fields)| fields.get(a).map_or("", String::as_str));
                Attribute::new(name, infer_type(column))
            })
            .collect();
        self.schema = Schema::new(attrs)
            .map_err(|e| IoError::Csv { line: 1, message: format!("invalid header: {e}") })?;
        for (line, fields) in sample {
            let record = self.parse_record(&fields, line)?;
            self.buffered.push_back(record);
        }
        Ok(())
    }

    /// Read one raw record: handles quoted delimiters, escaped quotes, and newlines
    /// inside quoted fields (a record may span several physical lines). Returns the
    /// 1-based line the record started on plus its unescaped fields, or `None` at
    /// end of input.
    fn read_raw_record(&mut self, skip_blank: bool) -> IoResult<Option<(u64, Vec<String>)>> {
        let quotes_in = |s: &str| s.bytes().filter(|&b| b == b'"').count();
        let mut raw = String::new();
        loop {
            raw.clear();
            let started_at = self.line + 1;
            if self.reader.read_line(&mut raw)? == 0 {
                return Ok(None);
            }
            self.line += 1;
            trim_newline(&mut raw);
            // An odd number of quote characters means a quoted field swallowed the
            // line break: keep appending physical lines until quotes balance. The
            // parity is tracked incrementally (only each newly appended segment is
            // scanned), so a stray unmatched quote stays O(input), not O(input²).
            let mut odd_quotes = quotes_in(&raw) % 2 == 1;
            while odd_quotes {
                raw.push('\n');
                let appended_from = raw.len();
                if self.reader.read_line(&mut raw)? == 0 {
                    return Err(IoError::Csv {
                        line: started_at,
                        message: "unterminated quoted field at end of input".into(),
                    });
                }
                self.line += 1;
                trim_newline(&mut raw);
                odd_quotes ^= quotes_in(raw.get(appended_from..).unwrap_or("")) % 2 == 1;
            }
            if raw.is_empty() && skip_blank {
                // A blank line cannot be a row of a multi-column table.
                continue;
            }
            let fields = split_record(&raw, self.delimiter).map_err(|e| {
                let message = match e {
                    f2_relation::RelationError::Csv(m) => m,
                    other => other.to_string(),
                };
                IoError::Csv { line: started_at, message }
            })?;
            return Ok(Some((started_at, fields)));
        }
    }

    /// Parse one raw record under the source schema.
    fn parse_record(&mut self, fields: &[String], line: u64) -> IoResult<Record> {
        if fields.len() != self.schema.arity() {
            return Err(arity_error(line, fields.len(), self.schema.arity()));
        }
        // Only inferred types may be coerced: an explicit schema is a contract.
        let coerce = self.inferred_types && self.coerce_to_text;
        let mut coerced = 0u64;
        let mut values = Vec::with_capacity(fields.len());
        for (field, attr) in fields.iter().zip(self.schema.attributes()) {
            let value = match parse_typed_field(field, attr) {
                Ok(value) => value,
                Err(_) if coerce => {
                    coerced += 1;
                    Value::text(field.clone())
                }
                Err(e) => {
                    let remedy = if self.inferred_types {
                        format!(
                            "{:?} was inferred for column `{}` from the first {} rows and the \
                             row on line {line} contradicts it; pass an explicit schema \
                             (`CsvOptions::with_schema`) to override the inference, or set \
                             `CsvOptions::coerce_to_text(true)` to widen such cells to text",
                            attr.data_type, attr.name, INFERENCE_SAMPLE_ROWS
                        )
                    } else {
                        format!(
                            "column `{}` is declared {:?} by the explicit schema",
                            attr.name, attr.data_type
                        )
                    };
                    return Err(IoError::Csv { line, message: format!("{e} ({remedy})") });
                }
            };
            values.push(value);
        }
        self.coerced_cells += coerced;
        Ok(Record::new(values))
    }

    /// How many cells were widened to [`Value::Text`] under
    /// [`CsvOptions::coerce_to_text`] so far. Always zero with an explicit schema
    /// or with coercion off.
    pub fn coerced_cells(&self) -> u64 {
        self.coerced_cells
    }

    /// Data rows already produced through [`RowSource::next_chunk`] (or skipped
    /// by [`SeekableSource::seek_to_row`]).
    pub fn rows_consumed(&self) -> usize {
        self.rows_consumed
    }
}

impl<R: BufRead> RowSource for CsvSource<R> {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_chunk(&mut self, max_rows: usize) -> IoResult<Option<TableChunk<'_>>> {
        check_max_rows(max_rows)?;
        if self.exhausted && self.buffered.is_empty() {
            return Ok(None);
        }
        let mut records = Vec::with_capacity(max_rows.min(4096));
        while records.len() < max_rows {
            if let Some(buffered) = self.buffered.pop_front() {
                records.push(buffered);
                continue;
            }
            if self.exhausted {
                break;
            }
            match self.read_raw_record(self.schema.arity() != 1)? {
                Some((line, fields)) => match self.parse_record(&fields, line) {
                    Ok(record) => records.push(record),
                    Err(e) => {
                        // Hand the chunk's already-parsed rows back before
                        // surfacing the error: a caller that treats the error as
                        // fatal loses nothing, and one that resumes pulling still
                        // receives every valid row (only the malformed record
                        // itself is consumed).
                        for record in records.into_iter().rev() {
                            self.buffered.push_front(record);
                        }
                        return Err(e);
                    }
                },
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        if records.is_empty() {
            return Ok(None);
        }
        self.rows_consumed += records.len();
        let table = Table::new(self.schema.clone(), records)
            .map_err(|e| IoError::Malformed(format!("chunk assembly failed: {e}")))?;
        Ok(Some(TableChunk::Owned(table)))
    }

    fn as_seekable(&mut self) -> Option<&mut dyn SeekableSource> {
        Some(self)
    }
}

impl<R: BufRead> SeekableSource for CsvSource<R> {
    /// Forward-only: skipped rows are read raw and checked for arity, but not
    /// typed-parsed — a resume caller has already validated them on the first
    /// pass, and skipping must not re-trip inference coercion or type errors.
    fn seek_to_row(&mut self, row: usize) -> IoResult<()> {
        if row < self.rows_consumed {
            return Err(IoError::Malformed(format!(
                "CsvSource is forward-only: cannot seek back to row {row} after producing {}",
                self.rows_consumed
            )));
        }
        while self.rows_consumed < row {
            if self.buffered.pop_front().is_some() {
                self.rows_consumed += 1;
                continue;
            }
            if self.exhausted {
                break;
            }
            match self.read_raw_record(self.schema.arity() != 1)? {
                Some((line, fields)) => {
                    if fields.len() != self.schema.arity() {
                        return Err(arity_error(line, fields.len(), self.schema.arity()));
                    }
                    self.rows_consumed += 1;
                }
                None => {
                    self.exhausted = true;
                    break;
                }
            }
        }
        if self.rows_consumed < row {
            return Err(IoError::Malformed(format!(
                "seek to row {row} is past the input's {} rows",
                self.rows_consumed
            )));
        }
        Ok(())
    }
}

fn arity_error(line: u64, got: usize, expected: usize) -> IoError {
    IoError::Csv { line, message: format!("row has {got} fields, expected {expected}") }
}

/// Strip one trailing `\n` (and a preceding `\r`, for CRLF input) in place.
fn trim_newline(line: &mut String) {
    if line.ends_with('\n') {
        line.pop();
        if line.ends_with('\r') {
            line.pop();
        }
    }
}

/// The narrowest [`DataType`] every sampled (non-empty) field of a column fits:
/// `Int` ⊂ `Decimal`; then `Date` (`@<days>`), `Bytes` (`0x…` hex), and finally
/// `Text`, which accepts anything. An all-empty (or empty-sample) column is `Text`.
fn infer_type<'a>(column: impl Iterator<Item = &'a str> + Clone) -> DataType {
    let mut nonempty = column.filter(|f| !f.is_empty()).peekable();
    if nonempty.peek().is_none() {
        return DataType::Text;
    }
    for candidate in [DataType::Int, DataType::Decimal, DataType::Date, DataType::Bytes] {
        let probe = Attribute::new("probe", candidate);
        if nonempty.clone().all(|f| parse_typed_field(f, &probe).is_ok()) {
            return candidate;
        }
    }
    DataType::Text
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::Value;

    fn drain(source: &mut dyn RowSource, max_rows: usize) -> Vec<Table> {
        let mut chunks = Vec::new();
        while let Some(chunk) = source.next_chunk(max_rows).unwrap() {
            assert!(chunk.row_count() >= 1 && chunk.row_count() <= max_rows);
            chunks.push(chunk.view().to_table());
        }
        chunks
    }

    fn concat(chunks: Vec<Table>) -> Table {
        let mut iter = chunks.into_iter();
        let mut all = iter.next().expect("at least one chunk");
        for chunk in iter {
            all.append(chunk).unwrap();
        }
        all
    }

    #[test]
    fn table_source_yields_borrowed_ranges() {
        let t = f2_relation::table! {
            ["A"]; ["r0"], ["r1"], ["r2"], ["r3"], ["r4"]
        };
        let mut source = TableSource::new(&t);
        assert_eq!(source.schema(), t.schema());
        let first = source.next_chunk(2).unwrap().unwrap();
        assert!(matches!(&first, TableChunk::Borrowed(v) if v.parent_range() == (0..2)));
        drop(first);
        let sizes: Vec<usize> =
            std::iter::from_fn(|| source.next_chunk(2).unwrap().map(|c| c.row_count())).collect();
        assert_eq!(sizes, vec![2, 1]);
        assert!(source.next_chunk(2).unwrap().is_none());
        assert!(source.next_chunk(0).is_err());
    }

    #[test]
    fn csv_source_streams_chunks_that_concat_to_the_document() {
        let csv = "A,B\n1,x\n2,y\n3,z\n4,w\n5,v\n";
        let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
        assert_eq!(source.schema().attribute(0).unwrap().data_type, DataType::Int);
        assert_eq!(source.schema().attribute(1).unwrap().data_type, DataType::Text);
        let chunks = drain(&mut source, 2);
        assert_eq!(chunks.iter().map(Table::row_count).collect::<Vec<_>>(), vec![2, 2, 1]);
        let all = concat(chunks);
        assert_eq!(all.row_count(), 5);
        assert_eq!(all.cell(0, 0).unwrap(), &Value::Int(1));
        assert_eq!(all.cell(4, 1).unwrap(), &Value::text("v"));
    }

    #[test]
    fn quoting_covers_delimiters_escapes_and_embedded_newlines() {
        let csv = "A,B\n\"with,comma\",\"with\"\"quote\"\n\"line\nbreak\",plain\n";
        let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
        let all = concat(drain(&mut source, 10));
        assert_eq!(all.cell(0, 0).unwrap(), &Value::text("with,comma"));
        assert_eq!(all.cell(0, 1).unwrap(), &Value::text("with\"quote"));
        assert_eq!(all.cell(1, 0).unwrap(), &Value::text("line\nbreak"));
    }

    #[test]
    fn tsv_and_custom_delimiters() {
        let tsv = "A\tB\n1\tx\n";
        let mut source = CsvSource::new(tsv.as_bytes(), CsvOptions::tsv()).unwrap();
        let all = concat(drain(&mut source, 10));
        assert_eq!(all.cell(0, 0).unwrap(), &Value::Int(1));
        let psv = "A|B\n1|x\n";
        let mut source =
            CsvSource::new(psv.as_bytes(), CsvOptions::csv().with_delimiter(b'|')).unwrap();
        assert_eq!(concat(drain(&mut source, 10)).cell(0, 1).unwrap(), &Value::text("x"));
    }

    #[test]
    fn inference_picks_the_narrowest_type() {
        let csv = "i,d,t,dt,b,mixed,empty\n\
                   1,1.5,abc,@10,0xdead,7,\n\
                   -2,2,def,@-3,0x00,x,\n";
        let source = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
        let types: Vec<DataType> =
            source.schema().attributes().iter().map(|a| a.data_type).collect();
        assert_eq!(
            types,
            vec![
                DataType::Int,
                DataType::Decimal,
                DataType::Text,
                DataType::Date,
                DataType::Bytes,
                DataType::Text,
                DataType::Text,
            ]
        );
    }

    #[test]
    fn explicit_schema_overrides_inference() {
        let schema = Schema::new(vec![
            Attribute::new("id", DataType::Text), // digits kept as text
            Attribute::new("name", DataType::Text),
        ])
        .unwrap();
        let csv = "id,name\n007,bond\n";
        let mut source =
            CsvSource::new(csv.as_bytes(), CsvOptions::csv().with_schema(schema)).unwrap();
        let all = concat(drain(&mut source, 10));
        assert_eq!(all.cell(0, 0).unwrap(), &Value::text("007"));
        // Arity mismatch against the declared schema is rejected at the header.
        let schema = Schema::from_names(["only-one"]).unwrap();
        assert!(
            CsvSource::new("a,b\n1,2\n".as_bytes(), CsvOptions::csv().with_schema(schema)).is_err()
        );
        // So is a reordered schema: same arity, wrong column names in place — the
        // types (and per-attribute keys downstream) would land on the wrong data.
        let swapped = Schema::new(vec![
            Attribute::new("account_id", DataType::Int),
            Attribute::new("amount", DataType::Int),
        ])
        .unwrap();
        let err = CsvSource::new(
            "amount,account_id\n5,77\n".as_bytes(),
            CsvOptions::csv().with_schema(swapped),
        )
        .unwrap_err();
        assert!(err.to_string().contains("file order"), "{err}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        // Row on line 3 has the wrong arity; inference reads it during new().
        let err = CsvSource::new("A,B\n1,2\nonly-one\n".as_bytes(), CsvOptions::csv()).unwrap_err();
        assert!(matches!(err, IoError::Csv { line: 3, .. }), "{err}");
        // A row *past* the inference sample that violates the inferred type errors
        // at pull time and mentions the remedy.
        let csv = format!(
            "A\n{}\nnot-a-number\n",
            (1..=300).map(|i| i.to_string()).collect::<Vec<_>>().join("\n")
        );
        let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
        assert_eq!(source.schema().attribute(0).unwrap().data_type, DataType::Int);
        let err = loop {
            match source.next_chunk(64) {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("the malformed row must surface"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, IoError::Csv { line: 302, .. }), "{err}");
        // The contradiction names the column, the inferred type, and the remedy.
        assert!(err.to_string().contains("Int was inferred for column `A`"), "{err}");
        assert!(err.to_string().contains("explicit schema"), "{err}");
        // A declared schema reports "declared", not "inferred".
        let schema = Schema::new(vec![Attribute::new("A", DataType::Int)]).unwrap();
        let err = CsvSource::new("A\nx\n".as_bytes(), CsvOptions::csv().with_schema(schema))
            .unwrap()
            .next_chunk(8)
            .unwrap_err();
        assert!(err.to_string().contains("declared Int by the explicit schema"), "{err}");
        // Empty input and unterminated quotes error cleanly.
        assert!(CsvSource::new("".as_bytes(), CsvOptions::csv()).is_err());
        let err = CsvSource::new("A\n\"open\n".as_bytes(), CsvOptions::csv()).unwrap_err();
        assert!(matches!(err, IoError::Csv { line: 2, .. }), "{err}");
    }

    #[test]
    fn coerce_to_text_widens_contradicting_cells_and_continues() {
        // Same shape as `errors_carry_line_numbers`: an Int column inferred from
        // 300 rows, contradicted past the sample — but with coercion on the pull
        // survives, the offending cell holds the raw field verbatim, and parsing
        // runs to exhaustion.
        let csv = format!(
            "A\n{}\nnot-a-number\n9000\n",
            (1..=300).map(|i| i.to_string()).collect::<Vec<_>>().join("\n")
        );
        let mut source =
            CsvSource::new(csv.as_bytes(), CsvOptions::csv().coerce_to_text(true)).unwrap();
        // The schema itself is untouched: the column stays Int, only the cell widens.
        assert_eq!(source.schema().attribute(0).unwrap().data_type, DataType::Int);
        let all = concat(drain(&mut source, 64));
        assert_eq!(all.row_count(), 302);
        assert_eq!(all.cell(299, 0).unwrap(), &Value::Int(300));
        assert_eq!(all.cell(300, 0).unwrap(), &Value::text("not-a-number"));
        assert_eq!(all.cell(301, 0).unwrap(), &Value::Int(9000));
        assert_eq!(source.coerced_cells(), 1);
        // Coercion off (the default) keeps the precise error and counts nothing.
        let mut strict = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
        let err = loop {
            match strict.next_chunk(64) {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("the contradicting row must surface"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, IoError::Csv { line: 302, .. }), "{err}");
        assert!(err.to_string().contains("coerce_to_text"), "{err}");
        assert_eq!(strict.coerced_cells(), 0);
    }

    #[test]
    fn coerce_to_text_never_applies_to_explicit_schemas() {
        // A declared type is a contract: the flag is ignored, the error stays.
        let schema = Schema::new(vec![Attribute::new("A", DataType::Int)]).unwrap();
        let options = CsvOptions::csv().with_schema(schema).coerce_to_text(true);
        let mut source = CsvSource::new("A\n1\nx\n".as_bytes(), options).unwrap();
        let first = source.next_chunk(1).unwrap().expect("row 1 parses");
        assert_eq!(first.row_count(), 1);
        drop(first);
        let err = source.next_chunk(1).unwrap_err();
        assert!(err.to_string().contains("declared Int by the explicit schema"), "{err}");
        assert_eq!(source.coerced_cells(), 0);
    }

    #[test]
    fn rows_parsed_before_a_mid_chunk_error_are_not_lost() {
        let schema = Schema::new(vec![Attribute::new("A", DataType::Int)]).unwrap();
        let csv = "A\n1\n2\nbad\n4\n";
        let mut source =
            CsvSource::new(csv.as_bytes(), CsvOptions::csv().with_schema(schema)).unwrap();
        // Rows 1 and 2 parse, then `bad` errors mid-chunk (chunk size 3).
        let err = source.next_chunk(3).unwrap_err();
        assert!(matches!(err, IoError::Csv { line: 4, .. }), "{err}");
        // A caller that resumes still receives the rows parsed before the error
        // (only the malformed record itself is consumed).
        let chunk = source.next_chunk(3).unwrap().unwrap().view().to_table();
        assert_eq!(
            chunk.rows().iter().map(|r| r.get(0).unwrap().clone()).collect::<Vec<_>>(),
            vec![Value::Int(1), Value::Int(2), Value::Int(4)]
        );
        assert!(source.next_chunk(3).unwrap().is_none());
    }

    #[test]
    fn bare_quotes_in_unquoted_fields_error_instead_of_merging_rows() {
        // The second row's `6"` starts an (invalid) quoted span; before the strict
        // check, quote balancing silently swallowed row 3 into row 2's cell.
        let err =
            CsvSource::new("size,label\n1,6\" pipe\n2,8\" pipe\n".as_bytes(), CsvOptions::csv())
                .unwrap_err();
        assert!(matches!(err, IoError::Csv { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("unquoted field"), "{err}");
        // Properly quoted, the same content parses.
        let csv = "size,label\n1,\"6\"\" pipe\"\n2,\"8\"\" pipe\"\n";
        let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
        let all = concat(drain(&mut source, 10));
        assert_eq!(all.cell(0, 1).unwrap(), &Value::text("6\" pipe"));
        assert_eq!(all.row_count(), 2);
    }

    #[test]
    fn transient_read_faults_below_the_parser_are_absorbed() {
        use crate::fault::{FaultKind, FaultPlan, FaultyReader};
        // Big enough that the BufReader refills mid-record; the faults fire on
        // refills, after partial record bytes are already out of the buffer.
        let mut csv = String::from("id,tag\n");
        for i in 0..1500 {
            csv.push_str(&format!("{i:06},row-{i:06}\n"));
        }
        let plan = FaultPlan::new()
            .with(8_700, FaultKind::Transient(std::io::ErrorKind::TimedOut))
            .with(17_000, FaultKind::Transient(std::io::ErrorKind::ConnectionReset));
        let clean =
            concat(drain(&mut CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap(), 64));
        // The retry sits *below* the parser: every pull succeeds, nothing is
        // lost or duplicated (`drain` unwraps, so a surfaced error panics).
        let mut source = CsvSource::with_retry(
            FaultyReader::new(csv.as_bytes(), plan),
            CsvOptions::csv(),
            RetryPolicy::no_backoff(4),
        )
        .unwrap();
        let all = concat(drain(&mut source, 64));
        assert_eq!(all.row_count(), clean.row_count());
        assert!(all.multiset_eq(&clean), "healed parse must match the clean parse exactly");
    }

    #[test]
    fn pull_level_retry_over_an_unprotected_reader_corrupts_rows() {
        use crate::fault::{FaultKind, FaultPlan, FaultyReader};
        // The same fault against the *old* layering — retry above the parser,
        // as the engine's chunk-level pull-retry does — loses the partially
        // consumed record: the documented debt `with_retry` retires.
        let mut csv = String::from("id,tag\n");
        for i in 0..1500 {
            csv.push_str(&format!("{i:06},row-{i:06}\n"));
        }
        let plan = FaultPlan::new().with(8_700, FaultKind::Transient(std::io::ErrorKind::TimedOut));
        let mut source = CsvSource::new(
            BufReader::new(FaultyReader::new(csv.as_bytes(), plan)),
            CsvOptions::csv(),
        )
        .unwrap();
        let mut rows = 0usize;
        let mut pull_errors = 0usize;
        loop {
            match source.next_chunk(64) {
                Ok(Some(chunk)) => rows += chunk.row_count(),
                Ok(None) => break,
                Err(_) => pull_errors += 1, // retry the pull, as the engine would
            }
        }
        assert!(pull_errors > 0, "the transient fault must surface to the pull loop");
        assert!(rows < 1500, "the record split across the failed refill is lost ({rows} rows)");
    }

    #[test]
    fn table_source_seeks_anywhere_csv_source_seeks_forward() {
        let t = f2_relation::table! { ["A"]; ["r0"], ["r1"], ["r2"], ["r3"], ["r4"] };
        let mut source = TableSource::new(&t);
        let seekable = source.as_seekable().expect("tables are seekable");
        seekable.seek_to_row(3).unwrap();
        assert_eq!(source.next_chunk(10).unwrap().unwrap().row_count(), 2);
        source.as_seekable().unwrap().seek_to_row(0).unwrap(); // rewind is fine
        assert_eq!(source.next_chunk(10).unwrap().unwrap().row_count(), 5);
        assert!(source.as_seekable().unwrap().seek_to_row(6).is_err());

        let csv = "A,B\n1,a\n2,b\n3,c\n4,d\n5,e\n";
        let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
        source.seek_to_row(3).unwrap();
        assert_eq!(source.rows_consumed(), 3);
        let rest = concat(drain(&mut source, 10));
        assert_eq!(rest.row_count(), 2);
        assert_eq!(rest.cell(0, 0).unwrap(), &Value::Int(4));
        // Forward-only: the rows are gone.
        assert!(source.seek_to_row(1).is_err());
        // Seeking to the current position is a no-op; past the end errors.
        source.seek_to_row(5).unwrap();
        let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
        assert!(source.seek_to_row(9).is_err());
    }

    #[test]
    fn csv_seek_skips_past_the_inference_sample() {
        // Seeking beyond the buffered inference sample must drop buffered rows
        // *and* raw-skip the remainder, without typed parsing.
        let csv =
            format!("A\n{}\n", (1..=300).map(|i| i.to_string()).collect::<Vec<_>>().join("\n"));
        let mut source = CsvSource::new(csv.as_bytes(), CsvOptions::csv()).unwrap();
        source.seek_to_row(280).unwrap();
        let rest = concat(drain(&mut source, 64));
        assert_eq!(rest.row_count(), 20);
        assert_eq!(rest.cell(0, 0).unwrap(), &Value::Int(281));
    }

    #[test]
    fn blank_lines_are_rows_only_for_single_column_tables() {
        let mut source = CsvSource::new("A,B\n1,2\n\n3,4\n".as_bytes(), CsvOptions::csv()).unwrap();
        assert_eq!(concat(drain(&mut source, 10)).row_count(), 2);
        let mut source = CsvSource::new("A\nx\n\ny\n".as_bytes(), CsvOptions::csv()).unwrap();
        let all = concat(drain(&mut source, 10));
        assert_eq!(all.row_count(), 3);
        assert!(all.cell(1, 0).unwrap().is_null());
    }
}
