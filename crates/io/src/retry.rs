//! Bounded retry with deterministic decorrelated-jitter backoff.
//!
//! A transient `io::Error` — a timeout, a reset connection, a `WouldBlock` from
//! an overloaded pipe — should cost a retry, not a whole streaming encryption
//! job. [`RetryPolicy`] is the one place that decides *which* errors are worth
//! retrying and *how long* to wait between attempts:
//!
//! | `ErrorKind`                                   | classification |
//! |-----------------------------------------------|----------------|
//! | `Interrupted`¹, `WouldBlock`, `TimedOut`      | transient      |
//! | `ConnectionReset`, `ConnectionAborted`        | transient      |
//! | everything else (`NotFound`, `BrokenPipe`, …) | fatal          |
//! | non-I/O [`IoError`]s (checksum, malformed, …) | fatal          |
//!
//! ¹ `std`'s `read_exact` / `write_all` loops absorb `Interrupted` before this
//! layer ever sees it; it is classified here for callers issuing raw reads.
//!
//! Backoff is **decorrelated jitter** (`delay = min(cap, uniform(base, 3·prev))`)
//! driven by a seeded splitmix64 generator, so a run's retry schedule is fully
//! deterministic and reproducible — the property the fault-injection suite
//! depends on. Every absorbed failure increments `f2_io_retries_total`.
//!
//! Retrying is only sound at a layer where a failed operation consumed nothing.
//! The `std` contracts guarantee exactly that for single `read`/`write` calls,
//! so [`RetryingReader`] / [`RetryingWriter`] wrap a transport at that level;
//! for [`RowSource`](crate::RowSource) pulls, [`RetryPolicy::run`] is safe when
//! the source fails before consuming input (true of
//! [`FaultySource`](crate::FaultySource) and [`TableSource`](crate::TableSource);
//! for [`CsvSource`](crate::CsvSource) over an unreliable device, wrap the raw
//! reader in a [`RetryingReader`] *below* the parser instead).

use crate::error::{IoError, IoResult};
use crate::fault::splitmix64;
use std::io::{ErrorKind, Read, Write};
use std::time::Duration;

/// Bounded-attempt retry with deterministic decorrelated-jitter backoff. See the
/// [module docs](self) for the classification table and soundness rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (the first try included). `1` disables
    /// retrying; `0` is treated as `1`.
    pub max_attempts: u32,
    /// Lower bound of every backoff delay.
    pub base_delay: Duration,
    /// Upper bound (cap) of every backoff delay.
    pub max_delay: Duration,
    /// Seed of the jitter generator — same seed, same backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Four attempts with millisecond-scale jittered backoff.
    fn default() -> Self {
        RetryPolicy::new(4)
    }
}

impl RetryPolicy {
    /// A policy of `max_attempts` total attempts with millisecond-scale backoff
    /// (2 ms base, 250 ms cap).
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(250),
            seed: 0xF2_0DE1,
        }
    }

    /// A single attempt, no backoff: every error is final. The engine's default —
    /// fault tolerance is opt-in so the fault-free hot path stays untouched.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            seed: 0,
        }
    }

    /// `max_attempts` attempts with zero delay between them — for tests that
    /// exercise the retry logic without sleeping.
    pub fn no_backoff(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            seed: 0,
        }
    }

    /// Re-seed the jitter generator.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether this policy ever retries.
    pub fn is_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Whether an [`ErrorKind`] is worth retrying (see the classification table
    /// in the [module docs](self)).
    pub fn is_transient(kind: ErrorKind) -> bool {
        matches!(
            kind,
            ErrorKind::Interrupted
                | ErrorKind::WouldBlock
                | ErrorKind::TimedOut
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
        )
    }

    /// Whether an [`IoError`] is worth retrying: only transport-level
    /// [`IoError::Io`] with a transient kind. Data damage (checksum, truncation,
    /// malformed) is *never* transient — retrying cannot un-corrupt bytes.
    pub fn error_is_transient(error: &IoError) -> bool {
        matches!(error, IoError::Io(e) if Self::is_transient(e.kind()))
    }

    /// Run `op` under this policy: transient failures are absorbed (with backoff)
    /// until the attempt budget runs out; the first fatal error — or the last
    /// transient one — is returned as-is.
    pub fn run<T>(&self, op: impl FnMut() -> IoResult<T>) -> IoResult<T> {
        self.run_classified(op, Self::error_is_transient)
    }

    /// [`RetryPolicy::run`] for raw `std::io` operations.
    pub fn run_io<T>(&self, op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
        self.run_classified(op, |e: &std::io::Error| Self::is_transient(e.kind()))
    }

    fn run_classified<T, E>(
        &self,
        mut op: impl FnMut() -> Result<T, E>,
        transient: impl Fn(&E) -> bool,
    ) -> Result<T, E> {
        let mut state = self.begin();
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(error) => state.absorb_classified(error, &transient)?,
            }
        }
    }

    /// Start an incremental attempt tracker for call sites where the retried
    /// operation's success value borrows from its receiver — e.g. a
    /// [`RowSource`](crate::RowSource) pull returning a chunk that borrows the
    /// source — so [`RetryPolicy::run`] cannot wrap it (the borrow would have to
    /// escape the retry closure). Make the attempt inline and feed each failure
    /// to [`RetryState::absorb`].
    pub fn begin(&self) -> RetryState<'_> {
        RetryState { policy: self, failures: 0, rng: self.seed, prev: self.base_delay }
    }

    /// Next decorrelated-jitter delay: `min(cap, uniform(base, 3·prev))`. Public
    /// so callers (and the fault-injection suite) can inspect the deterministic
    /// schedule a given seed produces; `rng` is the caller-held generator state,
    /// initially the policy's seed.
    pub fn next_delay(&self, rng: &mut u64, prev: Duration) -> Duration {
        let base = duration_nanos(self.base_delay);
        let cap = duration_nanos(self.max_delay);
        let hi = duration_nanos(prev).saturating_mul(3).max(base);
        let span = hi - base;
        let nanos = if span == 0 {
            base
        } else {
            base.saturating_add(splitmix64(rng) % span.saturating_add(1))
        };
        Duration::from_nanos(nanos.min(cap))
    }

    /// Wrap a reader so every `read` call runs under this policy.
    pub fn reader<R: Read>(&self, inner: R) -> RetryingReader<R> {
        RetryingReader { inner, policy: self.clone() }
    }

    /// Wrap a writer so every `write`/`flush` call runs under this policy.
    pub fn writer<W: Write>(&self, inner: W) -> RetryingWriter<W> {
        RetryingWriter { inner, policy: self.clone() }
    }
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Incremental retry state created by [`RetryPolicy::begin`]: one value tracks
/// one operation's attempt budget and backoff schedule, for call sites where
/// the attempt itself must stay inline (its success value borrows from the
/// receiver). Semantics are identical to [`RetryPolicy::run`]: the first fatal
/// error — or the last transient one once the budget is spent — comes back out
/// of [`RetryState::absorb`].
#[derive(Debug)]
pub struct RetryState<'p> {
    policy: &'p RetryPolicy,
    failures: u32,
    rng: u64,
    prev: Duration,
}

impl RetryState<'_> {
    /// Absorb one failed attempt: sleeps the backoff delay and returns `Ok(())`
    /// ("try again"), or hands the error back once it is fatal or the attempt
    /// budget is exhausted.
    pub fn absorb(&mut self, error: IoError) -> IoResult<()> {
        self.absorb_classified(error, RetryPolicy::error_is_transient)
    }

    fn absorb_classified<E>(&mut self, error: E, transient: impl Fn(&E) -> bool) -> Result<(), E> {
        self.failures = self.failures.saturating_add(1);
        if self.failures >= self.policy.max_attempts.max(1) || !transient(&error) {
            return Err(error);
        }
        crate::obs::retries().inc();
        let delay = self.policy.next_delay(&mut self.rng, self.prev);
        self.prev = delay.max(self.policy.base_delay);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(())
    }
}

// ── Retrying transports ────────────────────────────────────────────────────────────

/// A [`Read`] adapter that absorbs transient errors per the wrapped
/// [`RetryPolicy`]. Sound because a failed `read` is guaranteed to have consumed
/// nothing, so the retried call resumes exactly where the failed one started.
#[derive(Debug)]
pub struct RetryingReader<R: Read> {
    inner: R,
    policy: RetryPolicy,
}

impl<R: Read> RetryingReader<R> {
    /// Unwrap the underlying reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for RetryingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let inner = &mut self.inner;
        self.policy.run_io(|| inner.read(buf))
    }
}

/// A [`Write`] adapter that absorbs transient errors per the wrapped
/// [`RetryPolicy`]. Sound because a failed `write` is guaranteed to have written
/// nothing. Short writes are left to the caller's `write_all` loop — they are
/// progress, not failure.
#[derive(Debug)]
pub struct RetryingWriter<W: Write> {
    inner: W,
    policy: RetryPolicy,
}

impl<W: Write> RetryingWriter<W> {
    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The underlying writer, borrowed.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for RetryingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let inner = &mut self.inner;
        self.policy.run_io(|| inner.write(buf))
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let inner = &mut self.inner;
        self.policy.run_io(|| inner.flush())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, FaultyReader, FaultyWriter};
    use std::io::Cursor;

    #[test]
    fn classification_matches_the_table() {
        for kind in [
            ErrorKind::Interrupted,
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
        ] {
            assert!(RetryPolicy::is_transient(kind), "{kind:?}");
            assert!(RetryPolicy::error_is_transient(&IoError::Io(std::io::Error::new(kind, "x"))));
        }
        for kind in [ErrorKind::NotFound, ErrorKind::BrokenPipe, ErrorKind::UnexpectedEof] {
            assert!(!RetryPolicy::is_transient(kind), "{kind:?}");
        }
        // Data damage is never transient.
        assert!(!RetryPolicy::error_is_transient(&IoError::BadMagic));
        assert!(!RetryPolicy::error_is_transient(&IoError::Checksum {
            frame: 0,
            stored: 1,
            computed: 2
        }));
    }

    #[test]
    fn run_absorbs_transients_within_budget_and_reports_the_last() {
        let policy = RetryPolicy::no_backoff(3);
        let mut calls = 0;
        let out: IoResult<u32> = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(IoError::Io(std::io::Error::new(ErrorKind::TimedOut, "flaky")))
            } else {
                Ok(99)
            }
        });
        assert_eq!(out.unwrap(), 99);
        assert_eq!(calls, 3);
        // Budget exhausted: the last transient error surfaces.
        let mut calls = 0;
        let out: IoResult<u32> = policy.run(|| {
            calls += 1;
            Err(IoError::Io(std::io::Error::new(ErrorKind::WouldBlock, "always")))
        });
        assert!(out.is_err());
        assert_eq!(calls, 3);
        // Fatal errors are not retried at all.
        let mut calls = 0;
        let out: IoResult<u32> = policy.run(|| {
            calls += 1;
            Err(IoError::BadMagic)
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_nanos(100),
            max_delay: Duration::from_nanos(900),
            seed: 42,
        };
        let schedule = |p: &RetryPolicy| {
            let mut rng = p.seed;
            let mut prev = p.base_delay;
            let mut out = Vec::new();
            for _ in 0..6 {
                let d = p.next_delay(&mut rng, prev);
                prev = d.max(p.base_delay);
                out.push(d);
            }
            out
        };
        let a = schedule(&policy);
        assert_eq!(a, schedule(&policy), "same seed, same schedule");
        assert!(a.iter().all(|d| *d >= policy.base_delay && *d <= policy.max_delay));
        let reseeded = policy.clone().with_seed(43);
        assert_ne!(a, schedule(&reseeded), "different seed, different jitter");
    }

    #[test]
    fn retrying_transports_absorb_injected_faults() {
        let data: Vec<u8> = (0..=63).collect();
        let plan = FaultPlan::new()
            .with(10, FaultKind::Transient(ErrorKind::TimedOut))
            .with(40, FaultKind::Transient(ErrorKind::ConnectionReset));
        let mut reader =
            RetryPolicy::no_backoff(3).reader(FaultyReader::new(Cursor::new(data.clone()), plan));
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);

        let plan = FaultPlan::new()
            .with(5, FaultKind::Transient(ErrorKind::WouldBlock))
            .with(6, FaultKind::ShortWrite(1));
        let mut writer = RetryPolicy::no_backoff(3).writer(FaultyWriter::new(Vec::new(), plan));
        writer.write_all(&data).unwrap();
        writer.flush().unwrap();
        assert_eq!(writer.into_inner().into_inner(), data);
    }

    #[test]
    fn disabled_policy_fails_on_the_first_transient() {
        let plan = FaultPlan::new().with(3, FaultKind::Transient(ErrorKind::TimedOut));
        let mut reader =
            RetryPolicy::disabled().reader(FaultyReader::new(Cursor::new(vec![0u8; 16]), plan));
        let mut out = Vec::new();
        assert!(reader.read_to_end(&mut out).is_err());
        assert!(!RetryPolicy::disabled().is_enabled());
        assert!(RetryPolicy::default().is_enabled());
    }
}
