//! Cached telemetry handles for the frame transport layer.
//!
//! Counters only: frame and byte totals on both directions, how often the
//! varint-RLE compressor won, and transport-integrity failures by kind. Error
//! counts complement (never replace) the [`IoError`](crate::error::IoError)s the
//! readers return — a `/metrics` scrape showing `f2_io_frame_errors_total`
//! climbing is the operational signal that a store or pipe is corrupting data.

use f2_obs::Counter;
use std::sync::OnceLock;

/// Frames written to v2 streams (end frames included).
pub(crate) fn frames_written() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_io_frames_written_total",
            "Frames written to F2WS v2 streams (end frames included).",
            &[],
        )
    })
}

/// Bytes written to v2 streams, frame headers included.
pub(crate) fn bytes_written() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_io_frame_bytes_written_total",
            "Bytes written to F2WS v2 streams, frame headers included.",
            &[],
        )
    })
}

/// Frames whose payload shipped varint-RLE compressed.
pub(crate) fn compressed_frames() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_io_compressed_frames_total",
            "Frames whose payload shipped varint-RLE compressed.",
            &[],
        )
    })
}

/// Frames read and checksum-verified from v2 streams.
pub(crate) fn frames_read() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_io_frames_read_total",
            "Frames read and checksum-verified from F2WS v2 streams.",
            &[],
        )
    })
}

/// Bytes read from v2 streams, frame headers included.
pub(crate) fn bytes_read() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_io_frame_bytes_read_total",
            "Bytes read from F2WS v2 streams, frame headers included.",
            &[],
        )
    })
}

/// Transient I/O failures absorbed by a [`RetryPolicy`](crate::retry::RetryPolicy).
pub(crate) fn retries() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_io_retries_total",
            "Transient I/O failures absorbed by RetryPolicy backoff.",
            &[],
        )
    })
}

/// Frames re-acquired by `FrameReader::recover` after damage.
pub(crate) fn frames_recovered() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_io_frames_recovered_total",
            "Frames re-acquired by FrameReader::recover after stream damage.",
            &[],
        )
    })
}

/// Bytes skipped while resynchronizing to the next valid frame.
pub(crate) fn recovery_bytes_skipped() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_io_recovery_skipped_bytes_total",
            "Bytes of damaged stream skipped while resynchronizing to a valid frame.",
            &[],
        )
    })
}

const ERRORS_NAME: &str = "f2_io_frame_errors_total";
const ERRORS_HELP: &str = "Frame transport failures detected while reading v2 streams.";

/// CRC32 mismatches.
pub(crate) fn checksum_errors() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| f2_obs::global().counter(ERRORS_NAME, ERRORS_HELP, &[("kind", "checksum")]))
}

/// Streams that ended mid-frame (no end frame seen).
pub(crate) fn truncation_errors() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| f2_obs::global().counter(ERRORS_NAME, ERRORS_HELP, &[("kind", "truncated")]))
}

/// Declared frame lengths over the allocation cap.
pub(crate) fn oversize_errors() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| f2_obs::global().counter(ERRORS_NAME, ERRORS_HELP, &[("kind", "oversized")]))
}
