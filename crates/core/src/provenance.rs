//! Provenance metadata kept by the data owner.
//!
//! F² changes the shape of the outsourced table: rows are duplicated by scaling, fake
//! equivalence classes and artificial records are injected, and conflict resolution
//! replaces a tuple with two tuples. The *server* must not be able to tell these rows
//! apart (they are all encrypted), but the *data owner* needs to recover the original
//! table exactly. [`Provenance`] records, for every output row, where it came from —
//! it never leaves the owner's side.

use std::collections::HashMap;

/// Origin of one row of the encrypted table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowOrigin {
    /// The row carries (the encryption of) original row `original_row`. Some of its
    /// cells may have been replaced by fresh values during conflict resolution; those
    /// are listed in [`Provenance::patches`].
    Real {
        /// Index of the source row in the original table.
        original_row: usize,
    },
    /// An artificial copy added by the scaling phase (Step 2.2) to homogenise
    /// ciphertext frequencies within an ECG.
    ScaleCopy {
        /// Index of the MAS whose scaling produced the copy.
        mas_index: usize,
    },
    /// A row of a fake equivalence class added by the grouping phase (Step 2.1).
    GroupFake {
        /// Index of the MAS whose grouping produced the row.
        mas_index: usize,
    },
    /// The companion row created by type-2 conflict resolution (Step 3): it carries the
    /// conflicting MAS's ciphertext instance for original row `original_row`.
    ConflictCompanion {
        /// Index of the original row whose conflict it resolves.
        original_row: usize,
    },
    /// An artificial record inserted by Step 4 to eliminate a false-positive FD.
    FalsePositive {
        /// Index of the MAS whose FD lattice produced the record.
        mas_index: usize,
    },
}

impl RowOrigin {
    /// True if the row corresponds to an original tuple (possibly patched).
    pub fn is_real(&self) -> bool {
        matches!(self, RowOrigin::Real { .. })
    }
}

/// Owner-side secret metadata describing the encrypted table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    /// One entry per row of the encrypted table, in row order.
    pub origins: Vec<RowOrigin>,
    /// For original rows whose cells were replaced during conflict resolution:
    /// `original_row → [(attribute, output_row_carrying_the_real_ciphertext)]`.
    pub patches: HashMap<usize, Vec<(usize, usize)>>,
}

impl Provenance {
    /// Number of output rows described.
    pub fn len(&self) -> usize {
        self.origins.len()
    }

    /// True if no rows are described.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// Indices of output rows that carry original tuples.
    pub fn real_rows(&self) -> Vec<(usize, usize)> {
        self.origins
            .iter()
            .enumerate()
            .filter_map(|(out, o)| match o {
                RowOrigin::Real { original_row } => Some((out, *original_row)),
                _ => None,
            })
            .collect()
    }

    /// Number of artificial (non-real) rows.
    pub fn artificial_count(&self) -> usize {
        self.origins.iter().filter(|o| !o.is_real()).count()
    }

    /// Per-category counts of artificial rows: (scale copies, group fakes, conflict
    /// companions, false-positive records).
    pub fn artificial_breakdown(&self) -> (usize, usize, usize, usize) {
        let mut scale = 0;
        let mut group = 0;
        let mut conflict = 0;
        let mut fp = 0;
        for o in &self.origins {
            match o {
                RowOrigin::ScaleCopy { .. } => scale += 1,
                RowOrigin::GroupFake { .. } => group += 1,
                RowOrigin::ConflictCompanion { .. } => conflict += 1,
                RowOrigin::FalsePositive { .. } => fp += 1,
                RowOrigin::Real { .. } => {}
            }
        }
        (scale, group, conflict, fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_and_real_rows() {
        let p = Provenance {
            origins: vec![
                RowOrigin::Real { original_row: 0 },
                RowOrigin::ScaleCopy { mas_index: 0 },
                RowOrigin::Real { original_row: 1 },
                RowOrigin::GroupFake { mas_index: 1 },
                RowOrigin::ConflictCompanion { original_row: 1 },
                RowOrigin::FalsePositive { mas_index: 0 },
            ],
            patches: HashMap::new(),
        };
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
        assert_eq!(p.real_rows(), vec![(0, 0), (2, 1)]);
        assert_eq!(p.artificial_count(), 4);
        assert_eq!(p.artificial_breakdown(), (1, 1, 1, 1));
        assert!(RowOrigin::Real { original_row: 3 }.is_real());
        assert!(!RowOrigin::ScaleCopy { mas_index: 0 }.is_real());
    }

    #[test]
    fn empty_provenance() {
        let p = Provenance::default();
        assert!(p.is_empty());
        assert_eq!(p.artificial_count(), 0);
        assert_eq!(p.artificial_breakdown(), (0, 0, 0, 0));
    }
}
