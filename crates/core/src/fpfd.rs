//! Step 4 — eliminating false-positive FDs (§3.4).
//!
//! Steps 1–3 make every equivalence class group collision-free, which can *create* FDs
//! in the encrypted table that do not hold in the original data (Example 3.1). The data
//! owner walks the FD lattice of every MAS (Figure 5); for every *maximum false
//! positive* `X → Y` (violated in the plaintext, hence accidentally satisfied in the
//! ciphertext) she inserts `k = ⌈1/α⌉` pairs of artificial records that share a fresh
//! value on `X` but disagree on `Y`, which re-violates the FD in the encrypted table.
//! Inserting `k` pairs rather than one keeps the artificial records indistinguishable
//! under the α-security argument of Section 4.

use crate::fake::FreshValueGenerator;
use f2_fd::lattice::FdLattice;
use f2_relation::{AttrSet, Partition, Table, Value};
use std::collections::HashMap;

/// A pair of artificial plaintext records that re-violates one false-positive FD.
///
/// Both rows are full-arity plaintext rows made entirely of fresh values; they share
/// the same values on `shared_attrs` (the FD's left-hand side) and differ everywhere
/// else. The encryptor must encrypt the shared cells to the *same ciphertext* so the
/// server observes the violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpRecordPair {
    /// The MAS whose lattice produced this pair.
    pub mas_index: usize,
    /// Attributes on which the two rows share a value (the false-positive FD's LHS).
    pub shared_attrs: AttrSet,
    /// First artificial row (full arity).
    pub row1: Vec<Value>,
    /// Second artificial row (full arity).
    pub row2: Vec<Value>,
}

/// The Step-4 plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FpPlan {
    /// Artificial record pairs to insert.
    pub pairs: Vec<FpRecordPair>,
    /// Number of maximum false-positive FDs that were eliminated.
    pub max_false_positives: usize,
}

impl FpPlan {
    /// Total number of artificial records (2 per pair).
    pub fn record_count(&self) -> usize {
        self.pairs.len() * 2
    }
}

/// Identify the maximum false-positive FDs of every MAS and build the artificial
/// records that eliminate them. `k` is ⌈1/α⌉.
pub fn plan_false_positive_elimination(
    table: &Table,
    mas_sets: &[AttrSet],
    k: usize,
    fresh: &mut FreshValueGenerator,
) -> FpPlan {
    let arity = table.arity();
    let mut plan = FpPlan::default();
    for (mas_index, &mas) in mas_sets.iter().enumerate() {
        if mas.len() < 2 {
            continue;
        }
        // Representative tuples of π_M: the violation check of §3.4 only needs one row
        // per equivalence class.
        let partition = Partition::compute(table, mas);
        let reps: Vec<Vec<Value>> =
            partition.classes().iter().map(|c| c.representative.clone()).collect();
        let mas_attrs: Vec<usize> = mas.iter().collect();
        let position_of: HashMap<usize, usize> =
            mas_attrs.iter().enumerate().map(|(p, &a)| (a, p)).collect();

        let lattice = FdLattice::new(mas);
        let violated_nodes = lattice.find_maximum_false_positives(|lhs, rhs| {
            violated_among_representatives(&reps, &position_of, lhs, rhs)
        });

        for node in violated_nodes {
            plan.max_false_positives += 1;
            for _ in 0..k {
                // Shared fresh values on X; everything else fresh and distinct.
                let shared: HashMap<usize, Value> =
                    node.lhs.iter().map(|a| (a, fresh.next_value())).collect();
                let make_row = |fresh: &mut FreshValueGenerator| {
                    (0..arity)
                        .map(|a| shared.get(&a).cloned().unwrap_or_else(|| fresh.next_value()))
                        .collect::<Vec<Value>>()
                };
                let row1 = make_row(fresh);
                let row2 = make_row(fresh);
                plan.pairs.push(FpRecordPair { mas_index, shared_attrs: node.lhs, row1, row2 });
            }
        }
    }
    plan
}

/// Does there exist a pair of equivalence classes agreeing on `lhs` but differing on
/// `rhs`? (I.e. is the FD `lhs → rhs` violated among the class representatives?)
fn violated_among_representatives(
    reps: &[Vec<Value>],
    position_of: &HashMap<usize, usize>,
    lhs: AttrSet,
    rhs: usize,
) -> bool {
    let lhs_pos: Vec<usize> = lhs.iter().map(|a| position_of[&a]).collect();
    let rhs_pos = position_of[&rhs];
    let mut seen: HashMap<Vec<&Value>, &Value> = HashMap::with_capacity(reps.len());
    for rep in reps {
        let key: Vec<&Value> = lhs_pos.iter().map(|&p| &rep[p]).collect();
        let y = &rep[rhs_pos];
        match seen.get(&key) {
            Some(prev) if *prev != y => return true,
            Some(_) => {}
            None => {
                seen.insert(key, y);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::table;

    #[test]
    fn figure4_example_produces_pairs() {
        // Figure 4(a): A → B does not hold in D ({a1,b1} vs {a1,b2} collide on A), so it
        // is a false positive after Steps 1–3 and must be eliminated with k pairs.
        let t = table! {
            ["A", "B"];
            ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"],
            ["a2", "b3"], ["a2", "b3"],
            ["a1", "b2"], ["a1", "b2"], ["a1", "b2"], ["a1", "b2"],
            ["a2", "b4"], ["a2", "b4"], ["a2", "b4"],
        };
        let mas = AttrSet::all(2);
        let mut fresh = FreshValueGenerator::for_table(&t);
        let k = 3;
        let plan = plan_false_positive_elimination(&t, &[mas], k, &mut fresh);
        // A → B is violated in D (a1 maps to both b1 and b2) while B → A holds, so
        // exactly one maximum false positive is eliminated with k pairs.
        assert_eq!(plan.max_false_positives, 1);
        assert_eq!(plan.pairs.len(), k);
        assert_eq!(plan.record_count(), 2 * k);
        for pair in &plan.pairs {
            // Shared on X, different on the rest, all values fresh.
            for a in pair.shared_attrs.iter() {
                assert_eq!(pair.row1[a], pair.row2[a]);
            }
            let other: Vec<usize> = (0..2).filter(|a| !pair.shared_attrs.contains(*a)).collect();
            for a in other {
                assert_ne!(pair.row1[a], pair.row2[a]);
            }
            for v in pair.row1.iter().chain(pair.row2.iter()) {
                assert!(crate::fake::is_artificial_value(v));
                assert!(!t.all_values().contains(v));
            }
        }
    }

    #[test]
    fn true_fds_are_not_eliminated() {
        // Zip → City holds, so the node Zip : City must NOT trigger artificial records;
        // Name-related FDs (violated) must.
        let t = table! {
            ["Zip", "City"];
            ["07030", "Hoboken"],
            ["07030", "Hoboken"],
            ["10001", "NewYork"],
            ["10001", "NewYork"],
        };
        let mas = AttrSet::all(2);
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = plan_false_positive_elimination(&t, &[mas], 2, &mut fresh);
        // Both Zip → City and City → Zip hold in this instance, so no false positives.
        assert_eq!(plan.max_false_positives, 0);
        assert!(plan.pairs.is_empty());
    }

    #[test]
    fn theorem_3_6_lower_bound() {
        // With one MAS whose ECs have collisions, at least 2k artificial records are
        // added (Theorem 3.6 lower bound).
        let t = table! {
            ["A", "B"];
            ["x", "1"], ["x", "1"],
            ["x", "2"], ["x", "2"],
        };
        let k = 4;
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = plan_false_positive_elimination(&t, &[AttrSet::all(2)], k, &mut fresh);
        assert!(plan.record_count() >= 2 * k);
    }

    #[test]
    fn single_attribute_mas_is_skipped() {
        let t = table! {
            ["A", "B"];
            ["x", "1"], ["x", "2"], ["y", "3"],
        };
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = plan_false_positive_elimination(&t, &[AttrSet::single(0)], 3, &mut fresh);
        assert_eq!(plan.max_false_positives, 0);
    }

    #[test]
    fn violation_check() {
        let reps = vec![
            vec![Value::text("a1"), Value::text("b1")],
            vec![Value::text("a1"), Value::text("b2")],
            vec![Value::text("a2"), Value::text("b3")],
        ];
        let positions: HashMap<usize, usize> = [(0usize, 0usize), (1, 1)].into_iter().collect();
        assert!(violated_among_representatives(&reps, &positions, AttrSet::single(0), 1));
        assert!(!violated_among_representatives(&reps, &positions, AttrSet::single(1), 0));
    }
}
