//! Step 4 — eliminating false-positive FDs (§3.4).
//!
//! Steps 1–3 make every equivalence class group collision-free, which can *create* FDs
//! in the encrypted table that do not hold in the original data (Example 3.1). The data
//! owner walks the FD lattice of every MAS (Figure 5); for every *maximum false
//! positive* `X → Y` (violated in the plaintext, hence accidentally satisfied in the
//! ciphertext) she inserts `k = ⌈1/α⌉` pairs of artificial records that share a fresh
//! value on `X` but disagree on `Y`, which re-violates the FD in the encrypted table.
//! Inserting `k` pairs rather than one keeps the artificial records indistinguishable
//! under the α-security argument of Section 4.

use crate::fake::FreshValueGenerator;
use f2_fd::lattice::FdLattice;
use f2_relation::hash::{fast_map_with_capacity, FastMap};
use f2_relation::{AttrSet, RowId, Table, Value};
use std::collections::HashMap;

/// A pair of artificial plaintext records that re-violates one false-positive FD.
///
/// Both rows are full-arity plaintext rows made entirely of fresh values; they share
/// the same values on `shared_attrs` (the FD's left-hand side) and differ everywhere
/// else. The encryptor must encrypt the shared cells to the *same ciphertext* so the
/// server observes the violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpRecordPair {
    /// The MAS whose lattice produced this pair.
    pub mas_index: usize,
    /// Attributes on which the two rows share a value (the false-positive FD's LHS).
    pub shared_attrs: AttrSet,
    /// First artificial row (full arity).
    pub row1: Vec<Value>,
    /// Second artificial row (full arity).
    pub row2: Vec<Value>,
}

/// The Step-4 plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FpPlan {
    /// Artificial record pairs to insert.
    pub pairs: Vec<FpRecordPair>,
    /// Number of maximum false-positive FDs that were eliminated.
    pub max_false_positives: usize,
}

impl FpPlan {
    /// Total number of artificial records (2 per pair).
    pub fn record_count(&self) -> usize {
        self.pairs.len() * 2
    }
}

/// Identify the maximum false-positive FDs of every MAS and build the artificial
/// records that eliminate them. `k` is ⌈1/α⌉.
pub fn plan_false_positive_elimination(
    table: &Table,
    mas_sets: &[AttrSet],
    k: usize,
    fresh: &mut FreshValueGenerator,
) -> FpPlan {
    plan_false_positive_elimination_witnessed(
        table,
        &mas_sets
            .iter()
            .map(|&mas| (mas, table.columnar().group_witnesses(mas)))
            .collect::<Vec<_>>(),
        k,
        fresh,
    )
}

/// [`plan_false_positive_elimination`] with caller-supplied witness rows (one row per
/// equivalence class of each MAS partition, any order). The encryptor already holds
/// every `π_M` for the SSE step and passes `rows[0]` of each class, so Step 4 never
/// regroups the table.
pub fn plan_false_positive_elimination_witnessed(
    table: &Table,
    mas_witnesses: &[(AttrSet, Vec<RowId>)],
    k: usize,
    fresh: &mut FreshValueGenerator,
) -> FpPlan {
    let arity = table.arity();
    let mut plan = FpPlan::default();
    for (mas_index, (mas, witnesses)) in mas_witnesses.iter().enumerate() {
        let mas = *mas;
        if mas.len() < 2 {
            continue;
        }
        // Representative tuples of π_M as dense value ids: the violation check of
        // §3.4 only needs one witness row per equivalence class, and only equality
        // structure — so the lattice walk below compares the witnesses' dictionary
        // ids straight off the columnar index; no value is ever cloned or hashed.
        let columnar = table.columnar();
        let mas_attrs: Vec<usize> = mas.iter().collect();
        let rep_ids: Vec<Vec<u32>> = mas_attrs
            .iter()
            .map(|&a| {
                let ids = columnar.column(a).ids();
                witnesses.iter().map(|&r| ids[r]).collect()
            })
            .collect();
        let position_of: HashMap<usize, usize> =
            mas_attrs.iter().enumerate().map(|(p, &a)| (a, p)).collect();

        let lattice = FdLattice::new(mas);
        // The same LHS is probed once per RHS outside it; cache its refinement so
        // each distinct LHS is grouped exactly once per MAS. The witness scan per
        // node uses one reusable dense array (group ids are dense by construction).
        let mut lhs_cache: FastMap<u64, Vec<u32>> = FastMap::default();
        let mut witness_scratch: Vec<u32> = Vec::new();
        let violated_nodes = lattice.find_maximum_false_positives(|lhs, rhs| {
            let group_of = lhs_cache
                .entry(lhs.bits())
                .or_insert_with(|| lhs_groups(&rep_ids, &position_of, lhs));
            rhs_disagrees_within_groups(group_of, &rep_ids[position_of[&rhs]], &mut witness_scratch)
        });

        for node in violated_nodes {
            plan.max_false_positives += 1;
            for _ in 0..k {
                // Shared fresh values on X; everything else fresh and distinct.
                let mut shared: Vec<Option<Value>> = vec![None; arity];
                for a in node.lhs.iter() {
                    shared[a] = Some(fresh.next_value());
                }
                let make_row = |fresh: &mut FreshValueGenerator| {
                    (0..arity)
                        .map(|a| shared[a].clone().unwrap_or_else(|| fresh.next_value()))
                        .collect::<Vec<Value>>()
                };
                let row1 = make_row(fresh);
                let row2 = make_row(fresh);
                plan.pairs.push(FpRecordPair { mas_index, shared_attrs: node.lhs, row1, row2 });
            }
        }
    }
    plan
}

/// Does there exist a pair of equivalence classes agreeing on `lhs` but differing on
/// `rhs`? (I.e. is the FD `lhs → rhs` violated among the class representatives?)
///
/// `rep_ids` is position-major: `rep_ids[p][c]` is the interned value id of class
/// `c`'s representative at MAS position `p`. The check refines classes into LHS
/// groups by folding one position at a time through `(group, id)` integer keys —
/// the same linearisation the partition core uses — and reports a violation as soon
/// as one group sees two distinct RHS ids.
#[cfg(test)]
fn violated_among_representatives(
    rep_ids: &[Vec<u32>],
    position_of: &HashMap<usize, usize>,
    lhs: AttrSet,
    rhs: usize,
) -> bool {
    let group_of = lhs_groups(rep_ids, position_of, lhs);
    rhs_disagrees_within_groups(&group_of, &rep_ids[position_of[&rhs]], &mut Vec::new())
}

/// Dense `class → LHS-group` labelling: classes share a group iff their
/// representatives agree on every LHS position (the partition core's pairwise
/// refinement linearisation over integer keys).
fn lhs_groups(rep_ids: &[Vec<u32>], position_of: &HashMap<usize, usize>, lhs: AttrSet) -> Vec<u32> {
    let mut lhs_pos = lhs.iter().map(|a| position_of[&a]);
    let t = rep_ids.first().map_or(0, Vec::len);
    let Some(first) = lhs_pos.next() else {
        // Empty LHS: all classes share one group.
        return vec![0; t];
    };
    let mut group_of: Vec<u32> = rep_ids[first].clone();
    for p in lhs_pos {
        let ids = &rep_ids[p];
        let mut map: FastMap<u64, u32> = fast_map_with_capacity(t);
        let mut next = 0u32;
        for c in 0..t {
            let key = (u64::from(group_of[c]) << 32) | u64::from(ids[c]);
            group_of[c] = *map.entry(key).or_insert_with(|| {
                let g = next;
                next += 1;
                g
            });
        }
    }
    group_of
}

/// Does some LHS group contain two classes with different RHS ids? `witness` is a
/// caller-owned dense scratch (group ids are dense), re-filled per call.
fn rhs_disagrees_within_groups(group_of: &[u32], rhs_ids: &[u32], witness: &mut Vec<u32>) -> bool {
    // One RHS witness per LHS group; a second, different witness is a violation.
    const UNSEEN: u32 = u32::MAX;
    let groups = group_of.iter().copied().max().map_or(0, |g| g as usize + 1);
    witness.clear();
    witness.resize(groups, UNSEEN);
    for (c, &g) in group_of.iter().enumerate() {
        let slot = &mut witness[g as usize];
        if *slot == UNSEEN {
            // RHS ids are dictionary/interned ids well below the sentinel.
            *slot = rhs_ids[c];
        } else if *slot != rhs_ids[c] {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::table;

    #[test]
    fn figure4_example_produces_pairs() {
        // Figure 4(a): A → B does not hold in D ({a1,b1} vs {a1,b2} collide on A), so it
        // is a false positive after Steps 1–3 and must be eliminated with k pairs.
        let t = table! {
            ["A", "B"];
            ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"],
            ["a2", "b3"], ["a2", "b3"],
            ["a1", "b2"], ["a1", "b2"], ["a1", "b2"], ["a1", "b2"],
            ["a2", "b4"], ["a2", "b4"], ["a2", "b4"],
        };
        let mas = AttrSet::all(2);
        let mut fresh = FreshValueGenerator::for_table(&t);
        let k = 3;
        let plan = plan_false_positive_elimination(&t, &[mas], k, &mut fresh);
        // A → B is violated in D (a1 maps to both b1 and b2) while B → A holds, so
        // exactly one maximum false positive is eliminated with k pairs.
        assert_eq!(plan.max_false_positives, 1);
        assert_eq!(plan.pairs.len(), k);
        assert_eq!(plan.record_count(), 2 * k);
        for pair in &plan.pairs {
            // Shared on X, different on the rest, all values fresh.
            for a in pair.shared_attrs.iter() {
                assert_eq!(pair.row1[a], pair.row2[a]);
            }
            let other: Vec<usize> = (0..2).filter(|a| !pair.shared_attrs.contains(*a)).collect();
            for a in other {
                assert_ne!(pair.row1[a], pair.row2[a]);
            }
            for v in pair.row1.iter().chain(pair.row2.iter()) {
                assert!(crate::fake::is_artificial_value(v));
                assert!(!t.all_values().contains(v));
            }
        }
    }

    #[test]
    fn true_fds_are_not_eliminated() {
        // Zip → City holds, so the node Zip : City must NOT trigger artificial records;
        // Name-related FDs (violated) must.
        let t = table! {
            ["Zip", "City"];
            ["07030", "Hoboken"],
            ["07030", "Hoboken"],
            ["10001", "NewYork"],
            ["10001", "NewYork"],
        };
        let mas = AttrSet::all(2);
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = plan_false_positive_elimination(&t, &[mas], 2, &mut fresh);
        // Both Zip → City and City → Zip hold in this instance, so no false positives.
        assert_eq!(plan.max_false_positives, 0);
        assert!(plan.pairs.is_empty());
    }

    #[test]
    fn theorem_3_6_lower_bound() {
        // With one MAS whose ECs have collisions, at least 2k artificial records are
        // added (Theorem 3.6 lower bound).
        let t = table! {
            ["A", "B"];
            ["x", "1"], ["x", "1"],
            ["x", "2"], ["x", "2"],
        };
        let k = 4;
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = plan_false_positive_elimination(&t, &[AttrSet::all(2)], k, &mut fresh);
        assert!(plan.record_count() >= 2 * k);
    }

    #[test]
    fn single_attribute_mas_is_skipped() {
        let t = table! {
            ["A", "B"];
            ["x", "1"], ["x", "2"], ["y", "3"],
        };
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = plan_false_positive_elimination(&t, &[AttrSet::single(0)], 3, &mut fresh);
        assert_eq!(plan.max_false_positives, 0);
    }

    #[test]
    fn violation_check() {
        // Classes (a1,b1), (a1,b2), (a2,b3) interned position-major.
        let reps = [
            vec![Value::text("a1"), Value::text("b1")],
            vec![Value::text("a1"), Value::text("b2")],
            vec![Value::text("a2"), Value::text("b3")],
        ];
        let rep_ids: Vec<Vec<u32>> = (0..2)
            .map(|p| f2_relation::columnar::intern_values(reps.iter().map(|r| &r[p])).0)
            .collect();
        let positions: HashMap<usize, usize> = [(0usize, 0usize), (1, 1)].into_iter().collect();
        assert!(violated_among_representatives(&rep_ids, &positions, AttrSet::single(0), 1));
        assert!(!violated_among_representatives(&rep_ids, &positions, AttrSet::single(1), 0));
    }
}
