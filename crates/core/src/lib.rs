//! # f2-core — the F² frequency-hiding, FD-preserving encryption scheme
//!
//! lint: planning — crate-wide: no new `thread_local!` caches (`f2-lint` rule
//! `thread-local`); scheme state must flow through owner state, not ambient TLS.
//!
//! This crate implements the paper's primary contribution (Dong & Wang, ICDE 2017):
//! an encryption scheme that lets a data owner outsource a relational table to an
//! honest-but-curious server such that
//!
//! * the server can still discover the table's functional dependencies (FDs are
//!   preserved exactly — no FD is lost and no false-positive FD is introduced,
//!   Theorem 3.7), and
//! * the ciphertext value frequencies are flattened, so the scheme is α-secure against
//!   the frequency analysis attack even under Kerckhoffs's principle (Section 4).
//!
//! The scheme's four steps map to the modules of this crate:
//!
//! | paper step | module |
//! |---|---|
//! | Step 1 — find maximal attribute sets | [`f2_fd::mas`] (invoked from [`encryptor`]) |
//! | Step 2.1 — group equivalence classes  | [`ecg`] |
//! | Step 2.2 — splitting & scaling        | [`split`], [`sse`] |
//! | Step 3 — conflict resolution          | [`encryptor`] (assembly) |
//! | Step 4 — eliminate false-positive FDs | [`fpfd`] |
//!
//! The primary entry point is the [`scheme`] module: every backend of the paper's
//! evaluation — F² itself, the deterministic AES baseline, the per-cell probabilistic
//! cipher, and Paillier — implements the pluggable [`Scheme`] trait
//! (`name` / `encrypt` / `decrypt`), so harnesses and applications are written once
//! against `&dyn Scheme`. The F² backend is built fluently with [`F2::builder`]; the
//! lower-level [`F2Encryptor`] / [`F2Decryptor`] pair remains available when direct
//! access to [`Provenance`] is needed. The server side only ever sees the encrypted
//! [`f2_relation::Table`].
//!
//! ```
//! use f2_core::{Scheme, F2};
//! use f2_relation::table;
//!
//! let data = table! {
//!     ["Zip", "City", "Name"];
//!     ["07030", "Hoboken", "alice"],
//!     ["07030", "Hoboken", "bob"],
//!     ["10001", "NewYork", "carol"],
//!     ["10001", "NewYork", "dave"],
//! };
//! let scheme = F2::builder().alpha(0.5).split_factor(2).seed(7).build().unwrap();
//! let outcome = scheme.encrypt(&data).unwrap();
//! assert!(outcome.encrypted.row_count() >= data.row_count());
//! let recovered = scheme.decrypt(&outcome).unwrap();
//! assert!(recovered.multiset_eq(&data));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod decryptor;
pub mod ecg;
pub mod encryptor;
pub mod error;
pub mod fake;
pub mod fpfd;
pub(crate) mod obs;
pub mod provenance;
pub mod report;
pub mod scheme;
pub mod split;
pub mod sse;

pub use config::F2Config;
pub use decryptor::F2Decryptor;
pub use encryptor::{EncryptionOutcome, F2Encryptor};
pub use error::F2Error;
pub use fake::FreshValueGenerator;
pub use provenance::{Provenance, RowOrigin};
pub use report::{EncryptionReport, OverheadBreakdown, StepTimings};
pub use scheme::{
    CellWiseState, ChunkState, ChunkedScheme, DetScheme, F2Builder, F2OwnerState, F2Scheme,
    OwnerState, PaillierFraming, PaillierScheme, ProbScheme, Scheme, SchemeOutcome, F2,
};

/// Result alias for F² operations.
pub type Result<T> = std::result::Result<T, F2Error>;
