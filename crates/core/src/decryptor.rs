//! Decryption (data-owner side).
//!
//! Every ciphertext cell is self-contained (`⟨r, F_k(r) ⊕ p⟩`), so cell-wise decryption
//! only needs the master key. Recovering the *original table* additionally uses the
//! owner's [`Provenance`]: artificial rows (scaling copies, fake equivalence classes,
//! conflict companions, false-positive records) are dropped, and cells that conflict
//! resolution replaced with fresh values are patched back from their companion rows.

use crate::fake::is_artificial_value;
use crate::provenance::Provenance;
use crate::{EncryptionOutcome, F2Error, Result};
use f2_crypto::{MasterKey, ProbabilisticCipher};
use f2_relation::{Record, Schema, Table, Value};

/// The F² decryptor.
#[derive(Debug, Clone)]
pub struct F2Decryptor {
    master: MasterKey,
}

impl F2Decryptor {
    /// Create a decryptor from the owner's master key.
    pub fn new(master: MasterKey) -> Self {
        F2Decryptor { master }
    }

    fn ciphers(&self, arity: usize) -> Vec<ProbabilisticCipher> {
        (0..arity).map(|a| ProbabilisticCipher::new(&self.master.attribute_key(a))).collect()
    }

    /// Decrypt every cell of an encrypted table. Artificial rows are retained (their
    /// cells decrypt to reserved fresh values); use [`F2Decryptor::recover_original`]
    /// to rebuild the original table exactly.
    pub fn decrypt_table(&self, encrypted: &Table) -> Result<Table> {
        let arity = encrypted.arity();
        let ciphers = self.ciphers(arity);
        let schema = Schema::from_names(encrypted.schema().names())?;
        let mut records = Vec::with_capacity(encrypted.row_count());
        for (_, rec) in encrypted.iter() {
            let mut values = Vec::with_capacity(arity);
            for (a, cell) in rec.values().iter().enumerate() {
                values.push(ciphers[a].decrypt_cell(cell)?);
            }
            records.push(Record::new(values));
        }
        Ok(Table::new(schema, records)?)
    }

    /// Decrypt and drop every row that contains an artificial value. This is the
    /// "lossy" recovery available without provenance: rows rewritten by conflict
    /// resolution are dropped too, so the result is a subset of the original table.
    pub fn decrypt_dropping_artificial(&self, encrypted: &Table) -> Result<Table> {
        let decrypted = self.decrypt_table(encrypted)?;
        let mut out = Table::empty(decrypted.schema().clone());
        for (_, rec) in decrypted.iter() {
            if rec.values().iter().any(is_artificial_value) {
                continue;
            }
            out.push_row(rec.clone())?;
        }
        Ok(out)
    }

    /// Recover the original table exactly, using the owner's provenance.
    pub fn recover_original(
        &self,
        encrypted: &Table,
        provenance: &Provenance,
        plaintext_schema: &Schema,
    ) -> Result<Table> {
        if provenance.len() != encrypted.row_count() {
            return Err(F2Error::ProvenanceMismatch(format!(
                "provenance describes {} rows but the table has {}",
                provenance.len(),
                encrypted.row_count()
            )));
        }
        let arity = encrypted.arity();
        if plaintext_schema.arity() != arity {
            return Err(F2Error::ProvenanceMismatch(
                "plaintext schema arity differs from the encrypted table".into(),
            ));
        }
        let ciphers = self.ciphers(arity);
        let real = provenance.real_rows();
        let mut rows: Vec<(usize, Vec<Value>)> = Vec::with_capacity(real.len());
        for (out_row, original_row) in real {
            let rec = encrypted.row(out_row)?;
            let mut values = Vec::with_capacity(arity);
            for (a, cell) in rec.values().iter().enumerate() {
                values.push(ciphers[a].decrypt_cell(cell)?);
            }
            // Patch cells replaced during conflict resolution from their companions.
            if let Some(patches) = provenance.patches.get(&original_row) {
                for &(attr, companion_row) in patches {
                    let companion_cell = encrypted.cell(companion_row, attr)?;
                    values[attr] = ciphers[attr].decrypt_cell(companion_cell)?;
                }
            }
            rows.push((original_row, values));
        }
        rows.sort_by_key(|(orig, _)| *orig);
        let records = rows.into_iter().map(|(_, v)| Record::new(v)).collect();
        Ok(Table::new(plaintext_schema.clone(), records)?)
    }

    /// Convenience: recover the original table from a full [`EncryptionOutcome`].
    pub fn recover_from_outcome(&self, outcome: &EncryptionOutcome) -> Result<Table> {
        self.recover_original(&outcome.encrypted, &outcome.provenance, &outcome.plaintext_schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{F2Config, F2Encryptor};
    use f2_relation::table;

    fn roundtrip_table() -> Table {
        table! {
            ["Zip", "City", "Name"];
            ["07030", "Hoboken", "alice"],
            ["07030", "Hoboken", "bob"],
            ["07030", "Hoboken", "carol"],
            ["10001", "NewYork", "dave"],
            ["10001", "NewYork", "erin"],
            ["08540", "Princeton", "frank"],
            ["08540", "Princeton", "grace"],
        }
    }

    #[test]
    fn exact_roundtrip_with_provenance() {
        let t = roundtrip_table();
        for (alpha, split) in [(1.0, 1), (0.5, 2), (0.34, 3), (0.25, 2)] {
            let enc =
                F2Encryptor::new(F2Config::new(alpha, split).unwrap(), MasterKey::from_seed(5));
            let dec = F2Decryptor::new(MasterKey::from_seed(5));
            let out = enc.encrypt(&t).unwrap();
            let recovered = dec.recover_from_outcome(&out).unwrap();
            assert!(recovered.multiset_eq(&t), "roundtrip failed for alpha={alpha} split={split}");
        }
    }

    #[test]
    fn wrong_key_fails_or_garbles() {
        let t = roundtrip_table();
        let enc = F2Encryptor::new(F2Config::new(0.5, 2).unwrap(), MasterKey::from_seed(5));
        let out = enc.encrypt(&t).unwrap();
        let wrong = F2Decryptor::new(MasterKey::from_seed(6));
        if let Ok(recovered) = wrong.recover_from_outcome(&out) {
            assert!(!recovered.multiset_eq(&t));
        }
    }

    #[test]
    fn lossy_recovery_is_subset_of_original() {
        let t = roundtrip_table();
        let enc = F2Encryptor::new(F2Config::new(0.34, 2).unwrap(), MasterKey::from_seed(5));
        let dec = F2Decryptor::new(MasterKey::from_seed(5));
        let out = enc.encrypt(&t).unwrap();
        let lossy = dec.decrypt_dropping_artificial(&out.encrypted).unwrap();
        assert!(lossy.row_count() <= t.row_count());
        let originals = t.all_values();
        for (_, rec) in lossy.iter() {
            for v in rec.values() {
                assert!(originals.contains(v), "unexpected value {v:?}");
            }
        }
    }

    #[test]
    fn provenance_mismatch_is_detected() {
        let t = roundtrip_table();
        let enc = F2Encryptor::new(F2Config::new(0.5, 2).unwrap(), MasterKey::from_seed(5));
        let dec = F2Decryptor::new(MasterKey::from_seed(5));
        let out = enc.encrypt(&t).unwrap();
        let mut bad = out.provenance.clone();
        bad.origins.pop();
        assert!(dec.recover_original(&out.encrypted, &bad, &out.plaintext_schema).is_err());
        let bad_schema = Schema::from_names(["A"]).unwrap();
        assert!(dec.recover_original(&out.encrypted, &out.provenance, &bad_schema).is_err());
    }

    #[test]
    fn full_decrypt_keeps_all_rows() {
        let t = roundtrip_table();
        let enc = F2Encryptor::new(F2Config::new(0.5, 2).unwrap(), MasterKey::from_seed(5));
        let dec = F2Decryptor::new(MasterKey::from_seed(5));
        let out = enc.encrypt(&t).unwrap();
        let full = dec.decrypt_table(&out.encrypted).unwrap();
        assert_eq!(full.row_count(), out.encrypted.row_count());
    }
}
