//! The pluggable encryption-backend API.
//!
//! The paper's evaluation (§5) compares F² against a deterministic AES baseline, a
//! per-cell probabilistic cipher, and Paillier. Each of those is a *scheme*: something
//! that turns a plaintext [`Table`] into an encrypted table plus owner-side secrets,
//! and can invert that transformation. This module abstracts the contract into the
//! [`Scheme`] trait so that the attack harness, the benchmark suite, and applications
//! can be written once against `&dyn Scheme` and run unchanged over every backend —
//! including future ones (sharded, cached, async).
//!
//! * [`Scheme`] — `name` / `encrypt` / `decrypt`, plus the ground-truth row mapping
//!   ([`Scheme::real_rows`]) the α-security experiment needs;
//! * [`SchemeOutcome`] — what every backend produces: the encrypted table, an opaque
//!   [`OwnerState`], and an [`EncryptionReport`];
//! * [`F2Scheme`] (built fluently via [`F2::builder`]), [`DetScheme`], [`ProbScheme`],
//!   [`PaillierScheme`] — the four backends of the paper.
//!
//! ```
//! use f2_core::{Scheme, F2};
//! use f2_relation::table;
//!
//! let data = table! {
//!     ["Zip", "City"];
//!     ["07030", "Hoboken"],
//!     ["07030", "Hoboken"],
//!     ["10001", "NewYork"],
//! };
//! let scheme = F2::builder().alpha(0.5).split_factor(2).seed(7).build().unwrap();
//! let outcome = scheme.encrypt(&data).unwrap();
//! let recovered = scheme.decrypt(&outcome).unwrap();
//! assert!(recovered.multiset_eq(&data));
//! ```

use crate::config::F2Config;
use crate::decryptor::F2Decryptor;
use crate::encryptor::{EncryptionOutcome, F2Encryptor};
use crate::report::{EncryptionReport, OverheadBreakdown, StepTimings};
use crate::{F2Error, Result};
use f2_crypto::{
    DeterministicCipher, MasterKey, PaillierCiphertext, PaillierKeyPair, ProbabilisticCipher,
    RandomnessPool,
};
use f2_relation::{AttrSet, Record, Schema, Table, TableView, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::fmt;
use std::time::Instant;

/// A pluggable encryption backend: anything that can outsource a table and take it
/// back.
///
/// Implementations must satisfy the round-trip law: for every supported table `t`,
/// `decrypt(&encrypt(&t)?)?` is multiset-equal to `t`. (Multiset rather than sequence
/// equality because F² reorders and augments rows; cell-wise backends preserve order.)
pub trait Scheme {
    /// Short stable identifier used in reports and benchmark labels.
    fn name(&self) -> &str;

    /// Encrypt a table, producing the server-visible table plus owner-side state.
    fn encrypt(&self, table: &Table) -> Result<SchemeOutcome>;

    /// Recover the original table from an outcome produced by this scheme.
    fn decrypt(&self, outcome: &SchemeOutcome) -> Result<Table>;

    /// Ground truth for the frequency-analysis game: `(output_row, original_row)`
    /// pairs for the output rows that carry original tuples. The default covers
    /// cell-wise schemes, where output row `i` is the encryption of input row `i`;
    /// schemes that inject artificial rows (like F²) must override it. Errors on an
    /// outcome this scheme cannot interpret (wrong backend's owner state), mirroring
    /// [`Scheme::decrypt`].
    fn real_rows(&self, outcome: &SchemeOutcome) -> Result<Vec<(usize, usize)>> {
        Ok((0..outcome.encrypted.row_count()).map(|r| (r, r)).collect())
    }
}

/// One encrypted chunk's owner state, positioned inside the merged table, as handed to
/// [`ChunkedScheme::merge_chunk_states`].
#[derive(Debug)]
pub struct ChunkState {
    /// Index (in the *original* table) of the chunk's first row.
    pub row_offset: usize,
    /// Index (in the *merged encrypted* table) of the chunk's first output row.
    pub output_offset: usize,
    /// The chunk's own owner state, exactly as its `encrypt` call produced it.
    pub state: OwnerState,
}

/// Extension of [`Scheme`] required by the streaming engine (`f2_engine`): the backend
/// must support per-chunk randomness re-derivation and owner-state merging.
///
/// The engine shards a table into row-range chunks and encrypts them concurrently.
/// Two chunks with identical rows would otherwise feed identical RNG streams to the
/// probabilistic ciphers (the per-table fingerprint defense can't tell them apart), so
/// every chunk is encrypted by a [`ChunkedScheme::reseeded`] clone whose seed is
/// derived from the engine seed and the chunk index — disjoint nonce domains by
/// construction. After the workers finish, the per-chunk owner states are folded back
/// into one table-level state by [`ChunkedScheme::merge_chunk_states`], so the merged
/// outcome decrypts through the ordinary [`Scheme::decrypt`] of the *original* scheme
/// (decryption never depends on encryption-time seeds).
pub trait ChunkedScheme: Scheme + Send + Sync {
    /// A scheme identical to this one except that its encryption-time randomness is
    /// derived from `seed`. Deterministic backends (no encryption-time randomness)
    /// return an unchanged clone. Key material is shared, never re-derived: a reseeded
    /// scheme's output stays decryptable by the original.
    fn reseeded(&self, seed: u64) -> Box<dyn ChunkedScheme>;

    /// Encrypt one **borrowed chunk** of a larger table — the zero-copy entry point
    /// the engine drives. Must produce exactly the bytes `Scheme::encrypt` would
    /// produce for a standalone table holding the same rows (the engine's
    /// worker-count- and path-independence guarantees rest on this equivalence).
    ///
    /// The default materialises the view ([`TableView::to_table`], which clones the
    /// rows but inherits the chunk's dictionary-encoded index from the parent
    /// instead of rebuilding it) and delegates to `Scheme::encrypt` — correct for
    /// any backend. The cell-wise backends override it to encrypt straight off the
    /// borrowed rows, cloning nothing.
    fn encrypt_view(&self, view: &TableView<'_>) -> Result<SchemeOutcome> {
        self.encrypt(&view.to_table())
    }

    /// Fold per-chunk owner states (in chunk order) into the owner state of the
    /// concatenated table. Errors if any state was not produced by this backend.
    fn merge_chunk_states(&self, chunks: Vec<ChunkState>) -> Result<OwnerState>;

    /// Reconstruct the **persisted** (timing-free) [`EncryptionReport`] contribution
    /// of an already-encrypted chunk of `rows` input rows, without re-encrypting it —
    /// or `None` when this backend's report carries planning statistics that only
    /// encryption can produce.
    ///
    /// Crash-safe resume (`f2_engine::Engine::resume_streaming`) rebuilds a stream's
    /// trailer from the chunk frames already on disk; the wire format stores no
    /// per-chunk report, so the report must be re-derivable. The cell-wise baselines
    /// override this (their report is just the input row count); F² keeps the `None`
    /// default, making resume fall back to re-encrypting — and thereby verifying —
    /// the already-written chunks.
    fn rederive_chunk_report(&self, rows: usize) -> Option<EncryptionReport> {
        let _ = rows;
        None
    }
}

/// The persisted report shape shared by every cell-wise baseline: the whole chunk is
/// original rows, no artificial rows, no planning statistics (timings are zeroed on
/// the wire anyway).
fn cell_wise_chunk_report(rows: usize) -> EncryptionReport {
    EncryptionReport {
        overhead: OverheadBreakdown { original_rows: rows, ..OverheadBreakdown::default() },
        ..EncryptionReport::default()
    }
}

/// Merge chunk states for cell-wise backends: each chunk only carries the plaintext
/// schema, so merging checks that all chunks agree and returns the shared schema.
fn merge_cell_wise_states(scheme: &str, chunks: Vec<ChunkState>) -> Result<OwnerState> {
    let mut schema: Option<Schema> = None;
    for chunk in chunks {
        let state: &CellWiseState =
            chunk.state.downcast_ref().ok_or_else(|| wrong_state(scheme))?;
        match &schema {
            None => schema = Some(state.plaintext_schema.clone()),
            Some(s) if *s == state.plaintext_schema => {}
            Some(_) => {
                return Err(F2Error::UnsupportedInput(
                    "chunk owner states disagree on the plaintext schema".into(),
                ))
            }
        }
    }
    let schema =
        schema.ok_or_else(|| F2Error::UnsupportedInput("cannot merge zero chunk states".into()))?;
    Ok(OwnerState::new(CellWiseState { plaintext_schema: schema }))
}

/// Deterministic fingerprint of a relation's schema and contents.
///
/// The probabilistic backends fold this into their nonce-RNG seed so that two
/// `encrypt` calls on *different* tables never share a nonce stream (with the PRF
/// cipher `⟨r, F_k(r) ⊕ p⟩`, reusing `r` across tables would XOR-leak plaintext
/// relationships), while re-encrypting the same table stays reproducible per seed.
///
/// Takes the relation as `(schema, rows)` so a whole [`Table`] and a borrowed
/// [`TableView`] over the same rows fingerprint identically — which is what makes
/// the engine's view path byte-identical to the materialised one.
fn table_fingerprint(schema: &Schema, rows: &[Record]) -> u64 {
    use std::hash::{Hash, Hasher};
    // DefaultHasher with fixed keys: stable within and across runs of this binary.
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    schema.arity().hash(&mut hasher);
    rows.len().hash(&mut hasher);
    for name in schema.names() {
        name.hash(&mut hasher);
    }
    for rec in rows {
        for v in rec.values() {
            v.hash(&mut hasher);
        }
    }
    hasher.finish()
}

/// Result of encrypting one table with any [`Scheme`].
///
/// Generalizes [`EncryptionOutcome`]: the parts every backend shares are first-class
/// fields, while backend-specific secrets (provenance, MAS sets, …) live behind the
/// opaque [`OwnerState`].
#[derive(Debug)]
pub struct SchemeOutcome {
    /// The encrypted table to be outsourced to the server.
    pub encrypted: Table,
    /// Opaque owner-side state needed for decryption (never shared with the server).
    pub state: OwnerState,
    /// Per-step timings and overhead measurements.
    pub report: EncryptionReport,
}

impl SchemeOutcome {
    /// The F²-specific owner state, if this outcome was produced by [`F2Scheme`].
    pub fn f2_state(&self) -> Option<&F2OwnerState> {
        self.state.downcast_ref()
    }
}

/// Type-erased owner-side state of a [`SchemeOutcome`].
///
/// Each backend stores whatever it needs to invert its encryption; third-party
/// backends can stash their own types here without touching this crate.
pub struct OwnerState(Box<dyn Any + Send + Sync>);

impl OwnerState {
    /// Wrap a backend-specific state value.
    pub fn new<T: Any + Send + Sync>(state: T) -> Self {
        OwnerState(Box::new(state))
    }

    /// Borrow the state as `T`, if that is what this outcome carries.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.downcast_ref()
    }
}

impl fmt::Debug for OwnerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("OwnerState(<opaque>)")
    }
}

/// Owner-side state of an [`F2Scheme`] outcome.
#[derive(Debug, Clone)]
pub struct F2OwnerState {
    /// Row provenance (which output rows are real, and the conflict patches).
    pub provenance: crate::Provenance,
    /// The maximal attribute sets discovered in Step 1.
    pub mas_sets: Vec<AttrSet>,
    /// The plaintext schema, needed to rebuild the original table.
    pub plaintext_schema: Schema,
}

impl From<EncryptionOutcome> for SchemeOutcome {
    fn from(outcome: EncryptionOutcome) -> Self {
        SchemeOutcome {
            encrypted: outcome.encrypted,
            report: outcome.report,
            state: OwnerState::new(F2OwnerState {
                provenance: outcome.provenance,
                mas_sets: outcome.mas_sets,
                plaintext_schema: outcome.plaintext_schema,
            }),
        }
    }
}

/// Owner-side state shared by the cell-wise baseline schemes: they only need the
/// plaintext schema (every cell is independently invertible with the key).
#[derive(Debug, Clone)]
pub struct CellWiseState {
    /// The plaintext schema to rebuild on decryption.
    pub plaintext_schema: Schema,
}

fn wrong_state(scheme: &str) -> F2Error {
    F2Error::UnsupportedInput(format!(
        "outcome was not produced by the `{scheme}` scheme (owner state type mismatch)"
    ))
}

/// Encrypt a relation cell by cell and package the result as a [`SchemeOutcome`].
///
/// Used by every baseline backend, for whole tables and for borrowed chunk views
/// alike (the rows come in as a slice, so a view costs no clone). Baselines have no
/// MAX/SYN/FP phases, so the whole cell-encryption wall time is recorded under
/// [`StepTimings::sse`] and the overhead breakdown contains no artificial rows.
fn encrypt_cell_wise(
    schema: &Schema,
    rows: &[Record],
    mut encrypt_cell: impl FnMut(usize, &Value) -> Result<Value>,
) -> Result<SchemeOutcome> {
    if schema.arity() == 0 {
        return Err(F2Error::UnsupportedInput("table has no attributes".into()));
    }
    let start = Instant::now();
    let mut records = Vec::with_capacity(rows.len());
    for rec in rows {
        let mut values = Vec::with_capacity(schema.arity());
        for (attr, v) in rec.values().iter().enumerate() {
            values.push(encrypt_cell(attr, v)?);
        }
        records.push(Record::new(values));
    }
    let encrypted = Table::new(schema.encrypted(), records)?;
    let report = EncryptionReport {
        timings: StepTimings { sse: start.elapsed(), ..StepTimings::default() },
        overhead: OverheadBreakdown { original_rows: rows.len(), ..OverheadBreakdown::default() },
        ..EncryptionReport::default()
    };
    Ok(SchemeOutcome {
        encrypted,
        state: OwnerState::new(CellWiseState { plaintext_schema: schema.clone() }),
        report,
    })
}

/// Decrypt a cell-wise outcome back to the original table.
fn decrypt_cell_wise(
    scheme: &str,
    outcome: &SchemeOutcome,
    mut decrypt_cell: impl FnMut(usize, &Value) -> Result<Value>,
) -> Result<Table> {
    let state: &CellWiseState = outcome.state.downcast_ref().ok_or_else(|| wrong_state(scheme))?;
    if state.plaintext_schema.arity() != outcome.encrypted.arity() {
        return Err(F2Error::UnsupportedInput(
            "owner-state schema arity differs from the encrypted table".into(),
        ));
    }
    let mut records = Vec::with_capacity(outcome.encrypted.row_count());
    for (_, rec) in outcome.encrypted.iter() {
        let mut values = Vec::with_capacity(outcome.encrypted.arity());
        for (attr, cell) in rec.values().iter().enumerate() {
            values.push(decrypt_cell(attr, cell)?);
        }
        records.push(Record::new(values));
    }
    Ok(Table::new(state.plaintext_schema.clone(), records)?)
}

// ─────────────────────────────── F² ────────────────────────────────────────────────

/// Marker type giving the fluent entry point [`F2::builder`].
#[derive(Debug, Clone, Copy)]
pub struct F2;

impl F2 {
    /// Start building an [`F2Scheme`]:
    ///
    /// ```
    /// use f2_core::F2;
    /// let scheme = F2::builder()
    ///     .alpha(0.2)
    ///     .split_factor(2)
    ///     .seed(7)
    ///     .min_real_rows(2)
    ///     .build()
    ///     .unwrap();
    /// ```
    pub fn builder() -> F2Builder {
        F2Builder::default()
    }
}

/// Fluent builder for [`F2Scheme`] (replaces the `F2Config::new(..).with_seed(..)`
/// two-step construction).
///
/// Defaults match [`F2Config::default`]: α = 0.2, ϖ = 2, seed `0x5eed`, minimum 2 real
/// rows per split instance, and a master key derived from the seed unless
/// [`F2Builder::master_key`] provides one.
#[derive(Debug, Clone, Default)]
pub struct F2Builder {
    config: F2Config,
    master: Option<MasterKey>,
}

impl F2Builder {
    /// Set the α-security threshold (must lie in `(0, 1]`).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Set the split factor ϖ (must be ≥ 1; 1 disables splitting).
    pub fn split_factor(mut self, split_factor: usize) -> Self {
        self.config.split_factor = split_factor;
        self
    }

    /// Set the RNG seed (nonce generation, fake-value shuffling). Also seeds the
    /// master key unless one is supplied explicitly.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Draw the RNG seed from ambient entropy ([`f2_crypto::entropy_seed`]) instead of
    /// the fixed default, so two builds of the same pipeline never share nonce
    /// streams. Supply the master key explicitly ([`F2Builder::master_key`]) when the
    /// ciphertext must remain decryptable across processes.
    pub fn seed_from_entropy(self) -> Self {
        self.seed(f2_crypto::entropy_seed())
    }

    /// Set the minimum number of real rows retained per split instance (must be ≥ 1).
    pub fn min_real_rows(mut self, min_real_rows: usize) -> Self {
        self.config.min_real_rows_per_instance = min_real_rows;
        self
    }

    /// Supply the data owner's master key explicitly instead of deriving it from the
    /// seed.
    pub fn master_key(mut self, master: MasterKey) -> Self {
        self.master = Some(master);
        self
    }

    /// Validate and return just the [`F2Config`].
    pub fn config(&self) -> Result<F2Config> {
        self.config.validate()?;
        Ok(self.config)
    }

    /// Validate the parameters and build the scheme.
    pub fn build(self) -> Result<F2Scheme> {
        let config = self.config()?;
        let master = self.master.unwrap_or_else(|| MasterKey::from_seed(config.seed));
        Ok(F2Scheme::new(config, master))
    }
}

/// The F² scheme of the paper as a pluggable backend: frequency-hiding and exactly
/// FD-preserving.
#[derive(Debug, Clone)]
pub struct F2Scheme {
    encryptor: F2Encryptor,
}

impl F2Scheme {
    /// Create the scheme from an explicit configuration and master key (the fluent
    /// path is [`F2::builder`]).
    pub fn new(config: F2Config, master: MasterKey) -> Self {
        F2Scheme { encryptor: F2Encryptor::new(config, master) }
    }

    /// The configuration in use.
    pub fn config(&self) -> &F2Config {
        self.encryptor.config()
    }

    /// Run the underlying encryptor, keeping the concrete [`EncryptionOutcome`]
    /// (useful when the caller needs direct access to provenance and MAS sets without
    /// downcasting).
    pub fn encrypt_concrete(&self, table: &Table) -> Result<EncryptionOutcome> {
        self.encryptor.encrypt(table)
    }

    /// The same scheme with a different RNG seed: the master key (and thus
    /// decryptability) is unchanged, only nonce generation and fake-value shuffling
    /// re-derive from `seed`.
    pub fn with_seed(&self, seed: u64) -> Self {
        F2Scheme::new(self.config().with_seed(seed), self.encryptor.master().clone())
    }
}

impl ChunkedScheme for F2Scheme {
    fn reseeded(&self, seed: u64) -> Box<dyn ChunkedScheme> {
        Box::new(self.with_seed(seed))
    }

    fn merge_chunk_states(&self, chunks: Vec<ChunkState>) -> Result<OwnerState> {
        if chunks.is_empty() {
            return Err(F2Error::UnsupportedInput("cannot merge zero chunk states".into()));
        }
        let mut provenance = crate::Provenance::default();
        let mut mas_sets: Vec<AttrSet> = Vec::new();
        let mut schema: Option<Schema> = None;
        for chunk in &chunks {
            let state: &F2OwnerState =
                chunk.state.downcast_ref().ok_or_else(|| wrong_state(self.name()))?;
            match &schema {
                None => schema = Some(state.plaintext_schema.clone()),
                Some(s) if *s == state.plaintext_schema => {}
                Some(_) => {
                    return Err(F2Error::UnsupportedInput(
                        "chunk owner states disagree on the plaintext schema".into(),
                    ))
                }
            }
            // MAS sets are discovered per chunk; the merged list concatenates them so
            // that each chunk's `mas_index` values stay resolvable after offsetting.
            let mas_offset = mas_sets.len();
            mas_sets.extend_from_slice(&state.mas_sets);
            // Row indices are chunk-local on both sides: original-row indices shift by
            // the chunk's position in the plaintext, output-row indices by the number
            // of encrypted rows emitted by earlier chunks.
            for origin in &state.provenance.origins {
                provenance.origins.push(match *origin {
                    crate::RowOrigin::Real { original_row } => {
                        crate::RowOrigin::Real { original_row: original_row + chunk.row_offset }
                    }
                    crate::RowOrigin::ScaleCopy { mas_index } => {
                        crate::RowOrigin::ScaleCopy { mas_index: mas_index + mas_offset }
                    }
                    crate::RowOrigin::GroupFake { mas_index } => {
                        crate::RowOrigin::GroupFake { mas_index: mas_index + mas_offset }
                    }
                    crate::RowOrigin::ConflictCompanion { original_row } => {
                        crate::RowOrigin::ConflictCompanion {
                            original_row: original_row + chunk.row_offset,
                        }
                    }
                    crate::RowOrigin::FalsePositive { mas_index } => {
                        crate::RowOrigin::FalsePositive { mas_index: mas_index + mas_offset }
                    }
                });
            }
            for (original_row, patches) in &state.provenance.patches {
                provenance.patches.insert(
                    original_row + chunk.row_offset,
                    patches
                        .iter()
                        .map(|&(attr, out_row)| (attr, out_row + chunk.output_offset))
                        .collect(),
                );
            }
        }
        Ok(OwnerState::new(F2OwnerState {
            provenance,
            mas_sets,
            plaintext_schema: schema.expect("at least one chunk"),
        }))
    }
}

impl Scheme for F2Scheme {
    fn name(&self) -> &str {
        "f2"
    }

    fn encrypt(&self, table: &Table) -> Result<SchemeOutcome> {
        Ok(self.encryptor.encrypt(table)?.into())
    }

    fn decrypt(&self, outcome: &SchemeOutcome) -> Result<Table> {
        let state = outcome.f2_state().ok_or_else(|| wrong_state(self.name()))?;
        F2Decryptor::new(self.encryptor.master().clone()).recover_original(
            &outcome.encrypted,
            &state.provenance,
            &state.plaintext_schema,
        )
    }

    fn real_rows(&self, outcome: &SchemeOutcome) -> Result<Vec<(usize, usize)>> {
        let state = outcome.f2_state().ok_or_else(|| wrong_state(self.name()))?;
        Ok(state.provenance.real_rows())
    }
}

// ─────────────────────────── Deterministic AES baseline ────────────────────────────

/// The paper's deterministic "AES" baseline (Figure 8): every cell is encrypted with a
/// per-attribute deterministic cipher. FDs are trivially preserved; the exact frequency
/// distribution leaks.
#[derive(Debug, Clone)]
pub struct DetScheme {
    ciphers_master: MasterKey,
}

impl DetScheme {
    /// Create the baseline from the owner's master key.
    pub fn new(master: MasterKey) -> Self {
        DetScheme { ciphers_master: master }
    }

    fn ciphers(&self, arity: usize) -> Vec<DeterministicCipher> {
        (0..arity)
            .map(|a| DeterministicCipher::new(&self.ciphers_master.deterministic_key(a)))
            .collect()
    }
}

impl Scheme for DetScheme {
    fn name(&self) -> &str {
        "deterministic-aes"
    }

    fn encrypt(&self, table: &Table) -> Result<SchemeOutcome> {
        let ciphers = self.ciphers(table.arity());
        encrypt_cell_wise(
            table.schema(),
            table.rows(),
            |attr, v| Ok(ciphers[attr].encrypt_value(v)),
        )
    }

    fn decrypt(&self, outcome: &SchemeOutcome) -> Result<Table> {
        let ciphers = self.ciphers(outcome.encrypted.arity());
        decrypt_cell_wise(self.name(), outcome, |attr, cell| Ok(ciphers[attr].decrypt_value(cell)?))
    }
}

impl ChunkedScheme for DetScheme {
    // lint: allow(reseed-uses-seed) — deterministic encryption draws no
    // encryption-time randomness, so there is nothing to reseed
    fn reseeded(&self, _seed: u64) -> Box<dyn ChunkedScheme> {
        Box::new(self.clone())
    }

    fn encrypt_view(&self, view: &TableView<'_>) -> Result<SchemeOutcome> {
        // Zero-copy: encrypt straight off the borrowed rows.
        let ciphers = self.ciphers(view.arity());
        encrypt_cell_wise(view.schema(), view.rows(), |attr, v| Ok(ciphers[attr].encrypt_value(v)))
    }

    fn merge_chunk_states(&self, chunks: Vec<ChunkState>) -> Result<OwnerState> {
        merge_cell_wise_states(self.name(), chunks)
    }

    fn rederive_chunk_report(&self, rows: usize) -> Option<EncryptionReport> {
        Some(cell_wise_chunk_report(rows))
    }
}

// ─────────────────────────── Probabilistic PRF baseline ────────────────────────────

/// The per-cell probabilistic cipher `e = ⟨r, F_k(r) ⊕ p⟩` as a standalone backend:
/// maximal frequency hiding, but FDs are destroyed (every cell becomes unique), which
/// is exactly the trade-off F² resolves.
#[derive(Debug, Clone)]
pub struct ProbScheme {
    master: MasterKey,
    seed: u64,
}

impl ProbScheme {
    /// Create the baseline from the owner's master key and a nonce-RNG seed.
    pub fn new(master: MasterKey, seed: u64) -> Self {
        ProbScheme { master, seed }
    }

    /// Create the baseline with an ambient-entropy nonce seed
    /// ([`f2_crypto::entropy_seed`]): the key still decrypts, but nonce streams differ
    /// across runs.
    pub fn from_entropy(master: MasterKey) -> Self {
        Self::new(master, f2_crypto::entropy_seed())
    }

    /// The same scheme with a different nonce-RNG seed (the key is unchanged, so
    /// existing ciphertexts stay decryptable).
    pub fn with_seed(&self, seed: u64) -> Self {
        Self::new(self.master.clone(), seed)
    }

    fn ciphers(&self, arity: usize) -> Vec<ProbabilisticCipher> {
        (0..arity).map(|a| ProbabilisticCipher::new(&self.master.attribute_key(a))).collect()
    }

    /// The shared cell-wise path of `encrypt` and `encrypt_view`: encrypt `rows`
    /// under a nonce stream seeded by the relation fingerprint. The caller hands in
    /// whichever borrowed rows it has — no clone either way.
    fn encrypt_rows(&self, schema: &Schema, rows: &[Record]) -> Result<SchemeOutcome> {
        let ciphers = self.ciphers(schema.arity());
        // Fold the relation fingerprint into the seed: nonce streams must never
        // repeat across encryptions of different tables (two-time-pad otherwise).
        let mut rng = StdRng::seed_from_u64(self.seed ^ table_fingerprint(schema, rows));
        let mut scratch = f2_crypto::CellScratch::default();
        encrypt_cell_wise(schema, rows, |attr, v| {
            Ok(ciphers[attr].encrypt_value_to_cell_buffered(v, &mut rng, &mut scratch))
        })
    }
}

impl Scheme for ProbScheme {
    fn name(&self) -> &str {
        "probabilistic-prf"
    }

    fn encrypt(&self, table: &Table) -> Result<SchemeOutcome> {
        self.encrypt_rows(table.schema(), table.rows())
    }

    fn decrypt(&self, outcome: &SchemeOutcome) -> Result<Table> {
        let ciphers = self.ciphers(outcome.encrypted.arity());
        decrypt_cell_wise(self.name(), outcome, |attr, cell| Ok(ciphers[attr].decrypt_cell(cell)?))
    }
}

impl ChunkedScheme for ProbScheme {
    fn reseeded(&self, seed: u64) -> Box<dyn ChunkedScheme> {
        Box::new(self.with_seed(seed))
    }

    fn encrypt_view(&self, view: &TableView<'_>) -> Result<SchemeOutcome> {
        // Zero-copy: the fingerprint and the cell loop both run off the borrowed
        // rows, so the output is byte-identical to encrypting a materialised copy.
        self.encrypt_rows(view.schema(), view.rows())
    }

    fn merge_chunk_states(&self, chunks: Vec<ChunkState>) -> Result<OwnerState> {
        merge_cell_wise_states(self.name(), chunks)
    }

    fn rederive_chunk_report(&self, rows: usize) -> Option<EncryptionReport> {
        Some(cell_wise_chunk_report(rows))
    }
}

// ─────────────────────────────── Paillier baseline ─────────────────────────────────

/// How [`PaillierScheme`] maps relational cells onto Paillier plaintext chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PaillierFraming {
    /// One ciphertext stream per cell: each cell's encoding is chunked and every chunk
    /// is encrypted on its own. Simple, but a short cell (a few bytes) still costs a
    /// whole modular exponentiation and a full ciphertext frame.
    #[default]
    PerCell,
    /// Row packing: all cells of a row are length-prefixed, concatenated into one
    /// plaintext stream, and *that* stream is chunked — so one ciphertext typically
    /// carries several cells, cutting both the number of modular exponentiations and
    /// the ciphertext bytes per row (see `bench_baselines` and `BENCH_report.json`).
    PackedRows,
}

/// Textbook Paillier as a cell-wise backend (the paper's asymmetric probabilistic
/// baseline of Figure 8).
///
/// Each plaintext chunk, prefixed with a `0x01` marker byte, is an integer strictly
/// below the modulus; chunks are framed at the key's fixed ciphertext width, so
/// decryption is exact (no lossy folding). [`PaillierFraming`] selects whether chunks
/// are cut per cell or across a whole packed row. Either way, all chunks of a table
/// are encrypted in **one batch** over a per-table
/// [`RandomnessPool`] — the Montgomery-form blinding factors amortise the `rⁿ mod n²`
/// exponentiations, which is also what makes per-chunk encryption cheap for the
/// streaming engine's workers (each chunk is one `encrypt` call, hence one batch).
/// Still orders of magnitude slower than the symmetric backends — that relative cost
/// is the paper's point.
#[derive(Debug, Clone)]
pub struct PaillierScheme {
    keypair: PaillierKeyPair,
    seed: u64,
    framing: PaillierFraming,
}

impl PaillierScheme {
    /// Generate a key pair of the given modulus size (≥ 64 bits, so that at least one
    /// plaintext byte fits per chunk) and build the scheme with the default
    /// [`PaillierFraming::PerCell`] framing. The seed drives both key generation and
    /// the per-encryption randomness.
    pub fn new(modulus_bits: usize, seed: u64) -> Result<Self> {
        if modulus_bits < 64 {
            return Err(F2Error::UnsupportedInput(format!(
                "Paillier backend needs a modulus of at least 64 bits, got {modulus_bits}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let keypair = PaillierKeyPair::generate(modulus_bits, &mut rng)?;
        Self::with_keypair(keypair, seed)
    }

    /// [`PaillierScheme::new`] with the key-generation seed drawn from ambient
    /// entropy ([`f2_crypto::entropy_seed`]).
    pub fn from_entropy(modulus_bits: usize) -> Result<Self> {
        Self::new(modulus_bits, f2_crypto::entropy_seed())
    }

    /// Build the scheme around an existing key pair. Rejects keys whose modulus is too
    /// small to embed even one plaintext byte per chunk (the same invariant
    /// [`PaillierScheme::new`] enforces via its 64-bit floor).
    pub fn with_keypair(keypair: PaillierKeyPair, seed: u64) -> Result<Self> {
        if keypair.public().plaintext_chunk_size() == 0 {
            return Err(F2Error::UnsupportedInput(format!(
                "Paillier modulus of {} bits is too small to carry cell data",
                keypair.public().modulus().bits()
            )));
        }
        Ok(PaillierScheme { keypair, seed, framing: PaillierFraming::PerCell })
    }

    /// Switch to [`PaillierFraming::PackedRows`] (several cells per ciphertext chunk).
    /// The scheme's [`Scheme::name`] changes to `paillier-packed` so reports and
    /// benchmarks can show both framings side by side.
    pub fn packed(mut self) -> Self {
        self.framing = PaillierFraming::PackedRows;
        self
    }

    /// The framing in use.
    pub fn framing(&self) -> PaillierFraming {
        self.framing
    }

    /// The same scheme with a different randomness seed (the key pair is unchanged, so
    /// existing ciphertexts stay decryptable).
    pub fn with_seed(&self, seed: u64) -> Self {
        PaillierScheme { keypair: self.keypair.clone(), seed, framing: self.framing }
    }

    /// The key pair in use.
    pub fn keypair(&self) -> &PaillierKeyPair {
        &self.keypair
    }

    /// Cut a plaintext byte stream into marker-prefixed integer messages strictly
    /// below the modulus, appending them to `out`; returns how many messages the
    /// stream produced. This is the shared framing step of both framings — the
    /// messages of a whole table are collected first and encrypted in one
    /// [`f2_crypto::PaillierPublicKey::encrypt_batch`] call, so the blinding
    /// exponentiations amortise across the table (or, under the streaming engine,
    /// across each chunk a worker encrypts).
    fn stream_messages(&self, stream: &[u8], out: &mut Vec<f2_crypto::BigUint>) -> usize {
        let chunk_size = self.keypair.public().plaintext_chunk_size();
        let before = out.len();
        for chunk in stream.chunks(chunk_size) {
            // 0x01 marker keeps leading zero bytes of the chunk alive through the
            // integer round-trip and guarantees the message is non-zero.
            let mut message = Vec::with_capacity(chunk.len() + 1);
            message.push(0x01);
            message.extend_from_slice(chunk);
            out.push(f2_crypto::BigUint::from_bytes_be(&message));
        }
        out.len() - before
    }

    /// Batch-encrypt the collected messages through a pool sized for the batch
    /// (never more base factors than messages, at most the pool default). An empty
    /// batch — e.g. the engine's empty-chunk path — skips pool construction
    /// entirely, since seeding one costs two full exponentiations.
    fn encrypt_messages(
        &self,
        messages: &[f2_crypto::BigUint],
        rng: &mut StdRng,
    ) -> Result<Vec<PaillierCiphertext>> {
        if messages.is_empty() {
            return Ok(Vec::new());
        }
        let size = messages.len().min(RandomnessPool::DEFAULT_SIZE);
        let mut pool = RandomnessPool::new(self.keypair.public(), size, rng);
        Ok(self.keypair.public().encrypt_batch(messages, &mut pool)?)
    }

    /// Serialize a run of ciphertexts as fixed-width frames.
    fn frames_from(ciphers: &[PaillierCiphertext], width: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(ciphers.len() * width);
        for c in ciphers {
            let bytes = c.to_bytes_be();
            debug_assert!(bytes.len() <= width);
            out.resize(out.len() + width - bytes.len(), 0);
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Inverse of the [`PaillierScheme::stream_messages`] → `encrypt_batch` →
    /// [`PaillierScheme::frames_from`] pipeline: decrypt a sequence of fixed-width
    /// frames back to the original byte stream.
    fn decrypt_stream(&self, bytes: &[u8]) -> Result<Vec<u8>> {
        let width = self.keypair.public().ciphertext_width();
        if width == 0 || !bytes.len().is_multiple_of(width) {
            return Err(F2Error::UnsupportedInput(format!(
                "Paillier payload of {} bytes is not a multiple of the {width}-byte frame",
                bytes.len()
            )));
        }
        let mut stream = Vec::new();
        for frame in bytes.chunks(width) {
            let message = self.keypair.decrypt(&PaillierCiphertext::from_bytes_be(frame))?;
            let message_bytes = message.to_bytes_be();
            match message_bytes.split_first() {
                Some((0x01, chunk)) => stream.extend_from_slice(chunk),
                _ => {
                    return Err(F2Error::UnsupportedInput(
                        "Paillier chunk lost its marker byte (wrong key or corrupt cell)".into(),
                    ))
                }
            }
        }
        Ok(stream)
    }

    /// Package an encrypted table as a cell-wise [`SchemeOutcome`] (whole wall time
    /// under [`StepTimings::sse`], no artificial rows — same shape as
    /// [`encrypt_cell_wise`]).
    fn outcome(encrypted: Table, schema: &Schema, rows: usize, start: Instant) -> SchemeOutcome {
        let report = EncryptionReport {
            timings: StepTimings { sse: start.elapsed(), ..StepTimings::default() },
            overhead: OverheadBreakdown { original_rows: rows, ..OverheadBreakdown::default() },
            ..EncryptionReport::default()
        };
        SchemeOutcome {
            encrypted,
            state: OwnerState::new(CellWiseState { plaintext_schema: schema.clone() }),
            report,
        }
    }

    /// Per-cell framing: each cell's encoding is chunked on its own; every chunk of
    /// the relation is then encrypted in one batch through a shared blinding pool.
    /// Rows come in as a borrowed slice, so whole tables and chunk views share this
    /// path clone-free.
    fn encrypt_per_cell(&self, schema: &Schema, rows: &[Record]) -> Result<SchemeOutcome> {
        let arity = schema.arity();
        if arity == 0 {
            return Err(F2Error::UnsupportedInput("table has no attributes".into()));
        }
        let width = self.keypair.public().ciphertext_width();
        let mut rng = StdRng::seed_from_u64(self.seed ^ table_fingerprint(schema, rows));
        let start = Instant::now();
        let mut messages = Vec::new();
        let mut cell_counts = Vec::with_capacity(rows.len() * arity);
        for rec in rows {
            for v in rec.values() {
                cell_counts.push(self.stream_messages(&v.encode(), &mut messages));
            }
        }
        let ciphers = self.encrypt_messages(&messages, &mut rng)?;
        let mut records = Vec::with_capacity(rows.len());
        let mut cursor = 0usize;
        let mut counts = cell_counts.iter();
        for _ in 0..rows.len() {
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                let count = *counts.next().expect("one chunk count per cell");
                values
                    .push(Value::bytes(Self::frames_from(&ciphers[cursor..cursor + count], width)));
                cursor += count;
            }
            records.push(Record::new(values));
        }
        let encrypted = Table::new(schema.encrypted(), records)?;
        Ok(Self::outcome(encrypted, schema, rows.len(), start))
    }

    fn decrypt_cell(&self, cell: &Value) -> Result<Value> {
        let bytes = cell.as_bytes().ok_or_else(|| {
            F2Error::UnsupportedInput("Paillier cell is not a byte string".into())
        })?;
        let encoding = self.decrypt_stream(bytes)?;
        Value::decode(&encoding).ok_or_else(|| {
            F2Error::UnsupportedInput("decrypted Paillier cell does not decode".into())
        })
    }

    /// Append a varint length prefix: one byte for lengths below 255, else a `0xFF`
    /// marker followed by the length as a `u32`. Cell encodings are typically a few
    /// bytes, so the prefix overhead per cell is one byte — this matters because every
    /// packed-stream byte costs modulus capacity.
    fn put_packed_len(stream: &mut Vec<u8>, len: usize) {
        if len < 0xFF {
            stream.push(len as u8);
        } else {
            stream.push(0xFF);
            stream.extend_from_slice(&(len as u32).to_le_bytes());
        }
    }

    /// Read a varint length prefix written by [`PaillierScheme::put_packed_len`],
    /// advancing `pos`. Errors (via `None`) on truncation.
    fn take_packed_len(stream: &[u8], pos: &mut usize) -> Option<usize> {
        let first = *stream.get(*pos)?;
        *pos += 1;
        if first < 0xFF {
            return Some(first as usize);
        }
        let bytes: [u8; 4] = stream.get(*pos..*pos + 4)?.try_into().ok()?;
        *pos += 4;
        Some(u32::from_le_bytes(bytes) as usize)
    }

    /// Packed-rows encryption: one length-prefixed plaintext stream per row, chunked
    /// across cell boundaries, all rows batch-encrypted through one blinding pool,
    /// with the resulting frames dealt back over the row's cells in contiguous
    /// blocks (so concatenating the cells recovers frame order).
    fn encrypt_packed(&self, schema: &Schema, rows: &[Record]) -> Result<SchemeOutcome> {
        let arity = schema.arity();
        if arity == 0 {
            return Err(F2Error::UnsupportedInput("table has no attributes".into()));
        }
        let width = self.keypair.public().ciphertext_width();
        let mut rng = StdRng::seed_from_u64(self.seed ^ table_fingerprint(schema, rows));
        let start = Instant::now();
        let mut messages = Vec::new();
        let mut row_counts = Vec::with_capacity(rows.len());
        for rec in rows {
            let mut stream = Vec::new();
            for v in rec.values() {
                let encoding = v.encode();
                Self::put_packed_len(&mut stream, encoding.len());
                stream.extend_from_slice(&encoding);
            }
            row_counts.push(self.stream_messages(&stream, &mut messages));
        }
        let ciphers = self.encrypt_messages(&messages, &mut rng)?;
        let mut records = Vec::with_capacity(rows.len());
        let mut cursor = 0usize;
        for &frame_count in &row_counts {
            let frames = Self::frames_from(&ciphers[cursor..cursor + frame_count], width);
            cursor += frame_count;
            let per_cell = frame_count.div_ceil(arity);
            let mut values = Vec::with_capacity(arity);
            for attr in 0..arity {
                let lo = (attr * per_cell).min(frame_count) * width;
                let hi = ((attr + 1) * per_cell).min(frame_count) * width;
                values.push(Value::bytes(frames[lo..hi].to_vec()));
            }
            records.push(Record::new(values));
        }
        let encrypted = Table::new(schema.encrypted(), records)?;
        Ok(Self::outcome(encrypted, schema, rows.len(), start))
    }

    /// Inverse of [`PaillierScheme::encrypt_packed`].
    fn decrypt_packed(&self, outcome: &SchemeOutcome) -> Result<Table> {
        let state: &CellWiseState =
            outcome.state.downcast_ref().ok_or_else(|| wrong_state(self.name()))?;
        let arity = outcome.encrypted.arity();
        if state.plaintext_schema.arity() != arity {
            return Err(F2Error::UnsupportedInput(
                "owner-state schema arity differs from the encrypted table".into(),
            ));
        }
        let malformed =
            || F2Error::UnsupportedInput("packed Paillier row stream is malformed".into());
        let mut records = Vec::with_capacity(outcome.encrypted.row_count());
        for (_, rec) in outcome.encrypted.iter() {
            let mut frames = Vec::new();
            for cell in rec.values() {
                frames.extend_from_slice(cell.as_bytes().ok_or_else(|| {
                    F2Error::UnsupportedInput("Paillier cell is not a byte string".into())
                })?);
            }
            let stream = self.decrypt_stream(&frames)?;
            let mut pos = 0usize;
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                let len = Self::take_packed_len(&stream, &mut pos).ok_or_else(malformed)?;
                let encoding = stream.get(pos..pos + len).ok_or_else(malformed)?;
                pos += len;
                values.push(Value::decode(encoding).ok_or_else(malformed)?);
            }
            if pos != stream.len() {
                return Err(malformed());
            }
            records.push(Record::new(values));
        }
        Ok(Table::new(state.plaintext_schema.clone(), records)?)
    }
}

impl Scheme for PaillierScheme {
    fn name(&self) -> &str {
        match self.framing {
            PaillierFraming::PerCell => "paillier",
            PaillierFraming::PackedRows => "paillier-packed",
        }
    }

    fn encrypt(&self, table: &Table) -> Result<SchemeOutcome> {
        match self.framing {
            PaillierFraming::PerCell => self.encrypt_per_cell(table.schema(), table.rows()),
            PaillierFraming::PackedRows => self.encrypt_packed(table.schema(), table.rows()),
        }
    }

    fn decrypt(&self, outcome: &SchemeOutcome) -> Result<Table> {
        match self.framing {
            PaillierFraming::PerCell => {
                decrypt_cell_wise(self.name(), outcome, |_, cell| self.decrypt_cell(cell))
            }
            PaillierFraming::PackedRows => self.decrypt_packed(outcome),
        }
    }
}

impl ChunkedScheme for PaillierScheme {
    fn reseeded(&self, seed: u64) -> Box<dyn ChunkedScheme> {
        Box::new(self.with_seed(seed))
    }

    fn encrypt_view(&self, view: &TableView<'_>) -> Result<SchemeOutcome> {
        // Zero-copy: both framings consume borrowed rows directly.
        match self.framing {
            PaillierFraming::PerCell => self.encrypt_per_cell(view.schema(), view.rows()),
            PaillierFraming::PackedRows => self.encrypt_packed(view.schema(), view.rows()),
        }
    }

    fn merge_chunk_states(&self, chunks: Vec<ChunkState>) -> Result<OwnerState> {
        merge_cell_wise_states(self.name(), chunks)
    }

    fn rederive_chunk_report(&self, rows: usize) -> Option<EncryptionReport> {
        Some(cell_wise_chunk_report(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::table;

    fn fixture() -> Table {
        table! {
            ["Zip", "City", "Name"];
            ["07030", "Hoboken", "alice"],
            ["07030", "Hoboken", "bob"],
            ["10001", "NewYork", "carol"],
            ["10001", "NewYork", "dave"],
            ["08540", "Princeton", "erin"],
        }
    }

    fn assert_roundtrip(scheme: &dyn Scheme, table: &Table) {
        let outcome = scheme.encrypt(table).unwrap();
        for (_, rec) in outcome.encrypted.iter() {
            for v in rec.values() {
                assert!(v.is_bytes(), "{}: cell not ciphertext", scheme.name());
            }
        }
        let recovered = scheme.decrypt(&outcome).unwrap();
        assert!(recovered.multiset_eq(table), "{}: bad roundtrip", scheme.name());
    }

    #[test]
    fn all_backends_roundtrip_the_fixture() {
        let t = fixture();
        let master = MasterKey::from_seed(5);
        let schemes: Vec<Box<dyn Scheme>> = vec![
            Box::new(F2::builder().alpha(0.5).seed(5).build().unwrap()),
            Box::new(DetScheme::new(master.clone())),
            Box::new(ProbScheme::new(master, 5)),
            Box::new(PaillierScheme::new(64, 5).unwrap()),
        ];
        for scheme in &schemes {
            assert_roundtrip(scheme.as_ref(), &t);
        }
    }

    #[test]
    fn builder_validates() {
        assert!(F2::builder().alpha(0.0).build().is_err());
        assert!(F2::builder().alpha(1.5).build().is_err());
        assert!(F2::builder().split_factor(0).build().is_err());
        assert!(F2::builder().min_real_rows(0).build().is_err());
        let scheme = F2::builder().alpha(0.25).split_factor(3).seed(9).build().unwrap();
        assert_eq!(scheme.config().alpha, 0.25);
        assert_eq!(scheme.config().split_factor, 3);
        assert_eq!(scheme.config().seed, 9);
    }

    #[test]
    fn f2_real_rows_follow_provenance() {
        let t = fixture();
        let scheme = F2::builder().alpha(0.5).build().unwrap();
        let outcome = scheme.encrypt(&t).unwrap();
        let real = scheme.real_rows(&outcome).unwrap();
        assert_eq!(real.len(), t.row_count());
        let state = outcome.f2_state().unwrap();
        assert_eq!(real, state.provenance.real_rows());
        assert!(!state.mas_sets.is_empty());
    }

    #[test]
    fn cell_wise_real_rows_are_identity() {
        let t = fixture();
        let scheme = DetScheme::new(MasterKey::from_seed(1));
        let outcome = scheme.encrypt(&t).unwrap();
        let real = scheme.real_rows(&outcome).unwrap();
        assert_eq!(real, (0..t.row_count()).map(|r| (r, r)).collect::<Vec<_>>());
    }

    #[test]
    fn mismatched_owner_state_is_rejected() {
        let t = fixture();
        let det = DetScheme::new(MasterKey::from_seed(1));
        let f2 = F2::builder().seed(1).build().unwrap();
        let det_outcome = det.encrypt(&t).unwrap();
        let f2_outcome = f2.encrypt(&t).unwrap();
        assert!(f2.decrypt(&det_outcome).is_err());
        assert!(det.decrypt(&f2_outcome).is_err());
        // real_rows fails loudly on a foreign outcome instead of claiming an empty
        // (spuriously "secure") ground truth.
        assert!(f2.real_rows(&det_outcome).is_err());
        assert!(det_outcome.f2_state().is_none());
        assert!(f2_outcome.f2_state().is_some());
    }

    #[test]
    fn prob_scheme_nonce_streams_differ_across_tables() {
        // Regression: with the PRF cipher ⟨r, F_k(r) ⊕ p⟩, reusing the nonce stream
        // across two encrypt() calls on different tables would XOR-leak plaintexts.
        let scheme = ProbScheme::new(MasterKey::from_seed(6), 6);
        let a = table! { ["A"]; ["left"] };
        let b = table! { ["A"]; ["right"] };
        let cell = |t: &Table| {
            let out = scheme.encrypt(t).unwrap();
            out.encrypted.cell(0, 0).unwrap().as_bytes().unwrap().to_vec()
        };
        let (ca, cb) = (cell(&a), cell(&b));
        assert_ne!(&ca[..16], &cb[..16], "nonce reused across tables");
        // Same scheme + same table stays reproducible.
        assert_eq!(cell(&a), cell(&a));
    }

    #[test]
    fn packed_paillier_roundtrips_and_is_smaller() {
        let t = fixture();
        let per_cell = PaillierScheme::new(64, 8).unwrap();
        let packed = PaillierScheme::new(64, 8).unwrap().packed();
        assert_eq!(packed.name(), "paillier-packed");
        assert_eq!(packed.framing(), PaillierFraming::PackedRows);
        assert_roundtrip(&packed, &t);
        // Long and empty values cross cell boundaries inside one packed stream.
        let awkward = table! {
            ["Long", "Short", "Empty"];
            ["a-rather-long-text-value-spanning-many-chunks", "x", ""],
            ["", "y", "z"],
        };
        assert_roundtrip(&packed, &awkward);
        // Packing cells shares chunk capacity, so the ciphertext shrinks — visible
        // once the per-chunk capacity exceeds a typical cell (128-bit modulus: 14
        // payload bytes per chunk vs one chunk per short cell).
        let size = |s: &dyn Scheme| s.encrypt(&t).unwrap().encrypted.size_bytes();
        assert!(
            size(&PaillierScheme::new(128, 8).unwrap().packed())
                < size(&PaillierScheme::new(128, 8).unwrap())
        );
        // A per-cell scheme fed a packed outcome errors instead of panicking.
        let packed_outcome = packed.encrypt(&t).unwrap();
        assert!(per_cell.decrypt(&packed_outcome).is_err());
    }

    #[test]
    fn reseeding_keeps_outcomes_decryptable_by_the_original_scheme() {
        let t = fixture();
        let master = MasterKey::from_seed(12);
        let schemes: Vec<Box<dyn ChunkedScheme>> = vec![
            Box::new(F2::builder().alpha(0.5).seed(12).master_key(master.clone()).build().unwrap()),
            Box::new(DetScheme::new(master.clone())),
            Box::new(ProbScheme::new(master, 12)),
            Box::new(PaillierScheme::new(64, 12).unwrap()),
        ];
        for scheme in &schemes {
            let outcome = scheme.reseeded(0xfeed).encrypt(&t).unwrap();
            let recovered = scheme.decrypt(&outcome).unwrap();
            assert!(recovered.multiset_eq(&t), "{}: reseeded outcome lost rows", scheme.name());
        }
        // Reseeding actually changes probabilistic nonce streams.
        let prob = ProbScheme::new(MasterKey::from_seed(12), 12);
        let a = prob.reseeded(1).encrypt(&t).unwrap();
        let b = prob.reseeded(2).encrypt(&t).unwrap();
        assert_ne!(a.encrypted, b.encrypted);
        // …and with_seed is the concrete-typed equivalent.
        let c = prob.with_seed(1).encrypt(&t).unwrap();
        assert_eq!(a.encrypted, c.encrypted);
    }

    #[test]
    fn entropy_constructors_draw_fresh_seeds() {
        let a = F2::builder().seed_from_entropy().build().unwrap();
        let b = F2::builder().seed_from_entropy().build().unwrap();
        assert_ne!(a.config().seed, b.config().seed);
        let master = MasterKey::from_seed(1);
        let pa = ProbScheme::from_entropy(master.clone());
        let pb = ProbScheme::from_entropy(master);
        let t = fixture();
        // Distinct entropy seeds ⇒ distinct nonce streams for the same table.
        assert_ne!(pa.encrypt(&t).unwrap().encrypted, pb.encrypt(&t).unwrap().encrypted);
        assert!(PaillierScheme::from_entropy(64).is_ok());
    }

    #[test]
    fn encrypt_view_is_byte_identical_to_encrypting_the_materialised_chunk() {
        let t = fixture();
        let master = MasterKey::from_seed(21);
        let schemes: Vec<Box<dyn ChunkedScheme>> = vec![
            Box::new(F2::builder().alpha(0.5).seed(21).master_key(master.clone()).build().unwrap()),
            Box::new(DetScheme::new(master.clone())),
            Box::new(ProbScheme::new(master, 21)),
            Box::new(PaillierScheme::new(64, 21).unwrap()),
            Box::new(PaillierScheme::new(64, 21).unwrap().packed()),
        ];
        for scheme in &schemes {
            for range in [0..t.row_count(), 1..4, 2..2, 0..1] {
                let view = t.view(range.clone()).unwrap();
                let standalone =
                    Table::new(t.schema().clone(), t.rows()[range.clone()].to_vec()).unwrap();
                if standalone.is_empty() {
                    continue; // schemes accept empty tables; nothing to compare cell-wise
                }
                let via_view = scheme.encrypt_view(&view).unwrap();
                let via_table = scheme.encrypt(&standalone).unwrap();
                assert_eq!(
                    via_view.encrypted,
                    via_table.encrypted,
                    "{}: view path diverged on {range:?}",
                    scheme.name()
                );
                // The view outcome decrypts through the ordinary path.
                assert!(scheme.decrypt(&via_view).unwrap().multiset_eq(&standalone));
            }
        }
    }

    #[test]
    fn merge_chunk_states_validates_inputs() {
        let t = fixture();
        let f2 = F2::builder().seed(3).build().unwrap();
        let det = DetScheme::new(MasterKey::from_seed(3));
        assert!(f2.merge_chunk_states(vec![]).is_err());
        assert!(det.merge_chunk_states(vec![]).is_err());
        // Foreign states are rejected, not misinterpreted.
        let det_state = det.encrypt(&t).unwrap().state;
        assert!(f2
            .merge_chunk_states(vec![ChunkState {
                row_offset: 0,
                output_offset: 0,
                state: det_state
            }])
            .is_err());
        let f2_state = f2.encrypt(&t).unwrap().state;
        assert!(det
            .merge_chunk_states(vec![ChunkState {
                row_offset: 0,
                output_offset: 0,
                state: f2_state
            }])
            .is_err());
    }

    #[test]
    fn f2_merged_chunk_states_offset_rows_and_mas_indices() {
        let t = fixture();
        let scheme = F2::builder().alpha(0.5).seed(6).build().unwrap();
        let chunk_a = scheme.reseeded(1).encrypt(&t).unwrap();
        let chunk_b = scheme.reseeded(2).encrypt(&t).unwrap();
        let a_rows = chunk_a.encrypted.row_count();
        let a_mas = chunk_a.f2_state().unwrap().mas_sets.len();
        let merged = scheme
            .merge_chunk_states(vec![
                ChunkState { row_offset: 0, output_offset: 0, state: chunk_a.state },
                ChunkState {
                    row_offset: t.row_count(),
                    output_offset: a_rows,
                    state: chunk_b.state,
                },
            ])
            .unwrap();
        let state: &F2OwnerState = merged.downcast_ref().unwrap();
        assert_eq!(state.mas_sets.len(), 2 * a_mas);
        let real = crate::Provenance {
            origins: state.provenance.origins.clone(),
            patches: state.provenance.patches.clone(),
        }
        .real_rows();
        // Both chunks contribute every original row exactly once, shifted.
        let mut originals: Vec<usize> = real.iter().map(|&(_, orig)| orig).collect();
        originals.sort_unstable();
        assert_eq!(originals, (0..2 * t.row_count()).collect::<Vec<_>>());
    }

    #[test]
    fn paillier_rejects_tiny_moduli_and_handles_long_values() {
        assert!(PaillierScheme::new(32, 1).is_err());
        // The escape-hatch constructor enforces the same payload invariant.
        let mut rng = StdRng::seed_from_u64(1);
        let tiny = f2_crypto::PaillierKeyPair::generate(16, &mut rng).unwrap();
        assert!(PaillierScheme::with_keypair(tiny, 1).is_err());
        let scheme = PaillierScheme::new(64, 1).unwrap();
        let t = table! {
            ["Long", "Short"];
            ["a-rather-long-text-value-spanning-many-chunks", "x"],
            ["", "y"],
        };
        assert_roundtrip(&scheme, &t);
    }

    #[test]
    fn baseline_reports_record_cell_time_only() {
        let t = fixture();
        let outcome = DetScheme::new(MasterKey::from_seed(3)).encrypt(&t).unwrap();
        assert_eq!(outcome.report.overhead.original_rows, t.row_count());
        assert_eq!(outcome.report.overhead.added_rows(), 0);
        assert_eq!(outcome.report.timings.total(), outcome.report.timings.sse);
        assert_eq!(outcome.encrypted.row_count(), t.row_count());
    }

    #[test]
    fn empty_arity_rejected_everywhere() {
        let empty = Table::empty(Schema::new(vec![]).unwrap());
        let master = MasterKey::from_seed(2);
        let schemes: Vec<Box<dyn Scheme>> = vec![
            Box::new(F2::builder().build().unwrap()),
            Box::new(DetScheme::new(master.clone())),
            Box::new(ProbScheme::new(master, 2)),
            Box::new(PaillierScheme::new(64, 2).unwrap()),
        ];
        for scheme in &schemes {
            assert!(scheme.encrypt(&empty).is_err(), "{}", scheme.name());
        }
    }
}
