//! Cached telemetry handles for the F² planning phases.
//!
//! The encryptor already times its four phases (MAX → SSE → SYN → FP) with
//! `Instant` for [`StepTimings`](crate::report::StepTimings); this module records
//! those *already-measured* durations into the process-wide `f2_obs` histograms.
//! No extra clock reads happen on the encryption path, so instrumentation cannot
//! perturb the timings it reports — and, like all of `f2_obs`, it never feeds
//! back into planning, so artifacts are byte-identical with telemetry on or off.

use crate::report::StepTimings;
use f2_obs::{Histogram, Unit};
use std::sync::OnceLock;

/// Histogram help shared by the four phase samples.
const PHASE_HELP: &str = "Wall-clock duration of F2 planning/encryption phases, per encrypt call.";

fn phase(name: &'static str) -> Histogram {
    f2_obs::global().histogram(
        "f2_core_phase_seconds",
        PHASE_HELP,
        &[("phase", name)],
        Unit::Seconds,
    )
}

/// Record one encrypt call's phase breakdown into `f2_core_phase_seconds`,
/// and attribute the same durations to the active request trace (if any) —
/// still no extra clock reads.
pub(crate) fn record_phase_timings(timings: &StepTimings) {
    static PHASES: OnceLock<[Histogram; 4]> = OnceLock::new();
    let [max, sse, syn, fp] =
        PHASES.get_or_init(|| [phase("max"), phase("sse"), phase("syn"), phase("fp")]);
    max.record_duration(timings.max);
    sse.record_duration(timings.sse);
    syn.record_duration(timings.syn);
    fp.record_duration(timings.fp);
    f2_obs::ctx::record_stage("core.max", as_ns(timings.max));
    f2_obs::ctx::record_stage("core.sse", as_ns(timings.sse));
    f2_obs::ctx::record_stage("core.syn", as_ns(timings.syn));
    f2_obs::ctx::record_stage("core.fp", as_ns(timings.fp));
}

fn as_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}
