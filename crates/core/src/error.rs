//! Error type for the F² scheme.

use std::fmt;

/// Errors raised by the F² encryption/decryption pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum F2Error {
    /// The configuration was invalid (α out of range, zero split factor, …).
    InvalidConfig(String),
    /// An error bubbled up from the relational substrate.
    Relation(String),
    /// An error bubbled up from the cryptographic substrate.
    Crypto(String),
    /// Decryption was attempted with provenance that does not match the table.
    ProvenanceMismatch(String),
    /// The input table cannot be encrypted (e.g. empty schema).
    UnsupportedInput(String),
    /// A worker thread panicked while encrypting a chunk. The panic was contained
    /// (the process keeps running, other chunks finished or were abandoned cleanly);
    /// the payload message is preserved for diagnosis.
    WorkerPanicked {
        /// Index of the chunk whose encryption panicked.
        chunk: usize,
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
}

impl fmt::Display for F2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            F2Error::InvalidConfig(m) => write!(f, "invalid F2 configuration: {m}"),
            F2Error::Relation(m) => write!(f, "relational error: {m}"),
            F2Error::Crypto(m) => write!(f, "cryptographic error: {m}"),
            F2Error::ProvenanceMismatch(m) => write!(f, "provenance mismatch: {m}"),
            F2Error::UnsupportedInput(m) => write!(f, "unsupported input: {m}"),
            F2Error::WorkerPanicked { chunk, message } => {
                write!(f, "worker panicked while encrypting chunk {chunk}: {message}")
            }
        }
    }
}

impl std::error::Error for F2Error {}

impl From<f2_relation::RelationError> for F2Error {
    fn from(e: f2_relation::RelationError) -> Self {
        F2Error::Relation(e.to_string())
    }
}

impl From<f2_crypto::CryptoError> for F2Error {
    fn from(e: f2_crypto::CryptoError) -> Self {
        F2Error::Crypto(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = F2Error::InvalidConfig("alpha".into());
        assert!(e.to_string().contains("alpha"));
        let r: F2Error = f2_relation::RelationError::SchemaMismatch.into();
        assert!(matches!(r, F2Error::Relation(_)));
        let c: F2Error = f2_crypto::CryptoError::DecryptionFailed.into();
        assert!(matches!(c, F2Error::Crypto(_)));
        let p = F2Error::WorkerPanicked { chunk: 3, message: "index out of bounds".into() };
        assert!(p.to_string().contains("chunk 3"), "{p}");
        assert!(p.to_string().contains("index out of bounds"), "{p}");
    }
}
