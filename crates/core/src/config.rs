//! F² configuration: the security threshold α and the split factor ϖ.

use crate::{F2Error, Result};

/// Configuration of an F² encryption run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F2Config {
    /// The α-security threshold (Definition 2.1): the adversary's success probability
    /// in the frequency analysis attack is bounded by α. Must lie in `(0, 1]`.
    pub alpha: f64,
    /// The split factor ϖ (Step 2.2): each split equivalence class is broken into up to
    /// ϖ ciphertext instances. ϖ = 1 disables splitting.
    pub split_factor: usize,
    /// Seed for the encryption RNG (nonce generation, fake-value shuffling). Two runs
    /// with the same seed, key and input produce identical ciphertext tables.
    pub seed: u64,
    /// Safety refinement (see DESIGN.md §5): never split an equivalence class so far
    /// that an instance retains fewer than this many *real* rows. The paper's proof of
    /// Theorem 3.7 implicitly relies on split instances still witnessing FD violations
    /// for attributes outside the MAS; keeping ≥ 2 real rows per instance guarantees it.
    pub min_real_rows_per_instance: usize,
}

impl F2Config {
    /// Create a configuration with the given α and ϖ, validating ranges.
    pub fn new(alpha: f64, split_factor: usize) -> Result<Self> {
        let config = F2Config { alpha, split_factor, seed: 0x5eed, min_real_rows_per_instance: 2 };
        config.validate()?;
        Ok(config)
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(F2Error::InvalidConfig(format!(
                "alpha must be in (0, 1], got {}",
                self.alpha
            )));
        }
        if self.split_factor == 0 {
            return Err(F2Error::InvalidConfig("split factor ϖ must be ≥ 1".into()));
        }
        if self.min_real_rows_per_instance == 0 {
            return Err(F2Error::InvalidConfig("min_real_rows_per_instance must be ≥ 1".into()));
        }
        Ok(())
    }

    /// The minimum ECG size `k = ⌈1/α⌉` (§3.2.1).
    pub fn ecg_size(&self) -> usize {
        (1.0 / self.alpha).ceil() as usize
    }
}

impl Default for F2Config {
    fn default() -> Self {
        F2Config { alpha: 0.2, split_factor: 2, seed: 0x5eed, min_real_rows_per_instance: 2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_configs() {
        let c = F2Config::new(0.2, 2).unwrap();
        assert_eq!(c.ecg_size(), 5);
        assert_eq!(F2Config::new(1.0, 1).unwrap().ecg_size(), 1);
        assert_eq!(F2Config::new(0.33, 3).unwrap().ecg_size(), 4);
        assert_eq!(F2Config::new(0.1, 4).unwrap().ecg_size(), 10);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(F2Config::new(0.0, 2).is_err());
        assert!(F2Config::new(-0.5, 2).is_err());
        assert!(F2Config::new(1.5, 2).is_err());
        assert!(F2Config::new(0.2, 0).is_err());
        let c = F2Config { min_real_rows_per_instance: 0, ..F2Config::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn seed_override() {
        let c = F2Config::new(0.5, 2).unwrap().with_seed(99);
        assert_eq!(c.seed, 99);
        assert_eq!(F2Config::default().ecg_size(), 5);
    }
}
