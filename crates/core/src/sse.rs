//! Step 2 — the splitting-and-scaling encryption plan for one MAS.
//!
//! [`build_mas_plan`] turns the partition of a MAS into a list of *ciphertext
//! instances*: each instance has a plaintext value combination (real or fake), the set
//! of original rows that will carry it, and the number of artificial copies the scaling
//! phase adds. The [`crate::encryptor`] then materialises these instances as actual
//! ciphertexts and resolves conflicts between overlapping MASs.

use crate::config::F2Config;
use crate::ecg::{group_equivalence_classes, Ecg};
use crate::fake::FreshValueGenerator;
use crate::split::plan_split;
use f2_relation::{AttrSet, Partition, RowId, Table, Value};
use std::sync::Arc;

/// One ciphertext instance of a MAS plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstancePlan {
    /// Plaintext values on the MAS attributes (ascending attribute-index order).
    /// Shared with the originating ECG member — instances of one class hand out the
    /// same tuple, so splitting a class into ϖ instances costs ϖ pointer bumps, not
    /// ϖ deep clones.
    pub values: Arc<Vec<Value>>,
    /// Original rows assigned to this instance.
    pub rows: Vec<RowId>,
    /// Artificial copies added by the scaling phase (counted as SCALE overhead).
    pub scale_copies: usize,
    /// Artificial rows stemming from a fake equivalence class (counted as GROUP
    /// overhead). Fake-EC instances have no original rows.
    pub fake_rows: usize,
    /// Number of *original* rows in the equivalence class this instance was split from
    /// (used by the conflict-resolution rule: only classes with ≥ 2 original tuples can
    /// produce type-2 conflicts).
    pub ec_real_size: usize,
    /// Index of the ECG this instance belongs to.
    pub ecg_index: usize,
}

impl InstancePlan {
    /// The homogenised frequency of the instance (original rows + artificial rows).
    pub fn frequency(&self) -> usize {
        self.rows.len() + self.scale_copies + self.fake_rows
    }
}

/// The complete Step-2 plan for one MAS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasPlan {
    /// The MAS attributes.
    pub mas: AttrSet,
    /// All ciphertext instances.
    pub instances: Vec<InstancePlan>,
    /// Number of equivalence classes in the MAS partition (the paper's `t`).
    pub ec_count: usize,
    /// Number of ECGs formed.
    pub ecg_count: usize,
}

impl MasPlan {
    /// Total artificial rows this plan adds through scaling.
    pub fn scale_rows(&self) -> usize {
        self.instances.iter().map(|i| i.scale_copies).sum()
    }

    /// Total artificial rows this plan adds through fake equivalence classes.
    pub fn group_rows(&self) -> usize {
        self.instances.iter().map(|i| i.fake_rows).sum()
    }

    /// Map from original row id to the index of its instance.
    pub fn row_assignment(&self) -> std::collections::HashMap<RowId, usize> {
        let rows: usize = self.instances.iter().map(|i| i.rows.len()).sum();
        let mut map = std::collections::HashMap::with_capacity(rows);
        for (idx, inst) in self.instances.iter().enumerate() {
            for &r in &inst.rows {
                map.insert(r, idx);
            }
        }
        map
    }
}

/// Build the Step-2 plan for one MAS of the table.
pub fn build_mas_plan(
    table: &Table,
    mas: AttrSet,
    config: &F2Config,
    fresh: &mut FreshValueGenerator,
) -> MasPlan {
    build_mas_plan_from(&Partition::compute(table, mas), Some(table.columnar()), config, fresh)
}

/// [`build_mas_plan`] over an already-computed MAS partition — the encryptor computes
/// each `π_M` once and shares it between this planner and the false-positive step.
/// When the table's columnar index is supplied, the grouping step reads witness ids
/// straight off the column dictionaries instead of re-interning representatives.
pub fn build_mas_plan_from(
    partition: &Partition,
    columnar: Option<&f2_relation::ColumnarIndex>,
    config: &F2Config,
    fresh: &mut FreshValueGenerator,
) -> MasPlan {
    let mas = partition.attrs();
    let ec_count = partition.class_count();
    let groups: Vec<Ecg> = match columnar {
        Some(columnar) => {
            // Column-dictionary ids are value-sorted, exactly the contract the
            // interned grouping needs; the witness row of each class carries them.
            let positions: Vec<(Vec<u32>, usize)> = mas
                .iter()
                .map(|a| {
                    let col = columnar.column(a);
                    let ids = partition.classes().iter().map(|c| col.ids()[c.rows[0]]).collect();
                    (ids, col.distinct_count())
                })
                .collect();
            crate::ecg::group_equivalence_classes_interned(
                partition.classes(),
                &positions,
                config.ecg_size(),
                mas.len(),
                fresh,
            )
        }
        None => group_equivalence_classes(partition.classes(), config.ecg_size(), mas.len(), fresh),
    };
    let mut instances = Vec::new();
    for (ecg_index, group) in groups.iter().enumerate() {
        let sizes: Vec<usize> = group.members.iter().map(|m| m.size()).collect();
        let plan = plan_split(&sizes, config.split_factor, config.min_real_rows_per_instance);
        for (member, member_plan) in group.members.iter().zip(plan.members.iter()) {
            // Distribute the member's rows over its instances according to the planned
            // base frequencies.
            let mut cursor = 0usize;
            for (freq, &copies) in
                member_plan.instance_frequencies.iter().zip(member_plan.copies.iter())
            {
                if member.is_fake() {
                    instances.push(InstancePlan {
                        values: member.representative.clone(),
                        rows: Vec::new(),
                        scale_copies: 0,
                        fake_rows: freq + copies,
                        ec_real_size: 0,
                        ecg_index,
                    });
                } else {
                    let rows = member.rows[cursor..cursor + freq].to_vec();
                    cursor += freq;
                    instances.push(InstancePlan {
                        values: member.representative.clone(),
                        rows,
                        scale_copies: copies,
                        fake_rows: 0,
                        ec_real_size: member.rows.len(),
                        ecg_index,
                    });
                }
            }
            if !member.is_fake() {
                debug_assert_eq!(cursor, member.rows.len(), "all rows of the EC are assigned");
            }
        }
    }
    MasPlan { mas, instances, ec_count, ecg_count: groups.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::table;
    use std::collections::HashSet;

    fn figure2_like_table() -> Table {
        // Two attributes forming one MAS with several classes of different sizes.
        table! {
            ["A", "B"];
            ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"],
            ["a1x", "b2"], ["a1x", "b2"], ["a1x", "b2"], ["a1x", "b2"],
            ["a2", "b2x"], ["a2", "b2x"], ["a2", "b2x"],
            ["a2x", "b1x"], ["a2x", "b1x"],
            ["a3", "b3"], ["a3", "b3"],
        }
    }

    #[test]
    fn plan_covers_every_row_exactly_once() {
        let t = figure2_like_table();
        let config = F2Config::new(1.0 / 3.0, 2).unwrap();
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = build_mas_plan(&t, AttrSet::all(2), &config, &mut fresh);
        let mut seen = HashSet::new();
        for inst in &plan.instances {
            for &r in &inst.rows {
                assert!(seen.insert(r), "row {r} assigned twice");
            }
        }
        assert_eq!(seen.len(), t.row_count());
        assert_eq!(plan.ec_count, 5);
        assert!(plan.ecg_count >= 2);
    }

    #[test]
    fn instances_within_an_ecg_share_the_same_frequency() {
        let t = figure2_like_table();
        let config = F2Config::new(0.25, 2).unwrap();
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = build_mas_plan(&t, AttrSet::all(2), &config, &mut fresh);
        use std::collections::HashMap;
        let mut by_ecg: HashMap<usize, HashSet<usize>> = HashMap::new();
        for inst in &plan.instances {
            by_ecg.entry(inst.ecg_index).or_default().insert(inst.frequency());
        }
        for (ecg, freqs) in by_ecg {
            assert_eq!(freqs.len(), 1, "ECG {ecg} has non-homogeneous frequencies: {freqs:?}");
        }
    }

    #[test]
    fn requirement_2_instances_of_one_ec_have_distinct_assignments() {
        // Instances originating from the same EC must be distinct ciphertexts; at the
        // plan level this means their row sets are disjoint (checked above) and each
        // instance will get its own nonce during assembly. Here we check the plan keeps
        // the per-EC real size so the encryptor can enforce Requirement 2.
        let t = figure2_like_table();
        let config = F2Config::new(0.5, 3).unwrap();
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = build_mas_plan(&t, AttrSet::all(2), &config, &mut fresh);
        for inst in &plan.instances {
            if !inst.rows.is_empty() {
                assert!(inst.ec_real_size >= inst.rows.len());
            }
        }
    }

    #[test]
    fn overhead_accounting() {
        let t = figure2_like_table();
        let config = F2Config::new(0.2, 2).unwrap(); // k = 5 forces fake ECs
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = build_mas_plan(&t, AttrSet::all(2), &config, &mut fresh);
        // 5 real classes, k = 5 → at least one group, possibly with fakes if collisions
        // prevent grouping all five together. Either way accounting must be consistent.
        let total_rows: usize = plan.instances.iter().map(|i| i.rows.len()).sum();
        assert_eq!(total_rows, t.row_count());
        let artificial: usize = plan.group_rows() + plan.scale_rows();
        let freq_sum: usize = plan.instances.iter().map(|i| i.frequency()).sum();
        assert_eq!(freq_sum, total_rows + artificial);
    }

    #[test]
    fn alpha_one_gives_no_fakes() {
        let t = figure2_like_table();
        let config = F2Config::new(1.0, 1).unwrap();
        let mut fresh = FreshValueGenerator::for_table(&t);
        let plan = build_mas_plan(&t, AttrSet::all(2), &config, &mut fresh);
        assert_eq!(plan.group_rows(), 0);
        assert_eq!(plan.scale_rows(), 0);
        // With ϖ = 1 and k = 1 every EC maps to exactly one instance.
        assert_eq!(plan.instances.len(), plan.ec_count);
    }
}
