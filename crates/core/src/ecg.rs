//! Step 2.1 — grouping of equivalence classes into ECGs (§3.2.1).
//!
//! Every equivalence class of a MAS partition is placed into exactly one *equivalence
//! class group* (ECG). To provide α-security each ECG must contain at least
//! `k = ⌈1/α⌉` classes, and for security under Kerckhoffs's principle the classes of a
//! group must be pairwise **collision-free**: no two of them share a value on any MAS
//! attribute (Definition 3.4). Classes of similar size are grouped together to minimise
//! the copies the scaling phase has to add; when not enough collision-free classes are
//! available, *fake* classes with values that do not exist in the dataset are added.

use crate::fake::FreshValueGenerator;
use f2_relation::{EquivalenceClass, RowId, Value};
use std::sync::Arc;

/// One member of an ECG: either a real equivalence class or a fake one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcEntry {
    /// The (plaintext) representative value on the MAS attributes, in ascending
    /// attribute-index order. Shared (`Arc`) so grouping and the split planner can
    /// hand the same tuple to every derived instance without per-instance clones.
    pub representative: Arc<Vec<Value>>,
    /// The original rows belonging to the class (empty for fake classes).
    pub rows: Vec<RowId>,
    /// Size of the class when it is fake (real classes use `rows.len()`).
    fake_size: usize,
}

impl EcEntry {
    /// Build an entry from a real equivalence class.
    pub fn real(class: &EquivalenceClass) -> Self {
        EcEntry {
            representative: class.representative.clone(),
            rows: class.rows.clone(),
            fake_size: 0,
        }
    }

    /// Build a fake entry of the given size with fresh values.
    pub fn fake(size: usize, attr_count: usize, fresh: &mut FreshValueGenerator) -> Self {
        EcEntry {
            representative: Arc::new(fresh.take(attr_count)),
            rows: Vec::new(),
            fake_size: size.max(1),
        }
    }

    /// Number of (real or virtual) tuples in the class — the paper's frequency `f`.
    pub fn size(&self) -> usize {
        if self.rows.is_empty() {
            self.fake_size
        } else {
            self.rows.len()
        }
    }

    /// True if the entry is a fake class added by grouping.
    pub fn is_fake(&self) -> bool {
        self.rows.is_empty()
    }

    /// Collision test (Definition 3.4): two classes collide if they share a value on
    /// any single attribute position.
    pub fn collides_with(&self, other: &EcEntry) -> bool {
        self.representative.iter().zip(other.representative.iter()).any(|(a, b)| a == b)
    }
}

/// An equivalence class group.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ecg {
    /// Members, sorted by ascending size.
    pub members: Vec<EcEntry>,
}

impl Ecg {
    /// Number of member classes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of fake member classes.
    pub fn fake_members(&self) -> usize {
        self.members.iter().filter(|m| m.is_fake()).count()
    }

    /// True if all members are pairwise collision-free.
    pub fn is_collision_free(&self) -> bool {
        for i in 0..self.members.len() {
            for j in (i + 1)..self.members.len() {
                if self.members[i].collides_with(&self.members[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// Group the equivalence classes of one MAS partition into collision-free ECGs of at
/// least `k` members each, adding fake classes where necessary.
///
/// The collision structure is resolved through **per-attribute inverted indexes over
/// interned value ids**: every class's representative values are interned to dense
/// ids once, each (attribute, id) bucket lists the classes carrying that value, and
/// "collides with some group member" becomes an epoch-stamped bucket-membership
/// check — O(1) per candidate — instead of the former O(|group| × |MAS|) pairwise
/// value comparison. Grouping is near-linear in the class count plus the number of
/// value collisions; the greedy assignment (and therefore the output) is identical
/// to [`group_equivalence_classes_generic`], the retained quadratic oracle.
pub fn group_equivalence_classes(
    classes: &[EquivalenceClass],
    k: usize,
    attr_count: usize,
    fresh: &mut FreshValueGenerator,
) -> Vec<Ecg> {
    // Intern every representative position: rep_ids[p][c] is the dense id of class
    // c's value on MAS position p, ids assigned in ascending Value order so id
    // comparisons order exactly like value comparisons.
    let positions: Vec<(Vec<u32>, usize)> = (0..attr_count)
        .map(|p| {
            let (ids, dict) =
                f2_relation::columnar::intern_values(classes.iter().map(|c| &c.representative[p]));
            (ids, dict.len())
        })
        .collect();
    group_equivalence_classes_interned(classes, &positions, k, attr_count, fresh)
}

/// [`group_equivalence_classes`] with caller-supplied per-position value ids
/// (`positions[p] = (ids, id_bound)` where `ids[c]` is class `c`'s value id at MAS
/// position `p` and every id is `< id_bound`). Ids must order like the values they
/// stand for — the table's column-dictionary ids do, so the SSE planner passes
/// witness ids straight off the columnar index instead of re-interning
/// representatives.
pub fn group_equivalence_classes_interned(
    classes: &[EquivalenceClass],
    positions: &[(Vec<u32>, usize)],
    k: usize,
    attr_count: usize,
    fresh: &mut FreshValueGenerator,
) -> Vec<Ecg> {
    assert!(k >= 1, "ECG size must be at least 1");
    let t = classes.len();
    // Inverted index: per position, value id → classes carrying that value, in a
    // flat counting-sort layout (offsets + one class array, no per-bucket Vec).
    let buckets: Vec<(Vec<u32>, Vec<u32>)> = positions
        .iter()
        .map(|(ids, distinct)| {
            let mut offsets = vec![0u32; *distinct + 1];
            for &id in ids {
                offsets[id as usize + 1] += 1;
            }
            for i in 1..offsets.len() {
                offsets[i] += offsets[i - 1];
            }
            let mut flat = vec![0u32; ids.len()];
            let mut cursor = offsets.clone();
            for (c, &id) in ids.iter().enumerate() {
                let slot = &mut cursor[id as usize];
                flat[*slot as usize] = c as u32;
                *slot += 1;
            }
            (offsets, flat)
        })
        .collect();

    // Sort by ascending size (ties broken by representative for determinism; the
    // interned id tuples compare identically to the representatives). Keys are laid
    // out flat so the comparator is a size compare plus one slice compare.
    let mut keys: Vec<u32> = Vec::with_capacity(t * attr_count);
    for c in 0..t {
        keys.extend(positions.iter().map(|(ids, _)| ids[c]));
    }
    let mut order: Vec<usize> = (0..t).collect();
    order.sort_unstable_by(|&a, &b| {
        classes[a].size().cmp(&classes[b].size()).then_with(|| {
            keys[a * attr_count..(a + 1) * attr_count]
                .cmp(&keys[b * attr_count..(b + 1) * attr_count])
        })
    });

    let mut assigned = vec![false; t];
    // blocked[c] == epoch ⇔ class c shares a value with a member of the group
    // currently being assembled.
    let mut blocked: Vec<u32> = vec![0; t];
    let mut epoch: u32 = 0;
    let block_for = |member: usize, epoch: u32, blocked: &mut Vec<u32>| {
        for ((ids, _), (offsets, flat)) in positions.iter().zip(&buckets) {
            let id = ids[member] as usize;
            for &c in &flat[offsets[id] as usize..offsets[id + 1] as usize] {
                blocked[c as usize] = epoch;
            }
        }
    };
    let mut groups = Vec::new();
    for (pos, &start) in order.iter().enumerate() {
        if assigned[start] {
            continue;
        }
        let mut group = Ecg { members: vec![EcEntry::real(&classes[start])] };
        assigned[start] = true;
        // Greedily add the closest-size collision-free classes.
        if k > 1 {
            epoch += 1;
            block_for(start, epoch, &mut blocked);
            for &cand in order.iter().skip(pos + 1) {
                if group.len() >= k {
                    break;
                }
                if assigned[cand] || blocked[cand] == epoch {
                    continue;
                }
                group.members.push(EcEntry::real(&classes[cand]));
                assigned[cand] = true;
                block_for(cand, epoch, &mut blocked);
            }
        }
        // Pad with fake classes of the group's minimum size.
        let min_size = group.members.iter().map(EcEntry::size).min().unwrap_or(1);
        while group.len() < k {
            group.members.push(EcEntry::fake(min_size, attr_count, fresh));
        }
        // Keep members sorted by size (split-point selection expects ascending order).
        group.members.sort_by_key(EcEntry::size);
        groups.push(group);
    }
    groups
}

/// The original O(t²) pairwise-scan implementation, retained as the equivalence
/// oracle for the inverted-index path (see `crates/core/tests/interned_plan_equiv.rs`).
pub fn group_equivalence_classes_generic(
    classes: &[EquivalenceClass],
    k: usize,
    attr_count: usize,
    fresh: &mut FreshValueGenerator,
) -> Vec<Ecg> {
    assert!(k >= 1, "ECG size must be at least 1");
    // Sort by ascending size (ties broken by representative for determinism).
    let mut order: Vec<usize> = (0..classes.len()).collect();
    order.sort_by(|&a, &b| {
        classes[a]
            .size()
            .cmp(&classes[b].size())
            .then_with(|| classes[a].representative.cmp(&classes[b].representative))
    });
    let mut assigned = vec![false; classes.len()];
    let mut groups = Vec::new();
    for (pos, &start) in order.iter().enumerate() {
        if assigned[start] {
            continue;
        }
        let mut group = Ecg { members: vec![EcEntry::real(&classes[start])] };
        assigned[start] = true;
        // Greedily add the closest-size collision-free classes.
        if k > 1 {
            for &cand in order.iter().skip(pos + 1) {
                if group.len() >= k {
                    break;
                }
                if assigned[cand] {
                    continue;
                }
                let entry = EcEntry::real(&classes[cand]);
                if group.members.iter().all(|m| !m.collides_with(&entry)) {
                    group.members.push(entry);
                    assigned[cand] = true;
                }
            }
        }
        // Pad with fake classes of the group's minimum size.
        let min_size = group.members.iter().map(EcEntry::size).min().unwrap_or(1);
        while group.len() < k {
            group.members.push(EcEntry::fake(min_size, attr_count, fresh));
        }
        // Keep members sorted by size (split-point selection expects ascending order).
        group.members.sort_by_key(EcEntry::size);
        groups.push(group);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::Value;

    fn ec(rep: &[&str], rows: &[usize]) -> EquivalenceClass {
        EquivalenceClass {
            representative: Arc::new(rep.iter().map(|s| Value::text(*s)).collect()),
            rows: rows.to_vec(),
        }
    }

    /// The five classes of Figure 2.
    fn figure2_classes() -> Vec<EquivalenceClass> {
        vec![
            ec(&["a1", "b1"], &[0, 3, 4, 6, 11]),
            ec(&["a1", "b2"], &[1, 5, 7, 13]),
            ec(&["a2", "b2"], &[2, 8, 15]),
            ec(&["a2", "b1"], &[9, 10]),
            ec(&["a3", "b3"], &[12, 14]),
        ]
    }

    #[test]
    fn figure2_grouping_with_one_third_security() {
        // α = 1/3 → k = 3. The paper groups {C1, C3, fake} and {C2, C4, C5}.
        let classes = figure2_classes();
        let mut fresh = FreshValueGenerator::new();
        let groups = group_equivalence_classes(&classes, 3, 2, &mut fresh);
        assert_eq!(groups.len(), 2);
        for g in &groups {
            assert!(g.len() >= 3, "each ECG must have at least k classes");
            assert!(g.is_collision_free(), "ECG members must be collision-free");
        }
        // Exactly one fake class is needed in total (5 real classes → 6 slots).
        let fakes: usize = groups.iter().map(Ecg::fake_members).sum();
        assert_eq!(fakes, 1);
        // C1 = (a1,b1) and C2 = (a1,b2) must not share a group (collision on a1);
        // likewise C2/C3 (b2) and C3/C4 (a2).
        for g in &groups {
            let reps: Vec<&Vec<Value>> = g
                .members
                .iter()
                .filter(|m| !m.is_fake())
                .map(|m| m.representative.as_ref())
                .collect();
            for i in 0..reps.len() {
                for j in (i + 1)..reps.len() {
                    assert!(
                        reps[i].iter().zip(reps[j].iter()).all(|(a, b)| a != b),
                        "collision inside an ECG"
                    );
                }
            }
        }
    }

    #[test]
    fn every_class_is_assigned_exactly_once() {
        let classes = figure2_classes();
        let mut fresh = FreshValueGenerator::new();
        let groups = group_equivalence_classes(&classes, 2, 2, &mut fresh);
        let mut all_rows: Vec<usize> =
            groups.iter().flat_map(|g| g.members.iter().flat_map(|m| m.rows.clone())).collect();
        all_rows.sort_unstable();
        assert_eq!(all_rows, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn k_equal_one_means_singleton_groups_without_fakes() {
        let classes = figure2_classes();
        let mut fresh = FreshValueGenerator::new();
        let groups = group_equivalence_classes(&classes, 1, 2, &mut fresh);
        assert_eq!(groups.len(), classes.len());
        assert!(groups.iter().all(|g| g.fake_members() == 0));
        assert_eq!(fresh.issued(), 0);
    }

    #[test]
    fn colliding_classes_force_fakes() {
        // All classes share value "x" on attribute 0 → no two can share a group.
        let classes =
            vec![ec(&["x", "1"], &[0, 1]), ec(&["x", "2"], &[2, 3]), ec(&["x", "3"], &[4, 5, 6])];
        let mut fresh = FreshValueGenerator::new();
        let groups = group_equivalence_classes(&classes, 2, 2, &mut fresh);
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.len(), 2);
            assert_eq!(g.fake_members(), 1);
            assert!(g.is_collision_free());
            // The fake class copies the group's minimum size.
            let real_size = g.members.iter().find(|m| !m.is_fake()).unwrap().size();
            let fake_size = g.members.iter().find(|m| m.is_fake()).unwrap().size();
            assert_eq!(fake_size, real_size);
        }
    }

    #[test]
    fn members_are_sorted_by_size() {
        let classes = figure2_classes();
        let mut fresh = FreshValueGenerator::new();
        for g in group_equivalence_classes(&classes, 3, 2, &mut fresh) {
            let sizes: Vec<usize> = g.members.iter().map(EcEntry::size).collect();
            let mut sorted = sizes.clone();
            sorted.sort_unstable();
            assert_eq!(sizes, sorted);
        }
    }

    #[test]
    fn fake_entry_properties() {
        let mut fresh = FreshValueGenerator::new();
        let fake = EcEntry::fake(4, 3, &mut fresh);
        assert!(fake.is_fake());
        assert_eq!(fake.size(), 4);
        assert_eq!(fake.representative.len(), 3);
        let real = EcEntry::real(&ec(&["a"], &[7]));
        assert!(!real.is_fake());
        assert_eq!(real.size(), 1);
        assert!(!fake.collides_with(&real));
    }
}
