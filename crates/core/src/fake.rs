//! Generation of artificial ("fake") plaintext values.
//!
//! Three of the four F² steps need values "that do not exist in the original dataset":
//! fake equivalence classes added during grouping (§3.2.1), the fresh values `v_X`,
//! `v_Y` used by conflict resolution (§3.3), and the artificial record pairs that
//! eliminate false-positive FDs (§3.4). The server cannot distinguish them from real
//! values because everything is encrypted before outsourcing; the data owner recognises
//! them after decryption by their reserved prefix.

use f2_relation::{FastSet, Table, Value};

/// Reserved prefix identifying artificial plaintext values.
pub const FAKE_PREFIX: &str = "\u{1}f2:";

/// A generator of plaintext values guaranteed to be fresh: distinct from every value in
/// the original dataset and from every previously generated fake value.
#[derive(Debug, Clone)]
pub struct FreshValueGenerator {
    counter: u64,
    existing: FastSet<Value>,
}

impl FreshValueGenerator {
    /// Create a generator that avoids every value occurring in `table`.
    pub fn for_table(table: &Table) -> Self {
        FreshValueGenerator {
            counter: 0,
            existing: table.columnar().distinct_values().cloned().collect(),
        }
    }

    /// Create a generator with no exclusions (for tests).
    pub fn new() -> Self {
        FreshValueGenerator { counter: 0, existing: FastSet::default() }
    }

    /// Produce the next fresh value.
    pub fn next_value(&mut self) -> Value {
        loop {
            let v = Value::Text(fake_text(self.counter));
            self.counter += 1;
            if !self.existing.contains(&v) {
                return v;
            }
        }
    }

    /// Produce `n` fresh values.
    pub fn take(&mut self, n: usize) -> Vec<Value> {
        (0..n).map(|_| self.next_value()).collect()
    }

    /// Number of fresh values handed out so far.
    pub fn issued(&self) -> u64 {
        self.counter
    }
}

impl Default for FreshValueGenerator {
    fn default() -> Self {
        FreshValueGenerator::new()
    }
}

/// Render `{FAKE_PREFIX}{counter:08x}` without going through the `format!` machinery
/// (this sits on the artificial-row hot path; byte-for-byte identical output).
fn fake_text(counter: u64) -> String {
    if counter > u64::from(u32::MAX) {
        // `{:08x}` widens beyond 8 digits here; keep the slow path for exactness.
        return format!("{FAKE_PREFIX}{counter:08x}");
    }
    let mut s = String::with_capacity(FAKE_PREFIX.len() + 8);
    s.push_str(FAKE_PREFIX);
    for shift in (0..8).rev() {
        let nibble = ((counter >> (shift * 4)) & 0xf) as u32;
        s.push(char::from_digit(nibble, 16).expect("nibble < 16"));
    }
    s
}

/// Is this plaintext value one of the artificial values produced by
/// [`FreshValueGenerator`]? (Only meaningful on the data-owner side, after decryption.)
pub fn is_artificial_value(value: &Value) -> bool {
    matches!(value, Value::Text(s) if s.starts_with(FAKE_PREFIX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::table;

    #[test]
    fn fresh_values_are_distinct() {
        let mut g = FreshValueGenerator::new();
        let vs = g.take(100);
        let set: std::collections::HashSet<_> = vs.iter().collect();
        assert_eq!(set.len(), 100);
        assert_eq!(g.issued(), 100);
        assert!(vs.iter().all(is_artificial_value));
    }

    #[test]
    fn fresh_values_avoid_table_values() {
        let t = table! {
            ["A"];
            ["x"],
            ["y"],
        };
        let mut g = FreshValueGenerator::for_table(&t);
        for _ in 0..50 {
            let v = g.next_value();
            assert!(!t.all_values().contains(&v));
        }
    }

    #[test]
    fn artificial_detection() {
        assert!(is_artificial_value(&Value::text(format!("{FAKE_PREFIX}0001"))));
        assert!(!is_artificial_value(&Value::text("Hoboken")));
        assert!(!is_artificial_value(&Value::Int(3)));
    }
}
