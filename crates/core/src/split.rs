//! Step 2.2 — choosing the optimal split point and the scaling targets (§3.2.2).
//!
//! Within one ECG (classes sorted by ascending size `f₁ ≤ … ≤ f_k`) the scheme picks a
//! *split point* `j`: classes before `j` are not split, classes from `j` on are split
//! into up to ϖ ciphertext instances. Afterwards the scaling phase pads every instance
//! with copies until all instances of the group share the same frequency `T`. The split
//! point is chosen to minimise the number of copies added (the paper's cases R₁/R₂);
//! we evaluate the cost of every candidate `j` directly, which is O(k²) for a group of
//! `k` classes and subsumes both cases.
//!
//! One refinement over the paper (documented in DESIGN.md): the effective per-class
//! split factor is capped so that every instance of a class of size ≥ 2 keeps at least
//! `min_real_rows` original rows. This preserves the witnesses of FD violations for
//! attributes outside the MAS, which the paper's Theorem 3.7 argument needs.

/// The split-and-scale plan for one ECG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitPlan {
    /// Index of the first member that is split (members are ordered by ascending size).
    pub split_point: usize,
    /// The homogenised frequency every ciphertext instance reaches after scaling.
    pub target_frequency: usize,
    /// Per-member plans, in the same order as the ECG members.
    pub members: Vec<MemberSplit>,
}

/// How one equivalence class is split and scaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberSplit {
    /// Frequencies of the ciphertext instances before scaling (they sum to the class
    /// size — Requirement 1 of Definition 3.1).
    pub instance_frequencies: Vec<usize>,
    /// Copies added to each instance by the scaling phase.
    pub copies: Vec<usize>,
}

impl MemberSplit {
    /// Number of ciphertext instances for the class.
    pub fn instance_count(&self) -> usize {
        self.instance_frequencies.len()
    }

    /// Total copies added for this class.
    pub fn total_copies(&self) -> usize {
        self.copies.iter().sum()
    }
}

impl SplitPlan {
    /// Total number of copies the scaling phase adds for the whole ECG.
    pub fn total_copies(&self) -> usize {
        self.members.iter().map(MemberSplit::total_copies).sum()
    }
}

/// Split `size` tuples into `parts` instances as evenly as possible.
fn even_split(size: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1).min(size.max(1));
    let base = size / parts;
    let rem = size % parts;
    (0..parts).map(|i| if i < rem { base + 1 } else { base }).filter(|&f| f > 0).collect()
}

/// The effective split factor for a class of the given size.
fn effective_split(size: usize, split_factor: usize, min_real_rows: usize) -> usize {
    if size < 2 {
        return 1;
    }
    let cap = (size / min_real_rows.max(1)).max(1);
    split_factor.min(cap).max(1)
}

/// Compute the optimal split plan for an ECG whose member sizes (ascending) are given.
pub fn plan_split(sizes: &[usize], split_factor: usize, min_real_rows: usize) -> SplitPlan {
    assert!(!sizes.is_empty(), "an ECG has at least one member");
    debug_assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "sizes must be ascending");
    let k = sizes.len();
    // Candidate costs are evaluated arithmetically: splitting member `i` into `wᵢ`
    // even parts yields `wᵢ` instances with maximum `⌈fᵢ/wᵢ⌉` and sum `fᵢ`, so for a
    // split point `j` the scaling cost is `target × instance_count − Σf` without
    // materialising any frequency vector. (The former implementation rebuilt every
    // candidate's `Vec<Vec<usize>>`, O(k²) allocations per ECG.)
    let total: usize = sizes.iter().sum();
    let splits: Vec<(usize, usize)> = sizes
        .iter()
        .map(|&f| {
            if f == 0 {
                // even_split(0, ·) filters the zero instance away entirely.
                (0, 0)
            } else if split_factor > 1 {
                let w = effective_split(f, split_factor, min_real_rows);
                let parts = w.max(1).min(f);
                (parts, f.div_ceil(parts))
            } else {
                (1, f)
            }
        })
        .collect();
    // Suffix aggregates over the split variants (members ≥ j are split).
    let mut suffix_count = vec![0usize; k + 1];
    let mut suffix_max = vec![0usize; k + 1];
    for i in (0..k).rev() {
        suffix_count[i] = suffix_count[i + 1] + splits[i].0;
        suffix_max[i] = suffix_max[i + 1].max(splits[i].1);
    }
    let mut best: Option<(usize, usize)> = None; // (cost, j)
                                                 // j = k means "split nothing"; j = 0 means "split everything".
    for j in (0..=k).rev() {
        // Members i < j stay unsplit: sizes are ascending, so their max is sizes[j-1].
        let unsplit_max = if j > 0 { sizes[j - 1] } else { 0 };
        let target = unsplit_max.max(suffix_max[j]);
        let count = j + suffix_count[j];
        let cost = target * count - total;
        // Prefer lower cost; on ties prefer the smaller split point (more splitting),
        // which lowers the homogenised frequency at no extra cost — strictly better for
        // frequency hiding.
        let better = match &best {
            None => true,
            Some((best_cost, _)) => cost <= *best_cost,
        };
        if better {
            best = Some((cost, j));
        }
    }
    let (_, j) = best.expect("at least one candidate evaluated");
    // Materialise only the winning candidate.
    let freqs: Vec<Vec<usize>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            if i >= j && split_factor > 1 {
                even_split(f, effective_split(f, split_factor, min_real_rows))
            } else {
                vec![f]
            }
        })
        .collect();
    let target = freqs.iter().flatten().copied().max().unwrap_or(0);
    let members = freqs
        .into_iter()
        .map(|instance_frequencies| {
            let copies = instance_frequencies.iter().map(|&f| target - f).collect();
            MemberSplit { instance_frequencies, copies }
        })
        .collect();
    SplitPlan { split_point: j, target_frequency: target, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_split_distributes_remainder() {
        assert_eq!(even_split(7, 2), vec![4, 3]);
        assert_eq!(even_split(6, 3), vec![2, 2, 2]);
        assert_eq!(even_split(5, 10), vec![1, 1, 1, 1, 1]);
        assert_eq!(even_split(1, 3), vec![1]);
        assert_eq!(even_split(0, 3), Vec::<usize>::new());
    }

    #[test]
    fn effective_split_respects_min_real_rows() {
        assert_eq!(effective_split(10, 4, 2), 4);
        assert_eq!(effective_split(6, 4, 2), 3);
        assert_eq!(effective_split(3, 4, 2), 1);
        assert_eq!(effective_split(2, 4, 2), 1);
        assert_eq!(effective_split(1, 4, 2), 1);
        assert_eq!(effective_split(10, 4, 1), 4);
    }

    #[test]
    fn paper_figure4_example() {
        // Figure 4: ECG1 = {C2 (2), C1 (5)} with ϖ = 2 (min_real_rows relaxed to 1 to
        // mirror the paper exactly): C1 splits into 3+2... the paper shows frequencies
        // homogenised at 3 with instances (3,3) for C1 and 3 for C2 after scaling.
        let plan = plan_split(&[2, 5], 2, 1);
        assert_eq!(plan.target_frequency, 3);
        // Member 0 (size 2): one instance of 2, scaled to 3 → 1 copy.
        assert_eq!(plan.members[0].instance_frequencies, vec![2]);
        assert_eq!(plan.members[0].copies, vec![1]);
        // Member 1 (size 5): split into (3, 2), scaled to 3 → 1 copy.
        assert_eq!(plan.members[1].instance_frequencies, vec![3, 2]);
        assert_eq!(plan.members[1].copies, vec![0, 1]);
        assert_eq!(plan.total_copies(), 2);
    }

    #[test]
    fn no_split_factor_means_pure_scaling() {
        let plan = plan_split(&[1, 2, 5], 1, 2);
        assert_eq!(plan.target_frequency, 5);
        assert_eq!(plan.total_copies(), (5 - 1) + (5 - 2));
        assert!(plan.members.iter().all(|m| m.instance_count() == 1));
    }

    #[test]
    fn splitting_reduces_copies_for_skewed_groups() {
        // Sizes 1,1,1,9 with ϖ=3: without splitting we would add 3×8 = 24 copies;
        // splitting the large class into 3×3 adds only 3×2 = 6.
        let no_split = plan_split(&[1, 1, 1, 9], 1, 1);
        let with_split = plan_split(&[1, 1, 1, 9], 3, 1);
        assert!(with_split.total_copies() < no_split.total_copies());
        assert_eq!(with_split.target_frequency, 3);
    }

    #[test]
    fn requirement_1_frequencies_sum_to_class_size() {
        let sizes = vec![1, 2, 3, 8, 13];
        let plan = plan_split(&sizes, 4, 2);
        for (i, m) in plan.members.iter().enumerate() {
            assert_eq!(m.instance_frequencies.iter().sum::<usize>(), sizes[i]);
        }
    }

    #[test]
    fn singleton_group() {
        let plan = plan_split(&[4], 2, 2);
        assert_eq!(plan.target_frequency, 2);
        assert_eq!(plan.members[0].instance_frequencies, vec![2, 2]);
        assert_eq!(plan.total_copies(), 0);
    }

    /// The former candidate-materialising planner (every split point's frequency
    /// vectors rebuilt), kept as the equivalence oracle for the arithmetic
    /// suffix-aggregate evaluation.
    fn plan_split_oracle(sizes: &[usize], split_factor: usize, min_real_rows: usize) -> SplitPlan {
        let k = sizes.len();
        let mut best: Option<(usize, usize, Vec<Vec<usize>>)> = None;
        for j in (0..=k).rev() {
            let mut freqs: Vec<Vec<usize>> = Vec::with_capacity(k);
            for (i, &f) in sizes.iter().enumerate() {
                if i >= j && split_factor > 1 {
                    let w = effective_split(f, split_factor, min_real_rows);
                    freqs.push(even_split(f, w));
                } else {
                    freqs.push(vec![f]);
                }
            }
            let target = freqs.iter().flatten().copied().max().unwrap_or(0);
            let cost: usize = freqs.iter().flatten().map(|&f| target - f).sum();
            let better = match &best {
                None => true,
                Some((best_cost, _, _)) => cost <= *best_cost,
            };
            if better {
                best = Some((cost, j, freqs));
            }
        }
        let (_, j, freqs) = best.expect("at least one candidate evaluated");
        let target = freqs.iter().flatten().copied().max().unwrap_or(0);
        let members = freqs
            .into_iter()
            .map(|instance_frequencies| {
                let copies = instance_frequencies.iter().map(|&f| target - f).collect();
                MemberSplit { instance_frequencies, copies }
            })
            .collect();
        SplitPlan { split_point: j, target_frequency: target, members }
    }

    proptest! {
        #[test]
        fn arithmetic_cost_evaluation_matches_oracle(
            mut sizes in proptest::collection::vec(0usize..40, 1..8),
            split in 1usize..6,
            min_real in 1usize..3,
        ) {
            sizes.sort_unstable();
            let fast = plan_split(&sizes, split, min_real);
            let oracle = plan_split_oracle(&sizes, split, min_real);
            prop_assert_eq!(fast, oracle);
        }

        #[test]
        fn plan_invariants(
            mut sizes in proptest::collection::vec(1usize..40, 1..8),
            split in 1usize..6,
            min_real in 1usize..3,
        ) {
            sizes.sort_unstable();
            let plan = plan_split(&sizes, split, min_real);
            // Requirement 1: instance frequencies of each member sum to its size.
            for (i, m) in plan.members.iter().enumerate() {
                prop_assert_eq!(m.instance_frequencies.iter().sum::<usize>(), sizes[i]);
                prop_assert_eq!(m.instance_frequencies.len(), m.copies.len());
                // After scaling every instance reaches the target frequency.
                for (f, c) in m.instance_frequencies.iter().zip(m.copies.iter()) {
                    prop_assert_eq!(f + c, plan.target_frequency);
                }
                // Effective-split cap: members of size ≥ 2 keep ≥ min_real real rows
                // per instance whenever they are split at all.
                if m.instance_count() > 1 {
                    for &f in &m.instance_frequencies {
                        prop_assert!(f >= min_real);
                    }
                }
            }
            // The chosen plan is no worse than the two extremes (split all / split none).
            let split_all: usize = {
                let p = plan_split(&sizes, split, min_real);
                p.total_copies()
            };
            prop_assert!(plan.total_copies() <= split_all);
        }
    }
}
