//! Per-run measurements: step timings and artificial-record overhead.
//!
//! These are exactly the quantities the paper's evaluation plots: Figures 6–8 report
//! per-step encryption time (MAX, SSE, SYN, FP) and Figure 9 reports the amount of
//! artificial records added by each step (GROUP, SCALE, SYN, FP) as a fraction of the
//! data size.

use std::time::Duration;

/// Wall-clock time spent in each of the four F² steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepTimings {
    /// Step 1: finding maximal attribute sets (the paper's "MAX").
    pub max: Duration,
    /// Step 2: grouping + splitting-and-scaling encryption (the paper's "SSE").
    pub sse: Duration,
    /// Step 3: conflict resolution (the paper's "SYN").
    pub syn: Duration,
    /// Step 4: eliminating false-positive FDs (the paper's "FP").
    pub fp: Duration,
}

impl StepTimings {
    /// Total encryption time.
    pub fn total(&self) -> Duration {
        self.max + self.sse + self.syn + self.fp
    }
}

/// Number of artificial records added by each phase, and the resulting space overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverheadBreakdown {
    /// Rows of the original table.
    pub original_rows: usize,
    /// Rows added by the grouping phase (fake equivalence classes), "GROUP".
    pub group_rows: usize,
    /// Rows added by the scaling phase, "SCALE".
    pub scale_rows: usize,
    /// Rows added by conflict resolution, "SYN".
    pub syn_rows: usize,
    /// Rows added by false-positive-FD elimination, "FP".
    pub fp_rows: usize,
}

impl OverheadBreakdown {
    /// Total rows of the encrypted table.
    pub fn total_rows(&self) -> usize {
        self.original_rows + self.added_rows()
    }

    /// Total artificial rows.
    pub fn added_rows(&self) -> usize {
        self.group_rows + self.scale_rows + self.syn_rows + self.fp_rows
    }

    /// The paper's overhead ratio `r = (s' − s) / s` measured in rows.
    pub fn overhead_ratio(&self) -> f64 {
        if self.original_rows == 0 {
            return 0.0;
        }
        self.added_rows() as f64 / self.original_rows as f64
    }

    /// Per-step overhead ratios `(GROUP, SCALE, SYN, FP)`, each relative to the
    /// original size — the stacked bars of Figure 9.
    pub fn per_step_ratios(&self) -> (f64, f64, f64, f64) {
        if self.original_rows == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let n = self.original_rows as f64;
        (
            self.group_rows as f64 / n,
            self.scale_rows as f64 / n,
            self.syn_rows as f64 / n,
            self.fp_rows as f64 / n,
        )
    }
}

/// Full measurement report for one encryption run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EncryptionReport {
    /// Per-step wall-clock times.
    pub timings: StepTimings,
    /// Artificial record counts.
    pub overhead: OverheadBreakdown,
    /// Number of MASs discovered (Step 1).
    pub mas_count: usize,
    /// Number of overlapping MAS pairs (`h` of Theorem 3.3).
    pub overlapping_mas_pairs: usize,
    /// Total number of equivalence classes across all MAS partitions (the paper's `t`,
    /// which governs the quadratic cost of the SSE step).
    pub equivalence_classes: usize,
    /// Number of maximum false-positive FDs eliminated by Step 4.
    pub false_positive_fds: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_total() {
        let t = StepTimings {
            max: Duration::from_millis(10),
            sse: Duration::from_millis(20),
            syn: Duration::from_millis(5),
            fp: Duration::from_millis(15),
        };
        assert_eq!(t.total(), Duration::from_millis(50));
    }

    #[test]
    fn overhead_ratios() {
        let o = OverheadBreakdown {
            original_rows: 100,
            group_rows: 2,
            scale_rows: 3,
            syn_rows: 1,
            fp_rows: 4,
        };
        assert_eq!(o.added_rows(), 10);
        assert_eq!(o.total_rows(), 110);
        assert!((o.overhead_ratio() - 0.1).abs() < 1e-12);
        let (g, s, c, f) = o.per_step_ratios();
        assert!((g - 0.02).abs() < 1e-12);
        assert!((s - 0.03).abs() < 1e-12);
        assert!((c - 0.01).abs() < 1e-12);
        assert!((f - 0.04).abs() < 1e-12);
    }

    #[test]
    fn empty_overhead_is_zero() {
        let o = OverheadBreakdown::default();
        assert_eq!(o.overhead_ratio(), 0.0);
        assert_eq!(o.per_step_ratios(), (0.0, 0.0, 0.0, 0.0));
    }
}
