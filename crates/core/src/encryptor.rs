//! The F² encryption pipeline (data-owner side).
//!
//! [`F2Encryptor::encrypt`] runs the four steps of the scheme end to end:
//!
//! 1. **MAX** — discover the maximal attribute sets ([`f2_fd::mas`]);
//! 2. **SSE** — per MAS, group the equivalence classes, choose split points, and assign
//!    every original row to a ciphertext *instance* ([`crate::sse`]); materialise the
//!    instances as probabilistic ciphertexts (`⟨r, F_k(r) ⊕ p⟩`, one fresh nonce per
//!    instance and attribute) plus the scaling/fake-EC rows;
//! 3. **SYN** — resolve conflicts between overlapping MASs: when a tuple belongs to
//!    equivalence classes of size > 1 in two overlapping MASs, it is replaced by two
//!    tuples as in §3.3.2 (the original keeps the first MAS's assignment, a companion
//!    row carries the second's); when one side is a singleton class it simply adopts
//!    the other's ciphertext;
//! 4. **FP** — insert artificial record pairs that re-violate false-positive FDs
//!    ([`crate::fpfd`]).
//!
//! The output is the encrypted table (every cell an opaque byte string), the owner-side
//! [`Provenance`], and an [`EncryptionReport`] with the per-step timings and artificial
//! record counts that the benchmark harness turns into the paper's figures.

use crate::config::F2Config;
use crate::fake::FreshValueGenerator;
use crate::fpfd::plan_false_positive_elimination_witnessed;
use crate::provenance::{Provenance, RowOrigin};
use crate::report::{EncryptionReport, OverheadBreakdown, StepTimings};
use crate::sse::{build_mas_plan_from, MasPlan};
use crate::{F2Error, Result};
use f2_crypto::{CellScratch, MasterKey, ProbabilisticCipher};
use f2_fd::mas::find_mas;
use f2_relation::{AttrSet, Record, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

/// Where an already-assigned ciphertext cell of an original row came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellSource {
    /// Assigned from a MAS plan instance; `multi` records whether the originating
    /// equivalence class had more than one original tuple.
    Instance { mas: usize, instance: usize, multi: bool },
    /// Filled with a fresh value during conflict resolution.
    Fresh,
}

/// Sentinel ciphertext id marking a still-unassigned cell.
const UNASSIGNED: u32 = u32::MAX;

/// One cell of the flat row-major assembly buffer: the id of a ciphertext in the
/// shared arena (every distinct ciphertext is materialised exactly once; rows of the
/// same instance reference the same id) plus its provenance. `Copy`, 3 words — the
/// former `Vec<Vec<Option<CellState>>>` row-of-vecs carried one heap allocation per
/// row and a cloned `Value` per cell.
#[derive(Debug, Clone, Copy)]
struct CellSlot {
    ct: u32,
    source: CellSource,
}

impl CellSlot {
    const EMPTY: CellSlot = CellSlot { ct: UNASSIGNED, source: CellSource::Fresh };

    fn is_assigned(self) -> bool {
        self.ct != UNASSIGNED
    }
}

/// The ciphertext arena of one assembly run: cells and artificial rows store dense
/// `u32` ids into it, and the output records are materialised by O(1) `Bytes` clones
/// when the table is assembled at the end.
#[derive(Debug, Default)]
struct CtArena {
    cts: Vec<Value>,
}

impl CtArena {
    fn with_capacity(cap: usize) -> CtArena {
        CtArena { cts: Vec::with_capacity(cap) }
    }

    fn push(&mut self, ct: Value) -> u32 {
        let id = self.cts.len();
        assert!(id < UNASSIGNED as usize, "ciphertext arena overflow");
        self.cts.push(ct);
        id as u32
    }

    fn get(&self, id: u32) -> &Value {
        &self.cts[id as usize]
    }
}

/// Result of encrypting one table with F².
#[derive(Debug, Clone)]
pub struct EncryptionOutcome {
    /// The encrypted table to be outsourced to the server.
    pub encrypted: Table,
    /// Owner-side provenance (never shared with the server).
    pub provenance: Provenance,
    /// Per-step timings and overhead measurements.
    pub report: EncryptionReport,
    /// The maximal attribute sets discovered in Step 1.
    pub mas_sets: Vec<AttrSet>,
    /// The plaintext schema (needed to rebuild the original table on decryption).
    pub plaintext_schema: Schema,
}

/// The F² encryptor: configuration plus the data owner's master key.
#[derive(Debug, Clone)]
pub struct F2Encryptor {
    config: F2Config,
    master: MasterKey,
}

impl F2Encryptor {
    /// Create an encryptor.
    pub fn new(config: F2Config, master: MasterKey) -> Self {
        F2Encryptor { config, master }
    }

    /// The configuration in use.
    pub fn config(&self) -> &F2Config {
        &self.config
    }

    /// The master key (crate-internal: [`crate::F2Scheme`] derives its decryptor from
    /// the single key copy held here).
    pub(crate) fn master(&self) -> &MasterKey {
        &self.master
    }

    /// Encrypt a table with the full four-step F² pipeline.
    pub fn encrypt(&self, table: &Table) -> Result<EncryptionOutcome> {
        self.config.validate()?;
        if table.arity() == 0 {
            return Err(F2Error::UnsupportedInput("table has no attributes".into()));
        }
        let arity = table.arity();
        let n = table.row_count();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let ciphers: Vec<ProbabilisticCipher> =
            (0..arity).map(|a| ProbabilisticCipher::new(&self.master.attribute_key(a))).collect();
        let mut fresh = FreshValueGenerator::for_table(table);

        // ---- Step 1: MAX ---------------------------------------------------------
        let t_max = Instant::now();
        let mas_set = find_mas(table);
        let max_time = t_max.elapsed();

        // ---- Step 2: SSE (plans + assembly) and Step 3: SYN -----------------------
        let t_sse = Instant::now();
        let mut syn_time = std::time::Duration::ZERO;
        // Each MAS partition is computed once (off the interned columnar index) and
        // shared: the SSE planner consumes its classes, and Step 4 reuses one witness
        // row per class for the false-positive violation checks.
        let mut mas_witnesses: Vec<(AttrSet, Vec<usize>)> = Vec::with_capacity(mas_set.len());
        let plans: Vec<MasPlan> = mas_set
            .sets
            .iter()
            .map(|&m| {
                let partition = f2_relation::Partition::compute(table, m);
                mas_witnesses.push((m, partition.classes().iter().map(|c| c.rows[0]).collect()));
                build_mas_plan_from(&partition, Some(table.columnar()), &self.config, &mut fresh)
            })
            .collect();

        // Every distinct ciphertext is materialised exactly once, in the arena; the
        // flat row-major cell buffer and the artificial rows hold dense ids into it.
        // Capacity: one ciphertext per instance attribute plus headroom for the
        // fresh fills of uncovered cells and artificial-row remainders.
        let instance_cts: usize = plans.iter().map(|p| p.instances.len() * p.mas.len()).sum();
        let mut arena = CtArena::with_capacity(instance_cts + n * arity / 2);
        let mut scratch = CellScratch::default();
        let mut cells: Vec<CellSlot> = vec![CellSlot::EMPTY; n * arity];
        // Artificial rows under construction: arity-strided per-attribute ciphertext
        // ids (UNASSIGNED = filled with a fresh value in the finalisation pass).
        let mut extra_cells: Vec<u32> = Vec::new();
        let mut extra_origins: Vec<RowOrigin> = Vec::new();
        // Extra rows belonging to each (mas, instance), so singleton-adoption overwrites
        // can be propagated to the instance's scale copies.
        let mut instance_extras: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        let mut patches: HashMap<usize, Vec<(usize, usize)>> = HashMap::new();
        let mut syn_rows = 0usize;
        let mut group_rows = 0usize;
        let mut scale_rows = 0usize;
        // Per-instance ciphertext ids (arena-contiguous), reused across instances.
        let mut inst_cts: Vec<u32> = Vec::new();
        let mut copy_cts: Vec<u32> = Vec::new();

        for (mi, plan) in plans.iter().enumerate() {
            let attrs: Vec<usize> = plan.mas.iter().collect();
            for (ii, inst) in plan.instances.iter().enumerate() {
                // One ciphertext per attribute, shared by every row of the instance.
                inst_cts.clear();
                for (&a, v) in attrs.iter().zip(inst.values.iter()) {
                    inst_cts.push(arena.push(ciphers[a].encrypt_value_to_cell_buffered(
                        v,
                        &mut rng,
                        &mut scratch,
                    )));
                }
                let multi = inst.ec_real_size > 1;

                for &r in &inst.rows {
                    // Type-2 conflict (§3.3.2): the row is already claimed on some
                    // overlapping attribute by another MAS's multi-tuple class, and this
                    // class is multi-tuple too.
                    let conflict = multi
                        && attrs.iter().any(|&a| {
                            let slot = cells[r * arity + a];
                            slot.is_assigned()
                                && matches!(slot.source, CellSource::Instance { multi: true, .. })
                        });
                    if conflict {
                        let t_conflict = Instant::now();
                        // The original row keeps its earlier assignment; its unassigned
                        // attributes of this MAS receive fresh values so its projection
                        // does not partially join this instance.
                        for &a in &attrs {
                            if !cells[r * arity + a].is_assigned() {
                                let fv = fresh.next_value();
                                cells[r * arity + a] = CellSlot {
                                    ct: arena.push(ciphers[a].encrypt_value_to_cell_buffered(
                                        &fv,
                                        &mut rng,
                                        &mut scratch,
                                    )),
                                    source: CellSource::Fresh,
                                };
                                // The row's real ciphertext for this attribute lives on
                                // the companion row created below.
                                patches.entry(r).or_default().push((a, n + extra_origins.len()));
                            }
                        }
                        // Companion row: this MAS's instance on its attributes, fresh
                        // values elsewhere (filled in the finalisation pass).
                        let base = extra_cells.len();
                        extra_cells.resize(base + arity, UNASSIGNED);
                        for (pos, &a) in attrs.iter().enumerate() {
                            extra_cells[base + a] = inst_cts[pos];
                        }
                        extra_origins.push(RowOrigin::ConflictCompanion { original_row: r });
                        syn_rows += 1;
                        syn_time += t_conflict.elapsed();
                        continue;
                    }
                    for (pos, &a) in attrs.iter().enumerate() {
                        let slot = cells[r * arity + a];
                        if !slot.is_assigned() {
                            cells[r * arity + a] = CellSlot {
                                ct: inst_cts[pos],
                                source: CellSource::Instance { mas: mi, instance: ii, multi },
                            };
                        } else if multi {
                            // The earlier owner was a singleton class (or a fresh
                            // filler): it adopts this instance's ciphertext. Any
                            // scale copies of the earlier singleton instance adopt
                            // it too, so its frequency stays homogeneous.
                            if let CellSource::Instance { mas, instance, multi: false } =
                                slot.source
                            {
                                if let Some(extras) = instance_extras.get(&(mas, instance)) {
                                    for &er in extras {
                                        extra_cells[er * arity + a] = inst_cts[pos];
                                    }
                                }
                            }
                            cells[r * arity + a] = CellSlot {
                                ct: inst_cts[pos],
                                source: CellSource::Instance { mas: mi, instance: ii, multi },
                            };
                        }
                        // Otherwise this class is a singleton: it adopts whatever the
                        // earlier MAS assigned (no conflict, §3.3.2).
                    }
                }

                // Scaling copies and fake-EC rows are entirely artificial rows. They
                // must mirror what the instance's rows actually carry: a singleton
                // class may have *adopted* another MAS's ciphertext on the overlap
                // (the no-conflict case of §3.3.2), in which case its copies adopt it
                // too so the instance keeps one homogeneous value combination.
                copy_cts.clear();
                if inst.rows.len() == 1 && !multi {
                    let r = inst.rows[0];
                    for (pos, &a) in attrs.iter().enumerate() {
                        let slot = cells[r * arity + a];
                        copy_cts.push(if slot.is_assigned() { slot.ct } else { inst_cts[pos] });
                    }
                } else {
                    copy_cts.extend_from_slice(&inst_cts);
                }
                let extra_count = inst.scale_copies + inst.fake_rows;
                if extra_count > 0 {
                    let slot = instance_extras.entry((mi, ii)).or_default();
                    for c in 0..extra_count {
                        let base = extra_cells.len();
                        extra_cells.resize(base + arity, UNASSIGNED);
                        for (pos, &a) in attrs.iter().enumerate() {
                            extra_cells[base + a] = copy_cts[pos];
                        }
                        let origin = if c < inst.scale_copies {
                            scale_rows += 1;
                            RowOrigin::ScaleCopy { mas_index: mi }
                        } else {
                            group_rows += 1;
                            RowOrigin::GroupFake { mas_index: mi }
                        };
                        slot.push(extra_origins.len());
                        extra_origins.push(origin);
                    }
                }
            }
        }

        // Finalisation: encrypt the cells not covered by any MAS (unique attributes)
        // and fill the artificial rows' remaining attributes with fresh values.
        for r in 0..n {
            for a in 0..arity {
                let slot = &mut cells[r * arity + a];
                if !slot.is_assigned() {
                    let ct = ciphers[a].encrypt_value_to_cell_buffered(
                        table.cell(r, a)?,
                        &mut rng,
                        &mut scratch,
                    );
                    *slot = CellSlot { ct: arena.push(ct), source: CellSource::Fresh };
                }
            }
        }
        for er in 0..extra_origins.len() {
            for a in 0..arity {
                if extra_cells[er * arity + a] == UNASSIGNED {
                    let fv = fresh.next_value();
                    extra_cells[er * arity + a] = arena.push(
                        ciphers[a].encrypt_value_to_cell_buffered(&fv, &mut rng, &mut scratch),
                    );
                }
            }
        }
        let sse_time = t_sse.elapsed().saturating_sub(syn_time);

        // ---- Step 4: FP ------------------------------------------------------------
        let t_fp = Instant::now();
        let fp_plan = plan_false_positive_elimination_witnessed(
            table,
            &mas_witnesses,
            self.config.ecg_size(),
            &mut fresh,
        );
        let mut fp_rows = 0usize;
        for pair in &fp_plan.pairs {
            // Row 1: every cell freshly encrypted. Row 2: shares the *ciphertext id*
            // on the FD's LHS so the server observes the violation; all other cells
            // are freshly encrypted.
            let base1 = extra_cells.len();
            extra_cells.resize(base1 + arity, UNASSIGNED);
            for (a, v) in pair.row1.iter().enumerate() {
                extra_cells[base1 + a] = arena.push(ciphers[a].encrypt_value_to_cell_buffered(
                    v,
                    &mut rng,
                    &mut scratch,
                ));
            }
            let base2 = extra_cells.len();
            extra_cells.resize(base2 + arity, UNASSIGNED);
            for (a, v) in pair.row2.iter().enumerate() {
                extra_cells[base2 + a] = if pair.shared_attrs.contains(a) {
                    extra_cells[base1 + a]
                } else {
                    arena.push(ciphers[a].encrypt_value_to_cell_buffered(v, &mut rng, &mut scratch))
                };
            }
            extra_origins.push(RowOrigin::FalsePositive { mas_index: pair.mas_index });
            extra_origins.push(RowOrigin::FalsePositive { mas_index: pair.mas_index });
            fp_rows += 2;
        }
        let fp_time = t_fp.elapsed();

        // ---- Assemble the output table ----------------------------------------------
        let encrypted_schema = table.schema().encrypted();
        let mut records = Vec::with_capacity(n + extra_origins.len());
        let mut origins = Vec::with_capacity(n + extra_origins.len());
        for r in 0..n {
            records.push(Record::new(
                cells[r * arity..(r + 1) * arity]
                    .iter()
                    .map(|slot| arena.get(slot.ct).clone())
                    .collect(),
            ));
            origins.push(RowOrigin::Real { original_row: r });
        }
        for (er, origin) in extra_origins.into_iter().enumerate() {
            records.push(Record::new(
                extra_cells[er * arity..(er + 1) * arity]
                    .iter()
                    .map(|&id| arena.get(id).clone())
                    .collect(),
            ));
            origins.push(origin);
        }
        let encrypted = Table::new(encrypted_schema, records)?;

        let timings = StepTimings { max: max_time, sse: sse_time, syn: syn_time, fp: fp_time };
        crate::obs::record_phase_timings(&timings);
        let report = EncryptionReport {
            timings,
            overhead: OverheadBreakdown {
                original_rows: n,
                group_rows,
                scale_rows,
                syn_rows,
                fp_rows,
            },
            mas_count: mas_set.len(),
            overlapping_mas_pairs: mas_set.overlapping_pairs().len(),
            equivalence_classes: plans.iter().map(|p| p.ec_count).sum(),
            false_positive_fds: fp_plan.max_false_positives,
        };
        Ok(EncryptionOutcome {
            encrypted,
            provenance: Provenance { origins, patches },
            report,
            mas_sets: mas_set.sets,
            plaintext_schema: table.schema().clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::table;

    fn small_table() -> Table {
        table! {
            ["Zip", "City", "Name"];
            ["07030", "Hoboken", "alice"],
            ["07030", "Hoboken", "bob"],
            ["07030", "Hoboken", "carol"],
            ["10001", "NewYork", "dave"],
            ["10001", "NewYork", "erin"],
            ["08540", "Princeton", "frank"],
        }
    }

    fn encryptor(alpha: f64, split: usize) -> F2Encryptor {
        F2Encryptor::new(F2Config::new(alpha, split).unwrap(), MasterKey::from_seed(11))
    }

    #[test]
    fn encrypts_to_opaque_cells() {
        let t = small_table();
        let out = encryptor(0.5, 2).encrypt(&t).unwrap();
        assert_eq!(out.encrypted.arity(), 3);
        assert!(out.encrypted.row_count() >= t.row_count());
        for (_, rec) in out.encrypted.iter() {
            for v in rec.values() {
                assert!(v.is_bytes(), "every cell must be ciphertext");
            }
        }
        // No plaintext value survives in the encrypted table.
        let plain_values = t.all_values();
        for (_, rec) in out.encrypted.iter() {
            for v in rec.values() {
                assert!(!plain_values.contains(v));
            }
        }
    }

    #[test]
    fn provenance_covers_every_output_row() {
        let t = small_table();
        let out = encryptor(0.5, 2).encrypt(&t).unwrap();
        assert_eq!(out.provenance.len(), out.encrypted.row_count());
        assert_eq!(out.provenance.real_rows().len(), t.row_count());
        let (scale, group, conflict, fp) = out.provenance.artificial_breakdown();
        let o = &out.report.overhead;
        assert_eq!(scale, o.scale_rows);
        assert_eq!(group, o.group_rows);
        assert_eq!(conflict, o.syn_rows);
        assert_eq!(fp, o.fp_rows);
        assert_eq!(out.encrypted.row_count(), o.total_rows());
    }

    #[test]
    fn report_is_populated() {
        let t = small_table();
        let out = encryptor(0.5, 2).encrypt(&t).unwrap();
        assert!(out.report.mas_count >= 1);
        assert!(out.report.equivalence_classes >= 1);
        assert!(out.report.timings.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn frequencies_are_flattened() {
        // In the encrypted table, group ciphertext combinations over each MAS: every
        // combination originating from the same ECG must appear equally often. We check
        // a weaker but observable property: the most frequent MAS combination in the
        // plaintext no longer dominates the ciphertext distribution.
        let t = table! {
            ["A", "B"];
            ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"],
            ["a1", "b1"], ["a1", "b1"], ["a1", "b1"], ["a1", "b1"],
            ["a2", "b2"], ["a2", "b2"],
            ["a3", "b3"], ["a3", "b3"],
            ["a4", "b4"], ["a5", "b5"],
        };
        let out = encryptor(0.5, 2).encrypt(&t).unwrap();
        let mas = out.mas_sets[0];
        let hist = out.encrypted.frequency_histogram(mas);
        let max_cipher_freq = hist.values().copied().max().unwrap();
        let plain_hist = t.frequency_histogram(mas);
        let max_plain_freq = plain_hist.values().copied().max().unwrap();
        assert!(max_cipher_freq < max_plain_freq, "{max_cipher_freq} !< {max_plain_freq}");
    }

    #[test]
    fn empty_schema_rejected_and_empty_table_ok() {
        let empty_schema = Schema::new(vec![]).unwrap();
        let t = Table::empty(empty_schema);
        assert!(encryptor(0.5, 2).encrypt(&t).is_err());

        let t = Table::empty(Schema::from_names(["A", "B"]).unwrap());
        let out = encryptor(0.5, 2).encrypt(&t).unwrap();
        assert_eq!(out.encrypted.row_count(), 0);
    }

    #[test]
    fn deterministic_given_seed_and_key() {
        let t = small_table();
        let e = encryptor(0.5, 2);
        let a = e.encrypt(&t).unwrap();
        let b = e.encrypt(&t).unwrap();
        assert_eq!(a.encrypted, b.encrypted);
        assert_eq!(a.provenance, b.provenance);
    }
}
