//! Equivalence suite pinning the interned planning paths (ECG inverted-index
//! grouping, the refactored split planner, witness-based false-positive checks) to
//! their retained generic oracles, plus the golden byte-identity regression for the
//! flat-cell-buffer `F2Encryptor` rewrite.

use f2_core::config::F2Config;
use f2_core::ecg::{group_equivalence_classes, group_equivalence_classes_generic};
use f2_core::fake::FreshValueGenerator;
use f2_core::fpfd::plan_false_positive_elimination;
use f2_core::sse::build_mas_plan;
use f2_core::{Scheme, F2};
use f2_datagen::Dataset;
use f2_relation::{AttrSet, Partition, Record, Schema, Table, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// A value from a tiny, collision-heavy pool.
fn value_from(selector: u8) -> Value {
    match selector % 12 {
        0 => Value::Null,
        s @ 1..=6 => Value::Int(i64::from(s) % 5),
        s => Value::text(["x", "y", "z", "w"][s as usize % 4]),
    }
}

/// Assemble a table from a sampled arity and a flat pool of cell selectors.
fn table_from(arity: usize, cells: Vec<u8>) -> Table {
    let schema = Schema::from_names((0..arity).map(|a| format!("A{a}"))).expect("small schema");
    let records =
        cells.chunks_exact(arity).map(|row| row.iter().map(|&s| value_from(s)).collect()).collect();
    Table::new(schema, records).expect("consistent arity")
}

/// A non-empty attribute subset of the table's schema, from a bitmask seed.
fn attrs_for(table: &Table, mask: u64) -> AttrSet {
    let arity = table.arity();
    let bits = mask % (1u64 << arity);
    let set = AttrSet::from_bits(bits);
    if set.is_empty() {
        AttrSet::single((mask % arity as u64) as usize)
    } else {
        set
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The inverted-index grouping must produce *identical* ECGs — same members,
    /// same order, same fake padding — as the retained O(t²) pairwise oracle.
    #[test]
    fn ecg_grouping_matches_generic_oracle(
        arity in 1usize..=4,
        cells in vec(0u8..=255, 0..160),
        mask in 0u64..64,
        k in 1usize..=6,
    ) {
        let table = table_from(arity, cells);
        let attrs = attrs_for(&table, mask);
        let partition = Partition::compute(&table, attrs);
        let mut fresh_fast = FreshValueGenerator::for_table(&table);
        let mut fresh_generic = FreshValueGenerator::for_table(&table);
        let fast =
            group_equivalence_classes(partition.classes(), k, attrs.len(), &mut fresh_fast);
        let generic = group_equivalence_classes_generic(
            partition.classes(),
            k,
            attrs.len(),
            &mut fresh_generic,
        );
        prop_assert_eq!(fast, generic);
        prop_assert_eq!(fresh_fast.issued(), fresh_generic.issued());
    }

    /// Same MAS plans end to end: grouping, split points, row assignment.
    #[test]
    fn mas_plan_is_deterministic_and_covers_rows(
        arity in 1usize..=4,
        cells in vec(0u8..=255, 0..160),
        mask in 0u64..64,
        denom in 1usize..=6,
    ) {
        let table = table_from(arity, cells);
        if !table.is_empty() {
            let attrs = attrs_for(&table, mask);
            let config = F2Config::new(1.0 / denom as f64, 2).unwrap();
            let mut fresh = FreshValueGenerator::for_table(&table);
            let plan = build_mas_plan(&table, attrs, &config, &mut fresh);
            // Every original row appears in exactly one instance.
            let mut seen = std::collections::HashSet::new();
            for inst in &plan.instances {
                for &r in &inst.rows {
                    prop_assert!(seen.insert(r), "row {} assigned twice", r);
                }
            }
            prop_assert_eq!(seen.len(), table.row_count());
            // Capacity-hinted assignment map covers the same rows.
            prop_assert_eq!(plan.row_assignment().len(), table.row_count());
        }
    }

    /// The witness-based FP planner flags exactly the FDs that are violated among
    /// the partition representatives (checked against a naive value-based scan).
    #[test]
    fn fp_plan_matches_naive_violation_scan(
        arity in 2usize..=4,
        cells in vec(0u8..=255, 0..120),
        k in 1usize..=4,
    ) {
        let table = table_from(arity, cells);
        let mas = AttrSet::all(arity);
        let mut fresh = FreshValueGenerator::for_table(&table);
        let plan = plan_false_positive_elimination(&table, &[mas], k, &mut fresh);
        // Naive oracle: maximum violated FDs among representatives, walked in the
        // same lattice order.
        let partition = Partition::compute(&table, mas);
        let reps: Vec<&Vec<Value>> =
            partition.classes().iter().map(|c| c.representative.as_ref()).collect();
        let lattice = f2_fd::lattice::FdLattice::new(mas);
        let naive = lattice.find_maximum_false_positives(|lhs, rhs| {
            let mut seen: std::collections::HashMap<Vec<&Value>, &Value> =
                std::collections::HashMap::new();
            for rep in &reps {
                let key: Vec<&Value> = lhs.iter().map(|a| &rep[a]).collect();
                match seen.get(&key) {
                    Some(prev) if *prev != &rep[rhs] => return true,
                    Some(_) => {}
                    None => {
                        seen.insert(key, &rep[rhs]);
                    }
                }
            }
            false
        });
        prop_assert_eq!(plan.max_false_positives, naive.len());
        prop_assert_eq!(plan.pairs.len(), naive.len() * k);
    }
}

/// FNV-1a over every cell of the table, row-major, length-prefixed.
fn table_digest(t: &Table) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(&(t.row_count() as u64).to_le_bytes());
    eat(&(t.arity() as u64).to_le_bytes());
    for (_, rec) in t.iter() {
        for v in rec.values() {
            let enc = v.encode();
            eat(&(enc.len() as u64).to_le_bytes());
            eat(&enc);
        }
    }
    h
}

/// Golden regression: `F2Encryptor` output must be byte-identical for a fixed seed
/// across the interned-planning / flat-cell-buffer rewrite. The digests below were
/// captured from the pre-rewrite encryptor (PR-3 tree) and must never drift — the
/// whole optimisation stack is required to be unobservable except for speed.
#[test]
fn encryptor_output_is_byte_identical_to_pre_rewrite_golden() {
    let cases: [(Dataset, usize, f64, usize, u64, u64, usize); 3] = [
        (Dataset::Synthetic, 512, 0.2, 2, 7, 0xe073cb4a63aaab22, 4690),
        (Dataset::Orders, 300, 0.25, 2, 11, 0xabeaf08a0a967c00, 5911),
        (Dataset::Customer, 200, 0.5, 3, 3, 0xa569b36ab3dc9c04, 10789),
    ];
    for (dataset, rows, alpha, split, seed, digest, encrypted_rows) in cases {
        let table = dataset.generate(rows, 42);
        let scheme =
            F2::builder().alpha(alpha).split_factor(split).seed(seed).build().expect("valid");
        let out = scheme.encrypt(&table).expect("encrypts");
        assert_eq!(
            out.encrypted.row_count(),
            encrypted_rows,
            "{dataset:?}: encrypted row count drifted"
        );
        assert_eq!(
            table_digest(&out.encrypted),
            digest,
            "{dataset:?}: encrypted bytes drifted from the pre-rewrite golden digest"
        );
        // And the outcome still decrypts to the original.
        let recovered = scheme.decrypt(&out).expect("decrypts");
        assert!(recovered.multiset_eq(&table));
    }
}

/// The interned stack accepts ciphertext tables too (Bytes-valued dictionaries):
/// partitioning an encrypted table must agree with the generic oracle.
#[test]
fn interned_partitions_on_encrypted_tables() {
    let table = Dataset::Synthetic.generate(128, 42);
    let scheme = F2::builder().alpha(0.5).split_factor(2).seed(9).build().expect("valid");
    let out = scheme.encrypt(&table).expect("encrypts");
    for mask in [1u64, 3, 7, 0b101] {
        let attrs = AttrSet::from_bits(mask);
        let interned = Partition::compute(&out.encrypted, attrs);
        let generic = Partition::compute_generic(&out.encrypted, attrs);
        assert_eq!(interned.classes(), generic.classes());
    }
}

/// `Record` construction sanity for the digest helper (kept local to this suite).
#[test]
fn digest_distinguishes_tables() {
    let schema = Schema::from_names(["A"]).unwrap();
    let t1 = Table::new(schema.clone(), vec![Record::new(vec![Value::Int(1)])]).unwrap();
    let t2 = Table::new(schema, vec![Record::new(vec![Value::Int(2)])]).unwrap();
    assert_ne!(table_digest(&t1), table_digest(&t2));
}
