//! Hostile-input property tests for the HTTP scrape listener.
//!
//! The listener parses bytes straight off the network (f2-lint
//! `untrusted-input` scope), so the contract is total: *any* byte sequence in
//! gets a well-formed HTTP/1.1 response out — never a panic, never an
//! unbounded allocation, never a response missing `Connection: close`.

use f2_obs::{Registry, TraceJournal};
use f2_server::http::{respond, MAX_HEAD_BYTES};
use f2_server::{Health, HttpState, StaticHealth};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

fn scoped_state() -> HttpState {
    let registry = Registry::new();
    registry.counter("f2_demo_requests_total", "Demo.", &[]).inc();
    HttpState::new(
        registry,
        Arc::new(TraceJournal::with_capacity(4)),
        Arc::new(StaticHealth(Health::Ok)),
    )
}

/// Every response is a complete HTTP/1.1 message with the fixed trailer.
fn well_formed(response: &[u8]) -> bool {
    let text = String::from_utf8_lossy(response);
    text.starts_with("HTTP/1.1 ")
        && text.contains("\r\nContent-Length: ")
        && text.contains("\r\nConnection: close\r\n\r\n")
}

/// Printable-ASCII strings of length `0..max` (the shim has no regex
/// strategies, so strings are built from byte vectors).
fn ascii(max: usize) -> impl Strategy<Value = String> {
    vec(0x20u8..0x7f, 0..max).prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    /// Arbitrary bytes — including NULs, invalid UTF-8, and heads straddling
    /// the 431 cap — never panic the responder and always produce a
    /// well-formed reply.
    #[test]
    fn arbitrary_bytes_get_a_well_formed_response(
        head in vec(0u8..=255, 0..(MAX_HEAD_BYTES + 64))
    ) {
        let state = scoped_state();
        let response = respond(&head, &state);
        prop_assert!(well_formed(&response), "malformed response for head of {} bytes", head.len());
    }

    /// Structured-but-wrong request lines (random methods, targets, and
    /// versions) also stay total.
    #[test]
    fn structured_garbage_request_lines_never_panic(
        method in ascii(10),
        target in ascii(80),
        version in ascii(12),
    ) {
        let state = scoped_state();
        let head = format!("{method} {target} {version}\r\nHost: x\r\n\r\n");
        let response = respond(head.as_bytes(), &state);
        prop_assert!(well_formed(&response), "malformed response for line {head:?}");
    }

    /// Valid GETs on arbitrary non-space targets answer 200, 404, or (for
    /// empty targets) 400 — hostile paths cannot reach an unexpected handler.
    #[test]
    fn get_on_arbitrary_target_is_200_404_or_400(
        target in vec(0x21u8..0x7f, 1..64).prop_map(|bytes| {
            let mut path = String::from("/");
            path.push_str(&String::from_utf8_lossy(&bytes));
            path
        })
    ) {
        let state = scoped_state();
        let head = format!("GET {target} HTTP/1.1\r\n\r\n");
        let response = respond(head.as_bytes(), &state);
        let text = String::from_utf8_lossy(&response);
        prop_assert!(
            text.starts_with("HTTP/1.1 200 ") || text.starts_with("HTTP/1.1 404 "),
            "unexpected status for {target:?}: {text}"
        );
    }
}
