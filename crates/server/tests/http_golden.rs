//! Byte-frozen goldens for the HTTP scrape listener.
//!
//! [`respond`] is pure over its inputs — no `Date` header, fixed header
//! order, `Connection: close` always — so every response can be pinned
//! byte-for-byte against a scoped registry/journal/health triple. If any of
//! these tests break, a scrape consumer somewhere just broke too: change the
//! golden only with a deliberate wire-format bump.

use f2_obs::{Registry, Stage, TraceEntry, TraceJournal};
use f2_server::http::{respond, MAX_HEAD_BYTES};
use f2_server::{Health, HttpState, StaticHealth};
use std::sync::Arc;

/// A scrape state over a tiny deterministic registry (two counters) and an
/// empty four-slot journal.
fn scoped_state(health: Health) -> HttpState {
    let registry = Registry::new();
    registry
        .counter("f2_demo_requests_total", "Requests observed by the demo registry.", &[])
        .add(3);
    registry.counter("f2_demo_rows_total", "Rows observed.", &[("tenant", "acme")]).add(7);
    HttpState::new(
        registry,
        Arc::new(TraceJournal::with_capacity(4)),
        Arc::new(StaticHealth(health)),
    )
}

/// The exact bytes the listener serializes: status line, `Content-Type`,
/// optional extras, computed `Content-Length`, `Connection: close`, body.
fn golden(status: &str, content_type: &str, extra: &[(&str, &str)], body: &str) -> Vec<u8> {
    let mut head = format!("HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n");
    for (name, value) in extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\nConnection: close\r\n\r\n", body.len()));
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

fn assert_response(actual: &[u8], expected: &[u8]) {
    assert_eq!(
        String::from_utf8_lossy(actual),
        String::from_utf8_lossy(expected),
        "response bytes drifted from the golden"
    );
    assert_eq!(actual, expected);
}

#[test]
fn metrics_golden() {
    let state = scoped_state(Health::Ok);
    let response = respond(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", &state);
    let body = "\
# HELP f2_demo_requests_total Requests observed by the demo registry.\n\
# TYPE f2_demo_requests_total counter\n\
f2_demo_requests_total 3\n\
# HELP f2_demo_rows_total Rows observed.\n\
# TYPE f2_demo_rows_total counter\n\
f2_demo_rows_total{tenant=\"acme\"} 7\n";
    assert_response(
        &response,
        &golden("200 OK", "text/plain; version=0.0.4; charset=utf-8", &[], body),
    );
}

#[test]
fn metrics_query_string_is_ignored() {
    let state = scoped_state(Health::Ok);
    let plain = respond(b"GET /metrics HTTP/1.1\r\n\r\n", &state);
    let with_query = respond(b"GET /metrics?format=prometheus HTTP/1.1\r\n\r\n", &state);
    assert_eq!(plain, with_query);
}

#[test]
fn metrics_json_golden() {
    let state = scoped_state(Health::Ok);
    let response = respond(b"GET /metrics.json HTTP/1.1\r\n\r\n", &state);
    let body = concat!(
        "{\"metrics\":[",
        "{\"name\":\"f2_demo_requests_total\",\"kind\":\"counter\",",
        "\"help\":\"Requests observed by the demo registry.\",",
        "\"samples\":[{\"labels\":{},\"value\":3}]},",
        "{\"name\":\"f2_demo_rows_total\",\"kind\":\"counter\",",
        "\"help\":\"Rows observed.\",",
        "\"samples\":[{\"labels\":{\"tenant\":\"acme\"},\"value\":7}]}",
        "]}"
    );
    assert_response(&response, &golden("200 OK", "application/json", &[], body));
}

#[test]
fn healthz_goldens_cover_all_three_states() {
    let cases = [
        (Health::Ok, "200 OK", "ok\n"),
        (Health::Draining, "503 Service Unavailable", "draining\n"),
        (Health::Overloaded, "503 Service Unavailable", "overloaded\n"),
    ];
    for (health, status, body) in cases {
        let state = scoped_state(health);
        let response = respond(b"GET /healthz HTTP/1.1\r\n\r\n", &state);
        assert_response(&response, &golden(status, "text/plain; charset=utf-8", &[], body));
    }
}

#[test]
fn tracez_empty_golden() {
    let state = scoped_state(Health::Ok);
    let response = respond(b"GET /tracez HTTP/1.1\r\n\r\n", &state);
    let body = "{\"recent\":[],\"slowest\":[],\"dropped\":0,\"capacity\":4}";
    assert_response(&response, &golden("200 OK", "application/json", &[], body));
}

#[test]
fn tracez_populated_golden() {
    let registry = Registry::new();
    let journal = Arc::new(TraceJournal::with_capacity(4));
    journal.record(TraceEntry {
        trace_id: 0xA11CE,
        request_id: 0xB0B,
        kind: "append",
        tenant: Some("acme".to_string()),
        outcome: "ok".to_string(),
        total_ns: 1_500_000,
        stages: vec![Stage { name: "engine.chunk.encrypt", total_ns: 1_200_000, count: 1 }],
        counts: vec![("rows", 8), ("chunk_bytes", 512)],
    });
    let state = HttpState::new(registry, journal, Arc::new(StaticHealth(Health::Ok)));
    let response = respond(b"GET /tracez HTTP/1.1\r\n\r\n", &state);
    let entry = concat!(
        "{\"trace_id\":\"00000000000a11ce\",\"request_id\":\"0000000000000b0b\",",
        "\"kind\":\"append\",\"tenant\":\"acme\",\"outcome\":\"ok\",\"total_ns\":1500000,",
        "\"stages\":[{\"stage\":\"engine.chunk.encrypt\",\"total_ns\":1200000,\"count\":1}],",
        "\"counts\":{\"rows\":8,\"chunk_bytes\":512}}"
    );
    let body =
        format!("{{\"recent\":[{entry}],\"slowest\":[{entry}],\"dropped\":0,\"capacity\":4}}");
    assert_response(&response, &golden("200 OK", "application/json", &[], &body));
}

#[test]
fn unknown_route_is_404() {
    let state = scoped_state(Health::Ok);
    let response = respond(b"GET /nope HTTP/1.1\r\n\r\n", &state);
    assert_response(
        &response,
        &golden("404 Not Found", "text/plain; charset=utf-8", &[], "no such route\n"),
    );
}

#[test]
fn non_get_is_405_with_allow_header() {
    let state = scoped_state(Health::Ok);
    let response = respond(b"POST /metrics HTTP/1.1\r\n\r\n", &state);
    assert_response(
        &response,
        &golden(
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            &[("Allow", "GET")],
            "only GET is served\n",
        ),
    );
}

#[test]
fn malformed_request_lines_are_400() {
    let state = scoped_state(Health::Ok);
    let expected =
        golden("400 Bad Request", "text/plain; charset=utf-8", &[], "malformed request line\n");
    // No CRLF at all, not HTTP, too few request-line parts, too many parts,
    // and invalid UTF-8 in the request line.
    for head in [
        b"GET /metrics".to_vec(),
        b"SSH-2.0-OpenSSH_9.6\r\n\r\n".to_vec(),
        b"GET /metrics\r\n\r\n".to_vec(),
        b"GET /metrics HTTP/1.1 extra\r\n\r\n".to_vec(),
        b"GET /\xff\xfe HTTP/1.1\r\n\r\n".to_vec(),
    ] {
        assert_response(&respond(&head, &state), &expected);
    }
}

#[test]
fn oversized_head_is_431() {
    let state = scoped_state(Health::Ok);
    let head = vec![b'A'; MAX_HEAD_BYTES + 1];
    let response = respond(&head, &state);
    assert_response(
        &response,
        &golden(
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            &[],
            "request head over cap\n",
        ),
    );
}
