//! End-to-end scrape test: a live service on real TCP, its HTTP listener on
//! a second socket, and a traced client — proving the request trace id is
//! visible at every hop (client → server reply → `/tracez`) and that the
//! scrape endpoints serve the service's own story.

use f2_core::F2;
use f2_crypto::MasterKey;
use f2_obs::IdSource;
use f2_server::{
    Client, HttpServer, MemoryStores, SchemeProvider, ServerConfig, Service, StaticTenants,
    StoreProvider, TcpAcceptor,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One GET over a fresh connection; returns the whole response as a string.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("dial http listener");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

#[test]
fn trace_ids_flow_client_to_server_to_tracez() {
    f2_obs::install_process_metrics();
    let scheme = F2::builder()
        .alpha(0.5)
        .seed(11)
        .master_key(MasterKey::from_seed(404))
        .build()
        .expect("valid F2 parameters");
    let tenants = Arc::new(StaticTenants::new().with_tenant("acme", Arc::new(scheme)));
    let stores = Arc::new(MemoryStores::new());
    let config = ServerConfig {
        workers: 2,
        chunk_rows: 16,
        idle_timeout: Duration::from_secs(2),
        drain_deadline: Duration::from_millis(300),
        seed: 0x5C4A9E,
        ..ServerConfig::default()
    };
    let service =
        Service::new(config, tenants as Arc<dyn SchemeProvider>, stores as Arc<dyn StoreProvider>);
    let handle = service.handle();

    let http = HttpServer::bind("127.0.0.1:0", service.http_state()).expect("bind http");
    let http_addr = http.local_addr().expect("http addr");
    let http_handle = http.handle();
    let http_thread = std::thread::spawn(move || http.run());

    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind service");
    let addr = acceptor.local_addr().expect("service addr");
    let server = std::thread::spawn(move || service.run(acceptor));

    // A serving process reports ok before any work arrives.
    let healthz = http_get(http_addr, "/healthz");
    assert!(healthz.starts_with("HTTP/1.1 200 OK\r\n"), "{healthz}");
    assert_eq!(body_of(&healthz), "ok\n");

    // One traced encryption job.
    let data = f2_datagen::Dataset::Orders.generate(64, 9);
    let mut client = Client::connect(TcpStream::connect(addr).expect("dial service"))
        .expect("connect")
        .with_tracing(IdSource::seeded(0xDEC0DE));
    let ack = client.encrypt_table("acme", &data).expect("encrypt");
    assert_eq!(ack.rows, 64);

    // The server echoed exactly the context the client sent.
    let sent = client.last_trace().expect("client minted a trace context");
    let echoed = client.last_server_trace().expect("server echoed the trace context");
    assert_eq!(sent, echoed, "server must echo the client's trace context verbatim");

    // /tracez knows the request: same trace id, per-stage breakdown attached.
    let tracez = http_get(http_addr, "/tracez");
    assert!(tracez.starts_with("HTTP/1.1 200 OK\r\n"), "{tracez}");
    let tracez_body = body_of(&tracez);
    let trace_hex = format!("{:016x}", sent.trace_id);
    assert!(
        tracez_body.contains(&trace_hex),
        "trace {trace_hex} missing from /tracez: {tracez_body}"
    );
    assert!(tracez_body.contains("\"stages\":["), "{tracez_body}");
    assert!(tracez_body.contains("\"tenant\":\"acme\""), "{tracez_body}");

    // /metrics serves the server families, tenant attribution, and the
    // process metrics satellite.
    let metrics = http_get(http_addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
    assert!(
        metrics.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "{metrics}"
    );
    let metrics_body = body_of(&metrics);
    assert!(metrics_body.contains("f2_server_requests_total"), "{metrics_body}");
    assert!(metrics_body.contains("f2_server_requests_total{tenant=\"acme\"}"), "{metrics_body}");
    assert!(
        metrics_body.contains("f2_server_tenant_rows_total{tenant=\"acme\"}"),
        "{metrics_body}"
    );
    assert!(metrics_body.contains("f2_uptime_seconds"), "{metrics_body}");
    assert!(metrics_body.contains("f2_build_info{"), "{metrics_body}");
    assert!(
        metrics_body.contains("f2_server_http_requests_total{route=\"healthz\"}"),
        "{metrics_body}"
    );

    // The JSON exporter serves the same registry.
    let json = http_get(http_addr, "/metrics.json");
    assert!(json.starts_with("HTTP/1.1 200 OK\r\n"), "{json}");
    assert!(body_of(&json).starts_with("{\"metrics\":["), "{json}");

    // The typed snapshot the client fetches in-band agrees with the scrape.
    let snapshot = client.metrics().expect("typed metrics");
    assert!(snapshot.total("f2_server_requests_total") >= 1.0);
    assert!(
        snapshot.value_with("f2_server_requests_total", &[("tenant", "acme")]).unwrap_or(0.0)
            >= 1.0
    );
    client.close().expect("clean close");

    // Unknown routes 404 without disturbing the listener.
    let missing = http_get(http_addr, "/favicon.ico");
    assert!(missing.starts_with("HTTP/1.1 404 Not Found\r\n"), "{missing}");

    // Drain the service: /healthz flips to draining while the listener lives.
    handle.shutdown();
    server.join().expect("server thread").expect("graceful drain");
    let draining = http_get(http_addr, "/healthz");
    assert!(draining.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{draining}");
    assert_eq!(body_of(&draining), "draining\n");

    http_handle.stop();
    http_thread.join().expect("http thread").expect("listener exits cleanly");
}
