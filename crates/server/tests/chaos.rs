//! Chaos suite: the service under concurrent clients, injected transport
//! faults, killed connections, overload, expired deadlines, and a full
//! drain/restart — the properties the supervisor guarantees:
//!
//! - no panic ever escapes a connection;
//! - every *accepted* job completes **byte-identical** to a local
//!   single-process run of the same engine configuration, or stays
//!   resumable until it does;
//! - shed connections receive a typed `Overloaded` reply with the
//!   configured retry-after hint;
//! - a drain loses zero accepted jobs, and shed / deadline / drain events
//!   are visible in the *served* Prometheus snapshot.

use f2_core::{
    ChunkState, ChunkedScheme, DetScheme, EncryptionReport, OwnerState, Scheme, SchemeOutcome, F2,
};
use f2_crypto::MasterKey;
use f2_engine::{chunk_seed, Engine, EngineConfig, StatefulScheme};
use f2_io::TableSource;
use f2_io::{FaultPlan, FaultyReader, FaultyWriter, RetryPolicy, RowSource};
use f2_relation::{Table, TableView};
use f2_server::{
    channel_acceptor, duplex, Client, FinishAck, Hangup, MemoryStores, PipeEnd, SchemeProvider,
    ServerConfig, ServerError, ServerScheme, Service, StaticTenants, StoreProvider, TcpAcceptor,
    Transport,
};
use std::io::{Cursor, Read, Write};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ───────────────────────── fixtures ─────────────────────────

const SERVICE_SEED: u64 = 0xC0FFEE;

fn f2_scheme(key: u64) -> Arc<dyn ServerScheme> {
    Arc::new(
        F2::builder()
            .alpha(0.5)
            .seed(17)
            .master_key(MasterKey::from_seed(key))
            .build()
            .expect("valid F2 parameters"),
    )
}

fn det_scheme(key: u64) -> Arc<dyn ServerScheme> {
    Arc::new(DetScheme::new(MasterKey::from_seed(key)))
}

fn chaos_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        queue_depth: 64,
        request_deadline: Duration::from_secs(5),
        deadline_tick: Duration::from_millis(10),
        idle_timeout: Duration::from_millis(500),
        drain_deadline: Duration::from_millis(500),
        retry_after: Duration::from_millis(25),
        chunk_rows: 8,
        frame_cap: 1 << 22,
        seed: SERVICE_SEED,
        retry: RetryPolicy::no_backoff(3),
        slow_request_threshold: Duration::from_secs(1),
        tenant_label_cap: 32,
    }
}

fn table(rows: usize, seed: u64) -> Table {
    f2_datagen::Dataset::Orders.generate(rows, seed)
}

/// The local ground truth: the exact stream a single process produces for the
/// same scheme, chunking, and token-derived engine seed the service uses.
fn reference_stream(
    scheme: &Arc<dyn ServerScheme>,
    data: &Table,
    chunk_rows: usize,
    token: u64,
) -> Vec<u8> {
    let engine =
        Engine::new(EngineConfig { workers: 1, chunk_rows, seed: chunk_seed(SERVICE_SEED, token) })
            .expect("valid engine config");
    let mut job = engine
        .begin_job(scheme.as_ref(), data.schema(), Cursor::new(Vec::new()))
        .expect("begin reference job");
    let mut source = TableSource::new(data);
    while let Some(chunk) = source.next_chunk(chunk_rows).expect("table source") {
        job.append_chunk(scheme.as_ref(), &chunk).expect("reference append");
    }
    let (_, store) = job.finish_into_store().expect("finish reference job");
    store.into_inner()
}

/// Shuts the service down when dropped, so a failed assertion inside a
/// `thread::scope` unwinds into a drain instead of hanging the scope join on
/// a server thread that would otherwise accept forever.
struct ShutdownOnExit(f2_server::ServiceHandle);

impl Drop for ShutdownOnExit {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

fn metric_value(prometheus: &str, name: &str) -> f64 {
    prometheus
        .lines()
        .find_map(|line| line.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or(0.0)
}

// ───────────── a fault-injected server-side transport ─────────────

/// Both directions of one pipe end, shareable between the fault wrappers.
#[derive(Clone)]
struct Half(Arc<Mutex<PipeEnd>>);

impl Read for Half {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.lock().expect("transport lock").read(buf)
    }
}

impl Write for Half {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("transport lock").write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().expect("transport lock").flush()
    }
}

/// A pipe end whose reads and writes pass through seeded fault injectors —
/// what the service sees when the chaos tests dial it.
struct ChaosTransport {
    reader: FaultyReader<Half>,
    writer: FaultyWriter<Half>,
    shared: Arc<Mutex<PipeEnd>>,
}

fn chaos_wrap(end: PipeEnd, seed: u64) -> ChaosTransport {
    let shared = Arc::new(Mutex::new(end));
    ChaosTransport {
        reader: FaultyReader::new(Half(Arc::clone(&shared)), FaultPlan::random(seed, 8192, 2)),
        writer: FaultyWriter::new(
            Half(Arc::clone(&shared)),
            FaultPlan::random(seed.wrapping_add(1), 8192, 2),
        ),
        shared,
    }
}

impl Read for ChaosTransport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.reader.read(buf)
    }
}

impl Write for ChaosTransport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.writer.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

impl Transport for ChaosTransport {
    fn hangup_handle(&self) -> Box<dyn Hangup> {
        self.shared.lock().expect("transport lock").hangup_handle()
    }

    fn set_io_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.shared.lock().expect("transport lock").set_io_timeout(timeout)
    }
}

// ───────────── a resume-driven client that survives chaos ─────────────

struct ClientPlan<'a> {
    tenant: &'a str,
    data: &'a Table,
    dial: Sender<Box<dyn Transport>>,
    seed: u64,
    /// On the first attempt, drop the connection cold after this many
    /// appends (simulating a client crash mid-stream).
    kill_after_appends: Option<usize>,
    /// Wrap the server side of every dialed connection in fault injectors.
    faulty: bool,
}

/// Drive one job to completion through as many connections as it takes.
/// Returns the token (for byte verification) and the final ack when this
/// driver observed it (a finish whose reply was lost returns `None`).
fn drive_to_completion(plan: &ClientPlan<'_>) -> (u64, Option<FinishAck>) {
    let mut token = None;
    for attempt in 0..80_u64 {
        let (ours, theirs) = duplex();
        let transport: Box<dyn Transport> = if plan.faulty {
            Box::new(chaos_wrap(theirs, plan.seed.wrapping_add(attempt.wrapping_mul(7919))))
        } else {
            Box::new(theirs)
        };
        if plan.dial.send(transport).is_err() {
            break;
        }
        let mut client = match Client::connect(ours) {
            Ok(client) => client,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        match push_through(&mut client, plan, &mut token, attempt) {
            Ok(ack) => return (token.expect("finished job has a token"), Some(ack)),
            // A resume met a retired token: the finish landed but its reply
            // was lost in transit. The byte check below is the arbiter.
            Err(ServerError::UnknownJob(_)) if token.is_some() => {
                return (token.expect("token observed"), None);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("job for tenant {} never completed", plan.tenant);
}

fn push_through(
    client: &mut Client<PipeEnd>,
    plan: &ClientPlan<'_>,
    token: &mut Option<u64>,
    attempt: u64,
) -> Result<FinishAck, ServerError> {
    let (tok, mut next_chunk, rows_done, chunk_rows) = match *token {
        None => {
            let opened = client.open(plan.tenant, plan.data.schema())?;
            *token = Some(opened.token);
            (opened.token, 0, 0, opened.chunk_rows as usize)
        }
        Some(tok) => {
            let ack = client.resume(plan.tenant, tok, plan.data.schema())?;
            (tok, ack.next_chunk, ack.rows_done, ack.chunk_rows as usize)
        }
    };
    let mut source = TableSource::new(plan.data);
    if rows_done > 0 {
        source.as_seekable().expect("table sources seek").seek_to_row(rows_done as usize)?;
    }
    let mut appends = 0;
    while let Some(chunk) = source.next_chunk(chunk_rows.max(1))? {
        if attempt == 0 && plan.kill_after_appends == Some(appends) {
            // Simulated client crash: abandon the connection cold.
            return Err(ServerError::Disconnected);
        }
        let ack = client.append(tok, next_chunk, chunk.view().to_table())?;
        next_chunk = ack.next_chunk;
        appends += 1;
    }
    client.finish(tok)
}

// ───────────────────────── the chaos drill ─────────────────────────

/// ≥ 8 concurrent clients, mixed F²/deterministic tenants, every server-side
/// socket wrapped in seeded fault injectors, half the clients crashing cold
/// mid-stream. Every job must complete and match the local ground truth
/// byte for byte.
#[test]
fn eight_faulty_clients_complete_byte_identical_jobs() {
    let tenants: Vec<(String, Arc<dyn ServerScheme>)> = (0..8)
        .map(|i| {
            let scheme = if i % 2 == 0 { f2_scheme(100 + i) } else { det_scheme(100 + i) };
            (format!("tenant-{i}"), scheme)
        })
        .collect();
    let mut registry = StaticTenants::new();
    for (name, scheme) in &tenants {
        registry = registry.with_tenant(name.clone(), Arc::clone(scheme));
    }
    let schemes = Arc::new(registry);
    let stores = Arc::new(MemoryStores::new());
    let config = chaos_config();
    let chunk_rows = config.chunk_rows;
    let service = Service::new(config, schemes, Arc::clone(&stores) as Arc<dyn StoreProvider>);
    let handle = service.handle();
    let (dial, acceptor) = channel_acceptor();

    let tables: Vec<Table> = (0..8).map(|i| table(12 + 7 * i, 1000 + i as u64)).collect();

    let completions: Vec<(usize, u64)> = std::thread::scope(|s| {
        let _drain_on_panic = ShutdownOnExit(handle.clone());
        let server = s.spawn(|| service.run(acceptor));
        let clients: Vec<_> = (0..8)
            .map(|i| {
                let plan_dial = dial.clone();
                let tenant = tenants[i].0.clone();
                let data = &tables[i];
                s.spawn(move || {
                    let plan = ClientPlan {
                        tenant: &tenant,
                        data,
                        dial: plan_dial,
                        seed: 0x5EED_0000 + i as u64,
                        kill_after_appends: (i % 2 == 1).then_some(1),
                        faulty: true,
                    };
                    let (token, _ack) = drive_to_completion(&plan);
                    (i, token)
                })
            })
            .collect();
        let completions: Vec<(usize, u64)> =
            clients.into_iter().map(|c| c.join().expect("client thread")).collect();
        handle.shutdown();
        server.join().expect("server thread").expect("server ran");
        completions
    });

    assert_eq!(completions.len(), 8);
    for (i, token) in completions {
        let served = stores.snapshot(token).unwrap_or_else(|| panic!("job {token} left no stream"));
        let expected = reference_stream(&tenants[i].1, &tables[i], chunk_rows, token);
        assert_eq!(
            served, expected,
            "tenant-{i} (token {token}): served stream differs from the local ground truth"
        );
    }
}

// ───────────────────────── load shedding ─────────────────────────

/// With one worker held busy and a one-deep queue, excess connections are
/// shed with a typed `Overloaded` carrying the configured retry-after hint —
/// and the event shows up in a *served* metrics snapshot.
#[test]
fn excess_connections_are_shed_with_a_typed_overloaded_reply() {
    let schemes = Arc::new(StaticTenants::new().with_tenant("acme", det_scheme(7)));
    let stores = Arc::new(MemoryStores::new());
    // A long idle timeout keeps the worker pinned for the whole test; the
    // pinned connections are released by hangup (dropping our ends), which
    // wakes the blocked reads immediately.
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        idle_timeout: Duration::from_secs(30),
        retry_after: Duration::from_millis(37),
        retry: RetryPolicy::no_backoff(2),
        seed: SERVICE_SEED,
        ..ServerConfig::default()
    };
    let retry_after = config.retry_after;
    let service = Service::new(config, schemes, stores);
    let handle = service.handle();
    let (dial, acceptor) = channel_acceptor();

    std::thread::scope(|s| {
        let _drain_on_panic = ShutdownOnExit(handle.clone());
        let server = s.spawn(|| service.run(acceptor));

        // Occupy the worker: a connection that never sends a request sits in
        // the server's preamble read until we hang it up. Reading the
        // server's preamble back confirms the worker has *popped* it — only
        // then is the queue slot free for the next connection, so the
        // occupancy setup is race-free even with one worker.
        let (mut idle_ours, idle_theirs) = duplex();
        dial.send(Box::new(idle_theirs)).expect("dial");
        let mut preamble_byte = [0_u8; 1];
        idle_ours.read_exact(&mut preamble_byte).expect("worker picked up the pinned connection");
        // Fill the one queue slot the same way (the only worker is busy, so
        // this one stays queued).
        let (queued_ours, queued_theirs) = duplex();
        dial.send(Box::new(queued_theirs)).expect("dial");

        // Everyone else must be shed, typed. The rejection can surface at
        // connect time (the server's reply-and-hangup beat our preamble) or
        // on the first request — both deliver the typed error.
        for attempt in 0..6 {
            let (ours, theirs) = duplex();
            dial.send(Box::new(theirs)).expect("dial");
            let outcome = Client::connect(ours).and_then(|mut c| c.metrics_text());
            match outcome {
                Err(ServerError::Overloaded { retry_after: hint }) => {
                    assert_eq!(hint, retry_after, "retry-after hint must be the configured one");
                }
                other => panic!("attempt {attempt}: expected a typed Overloaded, got {other:?}"),
            }
        }
        drop((idle_ours, queued_ours));

        // Once the pool frees up, a served snapshot reports the shedding.
        let mut reported = 0.0;
        for _ in 0..100 {
            let (ours, theirs) = duplex();
            dial.send(Box::new(theirs)).expect("dial");
            let served = Client::connect(ours).and_then(|mut c| {
                let text = c.metrics_text()?;
                let _ = c.close();
                Ok(text)
            });
            if let Ok(text) = served {
                reported = metric_value(&text, "f2_server_shed_total");
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(reported >= 1.0, "served snapshot must report f2_server_shed_total >= 1");

        handle.shutdown();
        server.join().expect("server thread").expect("server ran");
    });
}

// ───────────────────────── deadlines ─────────────────────────

/// A scheme that encrypts correctly but slowly — the deadline wheel's prey.
struct SlowScheme {
    inner: Arc<DetScheme>,
    delay: Duration,
}

impl Scheme for SlowScheme {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn encrypt(&self, data: &Table) -> f2_core::Result<SchemeOutcome> {
        std::thread::sleep(self.delay);
        self.inner.encrypt(data)
    }

    fn decrypt(&self, outcome: &SchemeOutcome) -> f2_core::Result<Table> {
        self.inner.decrypt(outcome)
    }

    fn real_rows(&self, outcome: &SchemeOutcome) -> f2_core::Result<Vec<(usize, usize)>> {
        self.inner.real_rows(outcome)
    }
}

impl ChunkedScheme for SlowScheme {
    fn reseeded(&self, _seed: u64) -> Box<dyn ChunkedScheme> {
        // Deterministic backend: reseeding is the identity.
        Box::new(SlowScheme { inner: Arc::clone(&self.inner), delay: self.delay })
    }

    fn encrypt_view(&self, view: &TableView<'_>) -> f2_core::Result<SchemeOutcome> {
        std::thread::sleep(self.delay);
        self.inner.encrypt_view(view)
    }

    fn merge_chunk_states(&self, chunks: Vec<ChunkState>) -> f2_core::Result<OwnerState> {
        self.inner.merge_chunk_states(chunks)
    }

    fn rederive_chunk_report(&self, rows: usize) -> Option<EncryptionReport> {
        self.inner.rederive_chunk_report(rows)
    }
}

impl StatefulScheme for SlowScheme {
    fn save_state(&self, outcome: &SchemeOutcome) -> f2_core::Result<Vec<u8>> {
        self.inner.save_state(outcome)
    }

    fn load_state(&self, bytes: &[u8]) -> f2_core::Result<OwnerState> {
        self.inner.load_state(bytes)
    }
}

/// An append that outlives its deadline gets the connection hung up, the
/// expiry is metered, and the job stays consistent: the committed chunk is
/// visible after resume and the job still finishes byte-identical.
#[test]
fn an_expired_deadline_hangs_up_but_never_corrupts_the_job() {
    let det = Arc::new(DetScheme::new(MasterKey::from_seed(21)));
    let slow: Arc<dyn ServerScheme> =
        Arc::new(SlowScheme { inner: Arc::clone(&det), delay: Duration::from_millis(200) });
    let plain: Arc<dyn ServerScheme> = det;
    let schemes = Arc::new(StaticTenants::new().with_tenant("slow", Arc::clone(&slow)));
    let stores = Arc::new(MemoryStores::new());
    let config = ServerConfig {
        workers: 2,
        request_deadline: Duration::from_millis(40),
        deadline_tick: Duration::from_millis(5),
        idle_timeout: Duration::from_secs(2),
        retry: RetryPolicy::no_backoff(2),
        chunk_rows: 8,
        seed: SERVICE_SEED,
        ..ServerConfig::default()
    };
    let chunk_rows = config.chunk_rows;
    let service = Service::new(config, schemes, Arc::clone(&stores) as Arc<dyn StoreProvider>);
    let handle = service.handle();
    let (dial, acceptor) = channel_acceptor();
    let data = table(16, 5);

    std::thread::scope(|s| {
        let _drain_on_panic = ShutdownOnExit(handle.clone());
        let server = s.spawn(|| service.run(acceptor));

        let before =
            metric_value(&f2_obs::global().prometheus_string(), "f2_server_deadline_expired_total");

        // The plain resume-driven client: its first append blows the
        // deadline, loses the connection, resumes, and still gets there.
        let plan = ClientPlan {
            tenant: "slow",
            data: &data,
            dial: dial.clone(),
            seed: 0xDEAD,
            kill_after_appends: None,
            faulty: false,
        };
        let (token, _ack) = drive_to_completion(&plan);

        // The expiry was metered, and serves in a snapshot.
        let mut served = String::new();
        for _ in 0..50 {
            let (ours, theirs) = duplex();
            dial.send(Box::new(theirs)).expect("dial");
            let mut client = Client::connect(ours).expect("client preamble");
            if let Ok(text) = client.metrics_text() {
                served = text;
                let _ = client.close();
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let after = metric_value(&served, "f2_server_deadline_expired_total");
        assert!(
            after > before,
            "deadline expiries must be metered (before {before}, after {after})"
        );

        // And the stream is exactly what a calm local run produces.
        let served_stream = stores.snapshot(token).expect("job stream persisted");
        let expected = reference_stream(&slow, &data, chunk_rows, token);
        assert_eq!(served_stream, expected, "deadline chaos corrupted the stream");
        drop(plain);

        handle.shutdown();
        server.join().expect("server thread").expect("server ran");
    });
}

// ───────────────────────── graceful drain ─────────────────────────

/// Shutdown with a half-finished job: the drain completes within its
/// deadline, the drained connection is metered, and a *new* service over the
/// same stores resumes the job to a byte-identical finish — zero accepted
/// work lost.
#[test]
fn a_drain_preserves_half_finished_jobs_across_a_service_restart() {
    let scheme = f2_scheme(55);
    let schemes = Arc::new(StaticTenants::new().with_tenant("acme", Arc::clone(&scheme)));
    let stores = Arc::new(MemoryStores::new());
    let config = ServerConfig {
        workers: 2,
        idle_timeout: Duration::from_secs(3),
        drain_deadline: Duration::from_millis(300),
        retry: RetryPolicy::no_backoff(2),
        chunk_rows: 8,
        seed: SERVICE_SEED,
        ..ServerConfig::default()
    };
    let chunk_rows = config.chunk_rows;
    let data = table(24, 9);

    // ── Service A: accept a job, append one chunk, then drain. ──
    let service_a = Service::new(
        config.clone(),
        Arc::clone(&schemes) as Arc<dyn SchemeProvider>,
        Arc::clone(&stores) as Arc<dyn StoreProvider>,
    );
    let handle_a = service_a.handle();
    let (dial_a, acceptor_a) = channel_acceptor();
    let token = std::thread::scope(|s| {
        let _drain_on_panic = ShutdownOnExit(handle_a.clone());
        let server = s.spawn(|| service_a.run(acceptor_a));
        let (ours, theirs) = duplex();
        dial_a.send(Box::new(theirs)).expect("dial");
        let mut client = Client::connect(ours).expect("connect");
        let opened = client.open("acme", data.schema()).expect("open");
        let first = TableSource::new(&data)
            .next_chunk(chunk_rows)
            .expect("chunk")
            .expect("rows")
            .view()
            .to_table();
        client.append(opened.token, 0, first).expect("append");

        // New work is refused once the drain begins…
        handle_a.shutdown();
        let refused = client.open("acme", data.schema());
        assert!(
            matches!(refused, Err(ServerError::ShuttingDown)),
            "admissions during drain must be refused typed, got {refused:?}"
        );
        // …and the connection (still open, now idle) is cut by the drain
        // deadline rather than held forever.
        server.join().expect("server thread").expect("drain completed");
        opened.token
    });

    // ── Service B over the SAME stores: the job resumes and finishes. ──
    let service_b = Service::new(config, schemes, Arc::clone(&stores) as Arc<dyn StoreProvider>);
    let handle_b = service_b.handle();
    let (dial_b, acceptor_b) = channel_acceptor();
    std::thread::scope(|s| {
        let _drain_on_panic = ShutdownOnExit(handle_b.clone());
        let server = s.spawn(|| service_b.run(acceptor_b));
        let (ours, theirs) = duplex();
        dial_b.send(Box::new(theirs)).expect("dial");
        let mut client = Client::connect(ours).expect("connect");
        let ack = client.resume("acme", token, data.schema()).expect("resume after restart");
        assert_eq!(ack.next_chunk, 1, "the acknowledged chunk survived the drain");
        assert_eq!(ack.rows_done, chunk_rows as u64);

        let mut source = TableSource::new(&data);
        source
            .as_seekable()
            .expect("table sources seek")
            .seek_to_row(ack.rows_done as usize)
            .expect("seek");
        let mut next = ack.next_chunk;
        while let Some(chunk) = source.next_chunk(chunk_rows).expect("chunk") {
            next = client
                .append(token, next, chunk.view().to_table())
                .expect("append after restart")
                .next_chunk;
        }
        let fin = client.finish(token).expect("finish after restart");
        assert_eq!(fin.rows, data.row_count() as u64);

        // Drain events from service A are visible in B's served snapshot.
        let text = client.metrics_text().expect("metrics");
        assert!(
            metric_value(&text, "f2_server_drained_total") >= 1.0,
            "served snapshot must report f2_server_drained_total >= 1"
        );
        let _ = client.close();
        handle_b.shutdown();
        server.join().expect("server thread").expect("server ran");
    });

    let served = stores.snapshot(token).expect("job stream persisted");
    let expected = reference_stream(&scheme, &data, chunk_rows, token);
    assert_eq!(served, expected, "drain + restart must lose nothing");
}

// ───────────────────────── real sockets ─────────────────────────

/// The same service over real TCP: a client encrypts a table end-to-end and
/// fetches metrics through the socket.
#[test]
fn the_service_speaks_tcp() {
    let scheme = f2_scheme(77);
    let schemes = Arc::new(StaticTenants::new().with_tenant("acme", Arc::clone(&scheme)));
    let stores = Arc::new(MemoryStores::new());
    let config = ServerConfig {
        workers: 2,
        chunk_rows: 8,
        seed: SERVICE_SEED,
        retry: RetryPolicy::no_backoff(2),
        ..ServerConfig::default()
    };
    let chunk_rows = config.chunk_rows;
    let service = Service::new(config, schemes, Arc::clone(&stores) as Arc<dyn StoreProvider>);
    let handle = service.handle();
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr().expect("local addr");
    let data = table(20, 3);

    std::thread::scope(|s| {
        let _drain_on_panic = ShutdownOnExit(handle.clone());
        let server = s.spawn(|| service.run(acceptor));
        let socket = std::net::TcpStream::connect(addr).expect("connect");
        let mut client = Client::connect(socket).expect("client");
        let ack = client.encrypt_table("acme", &data).expect("encrypt over TCP");
        assert_eq!(ack.rows, 20);
        assert_eq!(ack.chunks, 3);
        let text = client.metrics_text().expect("metrics over TCP");
        assert!(
            metric_value(&text, "f2_server_requests_total") >= 1.0,
            "served snapshot must count requests"
        );
        let _ = client.close();
        handle.shutdown();
        server.join().expect("server thread").expect("server ran");
    });

    // TCP jobs persist and verify exactly like in-memory ones.
    let (token, bytes) =
        (1..10).find_map(|t| stores.snapshot(t).map(|b| (t, b))).expect("a job stream persisted");
    let expected = reference_stream(&scheme, &data, chunk_rows, token);
    assert_eq!(bytes, expected);
}
