//! Multi-tenant job state: who may encrypt (schemes per tenant), where each
//! job's stream lives (pluggable [`StoreProvider`]s), and the checkout
//! discipline that makes a job single-writer without holding any lock across
//! slow work.
//!
//! # Crash-safe tenancy, by construction
//!
//! A job's durable state is its F2WS v2 stream in the [`StreamStore`]: every
//! completed chunk frame already carries the chunk's `OwnerState` blob next
//! to its ciphertext (that is how [`f2_engine::StreamJob`] persists). So
//! "persist the job" is not a step the service can forget — it happened the
//! moment the append's reply was written. Parking a job (after a panic, an
//! engine error, or a drain) just drops the in-memory handle; the next
//! checkout reopens the store through [`Engine::resume_job`], which truncates
//! any torn tail frame and replays the prefix byte-exactly.
//!
//! Each job gets its own deterministic engine seed,
//! `chunk_seed(service_seed, token)`, so a resume after a full process
//! restart re-derives the exact key schedule the original run used.
//!
//! lint: chunk-seed-authority — the per-job engine seed is derived here, once,
//! in [`Sessions::engine_for`]; tokens are never reused across jobs
//! ([`Sessions::allocate`] skips live *and* persisted tokens), so per-job seed
//! domains stay disjoint exactly like per-chunk nonce domains.

use crate::error::{ServerError, ServerResult};
use crate::StreamStore;
use f2_core::ChunkedScheme;
use f2_engine::{chunk_seed, Engine, EngineConfig, StatefulScheme, StreamJob};
use f2_relation::Schema;
use std::collections::HashMap;
use std::io::{Cursor, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A boxed job store, as the session layer handles them.
pub type BoxStore = Box<dyn StreamStore + Send>;

/// What a scheme must provide to serve jobs: chunked encryption plus owner
/// state persistence. Blanket-implemented, so every engine backend qualifies.
pub trait ServerScheme: ChunkedScheme + StatefulScheme {}

impl<S: ChunkedScheme + StatefulScheme + ?Sized> ServerScheme for S {}

/// Maps tenant names to their encryption schemes (each tenant holds its own
/// key material). `None` means the tenant does not exist.
pub trait SchemeProvider: Send + Sync {
    /// The scheme serving `tenant`, if the tenant is known.
    fn scheme(&self, tenant: &str) -> Option<Arc<dyn ServerScheme>>;
}

/// A fixed tenant table, built up front. The common provider for tests and
/// the example service.
#[derive(Default)]
pub struct StaticTenants {
    map: HashMap<String, Arc<dyn ServerScheme>>,
}

impl StaticTenants {
    /// An empty tenant table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `scheme` under `tenant`, replacing any previous registration.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>, scheme: Arc<dyn ServerScheme>) -> Self {
        self.map.insert(tenant.into(), scheme);
        self
    }
}

impl SchemeProvider for StaticTenants {
    fn scheme(&self, tenant: &str) -> Option<Arc<dyn ServerScheme>> {
        self.map.get(tenant).map(Arc::clone)
    }
}

/// Where job streams persist. A provider outlives the service instance — a
/// new [`Service`](crate::Service) over the same provider sees the previous
/// instance's jobs, which is what makes restart-resume testable.
pub trait StoreProvider: Send + Sync {
    /// Open (creating if absent) the store for job `token`.
    fn open(&self, token: u64) -> std::io::Result<BoxStore>;

    /// Whether a store for `token` already exists.
    fn exists(&self, token: u64) -> bool;
}

/// In-memory stores, one growable buffer per token. Buffers survive as long
/// as the provider does, so they model durable storage across service
/// restarts without touching disk.
#[derive(Default)]
pub struct MemoryStores {
    map: Mutex<HashMap<u64, Arc<Mutex<Vec<u8>>>>>,
}

impl MemoryStores {
    /// An empty in-memory store set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of job `token`'s stream bytes, if the job has a store.
    #[must_use]
    pub fn snapshot(&self, token: u64) -> Option<Vec<u8>> {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&token)
            .map(|buf| buf.lock().unwrap_or_else(PoisonError::into_inner).clone())
    }
}

/// A cursor over one shared in-memory buffer.
struct SharedBuf {
    buf: Arc<Mutex<Vec<u8>>>,
    pos: u64,
}

impl SharedBuf {
    fn with_cursor<R>(&mut self, f: impl FnOnce(&mut Cursor<&mut Vec<u8>>) -> R) -> R {
        let buf = Arc::clone(&self.buf);
        let mut guard = buf.lock().unwrap_or_else(PoisonError::into_inner);
        let mut cursor = Cursor::new(&mut *guard);
        cursor.set_position(self.pos);
        let out = f(&mut cursor);
        self.pos = cursor.position();
        out
    }
}

impl Read for SharedBuf {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        self.with_cursor(|c| c.read(out))
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let buf = Arc::clone(&self.buf);
        let mut guard = buf.lock().unwrap_or_else(PoisonError::into_inner);
        // lint: allow(truncating-cast) — in-memory buffer, usize-addressable.
        let pos = self.pos as usize;
        if pos > guard.len() {
            guard.resize(pos, 0);
        }
        let overlap = data.len().min(guard.len().saturating_sub(pos));
        if let Some(slice) = guard.get_mut(pos..pos + overlap) {
            slice.copy_from_slice(&data[..overlap]);
        }
        guard.extend_from_slice(&data[overlap..]);
        self.pos = self.pos.saturating_add(data.len() as u64);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Seek for SharedBuf {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.with_cursor(|c| c.seek(pos))
    }
}

impl StreamStore for SharedBuf {
    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        let buf = Arc::clone(&self.buf);
        let mut guard = buf.lock().unwrap_or_else(PoisonError::into_inner);
        // lint: allow(truncating-cast) — in-memory buffer, usize-addressable.
        guard.resize(len as usize, 0);
        Ok(())
    }
}

impl StoreProvider for MemoryStores {
    fn open(&self, token: u64) -> std::io::Result<BoxStore> {
        let buf = Arc::clone(
            self.map.lock().unwrap_or_else(PoisonError::into_inner).entry(token).or_default(),
        );
        Ok(Box::new(SharedBuf { buf, pos: 0 }))
    }

    fn exists(&self, token: u64) -> bool {
        self.map.lock().unwrap_or_else(PoisonError::into_inner).contains_key(&token)
    }
}

/// File-backed stores: one `job-<token>.f2ws` per job under a directory.
pub struct DirStores {
    dir: PathBuf,
}

impl DirStores {
    /// Stores rooted at `dir` (created if missing on first open).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DirStores { dir: dir.into() }
    }

    fn path(&self, token: u64) -> PathBuf {
        self.dir.join(format!("job-{token:016x}.f2ws"))
    }
}

impl StoreProvider for DirStores {
    fn open(&self, token: u64) -> std::io::Result<BoxStore> {
        std::fs::create_dir_all(&self.dir)?;
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.path(token))?;
        Ok(Box::new(file))
    }

    fn exists(&self, token: u64) -> bool {
        self.path(token).is_file()
    }
}

/// A job the service holds live in memory, ready for appends.
pub(crate) struct LoadedJob {
    pub(crate) tenant: String,
    pub(crate) scheme: Arc<dyn ServerScheme>,
    pub(crate) schema: Schema,
    pub(crate) job: StreamJob<BoxStore>,
}

/// The in-memory state of one job token.
enum JobSlot {
    /// Live and idle; the next request checks it out.
    Loaded(Box<LoadedJob>),
    /// A request on some connection holds it right now.
    CheckedOut,
    /// Dropped after a failure or drain; the stream in the store is the
    /// truth. The next checkout reloads via [`Engine::resume_job`].
    Parked { tenant: String, schema: Schema },
}

/// The job table plus token allocation.
pub(crate) struct Sessions {
    jobs: Mutex<HashMap<u64, JobSlot>>,
    next_token: AtomicU64,
    service_seed: u64,
    chunk_rows: usize,
    workers: usize,
}

/// What `Sessions::checkout` hands back: either the live job, or the facts
/// needed to reload a parked one (the caller does the slow reload off-lock).
pub(crate) enum Checkout {
    Live(Box<LoadedJob>),
    Reload { tenant: String, schema: Schema },
}

impl Sessions {
    pub(crate) fn new(service_seed: u64, chunk_rows: usize, workers: usize) -> Self {
        Sessions {
            jobs: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            service_seed,
            chunk_rows,
            workers,
        }
    }

    /// The deterministic per-job engine. Seeded by token so a resume — even
    /// after a full process restart — re-derives the original key schedule.
    pub(crate) fn engine_for(&self, token: u64) -> ServerResult<Engine> {
        Engine::new(EngineConfig {
            workers: self.workers.max(1),
            chunk_rows: self.chunk_rows.max(1),
            seed: chunk_seed(self.service_seed, token),
        })
        .map_err(ServerError::from)
    }

    /// A token no live job and no persisted store is using.
    pub(crate) fn allocate(&self, stores: &dyn StoreProvider) -> u64 {
        let jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            let token = self.next_token.fetch_add(1, Ordering::SeqCst);
            if !jobs.contains_key(&token) && !stores.exists(token) {
                return token;
            }
        }
    }

    /// Register a freshly opened job as live.
    pub(crate) fn insert_live(&self, token: u64, job: LoadedJob) {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(token, JobSlot::Loaded(Box::new(job)));
    }

    /// Take exclusive hold of a job. Returns the live job, or the reload
    /// facts for a parked one (the slot is marked checked-out either way).
    /// Unknown tokens are reported as such — a persisted-but-never-loaded job
    /// (service restart) must arrive through a `resume` request, which
    /// carries the tenant and schema the reload needs.
    pub(crate) fn checkout(&self, token: u64) -> ServerResult<Checkout> {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        match jobs.get_mut(&token) {
            None => Err(ServerError::UnknownJob(token)),
            Some(slot @ JobSlot::CheckedOut) => {
                let _ = slot;
                Err(ServerError::JobBusy(token))
            }
            Some(slot) => match std::mem::replace(slot, JobSlot::CheckedOut) {
                JobSlot::Loaded(job) => Ok(Checkout::Live(job)),
                JobSlot::Parked { tenant, schema } => Ok(Checkout::Reload { tenant, schema }),
                JobSlot::CheckedOut => Err(ServerError::JobBusy(token)),
            },
        }
    }

    /// Mark a token checked-out that had no slot yet (restart-resume path).
    /// Fails with `JobBusy` if another connection is already loading it.
    pub(crate) fn claim_for_load(&self, token: u64) -> ServerResult<()> {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        match jobs.get(&token) {
            None => {
                jobs.insert(token, JobSlot::CheckedOut);
                Ok(())
            }
            Some(_) => Err(ServerError::JobBusy(token)),
        }
    }

    /// Return a checked-out job to the live state.
    pub(crate) fn checkin_live(&self, token: u64, job: LoadedJob) {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(token, JobSlot::Loaded(Box::new(job)));
    }

    /// Park a checked-out job: drop the in-memory handle, keep the facts a
    /// reload needs. The persisted stream is already complete up to the last
    /// acknowledged chunk.
    pub(crate) fn park(&self, token: u64, tenant: String, schema: Schema) {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(token, JobSlot::Parked { tenant, schema });
    }

    /// Forget a token entirely (job finished, or a fresh open failed before
    /// the job existed).
    pub(crate) fn remove(&self, token: u64) {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner).remove(&token);
    }
}
