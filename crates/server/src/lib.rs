//! f2_server: a supervised, multi-tenant encryption service over the F²
//! engine.
//!
//! The server turns the engine's push-model [`StreamJob`](f2_engine::StreamJob)
//! into a long-running network service with the operational properties the
//! engine alone cannot give you:
//!
//! - **A typed, CRC-checked protocol** ([`proto`]) over the same `F2WS` frame
//!   layer the encrypted streams use: open / append / finish / resume /
//!   metrics requests, typed error replies, hostile-input-hardened parsing
//!   (in f2-lint's `untrusted-input` scope).
//! - **Supervision** ([`server`]): a bounded worker pool behind a bounded
//!   admission queue; past the high-water mark connections are shed with a
//!   typed [`Overloaded`](ServerError::Overloaded) reply and a retry-after
//!   hint. Every request runs under a deadline from a monotonic
//!   [`deadline`] wheel; idle connections are reaped by I/O timeout.
//! - **Crash-safe tenancy** ([`session`]): each tenant's scheme encrypts its
//!   own jobs; a job's durable state is its stream — every acknowledged
//!   chunk is already persisted with its owner-state blob, so a dropped
//!   connection, a panicking handler, or a full process restart leaves the
//!   job resumable byte-identically via the engine's resume path. Handler
//!   panics are contained per-connection with `catch_unwind`.
//! - **Graceful drain** ([`ServiceHandle::shutdown`]): admissions stop,
//!   in-flight connections finish up to a deadline, stragglers are hung up
//!   with their jobs parked resumable, and the process exits. Accepted work
//!   is never lost.
//!
//! Everything meters into [`f2_obs`]; a `metrics` request serves the global
//! registry as one Prometheus snapshot, and an [`HttpServer`] ([`http`])
//! serves `/metrics`, `/metrics.json`, `/healthz`, and `/tracez` to anything
//! that speaks HTTP. Every request runs under a trace context — adopted from
//! the client's optional wire trace field or minted by the service — so
//! `/tracez` explains recent and slowest requests stage by stage.
//!
//! ```
//! use f2_server::{
//!     channel_acceptor, duplex, Client, MemoryStores, ServerConfig, Service,
//!     StaticTenants,
//! };
//! use std::sync::Arc;
//!
//! let scheme = f2_core::F2::builder()
//!     .alpha(0.5)
//!     .seed(5)
//!     .master_key(f2_crypto::MasterKey::from_seed(11))
//!     .build()
//!     .unwrap();
//! let tenants = Arc::new(StaticTenants::new().with_tenant("acme", Arc::new(scheme)));
//! let stores = Arc::new(MemoryStores::new());
//! let service = Service::new(ServerConfig::default(), tenants, stores);
//! let handle = service.handle();
//!
//! let (dial, acceptor) = channel_acceptor();
//! std::thread::scope(|s| {
//!     s.spawn(|| service.run(acceptor));
//!     let (ours, theirs) = duplex();
//!     dial.send(Box::new(theirs)).unwrap();
//!     let mut client = Client::connect(ours).unwrap();
//!     let table = f2_datagen::Dataset::Orders.generate(64, 7);
//!     let ack = client.encrypt_table("acme", &table).unwrap();
//!     assert_eq!(ack.rows, 64);
//!     client.close().unwrap();
//!     handle.shutdown();
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod deadline;
pub mod error;
pub mod http;
mod obs;
pub mod pipe;
pub mod proto;
pub mod server;
pub mod session;
pub mod transport;

pub use client::{AppendAck, Client, FinishAck, JobOpened, ResumeAck};
pub use deadline::{DeadlineGuard, DeadlineWheel};
pub use error::{ServerError, ServerResult};
pub use http::{Health, HealthSource, HttpServer, HttpServerHandle, HttpState, StaticHealth};
pub use pipe::{duplex, PipeEnd};
pub use proto::{Request, Response};
pub use server::{
    channel_acceptor, Acceptor, ChannelAcceptor, ServerConfig, Service, ServiceHandle, TcpAcceptor,
};
pub use session::{
    BoxStore, DirStores, MemoryStores, SchemeProvider, ServerScheme, StaticTenants, StoreProvider,
};
pub use transport::{Hangup, Transport};

// Job streams persist through the same store abstraction the recovery layer
// uses; re-exported so store implementations need only this crate.
pub use f2_io::StreamStore;
