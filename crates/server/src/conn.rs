//! The per-connection request loop: frames in, typed replies out.
//!
//! Every request is bracketed by a [`DeadlineGuard`](crate::deadline) (fire →
//! hang up the transport, reply `DeadlineExpired`) and dispatched inside
//! [`catch_unwind`], so a panicking handler costs one connection and parks
//! its job resumable — never the process. Jobs are handled under a checkout
//! discipline: a request takes the job out of the [`Sessions`] table, works
//! on it with no lock held, and a drop guard puts it back — live on success,
//! parked if the handler panicked mid-flight.

use crate::error::{ServerError, ServerResult};
use crate::obs;
use crate::proto::{self, Request, Response};
use crate::server::Core;
use crate::session::{Checkout, LoadedJob, Sessions};
use crate::transport::{Hangup, Shared, Transport};
use f2_io::frame::{FrameReader, FrameSink};
use f2_io::TableChunk;
use f2_relation::{Schema, Table};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run one connection to completion. Never panics; never takes the process
/// down with it.
pub(crate) fn serve(core: &Core, mut transport: Box<dyn Transport>) {
    obs::connections_total().inc();
    let _ = transport.set_io_timeout(Some(core.config.idle_timeout));
    let hangup: Arc<dyn Hangup> = Arc::from(transport.hangup_handle());
    let conn_id = core.conns.register(Arc::clone(&hangup));
    let _ = run_connection(core, transport, &hangup);
    core.conns.unregister(conn_id);
    if core.is_draining() {
        obs::drained_total().inc();
    }
}

fn run_connection(
    core: &Core,
    transport: Box<dyn Transport>,
    hangup: &Arc<dyn Hangup>,
) -> ServerResult<()> {
    let shared = Shared::new(transport);
    let mut sink = FrameSink::new(core.config.retry.writer(shared.clone()))?;
    let mut frames =
        FrameReader::new(core.config.retry.reader(shared))?.with_frame_cap(core.config.frame_cap);
    loop {
        let frame = match frames.next_frame() {
            Ok(Some(frame)) => frame,
            // FRAME_END: the client closed the conversation cleanly.
            Ok(None) => return Ok(()),
            Err(e) => {
                let err = ServerError::from(e);
                if !matches!(err, ServerError::Io(_)) {
                    // Corrupt/oversized frame: tell the peer why, then close.
                    let (ty, payload) = proto::encode_error(&err);
                    let _ = sink.write_frame(ty, &payload);
                }
                return Err(err);
            }
        };
        obs::requests_total().inc();
        let started = Instant::now();
        // Decode up front (the decoder is panic-free by construction) so a
        // wire trace context, if the client sent one, governs the whole
        // request; untraced requests get server-minted ids.
        let decoded = Request::decode_traced(frame.frame_type, &frame.payload);
        let wire_ctx = match &decoded {
            Ok((_, ctx)) => *ctx,
            Err(_) => None,
        };
        let ctx = wire_ctx.unwrap_or_else(|| core.ids.next_ctx());
        let trace = f2_obs::journal().begin(ctx, request_kind(frame.frame_type));
        let deadline =
            core.wheel.register(started + core.config.request_deadline, Arc::clone(hangup));
        let outcome = catch_unwind(AssertUnwindSafe(|| match decoded {
            Ok((request, _)) => dispatch(core, request),
            Err(e) => Err(e),
        }));
        let expired = deadline.expired();
        drop(deadline);
        let reply = match outcome {
            Ok(reply) => reply,
            Err(panic_payload) => {
                obs::worker_panics_total().inc();
                Err(ServerError::Internal(format!(
                    "request handler panicked: {}",
                    panic_message(panic_payload.as_ref())
                )))
            }
        };
        let reply = if expired {
            obs::deadline_expired_total().inc();
            Err(ServerError::DeadlineExpired)
        } else {
            reply
        };
        let elapsed = started.elapsed();
        obs::request_seconds().record_duration(elapsed);
        let outcome_kind = match &reply {
            Ok(_) => "ok",
            Err(error) => error.kind(),
        };
        if let Some(entry) = trace.complete(outcome_kind) {
            account(core, &entry, elapsed);
        }
        // A malformed request or an internal failure ends the conversation
        // after the typed reply; the client reconnects and resumes.
        let close_after =
            matches!(reply, Err(ServerError::BadRequest(_) | ServerError::Internal(_)));
        // Success replies echo the request's trace context; error replies
        // stay traceless (their encoder predates the field and old clients
        // must keep decoding them).
        let (ty, payload) = match &reply {
            Ok(response) => response.encode_traced(wire_ctx.as_ref()),
            Err(error) => proto::encode_error(error),
        };
        sink.write_frame(ty, &payload)?;
        if expired {
            // The deadline already hung the transport up; stop driving it.
            return Err(ServerError::DeadlineExpired);
        }
        if close_after {
            return Ok(());
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

fn dispatch(core: &Core, request: Request) -> ServerResult<Response> {
    match request {
        Request::Open { tenant, schema } => handle_open(core, tenant, &schema),
        Request::Append { token, chunk_index, table } => {
            handle_append(core, token, chunk_index, table)
        }
        Request::Finish { token } => handle_finish(core, token),
        Request::Resume { tenant, token, schema } => handle_resume(core, &tenant, token, &schema),
        Request::Metrics => Ok(Response::Metrics(metrics_snapshot())),
    }
}

/// The trace-journal kind a request frame files under.
fn request_kind(frame_type: u8) -> &'static str {
    match frame_type {
        proto::REQ_OPEN => "open",
        proto::REQ_APPEND => "append",
        proto::REQ_FINISH => "finish",
        proto::REQ_RESUME => "resume",
        proto::REQ_METRICS => "metrics",
        _ => "unknown",
    }
}

/// Post-request accounting off the completed trace entry: per-tenant counters
/// and the slow-request log.
fn account(core: &Core, entry: &f2_obs::TraceEntry, elapsed: Duration) {
    if let Some(tenant) = entry.tenant.as_deref() {
        let tenant_metrics = obs::tenant_metrics(tenant, core.config.tenant_label_cap);
        tenant_metrics.requests.inc();
        tenant_metrics.rows.add(entry.count("rows"));
        tenant_metrics.stream_bytes.add(entry.count("chunk_bytes"));
    }
    if elapsed >= core.config.slow_request_threshold {
        obs::slow_requests_total().inc();
        let mut fields: Vec<(&str, u64)> = vec![
            ("trace_id", entry.trace_id),
            ("request_id", entry.request_id),
            ("total_us", u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX)),
        ];
        for stage in &entry.stages {
            fields.push((stage.name, stage.total_ns / 1_000));
        }
        f2_obs::trace_event("server.slow_request", &fields);
    }
}

/// The served metrics snapshot: one `write_prometheus` render of the global
/// registry — everything the process meters, not just the server crate.
fn metrics_snapshot() -> String {
    let mut buf = Vec::new();
    let _ = f2_obs::global().write_prometheus(&mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

fn handle_open(core: &Core, tenant: String, schema: &Schema) -> ServerResult<Response> {
    if core.is_draining() {
        return Err(ServerError::ShuttingDown);
    }
    let scheme =
        core.schemes.scheme(&tenant).ok_or_else(|| ServerError::UnknownTenant(tenant.clone()))?;
    f2_obs::ctx::note_tenant(&tenant);
    let token = core.sessions.allocate(core.stores.as_ref());
    let store = core
        .stores
        .open(token)
        .map_err(|e| ServerError::Internal(format!("job store open: {e}")))?;
    let job = core.sessions.engine_for(token)?.begin_job(scheme.as_ref(), schema, store)?;
    let chunk_rows = as_u64(job.chunk_rows());
    core.sessions.insert_live(token, LoadedJob { tenant, scheme, schema: schema.clone(), job });
    Ok(Response::Open { token, chunk_rows })
}

fn handle_append(
    core: &Core,
    token: u64,
    chunk_index: u64,
    table: Table,
) -> ServerResult<Response> {
    let mut held = acquire(core, token)?;
    let Some(entry) = held.job.as_mut() else {
        return Err(ServerError::Internal("checkout yielded no job".into()));
    };
    f2_obs::ctx::note_tenant(&entry.tenant);
    let rows = table.row_count();
    let cap = entry.job.chunk_rows();
    if rows > cap {
        return Err(ServerError::TooLarge { rows, cap });
    }
    if rows == 0 {
        return Err(ServerError::BadRequest("append carries no rows".into()));
    }
    if table.schema() != &entry.schema {
        return Err(ServerError::BadRequest(
            "append schema disagrees with the job's schema".into(),
        ));
    }
    let expected = as_u64(entry.job.next_chunk_index());
    if chunk_index != expected {
        return Err(ServerError::WrongChunk { expected, got: chunk_index });
    }
    let scheme = Arc::clone(&entry.scheme);
    match entry.job.append_chunk(scheme.as_ref(), &TableChunk::Owned(table)) {
        Ok(_) => Ok(Response::Append {
            rows: as_u64(entry.job.rows()),
            encrypted_rows: as_u64(entry.job.encrypted_rows()),
            next_chunk: as_u64(entry.job.next_chunk_index()),
        }),
        Err(e) => {
            // The store may hold a torn frame; park so the next touch goes
            // through `resume_job`, which truncates and replays.
            held.park();
            Err(e.into())
        }
    }
}

fn handle_finish(core: &Core, token: u64) -> ServerResult<Response> {
    let mut held = acquire(core, token)?;
    let Some(entry) = held.job.take() else {
        return Err(ServerError::Internal("checkout yielded no job".into()));
    };
    f2_obs::ctx::note_tenant(&entry.tenant);
    // The job is out of the guard now; this settle guard parks it if
    // `finish` fails or panics, so the token can never wedge checked-out.
    let mut settle = SlotGuard {
        sessions: &core.sessions,
        token,
        disposition: Some(Disposition::Park {
            tenant: entry.tenant.clone(),
            schema: entry.schema.clone(),
        }),
    };
    let outcome = entry.job.finish()?;
    settle.disposition = Some(Disposition::Remove);
    drop(settle);
    Ok(Response::Finish {
        rows: as_u64(outcome.rows),
        encrypted_rows: as_u64(outcome.encrypted_rows),
        chunks: as_u64(outcome.chunks.len()),
        bytes_written: outcome.bytes_written,
    })
}

fn handle_resume(core: &Core, tenant: &str, token: u64, schema: &Schema) -> ServerResult<Response> {
    if core.is_draining() {
        return Err(ServerError::ShuttingDown);
    }
    let held = match core.sessions.checkout(token) {
        Ok(Checkout::Live(job)) => Checked { sessions: &core.sessions, token, job: Some(*job) },
        Ok(Checkout::Reload { tenant: stored_tenant, schema: stored_schema }) => {
            reload_checked(core, token, stored_tenant, stored_schema, None)?
        }
        // Not in memory at all: the restart path. The store is the truth;
        // the request supplies the tenant and schema the reload needs.
        Err(ServerError::UnknownJob(_)) => {
            if !core.stores.exists(token) {
                return Err(ServerError::UnknownJob(token));
            }
            core.sessions.claim_for_load(token)?;
            reload_checked(
                core,
                token,
                tenant.to_string(),
                schema.clone(),
                Some(Disposition::Remove),
            )?
        }
        Err(e) => return Err(e),
    };
    let Some(entry) = held.job.as_ref() else {
        return Err(ServerError::Internal("checkout yielded no job".into()));
    };
    // A token is only addressable by its owning tenant; to anyone else it
    // does not exist.
    if entry.tenant != tenant {
        return Err(ServerError::UnknownJob(token));
    }
    f2_obs::ctx::note_tenant(tenant);
    if &entry.schema != schema {
        return Err(ServerError::BadRequest(
            "resume schema disagrees with the job's schema".into(),
        ));
    }
    Ok(Response::Resume {
        token,
        next_chunk: as_u64(entry.job.next_chunk_index()),
        rows_done: as_u64(entry.job.rows()),
        chunk_rows: as_u64(entry.job.chunk_rows()),
    })
}

/// Take exclusive hold of `token`, reloading it from its store if parked.
fn acquire<'a>(core: &'a Core, token: u64) -> ServerResult<Checked<'a>> {
    match core.sessions.checkout(token)? {
        Checkout::Live(job) => Ok(Checked { sessions: &core.sessions, token, job: Some(*job) }),
        Checkout::Reload { tenant, schema } => reload_checked(core, token, tenant, schema, None),
    }
}

/// Reload a checked-out slot from its persisted stream. `on_failure` is what
/// the slot becomes if the reload fails (or panics): `None` re-parks with the
/// given tenant/schema, `Some(Remove)` forgets a freshly claimed slot.
fn reload_checked<'a>(
    core: &'a Core,
    token: u64,
    tenant: String,
    schema: Schema,
    on_failure: Option<Disposition>,
) -> ServerResult<Checked<'a>> {
    let mut claim = SlotGuard {
        sessions: &core.sessions,
        token,
        disposition: Some(on_failure.unwrap_or_else(|| Disposition::Park {
            tenant: tenant.clone(),
            schema: schema.clone(),
        })),
    };
    let scheme =
        core.schemes.scheme(&tenant).ok_or_else(|| ServerError::UnknownTenant(tenant.clone()))?;
    let store = core
        .stores
        .open(token)
        .map_err(|e| ServerError::Internal(format!("job store open: {e}")))?;
    let job = core.sessions.engine_for(token)?.resume_job(scheme.as_ref(), &schema, store)?;
    claim.disposition = None;
    drop(claim);
    Ok(Checked {
        sessions: &core.sessions,
        token,
        job: Some(LoadedJob { tenant, scheme, schema, job }),
    })
}

/// A checked-out job. Drop checks it back in live — or parks it if the
/// thread is unwinding, so a panic mid-append leaves the token resumable.
struct Checked<'a> {
    sessions: &'a Sessions,
    token: u64,
    job: Option<LoadedJob>,
}

impl Checked<'_> {
    /// Park explicitly (the store may hold a torn frame after an error).
    fn park(&mut self) {
        if let Some(job) = self.job.take() {
            self.sessions.park(self.token, job.tenant, job.schema);
        }
    }
}

impl Drop for Checked<'_> {
    fn drop(&mut self) {
        if let Some(job) = self.job.take() {
            if std::thread::panicking() {
                self.sessions.park(self.token, job.tenant, job.schema);
            } else {
                self.sessions.checkin_live(self.token, job);
            }
        }
    }
}

/// What happens to a checked-out slot if its holder bails (error or panic).
enum Disposition {
    /// Forget the token (fresh claim that never produced a job).
    Remove,
    /// Park it for a later resume.
    Park { tenant: String, schema: Schema },
}

struct SlotGuard<'a> {
    sessions: &'a Sessions,
    token: u64,
    disposition: Option<Disposition>,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        match self.disposition.take() {
            Some(Disposition::Remove) => self.sessions.remove(self.token),
            Some(Disposition::Park { tenant, schema }) => {
                self.sessions.park(self.token, tenant, schema);
            }
            None => {}
        }
    }
}

fn as_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}
