//! Cached telemetry handles for the service.
//!
//! Admission, shedding, deadlines, panics, and drain each get a counter so an
//! operator can read the service's health from one Prometheus scrape: a
//! rising `f2_server_shed_total` means the admission queue is past its
//! high-water mark, `f2_server_deadline_expired_total` means workers are too
//! slow for the configured deadline, `f2_server_worker_panics_total` means
//! jobs are being parked resumable. The queue-depth gauge and the request
//! latency histogram give the load picture between those events.

use f2_obs::{Counter, Gauge, Histogram, Unit};
use std::sync::OnceLock;

/// Connections the service accepted (shed connections included).
pub(crate) fn connections_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_connections_total",
            "Connections accepted by the service.",
            &[],
        )
    })
}

/// Requests the service dispatched (errors included).
pub(crate) fn requests_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_requests_total",
            "Requests dispatched by the service.",
            &[],
        )
    })
}

/// Connections rejected with `Overloaded` past the admission high-water mark.
pub(crate) fn shed_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_shed_total",
            "Connections shed with a typed Overloaded reply.",
            &[],
        )
    })
}

/// Requests whose per-request deadline fired before the reply was ready.
pub(crate) fn deadline_expired_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_deadline_expired_total",
            "Requests cut off by the per-request deadline.",
            &[],
        )
    })
}

/// Connections that completed during a graceful drain.
pub(crate) fn drained_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_drained_total",
            "Connections drained to completion during shutdown.",
            &[],
        )
    })
}

/// Request handlers caught panicking; the touched job was parked resumable.
pub(crate) fn worker_panics_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_worker_panics_total",
            "Request handlers that panicked (job parked resumable).",
            &[],
        )
    })
}

/// Connections waiting in the admission queue right now.
pub(crate) fn queue_depth() -> &'static Gauge {
    static G: OnceLock<Gauge> = OnceLock::new();
    G.get_or_init(|| {
        f2_obs::global().gauge(
            "f2_server_queue_depth",
            "Connections waiting in the admission queue.",
            &[],
        )
    })
}

/// End-to-end request latency (decode → dispatch → reply encoded).
pub(crate) fn request_seconds() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        f2_obs::global().histogram(
            "f2_server_request_seconds",
            "Wall-clock latency per request, decode through reply.",
            &[],
            Unit::Seconds,
        )
    })
}
