//! Cached telemetry handles for the service.
//!
//! Admission, shedding, deadlines, panics, and drain each get a counter so an
//! operator can read the service's health from one Prometheus scrape: a
//! rising `f2_server_shed_total` means the admission queue is past its
//! high-water mark, `f2_server_deadline_expired_total` means workers are too
//! slow for the configured deadline, `f2_server_worker_panics_total` means
//! jobs are being parked resumable. The queue-depth gauge and the request
//! latency histogram give the load picture between those events.

use f2_obs::{Counter, Gauge, Histogram, Unit};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Help text for the request counter; the per-tenant labeled samples register
/// into the same family, so they must carry the same help string.
const REQUESTS_HELP: &str = "Requests dispatched by the service.";

/// Connections the service accepted (shed connections included).
pub(crate) fn connections_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_connections_total",
            "Connections accepted by the service.",
            &[],
        )
    })
}

/// Requests the service dispatched (errors included).
pub(crate) fn requests_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| f2_obs::global().counter("f2_server_requests_total", REQUESTS_HELP, &[]))
}

/// Connections rejected with `Overloaded` past the admission high-water mark.
pub(crate) fn shed_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_shed_total",
            "Connections shed with a typed Overloaded reply.",
            &[],
        )
    })
}

/// Requests whose per-request deadline fired before the reply was ready.
pub(crate) fn deadline_expired_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_deadline_expired_total",
            "Requests cut off by the per-request deadline.",
            &[],
        )
    })
}

/// Connections that completed during a graceful drain.
pub(crate) fn drained_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_drained_total",
            "Connections drained to completion during shutdown.",
            &[],
        )
    })
}

/// Request handlers caught panicking; the touched job was parked resumable.
pub(crate) fn worker_panics_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_worker_panics_total",
            "Request handlers that panicked (job parked resumable).",
            &[],
        )
    })
}

/// Connections waiting in the admission queue right now.
pub(crate) fn queue_depth() -> &'static Gauge {
    static G: OnceLock<Gauge> = OnceLock::new();
    G.get_or_init(|| {
        f2_obs::global().gauge(
            "f2_server_queue_depth",
            "Connections waiting in the admission queue.",
            &[],
        )
    })
}

/// End-to-end request latency (decode → dispatch → reply encoded).
pub(crate) fn request_seconds() -> &'static Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    H.get_or_init(|| {
        f2_obs::global().histogram(
            "f2_server_request_seconds",
            "Wall-clock latency per request, decode through reply.",
            &[],
            Unit::Seconds,
        )
    })
}

/// Requests slower than the configured slow-request threshold.
pub(crate) fn slow_requests_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| {
        f2_obs::global().counter(
            "f2_server_slow_requests_total",
            "Requests slower than the slow-request threshold.",
            &[],
        )
    })
}

/// HTTP scrape requests served, by route (`other` for unroutable paths).
pub(crate) fn http_requests_total(route: &'static str) -> Counter {
    f2_obs::global().counter(
        "f2_server_http_requests_total",
        "HTTP scrape requests served, by route.",
        &[("route", route)],
    )
}

/// Per-tenant counter handles. Tenants past the cardinality cap share the
/// `tenant="_other"` overflow sample.
pub(crate) struct TenantMetrics {
    /// Requests attributed to the tenant.
    pub(crate) requests: Counter,
    /// Plaintext rows the tenant's appends carried.
    pub(crate) rows: Counter,
    /// Encrypted stream bytes written for the tenant.
    pub(crate) stream_bytes: Counter,
}

/// Look up (or register) the per-tenant handles for `tenant`, with at most
/// `cap` distinct tenant labels before new tenants fold into `_other`.
///
/// The request counter registers labeled samples into the same
/// `f2_server_requests_total` family as the unlabeled total, so one scrape
/// shows both the service-wide count and its per-tenant breakdown.
pub(crate) fn tenant_metrics(tenant: &str, cap: usize) -> TenantMetrics {
    static CACHE: OnceLock<Mutex<HashMap<String, TenantMetrics>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    let key = if map.contains_key(tenant) || map.len() < cap { tenant } else { "_other" };
    let entry = map.entry(key.to_string()).or_insert_with(|| {
        let reg = f2_obs::global();
        TenantMetrics {
            requests: reg.counter("f2_server_requests_total", REQUESTS_HELP, &[("tenant", key)]),
            rows: reg.counter(
                "f2_server_tenant_rows_total",
                "Plaintext rows appended, by tenant.",
                &[("tenant", key)],
            ),
            stream_bytes: reg.counter(
                "f2_server_tenant_stream_bytes_total",
                "Encrypted stream bytes written, by tenant.",
                &[("tenant", key)],
            ),
        }
    });
    TenantMetrics {
        requests: entry.requests.clone(),
        rows: entry.rows.clone(),
        stream_bytes: entry.stream_bytes.clone(),
    }
}

/// Touch every unlabeled server-family handle so a scrape taken before the
/// first request still lists them (at zero). The HTTP listener calls this at
/// bind.
pub(crate) fn register_server_families() {
    let _ = connections_total();
    let _ = requests_total();
    let _ = shed_total();
    let _ = deadline_expired_total();
    let _ = drained_total();
    let _ = worker_panics_total();
    let _ = queue_depth();
    let _ = request_seconds();
    let _ = slow_requests_total();
    for route in ["metrics", "metrics.json", "healthz", "tracez", "other"] {
        let _ = http_requests_total(route);
    }
}
