//! The service's typed error vocabulary — every failure a client can see has a
//! stable numeric code, so remote callers can branch without parsing messages.

use std::fmt;
use std::time::Duration;

/// Result alias over [`ServerError`].
pub type ServerResult<T> = Result<T, ServerError>;

/// Everything that can go wrong between a client request and its reply.
///
/// The variants up to [`ServerError::Internal`] travel over the wire as
/// `(code, retry_after_ms, message)` error replies; [`ServerError::Io`] and
/// [`ServerError::Disconnected`] are local transport failures (there is no one
/// left to send them to).
#[derive(Debug)]
pub enum ServerError {
    /// The request frame decoded, but its payload is malformed, violates a
    /// protocol cap, or uses an unknown frame type.
    BadRequest(String),
    /// The request names a tenant the service has no scheme for.
    UnknownTenant(String),
    /// The request names a job token that is neither live nor persisted.
    UnknownJob(u64),
    /// Another connection currently holds the job checked out.
    JobBusy(u64),
    /// An append arrived out of order; `expected` is the index to resend from.
    WrongChunk {
        /// The chunk index the job expects next.
        expected: u64,
        /// The index the request carried.
        got: u64,
    },
    /// An append exceeded the per-request row cap.
    TooLarge {
        /// Rows the request carried.
        rows: usize,
        /// The service's per-append row cap.
        cap: usize,
    },
    /// The service is past its admission high-water mark; retry after the hint.
    Overloaded {
        /// Backoff hint for the client.
        retry_after: Duration,
    },
    /// The service is draining and admits no new work.
    ShuttingDown,
    /// The per-request deadline expired before the reply was ready.
    DeadlineExpired,
    /// The engine rejected the request (configuration or input mismatch).
    Engine(String),
    /// An internal failure (worker panic, store fault). The job, if any, was
    /// parked resumable.
    Internal(String),
    /// A local transport failure — the connection is gone.
    Io(std::io::Error),
    /// The peer closed the connection cleanly.
    Disconnected,
}

impl ServerError {
    /// The stable wire code (0 for the local-only variants, which never
    /// travel).
    #[must_use]
    pub fn code(&self) -> u16 {
        match self {
            ServerError::BadRequest(_) => 1,
            ServerError::UnknownTenant(_) => 2,
            ServerError::UnknownJob(_) => 3,
            ServerError::JobBusy(_) => 4,
            ServerError::WrongChunk { .. } => 5,
            ServerError::TooLarge { .. } => 6,
            ServerError::Overloaded { .. } => 7,
            ServerError::ShuttingDown => 8,
            ServerError::DeadlineExpired => 9,
            ServerError::Engine(_) => 10,
            ServerError::Internal(_) => 11,
            ServerError::Io(_) | ServerError::Disconnected => 0,
        }
    }

    /// A short stable label for the variant — the `outcome` a completed
    /// request trace is filed under (`"ok"` being the success case).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ServerError::BadRequest(_) => "bad_request",
            ServerError::UnknownTenant(_) => "unknown_tenant",
            ServerError::UnknownJob(_) => "unknown_job",
            ServerError::JobBusy(_) => "job_busy",
            ServerError::WrongChunk { .. } => "wrong_chunk",
            ServerError::TooLarge { .. } => "too_large",
            ServerError::Overloaded { .. } => "overloaded",
            ServerError::ShuttingDown => "shutting_down",
            ServerError::DeadlineExpired => "deadline_expired",
            ServerError::Engine(_) => "engine",
            ServerError::Internal(_) => "internal",
            ServerError::Io(_) => "io",
            ServerError::Disconnected => "disconnected",
        }
    }

    /// Whether the client should retry the same request later (possibly on a
    /// new connection), as opposed to fixing it first.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServerError::Overloaded { .. }
                | ServerError::JobBusy(_)
                | ServerError::DeadlineExpired
                | ServerError::Internal(_)
        )
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServerError::UnknownTenant(t) => write!(f, "unknown tenant `{t}`"),
            ServerError::UnknownJob(token) => write!(f, "unknown job {token:#018x}"),
            ServerError::JobBusy(token) => {
                write!(f, "job {token:#018x} is checked out by another connection")
            }
            ServerError::WrongChunk { expected, got } => {
                write!(f, "chunk {got} arrived but the job expects chunk {expected}")
            }
            ServerError::TooLarge { rows, cap } => {
                write!(f, "append carries {rows} rows, the per-request cap is {cap}")
            }
            ServerError::Overloaded { retry_after } => {
                write!(f, "service overloaded, retry after {}ms", retry_after.as_millis())
            }
            ServerError::ShuttingDown => write!(f, "service is draining, no new work admitted"),
            ServerError::DeadlineExpired => write!(f, "request deadline expired"),
            ServerError::Engine(m) => write!(f, "engine rejected the request: {m}"),
            ServerError::Internal(m) => write!(f, "internal failure (job parked resumable): {m}"),
            ServerError::Io(e) => write!(f, "transport failure: {e}"),
            ServerError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<f2_io::IoError> for ServerError {
    fn from(e: f2_io::IoError) -> Self {
        match e {
            f2_io::IoError::Io(inner) => ServerError::Io(inner),
            other => ServerError::BadRequest(other.to_string()),
        }
    }
}

impl From<f2_core::F2Error> for ServerError {
    fn from(e: f2_core::F2Error) -> Self {
        match e {
            f2_core::F2Error::WorkerPanicked { chunk, message } => {
                ServerError::Internal(format!("worker panicked on chunk {chunk}: {message}"))
            }
            other => ServerError::Engine(other.to_string()),
        }
    }
}
