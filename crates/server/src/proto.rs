//! The request/reply protocol: typed messages over `F2WS` frames.
//!
//! lint: untrusted-input
//!
//! Every connection is a sequence of length-prefixed, CRC-checked frames (the
//! same [`f2_io::FrameSink`] / [`f2_io::FrameReader`] layer the encrypted
//! stream format uses, so transport corruption surfaces as a typed
//! [`IoError`](f2_io::IoError) before any payload byte is parsed). The frame
//! *type* byte selects the message; the payload is a flat
//! [`wire`](f2_engine::wire) record. This module is the protocol's only
//! parser and printer, and it is in f2-lint's `untrusted-input` scope: no
//! panics, no unchecked indexing, no allocations sized by unvalidated input —
//! a hostile payload must decode to [`ServerError::BadRequest`], never
//! undefined behavior or an abort.
//!
//! Request frames: `OPEN` (new session for a tenant + schema), `APPEND` (one
//! chunk of rows for a job token), `FINISH` (close the stream), `RESUME`
//! (reattach to a persisted job), `METRICS` (fetch a Prometheus snapshot).
//! Replies mirror them; errors travel as a `(code, a, b, message)` record
//! that [`decode_error`] turns back into the exact [`ServerError`] variant.

use crate::error::{ServerError, ServerResult};
use f2_engine::persist::{decode_table, encode_table, put_schema, take_schema};
use f2_engine::wire::{Reader, Writer};
use f2_relation::{Schema, Table};
use std::time::Duration;

/// Request frame: open a new encryption session.
pub const REQ_OPEN: u8 = 0x10;
/// Request frame: append one chunk of plaintext rows to a job.
pub const REQ_APPEND: u8 = 0x11;
/// Request frame: finish a job's stream (trailer + end frame).
pub const REQ_FINISH: u8 = 0x12;
/// Request frame: reattach to a persisted job after a disconnect or restart.
pub const REQ_RESUME: u8 = 0x13;
/// Request frame: fetch the service's Prometheus metrics snapshot.
pub const REQ_METRICS: u8 = 0x14;

/// Reply frame for [`REQ_OPEN`].
pub const RESP_OPEN: u8 = 0x20;
/// Reply frame for [`REQ_APPEND`].
pub const RESP_APPEND: u8 = 0x21;
/// Reply frame for [`REQ_FINISH`].
pub const RESP_FINISH: u8 = 0x22;
/// Reply frame for [`REQ_RESUME`].
pub const RESP_RESUME: u8 = 0x23;
/// Reply frame for [`REQ_METRICS`].
pub const RESP_METRICS: u8 = 0x24;
/// Reply frame carrying a typed [`ServerError`].
pub const RESP_ERR: u8 = 0x2F;

/// Cap on a tenant name — longer is a malformed request, not a bigger buffer.
pub const MAX_TENANT_BYTES: usize = 128;
/// Cap on an encoded schema — 64 KiB covers thousands of attributes.
pub const MAX_SCHEMA_BYTES: usize = 64 * 1024;

/// One decoded client request.
#[derive(Debug)]
pub enum Request {
    /// Open a new session: the service allocates a job token and starts a
    /// fresh stream for `tenant` with this row `schema`.
    Open {
        /// Tenant whose scheme (keys, parameters) encrypts the job.
        tenant: String,
        /// Schema of every row the job will carry.
        schema: Schema,
    },
    /// Append one chunk of plaintext rows to the job.
    Append {
        /// The job token from `Open` / `Resume`.
        token: u64,
        /// Position the client believes this chunk occupies (0-based).
        chunk_index: u64,
        /// The rows, as an encoded table.
        table: Table,
    },
    /// Close the job's stream and retire the token.
    Finish {
        /// The job token.
        token: u64,
    },
    /// Reattach to a job whose connection (or server) died. The schema is
    /// revalidated against the persisted stream header.
    Resume {
        /// Tenant whose scheme encrypts the job.
        tenant: String,
        /// The job token to reattach to.
        token: u64,
        /// Schema the client believes the job carries.
        schema: Schema,
    },
    /// Fetch a Prometheus text snapshot of the service's metrics.
    Metrics,
}

impl Request {
    /// Encode into `(frame_type, payload)` for a [`f2_io::FrameSink`].
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Open { tenant, schema } => {
                let mut w = Writer::raw();
                w.put_str(tenant);
                w.put_bytes(&encode_schema(schema));
                (REQ_OPEN, w.finish())
            }
            Request::Append { token, chunk_index, table } => {
                let mut w = Writer::raw();
                w.put_u64(*token);
                w.put_u64(*chunk_index);
                w.put_bytes(&encode_table(table));
                (REQ_APPEND, w.finish())
            }
            Request::Finish { token } => {
                let mut w = Writer::raw();
                w.put_u64(*token);
                (REQ_FINISH, w.finish())
            }
            Request::Resume { tenant, token, schema } => {
                let mut w = Writer::raw();
                w.put_str(tenant);
                w.put_u64(*token);
                w.put_bytes(&encode_schema(schema));
                (REQ_RESUME, w.finish())
            }
            Request::Metrics => (REQ_METRICS, Writer::raw().finish()),
        }
    }

    /// Decode a request frame. Any structural violation — unknown type, short
    /// payload, trailing bytes, over-cap field — is a
    /// [`ServerError::BadRequest`].
    pub fn decode(frame_type: u8, payload: &[u8]) -> ServerResult<Request> {
        let mut r = Reader::raw(payload);
        let request = match frame_type {
            REQ_OPEN => {
                let tenant = take_tenant(&mut r)?;
                let schema = take_schema_blob(&mut r)?;
                Request::Open { tenant, schema }
            }
            REQ_APPEND => {
                let token = r.u64().map_err(bad)?;
                let chunk_index = r.u64().map_err(bad)?;
                let table = decode_table(r.bytes().map_err(bad)?)
                    .map_err(|e| ServerError::BadRequest(format!("append table: {e}")))?;
                Request::Append { token, chunk_index, table }
            }
            REQ_FINISH => Request::Finish { token: r.u64().map_err(bad)? },
            REQ_RESUME => {
                let tenant = take_tenant(&mut r)?;
                let token = r.u64().map_err(bad)?;
                let schema = take_schema_blob(&mut r)?;
                Request::Resume { tenant, token, schema }
            }
            REQ_METRICS => Request::Metrics,
            other => {
                return Err(ServerError::BadRequest(format!("unknown request frame {other:#04x}")))
            }
        };
        r.finish().map_err(bad)?;
        Ok(request)
    }
}

/// One decoded server reply (errors decode to `Err(ServerError)` instead).
#[derive(Debug)]
pub enum Response {
    /// Reply to [`Request::Open`].
    Open {
        /// The allocated job token — the client's resume credential.
        token: u64,
        /// Rows per chunk the job expects (full chunks until the last).
        chunk_rows: u64,
    },
    /// Reply to [`Request::Append`].
    Append {
        /// Plaintext rows the job now holds.
        rows: u64,
        /// Encrypted rows written so far.
        encrypted_rows: u64,
        /// Index the next append must carry.
        next_chunk: u64,
    },
    /// Reply to [`Request::Finish`].
    Finish {
        /// Total plaintext rows encrypted.
        rows: u64,
        /// Total encrypted rows written.
        encrypted_rows: u64,
        /// Chunks in the finished stream.
        chunks: u64,
        /// Stream bytes, preamble and frame headers included.
        bytes_written: u64,
    },
    /// Reply to [`Request::Resume`].
    Resume {
        /// The token (echoed).
        token: u64,
        /// Index the next append must carry.
        next_chunk: u64,
        /// Rows already encrypted — the client re-sends from this row onward.
        rows_done: u64,
        /// Rows per chunk the job expects.
        chunk_rows: u64,
    },
    /// Reply to [`Request::Metrics`]: a Prometheus text snapshot.
    Metrics(String),
}

impl Response {
    /// Encode into `(frame_type, payload)` for a [`f2_io::FrameSink`].
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Response::Open { token, chunk_rows } => {
                let mut w = Writer::raw();
                w.put_u64(*token);
                w.put_u64(*chunk_rows);
                (RESP_OPEN, w.finish())
            }
            Response::Append { rows, encrypted_rows, next_chunk } => {
                let mut w = Writer::raw();
                w.put_u64(*rows);
                w.put_u64(*encrypted_rows);
                w.put_u64(*next_chunk);
                (RESP_APPEND, w.finish())
            }
            Response::Finish { rows, encrypted_rows, chunks, bytes_written } => {
                let mut w = Writer::raw();
                w.put_u64(*rows);
                w.put_u64(*encrypted_rows);
                w.put_u64(*chunks);
                w.put_u64(*bytes_written);
                (RESP_FINISH, w.finish())
            }
            Response::Resume { token, next_chunk, rows_done, chunk_rows } => {
                let mut w = Writer::raw();
                w.put_u64(*token);
                w.put_u64(*next_chunk);
                w.put_u64(*rows_done);
                w.put_u64(*chunk_rows);
                (RESP_RESUME, w.finish())
            }
            Response::Metrics(text) => {
                let mut w = Writer::raw();
                w.put_bytes(text.as_bytes());
                (RESP_METRICS, w.finish())
            }
        }
    }

    /// Decode a reply frame; [`RESP_ERR`] decodes to the carried
    /// [`ServerError`].
    pub fn decode(frame_type: u8, payload: &[u8]) -> ServerResult<Response> {
        let mut r = Reader::raw(payload);
        let response = match frame_type {
            RESP_OPEN => {
                Response::Open { token: r.u64().map_err(bad)?, chunk_rows: r.u64().map_err(bad)? }
            }
            RESP_APPEND => Response::Append {
                rows: r.u64().map_err(bad)?,
                encrypted_rows: r.u64().map_err(bad)?,
                next_chunk: r.u64().map_err(bad)?,
            },
            RESP_FINISH => Response::Finish {
                rows: r.u64().map_err(bad)?,
                encrypted_rows: r.u64().map_err(bad)?,
                chunks: r.u64().map_err(bad)?,
                bytes_written: r.u64().map_err(bad)?,
            },
            RESP_RESUME => Response::Resume {
                token: r.u64().map_err(bad)?,
                next_chunk: r.u64().map_err(bad)?,
                rows_done: r.u64().map_err(bad)?,
                chunk_rows: r.u64().map_err(bad)?,
            },
            RESP_METRICS => {
                let text = String::from_utf8(r.bytes().map_err(bad)?.to_vec())
                    .map_err(|_| ServerError::BadRequest("metrics text is not UTF-8".into()))?;
                Response::Metrics(text)
            }
            RESP_ERR => {
                let error = decode_error(&mut r)?;
                r.finish().map_err(bad)?;
                return Err(error);
            }
            other => {
                return Err(ServerError::BadRequest(format!("unknown reply frame {other:#04x}")))
            }
        };
        r.finish().map_err(bad)?;
        Ok(response)
    }
}

/// Encode a [`ServerError`] as a [`RESP_ERR`] payload: `code | a | b | message`,
/// where `a`/`b` carry the variant's structured fields (token, chunk indices,
/// row caps, or the retry-after hint in milliseconds).
#[must_use]
pub fn encode_error(error: &ServerError) -> (u8, Vec<u8>) {
    let (a, b) = match error {
        ServerError::UnknownJob(token) | ServerError::JobBusy(token) => (*token, 0),
        ServerError::WrongChunk { expected, got } => (*expected, *got),
        ServerError::TooLarge { rows, cap } => (rows_u64(*rows), rows_u64(*cap)),
        ServerError::Overloaded { retry_after } => (millis_u64(*retry_after), 0),
        _ => (0, 0),
    };
    let mut w = Writer::raw();
    w.put_u16(error.code());
    w.put_u64(a);
    w.put_u64(b);
    w.put_str(&error.to_string());
    (RESP_ERR, w.finish())
}

/// Decode a [`RESP_ERR`] payload back into the [`ServerError`] it carried.
fn decode_error(r: &mut Reader<'_>) -> ServerResult<ServerError> {
    let code = r.u16().map_err(bad)?;
    let a = r.u64().map_err(bad)?;
    let b = r.u64().map_err(bad)?;
    let message = r.str().map_err(bad)?.to_string();
    Ok(match code {
        1 => ServerError::BadRequest(message),
        2 => ServerError::UnknownTenant(message),
        3 => ServerError::UnknownJob(a),
        4 => ServerError::JobBusy(a),
        5 => ServerError::WrongChunk { expected: a, got: b },
        6 => ServerError::TooLarge { rows: rows_usize(a), cap: rows_usize(b) },
        7 => ServerError::Overloaded { retry_after: Duration::from_millis(a) },
        8 => ServerError::ShuttingDown,
        9 => ServerError::DeadlineExpired,
        10 => ServerError::Engine(message),
        11 => ServerError::Internal(message),
        other => {
            return Err(ServerError::BadRequest(format!("unknown error code {other}: {message}")))
        }
    })
}

/// Serialize a schema as a standalone blob (nested wire record).
fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut w = Writer::raw();
    put_schema(&mut w, schema);
    w.finish()
}

fn take_tenant(r: &mut Reader<'_>) -> ServerResult<String> {
    let tenant = r.str().map_err(bad)?;
    if tenant.is_empty() || tenant.len() > MAX_TENANT_BYTES {
        return Err(ServerError::BadRequest(format!(
            "tenant name must be 1..={MAX_TENANT_BYTES} bytes, got {}",
            tenant.len()
        )));
    }
    Ok(tenant.to_string())
}

fn take_schema_blob(r: &mut Reader<'_>) -> ServerResult<Schema> {
    let blob = r.bytes().map_err(bad)?;
    if blob.len() > MAX_SCHEMA_BYTES {
        return Err(ServerError::BadRequest(format!(
            "encoded schema is {} bytes, the cap is {MAX_SCHEMA_BYTES}",
            blob.len()
        )));
    }
    let mut inner = Reader::raw(blob);
    let schema =
        take_schema(&mut inner).map_err(|e| ServerError::BadRequest(format!("schema: {e}")))?;
    inner.finish().map_err(bad)?;
    Ok(schema)
}

fn bad(e: impl std::fmt::Display) -> ServerError {
    ServerError::BadRequest(e.to_string())
}

fn rows_u64(rows: usize) -> u64 {
    u64::try_from(rows).unwrap_or(u64::MAX)
}

fn millis_u64(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

fn rows_usize(rows: u64) -> usize {
    usize::try_from(rows).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::{Attribute, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("zip", DataType::Text),
            Attribute::new("city", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Open { tenant: "acme".into(), schema: schema() },
            Request::Finish { token: 7 },
            Request::Resume { tenant: "acme".into(), token: 9, schema: schema() },
            Request::Metrics,
        ];
        for req in reqs {
            let (ty, payload) = req.encode();
            let back = Request::decode(ty, &payload).unwrap();
            assert_eq!(format!("{req:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn errors_roundtrip_with_their_structured_fields() {
        let errors = vec![
            ServerError::UnknownJob(42),
            ServerError::JobBusy(7),
            ServerError::WrongChunk { expected: 3, got: 9 },
            ServerError::TooLarge { rows: 1000, cap: 64 },
            ServerError::Overloaded { retry_after: Duration::from_millis(250) },
            ServerError::ShuttingDown,
            ServerError::DeadlineExpired,
            ServerError::BadRequest("nope".into()),
            ServerError::Internal("boom".into()),
        ];
        for error in errors {
            let (ty, payload) = encode_error(&error);
            assert_eq!(ty, RESP_ERR);
            let decoded = Response::decode(ty, &payload).unwrap_err();
            assert_eq!(error.code(), decoded.code());
            match (&error, &decoded) {
                (
                    ServerError::WrongChunk { expected: e1, got: g1 },
                    ServerError::WrongChunk { expected: e2, got: g2 },
                ) => assert_eq!((e1, g1), (e2, g2)),
                (
                    ServerError::Overloaded { retry_after: r1 },
                    ServerError::Overloaded { retry_after: r2 },
                ) => assert_eq!(r1, r2),
                (ServerError::UnknownJob(t1), ServerError::UnknownJob(t2)) => assert_eq!(t1, t2),
                _ => {}
            }
        }
    }

    #[test]
    fn hostile_payloads_decode_to_bad_request_never_panic() {
        // Truncations, trailing garbage, unknown types: all typed errors.
        let (ty, good) = Request::Open { tenant: "t".into(), schema: schema() }.encode();
        for cut in 0..good.len() {
            let sliced = good.get(..cut).unwrap_or(&good);
            assert!(Request::decode(ty, sliced).is_err());
        }
        let mut trailing = good.clone();
        trailing.push(0xFF);
        assert!(Request::decode(ty, &trailing).is_err());
        assert!(Request::decode(0x7F, &good).is_err());
        // An over-cap tenant name.
        let mut w = Writer::raw();
        w.put_str(&"x".repeat(MAX_TENANT_BYTES + 1));
        w.put_bytes(&[]);
        assert!(Request::decode(REQ_OPEN, &w.finish()).is_err());
    }

    #[test]
    fn append_roundtrips_its_table() {
        let t = f2_datagen::Dataset::Orders.generate(8, 3);
        let (ty, payload) = Request::Append { token: 5, chunk_index: 2, table: t.clone() }.encode();
        match Request::decode(ty, &payload).unwrap() {
            Request::Append { token: 5, chunk_index: 2, table } => assert_eq!(table, t),
            other => panic!("decoded {other:?}"),
        }
    }
}
