//! The request/reply protocol: typed messages over `F2WS` frames.
//!
//! lint: untrusted-input
//!
//! Every connection is a sequence of length-prefixed, CRC-checked frames (the
//! same [`f2_io::FrameSink`] / [`f2_io::FrameReader`] layer the encrypted
//! stream format uses, so transport corruption surfaces as a typed
//! [`IoError`](f2_io::IoError) before any payload byte is parsed). The frame
//! *type* byte selects the message; the payload is a flat
//! [`wire`](f2_engine::wire) record. This module is the protocol's only
//! parser and printer, and it is in f2-lint's `untrusted-input` scope: no
//! panics, no unchecked indexing, no allocations sized by unvalidated input —
//! a hostile payload must decode to [`ServerError::BadRequest`], never
//! undefined behavior or an abort.
//!
//! Request frames: `OPEN` (new session for a tenant + schema), `APPEND` (one
//! chunk of rows for a job token), `FINISH` (close the stream), `RESUME`
//! (reattach to a persisted job), `METRICS` (fetch a Prometheus snapshot).
//! Replies mirror them; errors travel as a `(code, a, b, message)` record
//! that [`decode_error`] turns back into the exact [`ServerError`] variant.

use crate::error::{ServerError, ServerResult};
use f2_engine::persist::{decode_table, encode_table, put_schema, take_schema};
use f2_engine::wire::{Reader, Writer};
use f2_obs::TraceCtx;
use f2_relation::{Schema, Table};
use std::time::Duration;

/// Request frame: open a new encryption session.
pub const REQ_OPEN: u8 = 0x10;
/// Request frame: append one chunk of plaintext rows to a job.
pub const REQ_APPEND: u8 = 0x11;
/// Request frame: finish a job's stream (trailer + end frame).
pub const REQ_FINISH: u8 = 0x12;
/// Request frame: reattach to a persisted job after a disconnect or restart.
pub const REQ_RESUME: u8 = 0x13;
/// Request frame: fetch the service's Prometheus metrics snapshot.
pub const REQ_METRICS: u8 = 0x14;

/// Reply frame for [`REQ_OPEN`].
pub const RESP_OPEN: u8 = 0x20;
/// Reply frame for [`REQ_APPEND`].
pub const RESP_APPEND: u8 = 0x21;
/// Reply frame for [`REQ_FINISH`].
pub const RESP_FINISH: u8 = 0x22;
/// Reply frame for [`REQ_RESUME`].
pub const RESP_RESUME: u8 = 0x23;
/// Reply frame for [`REQ_METRICS`].
pub const RESP_METRICS: u8 = 0x24;
/// Reply frame carrying a typed [`ServerError`].
pub const RESP_ERR: u8 = 0x2F;

/// Cap on a tenant name — longer is a malformed request, not a bigger buffer.
pub const MAX_TENANT_BYTES: usize = 128;
/// Cap on an encoded schema — 64 KiB covers thousands of attributes.
pub const MAX_SCHEMA_BYTES: usize = 64 * 1024;

/// Tag byte introducing the optional trailing trace-context field.
///
/// A traced message appends `TRACE_TAG | trace_id | request_id` (17 bytes)
/// after its base fields. [`Request::encode`] / [`Response::encode`] never emit
/// it, so untraced messages are byte-identical to the previous protocol
/// revision; [`Request::decode_traced`] / [`Response::decode_traced`] accept
/// either shape, which is what keeps old and new peers interoperable.
pub const TRACE_TAG: u8 = 0x01;

/// Append the optional trace-context tail (tag + two little-endian `u64`s,
/// matching [`Writer`]'s integer encoding).
fn append_trace(payload: &mut Vec<u8>, ctx: &TraceCtx) {
    payload.push(TRACE_TAG);
    payload.extend_from_slice(&ctx.trace_id.to_le_bytes());
    payload.extend_from_slice(&ctx.request_id.to_le_bytes());
}

/// Consume the optional trace-context tail. `None` when the payload ended at
/// the base fields (an untraced peer); an error for any other trailing shape.
fn take_trace(r: &mut Reader<'_>) -> ServerResult<Option<TraceCtx>> {
    if r.remaining() == 0 {
        return Ok(None);
    }
    let tag = r.u8().map_err(bad)?;
    if tag != TRACE_TAG {
        return Err(ServerError::BadRequest(format!("unknown trailing field tag {tag:#04x}")));
    }
    let trace_id = r.u64().map_err(bad)?;
    let request_id = r.u64().map_err(bad)?;
    Ok(Some(TraceCtx::new(trace_id, request_id)))
}

/// One decoded client request.
#[derive(Debug)]
pub enum Request {
    /// Open a new session: the service allocates a job token and starts a
    /// fresh stream for `tenant` with this row `schema`.
    Open {
        /// Tenant whose scheme (keys, parameters) encrypts the job.
        tenant: String,
        /// Schema of every row the job will carry.
        schema: Schema,
    },
    /// Append one chunk of plaintext rows to the job.
    Append {
        /// The job token from `Open` / `Resume`.
        token: u64,
        /// Position the client believes this chunk occupies (0-based).
        chunk_index: u64,
        /// The rows, as an encoded table.
        table: Table,
    },
    /// Close the job's stream and retire the token.
    Finish {
        /// The job token.
        token: u64,
    },
    /// Reattach to a job whose connection (or server) died. The schema is
    /// revalidated against the persisted stream header.
    Resume {
        /// Tenant whose scheme encrypts the job.
        tenant: String,
        /// The job token to reattach to.
        token: u64,
        /// Schema the client believes the job carries.
        schema: Schema,
    },
    /// Fetch a Prometheus text snapshot of the service's metrics.
    Metrics,
}

impl Request {
    /// Encode into `(frame_type, payload)` for a [`f2_io::FrameSink`].
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Request::Open { tenant, schema } => {
                let mut w = Writer::raw();
                w.put_str(tenant);
                w.put_bytes(&encode_schema(schema));
                (REQ_OPEN, w.finish())
            }
            Request::Append { token, chunk_index, table } => {
                let mut w = Writer::raw();
                w.put_u64(*token);
                w.put_u64(*chunk_index);
                w.put_bytes(&encode_table(table));
                (REQ_APPEND, w.finish())
            }
            Request::Finish { token } => {
                let mut w = Writer::raw();
                w.put_u64(*token);
                (REQ_FINISH, w.finish())
            }
            Request::Resume { tenant, token, schema } => {
                let mut w = Writer::raw();
                w.put_str(tenant);
                w.put_u64(*token);
                w.put_bytes(&encode_schema(schema));
                (REQ_RESUME, w.finish())
            }
            Request::Metrics => (REQ_METRICS, Writer::raw().finish()),
        }
    }

    /// [`Request::encode`] plus the optional trace-context tail. `None`
    /// produces exactly the untraced encoding.
    #[must_use]
    pub fn encode_traced(&self, ctx: Option<&TraceCtx>) -> (u8, Vec<u8>) {
        let (frame_type, mut payload) = self.encode();
        if let Some(ctx) = ctx {
            append_trace(&mut payload, ctx);
        }
        (frame_type, payload)
    }

    /// Decode a request frame. Any structural violation — unknown type, short
    /// payload, trailing bytes, over-cap field — is a
    /// [`ServerError::BadRequest`]. A trace-context tail is also rejected;
    /// trace-aware callers use [`Request::decode_traced`].
    pub fn decode(frame_type: u8, payload: &[u8]) -> ServerResult<Request> {
        let mut r = Reader::raw(payload);
        let request = Request::decode_body(frame_type, &mut r)?;
        r.finish().map_err(bad)?;
        Ok(request)
    }

    /// Decode a request frame plus its optional trace-context tail.
    pub fn decode_traced(
        frame_type: u8,
        payload: &[u8],
    ) -> ServerResult<(Request, Option<TraceCtx>)> {
        let mut r = Reader::raw(payload);
        let request = Request::decode_body(frame_type, &mut r)?;
        let ctx = take_trace(&mut r)?;
        r.finish().map_err(bad)?;
        Ok((request, ctx))
    }

    /// Parse the base fields, leaving any trailing trace tail unconsumed.
    fn decode_body(frame_type: u8, r: &mut Reader<'_>) -> ServerResult<Request> {
        let request = match frame_type {
            REQ_OPEN => {
                let tenant = take_tenant(r)?;
                let schema = take_schema_blob(r)?;
                Request::Open { tenant, schema }
            }
            REQ_APPEND => {
                let token = r.u64().map_err(bad)?;
                let chunk_index = r.u64().map_err(bad)?;
                let table = decode_table(r.bytes().map_err(bad)?)
                    .map_err(|e| ServerError::BadRequest(format!("append table: {e}")))?;
                Request::Append { token, chunk_index, table }
            }
            REQ_FINISH => Request::Finish { token: r.u64().map_err(bad)? },
            REQ_RESUME => {
                let tenant = take_tenant(r)?;
                let token = r.u64().map_err(bad)?;
                let schema = take_schema_blob(r)?;
                Request::Resume { tenant, token, schema }
            }
            REQ_METRICS => Request::Metrics,
            other => {
                return Err(ServerError::BadRequest(format!("unknown request frame {other:#04x}")))
            }
        };
        Ok(request)
    }
}

/// One decoded server reply (errors decode to `Err(ServerError)` instead).
#[derive(Debug)]
pub enum Response {
    /// Reply to [`Request::Open`].
    Open {
        /// The allocated job token — the client's resume credential.
        token: u64,
        /// Rows per chunk the job expects (full chunks until the last).
        chunk_rows: u64,
    },
    /// Reply to [`Request::Append`].
    Append {
        /// Plaintext rows the job now holds.
        rows: u64,
        /// Encrypted rows written so far.
        encrypted_rows: u64,
        /// Index the next append must carry.
        next_chunk: u64,
    },
    /// Reply to [`Request::Finish`].
    Finish {
        /// Total plaintext rows encrypted.
        rows: u64,
        /// Total encrypted rows written.
        encrypted_rows: u64,
        /// Chunks in the finished stream.
        chunks: u64,
        /// Stream bytes, preamble and frame headers included.
        bytes_written: u64,
    },
    /// Reply to [`Request::Resume`].
    Resume {
        /// The token (echoed).
        token: u64,
        /// Index the next append must carry.
        next_chunk: u64,
        /// Rows already encrypted — the client re-sends from this row onward.
        rows_done: u64,
        /// Rows per chunk the job expects.
        chunk_rows: u64,
    },
    /// Reply to [`Request::Metrics`]: a Prometheus text snapshot.
    Metrics(String),
}

impl Response {
    /// Encode into `(frame_type, payload)` for a [`f2_io::FrameSink`].
    #[must_use]
    pub fn encode(&self) -> (u8, Vec<u8>) {
        match self {
            Response::Open { token, chunk_rows } => {
                let mut w = Writer::raw();
                w.put_u64(*token);
                w.put_u64(*chunk_rows);
                (RESP_OPEN, w.finish())
            }
            Response::Append { rows, encrypted_rows, next_chunk } => {
                let mut w = Writer::raw();
                w.put_u64(*rows);
                w.put_u64(*encrypted_rows);
                w.put_u64(*next_chunk);
                (RESP_APPEND, w.finish())
            }
            Response::Finish { rows, encrypted_rows, chunks, bytes_written } => {
                let mut w = Writer::raw();
                w.put_u64(*rows);
                w.put_u64(*encrypted_rows);
                w.put_u64(*chunks);
                w.put_u64(*bytes_written);
                (RESP_FINISH, w.finish())
            }
            Response::Resume { token, next_chunk, rows_done, chunk_rows } => {
                let mut w = Writer::raw();
                w.put_u64(*token);
                w.put_u64(*next_chunk);
                w.put_u64(*rows_done);
                w.put_u64(*chunk_rows);
                (RESP_RESUME, w.finish())
            }
            Response::Metrics(text) => {
                let mut w = Writer::raw();
                w.put_bytes(text.as_bytes());
                (RESP_METRICS, w.finish())
            }
        }
    }

    /// [`Response::encode`] plus the optional trace-context tail. The service
    /// echoes the request's context on success replies so the client can
    /// confirm which trace the server attributed its work to.
    #[must_use]
    pub fn encode_traced(&self, ctx: Option<&TraceCtx>) -> (u8, Vec<u8>) {
        let (frame_type, mut payload) = self.encode();
        if let Some(ctx) = ctx {
            append_trace(&mut payload, ctx);
        }
        (frame_type, payload)
    }

    /// Decode a reply frame; [`RESP_ERR`] decodes to the carried
    /// [`ServerError`]. A trace-context tail is rejected; trace-aware callers
    /// use [`Response::decode_traced`].
    pub fn decode(frame_type: u8, payload: &[u8]) -> ServerResult<Response> {
        let (response, ctx) = Response::decode_with(frame_type, payload, false)?;
        debug_assert!(ctx.is_none());
        Ok(response)
    }

    /// Decode a reply frame plus its optional trace-context tail. Error
    /// replies never carry one.
    pub fn decode_traced(
        frame_type: u8,
        payload: &[u8],
    ) -> ServerResult<(Response, Option<TraceCtx>)> {
        Response::decode_with(frame_type, payload, true)
    }

    /// Shared reply parser; `accept_trace` selects whether a trace tail is a
    /// valid suffix or trailing garbage.
    fn decode_with(
        frame_type: u8,
        payload: &[u8],
        accept_trace: bool,
    ) -> ServerResult<(Response, Option<TraceCtx>)> {
        let mut r = Reader::raw(payload);
        let response = match frame_type {
            RESP_OPEN => {
                Response::Open { token: r.u64().map_err(bad)?, chunk_rows: r.u64().map_err(bad)? }
            }
            RESP_APPEND => Response::Append {
                rows: r.u64().map_err(bad)?,
                encrypted_rows: r.u64().map_err(bad)?,
                next_chunk: r.u64().map_err(bad)?,
            },
            RESP_FINISH => Response::Finish {
                rows: r.u64().map_err(bad)?,
                encrypted_rows: r.u64().map_err(bad)?,
                chunks: r.u64().map_err(bad)?,
                bytes_written: r.u64().map_err(bad)?,
            },
            RESP_RESUME => Response::Resume {
                token: r.u64().map_err(bad)?,
                next_chunk: r.u64().map_err(bad)?,
                rows_done: r.u64().map_err(bad)?,
                chunk_rows: r.u64().map_err(bad)?,
            },
            RESP_METRICS => {
                let text = String::from_utf8(r.bytes().map_err(bad)?.to_vec())
                    .map_err(|_| ServerError::BadRequest("metrics text is not UTF-8".into()))?;
                Response::Metrics(text)
            }
            RESP_ERR => {
                let error = decode_error(&mut r)?;
                r.finish().map_err(bad)?;
                return Err(error);
            }
            other => {
                return Err(ServerError::BadRequest(format!("unknown reply frame {other:#04x}")))
            }
        };
        let ctx = if accept_trace { take_trace(&mut r)? } else { None };
        r.finish().map_err(bad)?;
        Ok((response, ctx))
    }
}

/// Encode a [`ServerError`] as a [`RESP_ERR`] payload: `code | a | b | message`,
/// where `a`/`b` carry the variant's structured fields (token, chunk indices,
/// row caps, or the retry-after hint in milliseconds).
#[must_use]
pub fn encode_error(error: &ServerError) -> (u8, Vec<u8>) {
    let (a, b) = match error {
        ServerError::UnknownJob(token) | ServerError::JobBusy(token) => (*token, 0),
        ServerError::WrongChunk { expected, got } => (*expected, *got),
        ServerError::TooLarge { rows, cap } => (rows_u64(*rows), rows_u64(*cap)),
        ServerError::Overloaded { retry_after } => (millis_u64(*retry_after), 0),
        _ => (0, 0),
    };
    let mut w = Writer::raw();
    w.put_u16(error.code());
    w.put_u64(a);
    w.put_u64(b);
    w.put_str(&error.to_string());
    (RESP_ERR, w.finish())
}

/// Decode a [`RESP_ERR`] payload back into the [`ServerError`] it carried.
fn decode_error(r: &mut Reader<'_>) -> ServerResult<ServerError> {
    let code = r.u16().map_err(bad)?;
    let a = r.u64().map_err(bad)?;
    let b = r.u64().map_err(bad)?;
    let message = r.str().map_err(bad)?.to_string();
    Ok(match code {
        1 => ServerError::BadRequest(message),
        2 => ServerError::UnknownTenant(message),
        3 => ServerError::UnknownJob(a),
        4 => ServerError::JobBusy(a),
        5 => ServerError::WrongChunk { expected: a, got: b },
        6 => ServerError::TooLarge { rows: rows_usize(a), cap: rows_usize(b) },
        7 => ServerError::Overloaded { retry_after: Duration::from_millis(a) },
        8 => ServerError::ShuttingDown,
        9 => ServerError::DeadlineExpired,
        10 => ServerError::Engine(message),
        11 => ServerError::Internal(message),
        other => {
            return Err(ServerError::BadRequest(format!("unknown error code {other}: {message}")))
        }
    })
}

/// Serialize a schema as a standalone blob (nested wire record).
fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut w = Writer::raw();
    put_schema(&mut w, schema);
    w.finish()
}

fn take_tenant(r: &mut Reader<'_>) -> ServerResult<String> {
    let tenant = r.str().map_err(bad)?;
    if tenant.is_empty() || tenant.len() > MAX_TENANT_BYTES {
        return Err(ServerError::BadRequest(format!(
            "tenant name must be 1..={MAX_TENANT_BYTES} bytes, got {}",
            tenant.len()
        )));
    }
    Ok(tenant.to_string())
}

fn take_schema_blob(r: &mut Reader<'_>) -> ServerResult<Schema> {
    let blob = r.bytes().map_err(bad)?;
    if blob.len() > MAX_SCHEMA_BYTES {
        return Err(ServerError::BadRequest(format!(
            "encoded schema is {} bytes, the cap is {MAX_SCHEMA_BYTES}",
            blob.len()
        )));
    }
    let mut inner = Reader::raw(blob);
    let schema =
        take_schema(&mut inner).map_err(|e| ServerError::BadRequest(format!("schema: {e}")))?;
    inner.finish().map_err(bad)?;
    Ok(schema)
}

fn bad(e: impl std::fmt::Display) -> ServerError {
    ServerError::BadRequest(e.to_string())
}

fn rows_u64(rows: usize) -> u64 {
    u64::try_from(rows).unwrap_or(u64::MAX)
}

fn millis_u64(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

fn rows_usize(rows: u64) -> usize {
    usize::try_from(rows).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2_relation::{Attribute, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("zip", DataType::Text),
            Attribute::new("city", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = vec![
            Request::Open { tenant: "acme".into(), schema: schema() },
            Request::Finish { token: 7 },
            Request::Resume { tenant: "acme".into(), token: 9, schema: schema() },
            Request::Metrics,
        ];
        for req in reqs {
            let (ty, payload) = req.encode();
            let back = Request::decode(ty, &payload).unwrap();
            assert_eq!(format!("{req:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn errors_roundtrip_with_their_structured_fields() {
        let errors = vec![
            ServerError::UnknownJob(42),
            ServerError::JobBusy(7),
            ServerError::WrongChunk { expected: 3, got: 9 },
            ServerError::TooLarge { rows: 1000, cap: 64 },
            ServerError::Overloaded { retry_after: Duration::from_millis(250) },
            ServerError::ShuttingDown,
            ServerError::DeadlineExpired,
            ServerError::BadRequest("nope".into()),
            ServerError::Internal("boom".into()),
        ];
        for error in errors {
            let (ty, payload) = encode_error(&error);
            assert_eq!(ty, RESP_ERR);
            let decoded = Response::decode(ty, &payload).unwrap_err();
            assert_eq!(error.code(), decoded.code());
            match (&error, &decoded) {
                (
                    ServerError::WrongChunk { expected: e1, got: g1 },
                    ServerError::WrongChunk { expected: e2, got: g2 },
                ) => assert_eq!((e1, g1), (e2, g2)),
                (
                    ServerError::Overloaded { retry_after: r1 },
                    ServerError::Overloaded { retry_after: r2 },
                ) => assert_eq!(r1, r2),
                (ServerError::UnknownJob(t1), ServerError::UnknownJob(t2)) => assert_eq!(t1, t2),
                _ => {}
            }
        }
    }

    #[test]
    fn hostile_payloads_decode_to_bad_request_never_panic() {
        // Truncations, trailing garbage, unknown types: all typed errors.
        let (ty, good) = Request::Open { tenant: "t".into(), schema: schema() }.encode();
        for cut in 0..good.len() {
            let sliced = good.get(..cut).unwrap_or(&good);
            assert!(Request::decode(ty, sliced).is_err());
        }
        let mut trailing = good.clone();
        trailing.push(0xFF);
        assert!(Request::decode(ty, &trailing).is_err());
        assert!(Request::decode(0x7F, &good).is_err());
        // An over-cap tenant name.
        let mut w = Writer::raw();
        w.put_str(&"x".repeat(MAX_TENANT_BYTES + 1));
        w.put_bytes(&[]);
        assert!(Request::decode(REQ_OPEN, &w.finish()).is_err());
    }

    #[test]
    fn trace_tail_roundtrips_and_stays_optional() {
        let ctx = TraceCtx::new(0x1111_2222_3333_4444, 0x5555_6666_7777_8888);
        let req = Request::Finish { token: 7 };
        // Traceless encode is byte-identical to the previous protocol revision.
        let (ty, plain) = req.encode();
        let (ty_traced, traced) = req.encode_traced(Some(&ctx));
        assert_eq!(ty, ty_traced);
        assert_eq!(traced.get(..plain.len()), Some(plain.as_slice()));
        assert_eq!(traced.len(), plain.len() + 17);
        assert_eq!(req.encode_traced(None).1, plain);
        // Both shapes decode through decode_traced.
        let (_, none) = Request::decode_traced(ty, &plain).unwrap();
        assert!(none.is_none());
        let (back, some) = Request::decode_traced(ty, &traced).unwrap();
        assert!(matches!(back, Request::Finish { token: 7 }));
        assert_eq!(some, Some(ctx));
        // The strict decoder rejects the tail — exactly what an old server
        // does when a new client sends a traced request.
        assert!(Request::decode(ty, &traced).is_err());
        // Success replies echo the context; error replies never carry one.
        let resp = Response::Open { token: 1, chunk_rows: 64 };
        let (rty, rtraced) = resp.encode_traced(Some(&ctx));
        let (_, echo) = Response::decode_traced(rty, &rtraced).unwrap();
        assert_eq!(echo, Some(ctx));
        let (ety, epayload) = encode_error(&ServerError::ShuttingDown);
        assert!(Response::decode_traced(ety, &epayload).is_err());
    }

    #[test]
    fn hostile_trace_tails_error_cleanly() {
        let ctx = TraceCtx::new(1, 2);
        let (ty, plain) = Request::Finish { token: 3 }.encode();
        let (_, traced) = Request::Finish { token: 3 }.encode_traced(Some(&ctx));
        // Every truncation strictly inside the tail is an error; cutting the
        // whole tail off yields the valid untraced shape.
        for cut in plain.len() + 1..traced.len() {
            let sliced = traced.get(..cut).unwrap_or(&traced);
            assert!(Request::decode_traced(ty, sliced).is_err(), "cut {cut}");
        }
        // A wrong tag byte is rejected, as is trailing garbage after the tail.
        let mut wrong_tag = traced.clone();
        if let Some(tag) = wrong_tag.get_mut(plain.len()) {
            *tag = 0x7E;
        }
        assert!(Request::decode_traced(ty, &wrong_tag).is_err());
        let mut overlong = traced.clone();
        overlong.push(0x00);
        assert!(Request::decode_traced(ty, &overlong).is_err());
    }

    #[test]
    fn append_roundtrips_its_table() {
        let t = f2_datagen::Dataset::Orders.generate(8, 3);
        let (ty, payload) = Request::Append { token: 5, chunk_index: 2, table: t.clone() }.encode();
        match Request::decode(ty, &payload).unwrap() {
            Request::Append { token: 5, chunk_index: 2, table } => assert_eq!(table, t),
            other => panic!("decoded {other:?}"),
        }
    }
}
