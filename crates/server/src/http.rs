//! A zero-dependency HTTP/1.1 scrape listener for the service's telemetry.
//!
//! lint: untrusted-input
//!
//! Prometheus, load balancers, and humans with `curl` speak HTTP, not F2WS —
//! so the observable surface ([`Registry`] exports, the [`TraceJournal`], and
//! the service's drain/overload state) gets its own listener instead of
//! riding the encryption protocol. The implementation is deliberately tiny
//! and read-only: `GET` only, one request per connection (`Connection:
//! close`), a hard cap on the request head, and no dependencies — the same
//! hand-rolled discipline as the rest of the workspace.
//!
//! Routes:
//!
//! | Route           | Body                                                  |
//! |-----------------|-------------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition of the registry            |
//! | `/metrics.json` | The registry's JSON snapshot                          |
//! | `/healthz`      | `ok` (200), or `draining`/`overloaded` (503)          |
//! | `/tracez`       | Recent + slowest completed request traces (JSON)      |
//!
//! This module parses bytes from the network, so it sits in f2-lint's
//! `untrusted-input` scope: no panics, no unchecked indexing, no allocation
//! sized by unvalidated input. A hostile peer gets a `400`/`431`/`405` (or a
//! dropped connection on I/O timeout), never undefined behavior.

use crate::obs;
use f2_obs::{Registry, TraceJournal};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cap on the request head (request line + headers). Anything longer is
/// answered `431` without further reading — the cap bounds both memory and
/// parse time per connection.
pub const MAX_HEAD_BYTES: usize = 4096;

/// What `/healthz` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Serving normally.
    Ok,
    /// Shutdown requested; the service admits no new work.
    Draining,
    /// The admission queue is at its high-water mark.
    Overloaded,
}

/// A live health probe the listener polls on every `/healthz` hit.
pub trait HealthSource: Send + Sync {
    /// The service's current health.
    fn health(&self) -> Health;
}

/// A fixed [`HealthSource`] — for tests and for listeners that serve
/// metrics without a service attached.
#[derive(Debug, Clone, Copy)]
pub struct StaticHealth(pub Health);

impl HealthSource for StaticHealth {
    fn health(&self) -> Health {
        self.0
    }
}

/// Everything a scrape can observe: the metric registry, the trace journal,
/// and a health probe. [`Service::http_state`](crate::Service::http_state)
/// builds the one wired to a live service; tests build scoped ones.
#[derive(Clone)]
pub struct HttpState {
    registry: Registry,
    journal: Arc<TraceJournal>,
    health: Arc<dyn HealthSource>,
}

impl HttpState {
    /// A scrape surface over the given registry, journal, and health probe.
    #[must_use]
    pub fn new(
        registry: Registry,
        journal: Arc<TraceJournal>,
        health: Arc<dyn HealthSource>,
    ) -> HttpState {
        HttpState { registry, journal, health }
    }
}

/// Compute the full HTTP response for one request head.
///
/// Pure over its inputs (no I/O), which is what lets the golden tests pin
/// responses byte-for-byte: no `Date` header, deterministic header order,
/// `Connection: close` always.
#[must_use]
pub fn respond(head: &[u8], state: &HttpState) -> Vec<u8> {
    if head.len() > MAX_HEAD_BYTES {
        return error_response(431, "Request Header Fields Too Large", "request head over cap\n");
    }
    let Some(line) = request_line(head) else {
        return error_response(400, "Bad Request", "malformed request line\n");
    };
    let mut parts = line.split(' ').filter(|part| !part.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return error_response(400, "Bad Request", "malformed request line\n");
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return error_response(400, "Bad Request", "malformed request line\n");
    }
    if method != "GET" {
        return build_response(
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            &[("Allow", "GET")],
            b"only GET is served\n",
        );
    }
    // The query string, if any, is ignored: every route is parameterless.
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/metrics" => {
            obs::http_requests_total("metrics").inc();
            build_response(
                200,
                "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &[],
                state.registry.prometheus_string().as_bytes(),
            )
        }
        "/metrics.json" => {
            obs::http_requests_total("metrics.json").inc();
            build_response(
                200,
                "OK",
                "application/json",
                &[],
                state.registry.json_string().as_bytes(),
            )
        }
        "/healthz" => {
            obs::http_requests_total("healthz").inc();
            let (status, reason, body) = match state.health.health() {
                Health::Ok => (200, "OK", "ok\n"),
                Health::Draining => (503, "Service Unavailable", "draining\n"),
                Health::Overloaded => (503, "Service Unavailable", "overloaded\n"),
            };
            build_response(status, reason, "text/plain; charset=utf-8", &[], body.as_bytes())
        }
        "/tracez" => {
            obs::http_requests_total("tracez").inc();
            build_response(
                200,
                "OK",
                "application/json",
                &[],
                state.journal.json_string().as_bytes(),
            )
        }
        _ => {
            obs::http_requests_total("other").inc();
            error_response(404, "Not Found", "no such route\n")
        }
    }
}

/// The first line of the head, if a complete `\r\n`-terminated, valid-UTF-8
/// one is present.
fn request_line(head: &[u8]) -> Option<&str> {
    let end = head.windows(2).position(|pair| pair == b"\r\n")?;
    std::str::from_utf8(head.get(..end)?).ok()
}

/// True once the head terminator (`\r\n\r\n`) has arrived.
fn head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n")
}

/// Serialize a response: fixed header order, explicit length, no `Date`.
fn build_response(
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> Vec<u8> {
    let mut out = String::new();
    out.push_str(&format!("HTTP/1.1 {status} {reason}\r\n"));
    out.push_str(&format!("Content-Type: {content_type}\r\n"));
    for (name, value) in extra {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str(&format!("Content-Length: {}\r\n", body.len()));
    out.push_str("Connection: close\r\n\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

/// A plain-text error response.
fn error_response(status: u16, reason: &str, body: &str) -> Vec<u8> {
    build_response(status, reason, "text/plain; charset=utf-8", &[], body.as_bytes())
}

/// The scrape listener: one thread, non-blocking accepts, one GET per
/// connection.
pub struct HttpServer {
    listener: TcpListener,
    state: HttpState,
    stop: Arc<AtomicBool>,
}

/// A clonable handle that stops a running [`HttpServer`] from any thread.
#[derive(Clone)]
pub struct HttpServerHandle {
    stop: Arc<AtomicBool>,
}

impl HttpServerHandle {
    /// Ask the listener's `run` loop to return after its current connection.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl HttpServer {
    /// Bind the listener on `addr`. Also touches every `f2_server_*` family
    /// so the very first scrape already lists them at zero.
    pub fn bind(addr: impl ToSocketAddrs, state: HttpState) -> std::io::Result<HttpServer> {
        obs::register_server_families();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(HttpServer { listener, state, stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A stop handle for this listener.
    #[must_use]
    pub fn handle(&self) -> HttpServerHandle {
        HttpServerHandle { stop: Arc::clone(&self.stop) }
    }

    /// Serve scrapes until [`HttpServerHandle::stop`] is called (or the
    /// listener fails). Connections are served inline on this thread — a
    /// scrape is one bounded read and one write, so a dedicated pool would
    /// buy nothing.
    pub fn run(&self) -> std::io::Result<()> {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // One slow or hostile client must not wedge the listener:
                    // the head is capped and both directions carry timeouts.
                    let _ = serve_conn(stream, &self.state);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Read one capped request head, answer it, close.
fn serve_conn(mut stream: TcpStream, state: &HttpState) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let timeout = Some(Duration::from_secs(2));
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    let mut head: Vec<u8> = Vec::new();
    let mut buf = [0u8; 512];
    // Read until the head terminator, EOF, or one byte past the cap — the
    // `respond` path answers the over-cap case with 431.
    while !head_complete(&head) && head.len() <= MAX_HEAD_BYTES {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        let Some(chunk) = buf.get(..n) else { break };
        head.extend_from_slice(chunk);
    }
    let response = respond(&head, state);
    stream.write_all(&response)?;
    stream.flush()
}
