//! A monotonic hashed deadline wheel.
//!
//! Every request registers its absolute deadline (an [`Instant`], so wall
//! clock jumps cannot fire or starve it) together with the connection's
//! [`Hangup`] handle. A single detached ticker thread advances a cursor over
//! [`BUCKETS`] fixed buckets every [`tick`](DeadlineWheel::tick); an entry
//! lands in the bucket its deadline hashes to, so each tick scans only the
//! entries due roughly now — the classic hashed-timing-wheel trade of O(1)
//! insert/cancel against one-revolution firing granularity.
//!
//! Firing sets the entry's `expired` flag and hangs the connection up, which
//! errors the blocked I/O out promptly; the request loop then reports
//! [`DeadlineExpired`](crate::ServerError::DeadlineExpired) and accounts the
//! expiry. Guards cancel themselves on drop, so the happy path never fires.

use crate::transport::Hangup;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Number of wheel buckets. A deadline further out than one revolution
/// (`BUCKETS * tick`) is still honored — it just shares a bucket with nearer
/// deadlines and is skipped (not fired) until its instant passes.
pub const BUCKETS: usize = 64;

/// Default tick granularity. Deadlines fire at most one tick late.
pub const DEFAULT_TICK: Duration = Duration::from_millis(10);

struct Entry {
    id: u64,
    at: Instant,
    expired: Arc<AtomicBool>,
    hangup: Arc<dyn Hangup>,
}

struct WheelState {
    buckets: Vec<Vec<Entry>>,
    next_id: u64,
    shutdown: bool,
}

struct Inner {
    state: Mutex<WheelState>,
    ticker: Condvar,
    epoch: Instant,
    tick: Duration,
}

impl Inner {
    fn bucket_for(&self, at: Instant) -> usize {
        let ticks =
            at.saturating_duration_since(self.epoch).as_nanos() / self.tick.as_nanos().max(1);
        // lint: allow(truncating-cast) — reduced mod BUCKETS, always in range.
        (ticks % BUCKETS as u128) as usize
    }
}

/// The wheel. Dropping it stops the ticker thread; outstanding guards keep
/// their `expired` flags but nothing fires after shutdown.
pub struct DeadlineWheel {
    inner: Arc<Inner>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl DeadlineWheel {
    /// A wheel ticking at [`DEFAULT_TICK`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_tick(DEFAULT_TICK)
    }

    /// A wheel with an explicit tick (tests use a coarse one to prove
    /// deadlines fire, a fine one to prove they don't fire early).
    #[must_use]
    pub fn with_tick(tick: Duration) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(WheelState {
                buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
                next_id: 1,
                shutdown: false,
            }),
            ticker: Condvar::new(),
            epoch: Instant::now(),
            tick: tick.max(Duration::from_millis(1)),
        });
        let ticker_inner = Arc::clone(&inner);
        let ticker = std::thread::Builder::new()
            .name("f2-deadline-wheel".into())
            .spawn(move || run_ticker(&ticker_inner))
            .ok();
        DeadlineWheel { inner, ticker }
    }

    /// The wheel's tick granularity.
    #[must_use]
    pub fn tick(&self) -> Duration {
        self.inner.tick
    }

    /// Arm a deadline: at `at`, set the guard's expired flag and hang up the
    /// connection. Dropping the guard before then cancels it.
    #[must_use]
    pub fn register(&self, at: Instant, hangup: Arc<dyn Hangup>) -> DeadlineGuard {
        let expired = Arc::new(AtomicBool::new(false));
        let bucket = self.inner.bucket_for(at);
        let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        let id = state.next_id;
        state.next_id = state.next_id.wrapping_add(1);
        if let Some(slot) = state.buckets.get_mut(bucket) {
            slot.push(Entry { id, at, expired: Arc::clone(&expired), hangup });
        }
        drop(state);
        DeadlineGuard { inner: Arc::clone(&self.inner), id, bucket, expired }
    }
}

impl Default for DeadlineWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for DeadlineWheel {
    fn drop(&mut self) {
        self.inner.state.lock().unwrap_or_else(PoisonError::into_inner).shutdown = true;
        self.inner.ticker.notify_all();
        if let Some(handle) = self.ticker.take() {
            let _ = handle.join();
        }
    }
}

fn run_ticker(inner: &Inner) {
    let mut cursor = 0_usize;
    let mut state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        if state.shutdown {
            return;
        }
        let (guard, _) =
            inner.ticker.wait_timeout(state, inner.tick).unwrap_or_else(PoisonError::into_inner);
        state = guard;
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        // Fire everything due in the cursor bucket; keep the rest (entries
        // whose deadline is a revolution or more away).
        if let Some(slot) = state.buckets.get_mut(cursor % BUCKETS) {
            let mut due = Vec::new();
            slot.retain(|entry| {
                if entry.at <= now {
                    entry.expired.store(true, Ordering::SeqCst);
                    due.push(Arc::clone(&entry.hangup));
                    false
                } else {
                    true
                }
            });
            if !due.is_empty() {
                // Hang up outside the lock: a hangup may take a transport
                // mutex held by code that is about to touch the wheel.
                drop(state);
                for hangup in due {
                    hangup.hangup();
                }
                state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
            }
        }
        cursor = cursor.wrapping_add(1);
    }
}

/// An armed deadline. `expired()` reports whether it fired; dropping cancels.
pub struct DeadlineGuard {
    inner: Arc<Inner>,
    id: u64,
    bucket: usize,
    expired: Arc<AtomicBool>,
}

impl DeadlineGuard {
    /// Whether the deadline fired (and the connection was hung up).
    #[must_use]
    pub fn expired(&self) -> bool {
        self.expired.load(Ordering::SeqCst)
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = state.buckets.get_mut(self.bucket) {
            slot.retain(|entry| entry.id != self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlagHangup(Arc<AtomicBool>);

    impl Hangup for FlagHangup {
        fn hangup(&self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn an_expired_deadline_fires_and_hangs_up() {
        let wheel = DeadlineWheel::with_tick(Duration::from_millis(2));
        let hung = Arc::new(AtomicBool::new(false));
        let guard = wheel.register(
            Instant::now() + Duration::from_millis(5),
            Arc::new(FlagHangup(Arc::clone(&hung))),
        );
        let waited = Instant::now();
        while !guard.expired() && waited.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(guard.expired(), "deadline never fired");
        assert!(hung.load(Ordering::SeqCst), "hangup was not invoked");
    }

    #[test]
    fn a_cancelled_deadline_never_fires() {
        let wheel = DeadlineWheel::with_tick(Duration::from_millis(2));
        let hung = Arc::new(AtomicBool::new(false));
        let guard = wheel.register(
            Instant::now() + Duration::from_millis(30),
            Arc::new(FlagHangup(Arc::clone(&hung))),
        );
        assert!(!guard.expired());
        drop(guard);
        std::thread::sleep(Duration::from_millis(120));
        assert!(!hung.load(Ordering::SeqCst), "cancelled deadline fired");
    }

    #[test]
    fn a_far_deadline_survives_a_full_revolution_unfired() {
        let wheel = DeadlineWheel::with_tick(Duration::from_millis(1));
        let hung = Arc::new(AtomicBool::new(false));
        let guard = wheel.register(
            Instant::now() + Duration::from_secs(600),
            Arc::new(FlagHangup(Arc::clone(&hung))),
        );
        // One full revolution is BUCKETS ticks ≈ 64ms at this tick.
        std::thread::sleep(Duration::from_millis(200));
        assert!(!guard.expired(), "far deadline fired early");
        assert!(!hung.load(Ordering::SeqCst));
    }
}
